// A1 (ablation) -- the abstract's mechanism: "convex relaxation adversarial
// training to improve the bound tightening for each successive neural
// network layer."
//
// Ablates the per-neuron lower-relaxation slope: the CROWN heuristic vs
// coordinate-descent-optimized alphas.  Reports mean bound improvement and
// how many borderline (unknown-under-CROWN) queries the tuned slopes promote
// to verified.
#include <cstdio>

#include "rcr/verify/verifier.hpp"

int main() {
  using namespace rcr::verify;

  std::printf("=== A1: alpha bound tightening vs the CROWN heuristic ===\n\n");

  rcr::num::Rng rng(17);
  constexpr int kInstances = 30;

  double total_improvement = 0.0;
  double max_improvement = 0.0;
  std::size_t strict_improvements = 0;
  std::size_t borderline = 0;
  std::size_t promoted = 0;
  std::size_t evaluations = 0;

  for (int trial = 0; trial < kInstances; ++trial) {
    const ReluNetwork net = ReluNetwork::random({3, 10, 10, 2}, rng);
    const rcr::Vec x = rng.normal_vec(3);
    const rcr::Vec y = net.forward(x);
    Spec spec;
    spec.c = {1.0, -1.0};
    spec.d = -(y[0] - y[1]) + 1e-3;  // tight margin property around x
    const Box ball = Box::around(x, 0.12);

    const AlphaTightenResult r = tighten_lower_bound_alpha(net, ball, spec);
    const double gain = r.optimized_bound - r.initial_bound;
    total_improvement += gain;
    max_improvement = std::max(max_improvement, gain);
    if (gain > 1e-9) ++strict_improvements;
    evaluations += r.evaluations;
    if (r.initial_bound <= 0.0) {
      ++borderline;
      if (r.optimized_bound > 0.0) ++promoted;
    }
  }

  std::printf("instances:                      %d\n", kInstances);
  std::printf("strict bound improvements:      %zu\n", strict_improvements);
  std::printf("mean bound gain:                %.5f\n",
              total_improvement / kInstances);
  std::printf("max bound gain:                 %.5f\n", max_improvement);
  std::printf("borderline (CROWN unknown):     %zu\n", borderline);
  std::printf("promoted to verified by alpha:  %zu\n", promoted);
  std::printf("bound evaluations per instance: %.0f\n",
              static_cast<double>(evaluations) / kInstances);

  const bool shape_ok = strict_improvements > 0 && total_improvement >= 0.0;
  std::printf("\nshape check: layer-wise slope tuning tightens bounds and "
              "never hurts = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
