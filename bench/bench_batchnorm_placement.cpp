// E9 -- Sec. II-B-2: batchnorm placement in a GAN.
//
// Paper shape: "Simply applying batchnorm to all the layers ... can result
// in oscillation and instability"; applying it selectively (generator output
// / discriminator input) avoids this.  We train the ring GAN under the three
// placement policies and report loss oscillation, sample quality, and mode
// coverage, averaged over seeds.
#include <cstdio>

#include "rcr/nn/gan.hpp"

int main() {
  using namespace rcr::nn;

  std::printf("=== E9: batchnorm placement vs GAN stability ===\n\n");

  const RingDistribution ring;  // 8 modes
  constexpr int kSeeds = 3;

  std::printf("%-14s %-18s %-16s %-14s %-14s\n", "placement",
              "D-loss oscill.", "quality frac", "modes (of 8)",
              "fwd amplif.");
  double oscillation[3] = {0.0, 0.0, 0.0};
  double quality_by[3] = {0.0, 0.0, 0.0};
  int idx = 0;
  for (BatchNormPlacement placement :
       {BatchNormPlacement::kNone, BatchNormPlacement::kSelective,
        BatchNormPlacement::kAllLayers}) {
    double osc = 0.0;
    double quality = 0.0;
    double modes = 0.0;
    double amp = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      GanConfig config;
      config.placement = placement;
      config.steps = 6000;
      config.seed = static_cast<std::uint64_t>(seed);
      GanTrainer trainer(config, ring);
      trainer.train();
      const GanMetrics m = trainer.metrics(512);
      osc += m.d_loss_oscillation / kSeeds;
      quality += m.high_quality_fraction / kSeeds;
      modes += static_cast<double>(m.modes_covered) / kSeeds;
      amp += m.forward_amplification / kSeeds;
    }
    std::printf("%-14s %-18.4f %-16.3f %-14.1f %-14.2f\n",
                to_string(placement).c_str(), osc, quality, modes, amp);
    oscillation[idx] = osc;
    quality_by[idx] = quality;
    ++idx;
  }
  (void)oscillation;

  // Sec. II-B-2's "counterproductive consequences": indiscriminate batchnorm
  // destabilizes GAN training; the robust observable at this scale is
  // collapsed sample quality (and, when it limps along, noisier losses).
  const bool shape_ok = quality_by[1] > quality_by[2];
  std::printf("\nshape check: selective placement out-trains all-layers "
              "batchnorm = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
