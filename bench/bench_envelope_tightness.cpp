// E14 -- Sec. II-B: convex under-estimators / concave over-estimators.
//
// Paper shape: "the tightest convex under-estimator and the tightest concave
// over-estimator are referred to as the convex envelope and the concave
// envelope"; the relaxation gap of the ReLU envelope grows with the
// pre-activation interval width, and the layer-wise consequence is that
// tighter per-neuron envelopes (CROWN vs IBP) compound into much tighter
// deep-layer bounds.
#include <cstdio>

#include "rcr/verify/bounds.hpp"

int main() {
  using namespace rcr::verify;
  using rcr::Vec;

  std::printf("=== E14a: ReLU envelope gap vs interval width ===\n\n");
  std::printf("%-18s %-12s %-14s %-12s\n", "interval", "up slope",
              "up intercept", "max gap");
  double prev_gap = -1.0;
  bool monotone = true;
  for (double half : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const ReluEnvelope e = relu_envelope(-half, half);
    std::printf("[-%-6.2f %6.2f]  %-12.3f %-14.3f %-12.3f\n", half, half,
                e.upper_slope, e.upper_intercept, e.max_gap);
    if (e.max_gap <= prev_gap) monotone = false;
    prev_gap = e.max_gap;
  }

  std::printf("\n=== E14b: compounding effect across layers ===\n\n");
  rcr::num::Rng rng(17);
  const ReluNetwork net = ReluNetwork::random({2, 10, 10, 10, 10, 2}, rng);
  const Box input = Box::around(rng.normal_vec(2), 0.1);
  const TightnessReport report = tightness_report(net, input);
  std::printf("%-8s %-14s %-14s %-12s %-14s %-14s\n", "layer", "IBP width",
              "CROWN width", "ratio", "IBP unstable", "CROWN unstable");
  bool widening = true;
  double prev_ratio = 0.0;
  for (std::size_t k = 0; k < report.ibp_mean_width.size(); ++k) {
    const double ratio =
        report.ibp_mean_width[k] / std::max(report.crown_mean_width[k], 1e-12);
    std::printf("%-8zu %-14.4f %-14.4f %-12.2f %-14zu %-14zu\n", k,
                report.ibp_mean_width[k], report.crown_mean_width[k], ratio,
                report.ibp_unstable[k], report.crown_unstable[k]);
    if (k > 0 && ratio < prev_ratio * 0.5) widening = false;
    prev_ratio = ratio;
  }
  const std::size_t last = report.ibp_mean_width.size() - 1;
  const bool deep_gain = report.ibp_mean_width[last] >
                         1.5 * report.crown_mean_width[last];

  std::printf("\nshape check: envelope gap grows with width = %s; deep-layer "
              "CROWN advantage >= 1.5x = %s\n", monotone ? "yes" : "NO",
              deep_gain ? "yes" : "NO");
  (void)widening;
  return (monotone && deep_gain) ? 0 : 1;
}
