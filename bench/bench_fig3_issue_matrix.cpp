// E1 -- Fig. 3 reproduction: numerical-issue matrix across simulated ML
// libraries for the six FFT-family functions the paper audits.
//
// Paper shape: a sparse matrix of issues -- each library exhibits its own
// defect class on the functions it affects, and the reference row is clean.
#include <cstdio>

#include "rcr/signal/issue_detector.hpp"

int main() {
  using namespace rcr::sig;

  std::printf("=== E1 / Fig. 3: numerical issues in FFT-family functions ===\n");
  std::printf("differential testing of simulated libraries vs reference\n\n");

  const DetectorConfig config;
  const IssueMatrix matrix = detect_issues(standard_library_roster(), config);
  std::printf("%s\n", matrix.to_table().c_str());

  std::printf("per-library issue counts:\n");
  for (std::size_t r = 0; r < matrix.library_names.size(); ++r)
    std::printf("  %-20s %zu\n", matrix.library_names[r].c_str(),
                matrix.issue_count(r));

  std::printf("\ncell details (non-ok):\n");
  for (std::size_t r = 0; r < matrix.library_names.size(); ++r)
    for (std::size_t c = 0; c < matrix.functions.size(); ++c)
      if (matrix.cells[r][c].kind != IssueKind::kOk)
        std::printf("  %-20s %-6s %-10s %s\n", matrix.library_names[r].c_str(),
                    to_string(matrix.functions[c]).c_str(),
                    to_string(matrix.cells[r][c].kind).c_str(),
                    matrix.cells[r][c].detail.c_str());

  const bool reference_clean = matrix.issue_count(0) == 0;
  std::printf("\nshape check: reference row clean = %s\n",
              reference_clean ? "yes" : "NO (unexpected)");
  return reference_clean ? 0 : 1;
}
