// E4 -- Sec. IV-B: gabphasederiv accuracy vs Gabor coefficient magnitude.
//
// Paper shape (quoting the LTFAT docs): "the computation of phased is
// inaccurate when the absolute value of the Gabor coefficients is low ...
// the phase of complex numbers close to the machine precision is almost
// random."  We sweep the reliability floor and report RMS error of the
// instantaneous-frequency estimate in reliable vs unreliable cells.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "rcr/signal/gabor.hpp"
#include "rcr/signal/waveform.hpp"

int main() {
  using namespace rcr::sig;
  using rcr::Vec;

  std::printf("=== E4: gabphasederiv accuracy vs coefficient magnitude ===\n\n");

  const double fs = 256.0;
  const double f = 8.0;
  const double omega = 2.0 * std::numbers::pi * f / fs;
  const Vec signal = tone(1024, f, fs);
  const TfGrid grid = gabor_transform(signal, 64, 8, 64);

  std::printf("true d(phase)/dt = %.5f rad/sample\n\n", omega);
  std::printf("%-14s %-12s %-14s %-12s %-16s\n", "mag floor", "n_reliable",
              "rms reliable", "n_unrel.", "rms unreliable");

  bool shape_ok = true;
  for (double floor : {1e-1, 1e-2, 1e-3, 1e-5, 1e-8}) {
    const PhaseDerivative d =
        gabphasederiv(grid, PhaseDerivKind::kTime, 8, floor);
    const PhaseDerivError err = phase_deriv_error_vs_constant(d, omega);
    std::printf("%-14.0e %-12zu %-14.4f %-12zu %-16.4f\n", floor,
                err.n_reliable, err.rms_reliable, err.n_unreliable,
                err.rms_unreliable);
    if (err.n_reliable > 0 && err.n_unreliable > 0 &&
        err.rms_unreliable < err.rms_reliable)
      shape_ok = false;
  }

  std::printf("\nshape check: low-magnitude cells are much less accurate "
              "than high-magnitude cells = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
