// E10 -- Sec. IV: mode-collapse mitigation with a mixture of generators
// (the paper's DCGAN #3, "an additional generator ... to assist in
// mitigating mode failure"), plus the forward-stability probe ("a forward
// stable DCGAN does not amplify perturbations of the input set").
#include <cstdio>

#include "rcr/nn/gan.hpp"

int main() {
  using namespace rcr::nn;

  std::printf("=== E10: mode coverage vs number of generators ===\n\n");

  RingDistribution ring;
  ring.modes = 8;
  constexpr int kSeeds = 3;

  std::printf("%-14s %-14s %-16s %-16s\n", "generators", "modes (of 8)",
              "quality frac", "fwd amplif.");
  double coverage[3] = {0.0, 0.0, 0.0};
  int idx = 0;
  for (std::size_t generators : {1u, 2u, 4u}) {
    double modes = 0.0;
    double quality = 0.0;
    double amp = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      GanConfig config;
      config.generators = generators;
      config.steps = 6000 * generators;  // equal per-generator update budget
      config.seed = static_cast<std::uint64_t>(seed);
      GanTrainer trainer(config, ring);
      trainer.train();
      const GanMetrics m = trainer.metrics(1024);
      modes += static_cast<double>(m.modes_covered) / kSeeds;
      quality += m.high_quality_fraction / kSeeds;
      amp += m.forward_amplification / kSeeds;
    }
    std::printf("%-14zu %-14.1f %-16.3f %-16.2f\n", generators, modes,
                quality, amp);
    coverage[idx++] = modes;
  }

  const bool shape_ok = coverage[2] >= coverage[0];
  std::printf("\nshape check: the generator mixture covers at least as many "
              "modes as a single generator = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
