// A3 (ablation) -- Sec. I/II-A: the stochastic-search family for nonconvex
// problems.  The paper surveys Langevin diffusions (premature stagnation
// caveat), swarm methods (PSO chosen for robustness at small swarm sizes),
// and local methods hybridized with global search.
//
// Head-to-head on the multimodal suite: PSO, annealed Langevin, trust-region
// BFGS (purely local), and random search at a matched evaluation budget.
#include <cstdio>

#include "rcr/opt/langevin.hpp"
#include "rcr/opt/trust_region.hpp"
#include "rcr/pso/swarm.hpp"

namespace {

using rcr::Vec;

double run_pso(const rcr::pso::Objective& objective, std::uint64_t seed,
               std::size_t budget) {
  rcr::pso::PsoConfig c;
  c.swarm_size = 20;
  c.max_iterations = budget / c.swarm_size;
  c.seed = seed;
  return rcr::pso::minimize(objective, c).best_value;
}

double run_langevin(const rcr::pso::Objective& objective, std::uint64_t seed,
                    std::size_t budget) {
  rcr::opt::Smooth f = rcr::opt::with_numerical_gradient(objective.value);
  rcr::opt::LangevinOptions opts;
  // Each Langevin iteration costs 1 value + 2n gradient probes; charge ~3
  // evaluations per iteration for parity.
  opts.iterations = budget / 3;
  // Langevin is scale-sensitive: tie the step and temperature to the domain
  // width so one setting serves the whole suite.
  const double range = objective.upper[0] - objective.lower[0];
  opts.step = 1e-4 * range;
  opts.initial_temperature = 0.05 * range;
  opts.cooling = 0.997;
  opts.seed = seed;
  opts.lower = objective.lower;
  opts.upper = objective.upper;
  rcr::num::Rng rng(seed + 77);
  Vec x0(objective.dim());
  for (std::size_t j = 0; j < x0.size(); ++j)
    x0[j] = rng.uniform(objective.lower[j], objective.upper[j]);
  return rcr::opt::langevin_minimize(f, x0, opts).best_value;
}

double run_local(const rcr::pso::Objective& objective, std::uint64_t seed) {
  rcr::opt::Smooth f = rcr::opt::with_numerical_gradient(objective.value);
  rcr::num::Rng rng(seed + 99);
  Vec x0(objective.dim());
  for (std::size_t j = 0; j < x0.size(); ++j)
    x0[j] = rng.uniform(objective.lower[j], objective.upper[j]);
  return rcr::opt::trust_region_bfgs(f, x0).value;
}

double run_random(const rcr::pso::Objective& objective, std::uint64_t seed,
                  std::size_t budget) {
  rcr::num::Rng rng(seed + 123);
  double best = 1e300;
  for (std::size_t i = 0; i < budget; ++i) {
    Vec x(objective.dim());
    for (std::size_t j = 0; j < x.size(); ++j)
      x[j] = rng.uniform(objective.lower[j], objective.upper[j]);
    best = std::min(best, objective.value(x));
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::size_t kBudget = 4000;
  constexpr int kSeeds = 6;

  std::printf("=== A3: global optimizers on the multimodal suite "
              "(dim 4, ~%zu evals, %d seeds) ===\n\n", kBudget, kSeeds);
  std::printf("%-14s %-12s %-12s %-12s %-12s\n", "objective", "PSO",
              "Langevin", "TR-BFGS", "random");

  for (const auto& objective : rcr::pso::standard_suite(4)) {
    double pso = 0.0;
    double langevin = 0.0;
    double local = 0.0;
    double random = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      pso += run_pso(objective, seed, kBudget) / kSeeds;
      langevin += run_langevin(objective, seed, kBudget) / kSeeds;
      local += run_local(objective, seed) / kSeeds;
      random += run_random(objective, seed, kBudget) / kSeeds;
    }
    std::printf("%-14s %-12.3f %-12.3f %-12.3f %-12.3f\n",
                objective.name.c_str(), pso, langevin, local, random);
  }

  std::printf("\nexpected shapes: PSO robust across the suite (the paper's "
              "selection rationale); Langevin competitive but cooling-"
              "sensitive; pure local search trapped on multimodal surfaces; "
              "random search weakest on narrow funnels.\n");
  return 0;
}
