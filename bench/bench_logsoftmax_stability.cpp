// E13 -- Sec. V: "as the softmax output approaches 0, the log output
// approaches infinity, which causes instability"; the fused log-softmax is
// stable while the separate softmax-then-log composition blows up.
//
// We sweep the logit spread and report where the naive composition first
// produces non-finite values, and the max error of the fused form against
// exact (long-double) arithmetic.
#include <cmath>
#include <cstdio>

#include "rcr/numerics/stable.hpp"

int main() {
  using namespace rcr::num;
  using rcr::Vec;

  std::printf("=== E13: fused log-softmax vs separate softmax-then-log ===\n\n");
  std::printf("%-12s %-16s %-16s %-18s\n", "spread", "naive finite?",
              "fused finite?", "fused |err| vs exact");

  double naive_onset = -1.0;
  bool fused_always_ok = true;
  for (double spread : {10.0, 50.0, 200.0, 500.0, 700.0, 745.0, 800.0, 2000.0}) {
    const Vec x = {0.0, spread};
    const Vec naive = log_softmax_naive(x);
    const Vec fused = log_softmax(x);
    const bool naive_ok = all_finite(naive);
    const bool fused_ok = all_finite(fused);
    // Exact values: log p0 = -log(1 + e^{spread}) = -spread - log1p(e^{-s}).
    const double exact0 = -spread - std::log1p(std::exp(-spread));
    const double exact1 = -std::log1p(std::exp(-spread));
    const double err = std::max(std::abs(fused[0] - exact0),
                                std::abs(fused[1] - exact1));
    std::printf("%-12.0f %-16s %-16s %-18.2e\n", spread,
                naive_ok ? "yes" : "NO (inf/nan)", fused_ok ? "yes" : "NO",
                err);
    if (!naive_ok && naive_onset < 0.0) naive_onset = spread;
    if (!fused_ok || err > 1e-9) fused_always_ok = false;
  }

  std::printf("\nnaive instability onset near spread ~ %.0f "
              "(log(double-min) ~ 745)\n", naive_onset);
  std::printf("shape check: naive blows up, fused exact throughout = %s\n",
              (naive_onset > 0.0 && fused_always_ok) ? "yes" : "NO");
  return (naive_onset > 0.0 && fused_always_ok) ? 0 : 1;
}
