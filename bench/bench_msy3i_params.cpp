// E7 -- Sec. II-B-1: MSY3I (fire-layer) parameter reduction vs a conv-only
// backbone at matched width/depth, on the spectrogram modulation-
// classification task.
//
// Paper shape: "the number of model parameters in MSY3I will be lower than
// that of just YOLO v3 with only the slightest degradation in performance."
#include <cstdio>

#include "rcr/nn/msy3i.hpp"
#include "rcr/signal/spectrogram.hpp"

namespace {

std::vector<rcr::nn::ImageSample> to_images(
    const std::vector<rcr::sig::ClassSample>& samples) {
  std::vector<rcr::nn::ImageSample> out;
  for (const auto& s : samples) {
    rcr::nn::ImageSample img;
    img.pixels = s.image.pixels;
    img.height = s.image.height;
    img.width = s.image.width;
    img.label = s.label;
    out.push_back(std::move(img));
  }
  return out;
}

}  // namespace

int main() {
  using namespace rcr::nn;

  std::printf("=== E7: MSY3I vs conv baseline -- parameters and accuracy ===\n\n");

  rcr::num::Rng data_rng(42);
  const auto train =
      to_images(rcr::sig::make_classification_dataset(24, 16, 0.05, data_rng));
  const auto test =
      to_images(rcr::sig::make_classification_dataset(10, 16, 0.05, data_rng));
  std::printf("dataset: %zu train / %zu test spectrograms, 3 modulation "
              "classes\n\n", train.size(), test.size());

  Msy3iConfig cfg;
  cfg.image_size = 16;
  cfg.classes = 3;
  cfg.stem_filters = 8;
  cfg.fire_squeeze = 4;
  cfg.fire_expand = 8;
  cfg.num_fire_blocks = 2;
  cfg.seed = 5;

  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 12;
  tc.learning_rate = 3e-3;

  std::printf("%-22s %-12s %-12s %-12s\n", "model", "params", "train acc",
              "test acc");

  Sequential baseline = build_conv_baseline(cfg);
  const TrainReport rb = train_classifier(baseline, train, test, tc);
  std::printf("%-22s %-12zu %-12.3f %-12.3f\n", "conv baseline",
              rb.param_count, rb.train_accuracy, rb.test_accuracy);

  Sequential squeezed = build_msy3i_classifier(cfg);
  const TrainReport rs = train_classifier(squeezed, train, test, tc);
  std::printf("%-22s %-12zu %-12.3f %-12.3f\n", "MSY3I (fire/SFL)",
              rs.param_count, rs.train_accuracy, rs.test_accuracy);

  const double reduction =
      static_cast<double>(rb.param_count) / static_cast<double>(rs.param_count);
  const double degradation = rb.test_accuracy - rs.test_accuracy;
  std::printf("\nparameter reduction: %.2fx   accuracy delta: %+.3f\n",
              reduction, -degradation);

  const bool shape_ok = reduction >= 2.0 && degradation <= 0.15;
  std::printf("shape check: >=2x fewer parameters with only slight "
              "degradation = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
