// Overhead of the rcr::obs observability layer on the ADMM / SDP hot paths.
//
// Four configurations per solver, all computing bit-identical iterates
// (tests/obs/test_obs_solvers.cpp proves the bit-exactness; this bench
// prices the instrumentation):
//
//   off       metrics and tracing disabled: every obs entry point is one
//             relaxed atomic load + branch.  This is the production
//             default and must be indistinguishable from an
//             un-instrumented build.
//   metrics   registry armed: solve/iteration counters hit the thread-local
//             cell cache (relaxed fetch_add, no lock, no allocation).
//   trace     spans armed: each solve writes one B/E pair into the calling
//             thread's ring buffer (two steady-clock reads per solve).
//   full      metrics + tracing armed together -- the configuration the CI
//             obs job runs the tier-1 suite under, held to the <1%
//             overhead contract.
//
// Prints the harness table plus per-kernel overhead lines, and writes
// BENCH_perf_obs.json with the armed-run metrics snapshot embedded (schema
// in bench/harness.hpp).
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/sdp.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;

struct Overheads {
  double off_ns = 0.0;
  double metrics_ns = 0.0;
  double trace_ns = 0.0;
  double full_ns = 0.0;

  double pct(double armed_ns) const {
    return off_ns > 0.0 ? 100.0 * (armed_ns - off_ns) / off_ns : 0.0;
  }
};

// Baseline must be a true disabled path even when RCR_METRICS/RCR_TRACE
// armed the registries at startup.
class DisarmObs {
 public:
  DisarmObs()
      : metrics_(rcr::obs::metrics_enabled()),
        trace_(rcr::obs::trace_enabled()) {
    rcr::obs::set_metrics_enabled(false);
    rcr::obs::set_trace_enabled(false);
  }
  ~DisarmObs() {
    rcr::obs::set_metrics_enabled(metrics_);
    rcr::obs::set_trace_enabled(trace_);
  }

 private:
  bool metrics_;
  bool trace_;
};

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();
  const int reps = smoke ? 3 : 12;
  std::printf("=== observability overhead (threads=%zu%s) ===\n\n",
              rcr::rt::global_threads(), smoke ? ", smoke" : "");

  rcr::bench::Harness h("obs_overhead");
  Rng rng(7);

  Overheads admm;
  {
    const std::size_t n = smoke ? 24 : 64;
    const Matrix p = rcr::opt::random_psd(n, n, rng) + Matrix::identity(n);
    const Vec q = rng.normal_vec(n);
    const Vec lo(n, -1.0), hi(n, 1.0);
    const std::string size = "n=" + std::to_string(n);
    const auto solve = [&] { rcr::opt::admm_box_qp(p, q, lo, hi); };

    {
      DisarmObs off;
      admm.off_ns = h.run("admm_boxqp/off", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedMetrics metrics;
      admm.metrics_ns = h.run("admm_boxqp/metrics", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedTrace trace;
      admm.trace_ns = h.run("admm_boxqp/trace", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedMetrics metrics;
      rcr::obs::ScopedTrace trace;
      admm.full_ns = h.run("admm_boxqp/full", size, reps, solve).ns_op;
    }
  }

  Overheads sdp;
  {
    const std::size_t n = smoke ? 6 : 12;
    rcr::opt::Sdp problem;
    problem.c = rcr::opt::random_psd(n, n, rng) - Matrix::identity(n);
    problem.a_eq.push_back(Matrix::identity(n));
    problem.b_eq.push_back(1.0);
    const std::string size = "n=" + std::to_string(n);
    // The structured fast path (PR 6): Schur-complement KKT solve,
    // warm-started projection, rotation skipping, and a reused workspace.
    // The overhead contract must hold on the configuration production
    // actually runs -- the dense cold path both inflated ns/op ~15x and
    // buried the obs cost under ~2000 allocs/op of solver noise.
    rcr::opt::SdpOptions options;
    options.max_iterations = smoke ? 500 : 2000;
    options.exploit_structure = true;
    options.warm_start_projection = true;
    options.projection_rotation_threshold = 1e-9;
    rcr::opt::SdpWorkspace ws;
    const auto solve = [&] { rcr::opt::solve_sdp(problem, options, ws); };

    {
      DisarmObs off;
      sdp.off_ns = h.run("sdp_admm/off", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedMetrics metrics;
      sdp.metrics_ns = h.run("sdp_admm/metrics", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedTrace trace;
      sdp.trace_ns = h.run("sdp_admm/trace", size, reps, solve).ns_op;
    }
    {
      rcr::obs::ScopedMetrics metrics;
      rcr::obs::ScopedTrace trace;
      sdp.full_ns = h.run("sdp_admm/full", size, reps, solve).ns_op;
    }
  }

  h.print_table();
  std::printf("\nfully-armed overhead vs off (the <1%% contract):\n");
  std::printf("  admm_boxqp: %+6.2f%%\n", admm.pct(admm.full_ns));
  std::printf("  sdp_admm:   %+6.2f%%\n", sdp.pct(sdp.full_ns));
  std::printf("per-subsystem, informational:\n");
  std::printf("  admm_boxqp: metrics %+6.2f%%  trace %+6.2f%%\n",
              admm.pct(admm.metrics_ns), admm.pct(admm.trace_ns));
  std::printf("  sdp_admm:   metrics %+6.2f%%  trace %+6.2f%%\n",
              sdp.pct(sdp.metrics_ns), sdp.pct(sdp.trace_ns));
  if (admm.pct(admm.full_ns) >= 1.0 || sdp.pct(sdp.full_ns) >= 1.0)
    std::printf("WARNING: armed obs overhead exceeded the 1%% budget\n");

  // Re-arm metrics so the export embeds the telemetry from the armed runs
  // (values survive scope exits; only the enable flag was restored).
  rcr::obs::set_metrics_enabled(true);
  std::printf("\n%s\n", h.to_json().c_str());
  return h.write_json("BENCH_perf_obs.json") ? 0 : 1;
}
