// Serial-vs-parallel and allocation tracking for the runtime-accelerated hot
// paths: dense matmul (into-variant), Conv2d forward, STFT (512-point FFT,
// 256 frames), a CROWN verifier sweep, and the ADMM box-QP solver with and
// without a prefactored x-update operator.  Prints the harness table and
// writes BENCH_perf.json (schema documented in bench/harness.hpp and the
// README) so CI can track ns/op, allocs/op, and speedup regressions.
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "rcr/nn/conv.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/rt/thread_pool.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/relu_network.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();
  const int reps = smoke ? 2 : 5;
  std::printf("=== parallel runtime: serial vs pool (threads=%zu%s) ===\n\n",
              rcr::rt::global_threads(), smoke ? ", smoke" : "");

  rcr::bench::Harness h("parallel_runtime");
  Rng rng(42);

  {
    const std::size_t n = smoke ? 64 : 256;
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    Matrix c;
    h.run_serial_parallel("matmul_into", std::to_string(n) + "x" +
                          std::to_string(n), reps,
                          [&] { rcr::num::multiply_into(a, b, c); });
  }

  {
    Rng init(1);
    const std::size_t batch = smoke ? 2 : 8;
    rcr::nn::Conv2d conv(8, 16, 3, 1, 1, init);
    rcr::nn::Tensor input({batch, 8, 32, 32});
    for (auto& v : input.data()) v = rng.normal();
    rcr::nn::Tensor out;
    h.run_serial_parallel("conv2d_fwd", "b" + std::to_string(batch), reps,
                          [&] { conv.forward_into(input, out); });
  }

  {
    const std::size_t frames = smoke ? 32 : 255;
    const Vec signal = rng.normal_vec(512 / 4 * frames + 512);
    rcr::sig::StftConfig config;
    config.window = rcr::sig::make_window(rcr::sig::WindowKind::kHann, 512);
    config.hop = 128;
    config.fft_size = 512;
    rcr::sig::TfGrid grid;
    h.run_serial_parallel("stft_into", "512x" + std::to_string(frames + 1),
                          reps,
                          [&] { rcr::sig::stft_into(signal, config, grid); });
  }

  {
    rcr::verify::ReluNetwork net;
    Rng wrng(7);
    const std::size_t width = smoke ? 32 : 128;
    const std::vector<std::size_t> dims = {16, width, width, width, 10};
    for (std::size_t k = 0; k + 1 < dims.size(); ++k) {
      rcr::verify::AffineLayer layer;
      layer.w = Matrix(dims[k + 1], dims[k]);
      layer.b = Vec(dims[k + 1], 0.0);
      for (std::size_t i = 0; i < dims[k + 1]; ++i)
        for (std::size_t j = 0; j < dims[k]; ++j)
          layer.w(i, j) = wrng.normal() / 8.0;
      net.layers.push_back(std::move(layer));
    }
    const rcr::verify::Box input =
        rcr::verify::Box::around(Vec(16, 0.1), 0.05);
    rcr::verify::LayerBounds bounds;
    h.run_serial_parallel("crown", std::to_string(width) + "x3",
                          smoke ? 2 : 3, [&] {
                            bounds = rcr::verify::crown_bounds(net, input);
                          });
  }

  {
    // ADMM box QP: the same solve with and without a prefactored x-update
    // operator.  The prefactored path skips the per-call P + rho I copy and
    // LU refactorization, which dominates small-iteration solves.
    const std::size_t n = smoke ? 24 : 64;
    Rng prng(3);
    Matrix p = random_matrix(n, n, prng);
    p = rcr::num::multiply_at_b(p, p);  // PSD
    for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
    const Vec q = prng.normal_vec(n);
    const Vec lo(n, -1.0);
    const Vec hi(n, 1.0);
    rcr::opt::AdmmOptions opts;
    opts.max_iterations = smoke ? 50 : 200;
    rcr::opt::AdmmResult res;
    h.run("admm_box_qp", "n" + std::to_string(n), reps, [&] {
      res = rcr::opt::admm_box_qp(p, q, lo, hi, opts);
    });
    const rcr::opt::BoxQpFactor factor =
        rcr::opt::prefactor_box_qp(p, opts.rho);
    h.run("admm_box_qp_prefactored", "n" + std::to_string(n), reps, [&] {
      res = rcr::opt::admm_box_qp(p, factor, q, lo, hi, opts);
    });
  }

  h.print_table();
  std::printf("\n%s\n", h.to_json().c_str());
  return h.write_json("BENCH_perf.json") ? 0 : 1;
}
