// Serial-vs-parallel timing for the runtime-accelerated hot paths:
// dense matmul (256x256), Conv2d forward (batch 8), STFT (512-point FFT,
// 256 frames), and a CROWN verifier sweep.  Prints a table and emits one
// JSON line (also written to BENCH_parallel_runtime.json) with the
// speedups, so CI can track regressions.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "rcr/nn/conv.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/thread_pool.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/relu_network.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

Row measure(const std::string& name, int reps,
            const std::function<void()>& fn) {
  Row row;
  row.name = name;
  {
    rcr::rt::ForceSerialGuard serial;
    row.serial_ms = 1e3 * time_best_of(reps, fn);
  }
  row.parallel_ms = 1e3 * time_best_of(reps, fn);
  return row;
}

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

}  // namespace

int main() {
  std::printf("=== parallel runtime: serial vs pool (threads=%zu) ===\n\n",
              rcr::rt::global_threads());

  std::vector<Row> rows;
  Rng rng(42);

  {
    const Matrix a = random_matrix(256, 256, rng);
    const Matrix b = random_matrix(256, 256, rng);
    Matrix c;
    rows.push_back(measure("matmul_256", 5, [&] { c = a * b; }));
  }

  {
    Rng init(1);
    rcr::nn::Conv2d conv(8, 16, 3, 1, 1, init);
    rcr::nn::Tensor input({8, 8, 32, 32});
    for (auto& v : input.data()) v = rng.normal();
    rcr::nn::Tensor out;
    rows.push_back(measure("conv2d_fwd_b8", 5,
                           [&] { out = conv.forward(input, false); }));
  }

  {
    const Vec signal = rng.normal_vec(512 / 4 * 255 + 512);
    rcr::sig::StftConfig config;
    config.window = rcr::sig::make_window(rcr::sig::WindowKind::kHann, 512);
    config.hop = 128;
    config.fft_size = 512;
    rcr::sig::TfGrid grid;
    rows.push_back(
        measure("stft_512x256", 5, [&] { grid = rcr::sig::stft(signal, config); }));
  }

  {
    rcr::verify::ReluNetwork net;
    Rng wrng(7);
    const std::vector<std::size_t> dims = {16, 128, 128, 128, 10};
    for (std::size_t k = 0; k + 1 < dims.size(); ++k) {
      rcr::verify::AffineLayer layer;
      layer.w = Matrix(dims[k + 1], dims[k]);
      layer.b = Vec(dims[k + 1], 0.0);
      for (std::size_t i = 0; i < dims[k + 1]; ++i)
        for (std::size_t j = 0; j < dims[k]; ++j)
          layer.w(i, j) = wrng.normal() / 8.0;
      net.layers.push_back(std::move(layer));
    }
    const rcr::verify::Box input =
        rcr::verify::Box::around(Vec(16, 0.1), 0.05);
    rcr::verify::LayerBounds bounds;
    rows.push_back(measure("crown_128x3", 3, [&] {
      bounds = rcr::verify::crown_bounds(net, input);
    }));
  }

  std::printf("%-14s %12s %12s %10s\n", "kernel", "serial(ms)",
              "parallel(ms)", "speedup");
  for (const Row& row : rows)
    std::printf("%-14s %12.3f %12.3f %9.2fx\n", row.name.c_str(),
                row.serial_ms, row.parallel_ms, row.speedup());

  std::string json = "{\"bench\":\"parallel_runtime\",\"threads\":" +
                     std::to_string(rcr::rt::global_threads());
  for (const Row& row : rows) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"%s\":{\"serial_ms\":%.4f,\"parallel_ms\":%.4f,"
                  "\"speedup\":%.3f}",
                  row.name.c_str(), row.serial_ms, row.parallel_ms,
                  row.speedup());
    json += buf;
  }
  json += "}";
  std::printf("\n%s\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_parallel_runtime.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }
  return 0;
}
