// E6 -- Secs. II-A and III: PSO premature stagnation under integer rounding
// and the effect of inertia schedules, plus the swarm-size tradeoff.
//
// Paper shapes:
//  - rounding velocities to integers -> particles stagnate prematurely;
//  - increasing/adapting inertia lets particles progress past local optima;
//  - small swarms gravitate to local minima, large swarms find better optima
//    at higher evaluation cost.
#include <cstdio>

#include "rcr/pso/swarm.hpp"

int main() {
  using namespace rcr::pso;

  constexpr int kSeeds = 10;
  const Objective objective = rastrigin(4);

  std::printf("=== E6a: integer rounding induces premature stagnation ===\n\n");
  std::printf("%-14s %-16s %-16s %-14s\n", "mode", "mean best val",
              "stagn. events", "stuck at end");
  for (Rounding mode : {Rounding::kNone, Rounding::kInteger}) {
    double best = 0.0;
    double stagnation = 0.0;
    double stuck = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      PsoConfig c;
      c.swarm_size = 15;
      c.max_iterations = 120;
      c.seed = static_cast<std::uint64_t>(seed);
      c.rounding = mode;
      const PsoResult r = minimize(objective, c);
      best += r.best_value / kSeeds;
      stagnation += static_cast<double>(r.stagnation_events) / kSeeds;
      stuck += r.final_stagnant_fraction / kSeeds;
    }
    std::printf("%-14s %-16.3f %-16.2f %-14.2f\n",
                mode == Rounding::kNone ? "continuous" : "integer", best,
                stagnation, stuck);
  }

  std::printf("\n=== E6b: inertia schedules on integer-rounded PSO ===\n\n");
  std::printf("%-20s %-16s %-16s %-14s\n", "schedule", "mean best val",
              "stagn. events", "dispersions");
  struct Entry {
    const char* name;
    std::unique_ptr<InertiaSchedule> (*make)();
  };
  const Entry entries[] = {
      {"constant-0.7", [] { return constant_inertia(0.7); }},
      {"linear-decay", [] { return linear_decay_inertia(0.9, 0.4); }},
      {"chaotic", [] { return chaotic_inertia(0.4); }},
      {"adaptive-distance", [] { return adaptive_distance_inertia(); }},
      {"adaptive-qp", [] { return adaptive_qp_inertia(); }},
  };
  for (const Entry& e : entries) {
    double best = 0.0;
    double stagnation = 0.0;
    double dispersions = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      PsoConfig c;
      c.swarm_size = 15;
      c.max_iterations = 120;
      c.seed = static_cast<std::uint64_t>(seed);
      c.rounding = Rounding::kInteger;
      c.disperse_on_stagnation = true;
      auto schedule = e.make();
      const PsoResult r = minimize(objective, c, schedule.get());
      best += r.best_value / kSeeds;
      stagnation += static_cast<double>(r.stagnation_events) / kSeeds;
      dispersions += static_cast<double>(r.dispersions) / kSeeds;
    }
    std::printf("%-20s %-16.3f %-16.2f %-14.2f\n", e.name, best, stagnation,
                dispersions);
  }

  std::printf("\n=== E6c: swarm-size tradeoff (continuous rastrigin-4) ===\n\n");
  std::printf("%-12s %-16s %-16s\n", "swarm", "mean best val", "evaluations");
  for (std::size_t swarm : {5u, 10u, 20u, 40u, 80u}) {
    double best = 0.0;
    double evals = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      PsoConfig c;
      c.swarm_size = swarm;
      c.max_iterations = 100;
      c.seed = static_cast<std::uint64_t>(seed);
      const PsoResult r = minimize(objective, c);
      best += r.best_value / kSeeds;
      evals += static_cast<double>(r.evaluations) / kSeeds;
    }
    std::printf("%-12zu %-16.3f %-16.0f\n", swarm, best, evals);
  }

  std::printf("\nexpected shapes: integer mode stagnates more; adaptive "
              "schedules reduce stagnation; bigger swarms find better optima "
              "at more evaluations.\n");
  return 0;
}
