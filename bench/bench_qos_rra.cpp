// E11 -- Sec. I's motivating MINLP: radio resource allocation.
//
// Paper shapes:
//  - the continuous relaxation upper-bounds every solver;
//  - exact >= PSO >= greedy-with-QoS in feasible objective;
//  - exact runtime explodes combinatorially with problem size while PSO
//    scales gently (measured with google-benchmark).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rcr/qos/rra.hpp"

namespace {

using namespace rcr::qos;

RraProblem make_problem(std::size_t users, std::size_t rbs,
                        std::uint64_t seed, double min_rate) {
  ChannelConfig cfg;
  cfg.num_users = users;
  cfg.num_rbs = rbs;
  cfg.seed = seed;
  RraProblem p;
  p.gain = make_channel(cfg).gain;
  p.total_power = 1.0;
  p.min_rate = rcr::Vec(users, min_rate);
  return p;
}

void report_table() {
  std::printf("=== E11: RRA MINLP solver comparison ===\n\n");
  std::printf("%-6s %-6s | %-10s %-18s %-18s %-18s\n", "users", "RBs",
              "relax UB", "exact (feas)", "PSO (feas)", "greedy (feas)");
  for (const auto& [users, rbs] :
       {std::pair<std::size_t, std::size_t>{2, 5},
        std::pair<std::size_t, std::size_t>{3, 6},
        std::pair<std::size_t, std::size_t>{4, 7}}) {
    // Rates are averaged over *feasible* runs only, so the ordering
    // relaxation >= exact >= heuristics is meaningful; infeasible runs post
    // inflated raw rates by violating QoS.
    double ub = 0.0;
    double exact = 0.0;
    double pso = 0.0;
    double greedy = 0.0;
    int exact_f = 0;
    int pso_f = 0;
    int greedy_f = 0;
    constexpr int kSeeds = 4;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const RraProblem p = make_problem(users, rbs, seed, 0.3);
      ub += relaxation_upper_bound(p) / kSeeds;
      const RraSolution e = solve_exact(p);
      if (e.feasible) {
        exact += e.sum_rate;
        ++exact_f;
      }
      RraPsoOptions opts;
      opts.seed = seed;
      opts.swarm_size = 30;
      opts.max_iterations = 150;
      const RraSolution s = solve_pso(p, opts);
      if (s.feasible) {
        pso += s.sum_rate;
        ++pso_f;
      }
      const RraSolution g = solve_greedy(p);
      if (g.feasible) {
        greedy += g.sum_rate;
        ++greedy_f;
      }
    }
    auto avg = [](double total, int count) {
      return count > 0 ? total / count : 0.0;
    };
    std::printf("%-6zu %-6zu | %-10.2f %-10.2f (%d/4)    %-10.2f (%d/4)    "
                "%-10.2f (%d/4)\n",
                users, rbs, ub, avg(exact, exact_f), exact_f,
                avg(pso, pso_f), pso_f, avg(greedy, greedy_f), greedy_f);
  }
  std::printf("\nexpected shapes (feasible-only means): relax UB >= exact >= PSO "
              ">= greedy; greedy often violates QoS outright; exact nodes explode with "
              "size (timings below).\n\n");
}

void BM_Exact(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const auto rbs = static_cast<std::size_t>(state.range(1));
  const RraProblem p = make_problem(users, rbs, 1, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(solve_exact(p));
  state.counters["assignments"] =
      std::pow(static_cast<double>(users), static_cast<double>(rbs));
}
BENCHMARK(BM_Exact)->Args({2, 5})->Args({3, 6})->Args({4, 7});

void BM_Pso(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const auto rbs = static_cast<std::size_t>(state.range(1));
  const RraProblem p = make_problem(users, rbs, 1, 0.3);
  RraPsoOptions opts;
  opts.swarm_size = 30;
  opts.max_iterations = 150;
  for (auto _ : state) benchmark::DoNotOptimize(solve_pso(p, opts));
}
BENCHMARK(BM_Pso)->Args({2, 5})->Args({3, 6})->Args({4, 7});

void BM_Greedy(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const auto rbs = static_cast<std::size_t>(state.range(1));
  const RraProblem p = make_problem(users, rbs, 1, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(solve_greedy(p));
}
BENCHMARK(BM_Greedy)->Args({2, 5})->Args({3, 6})->Args({4, 7});

}  // namespace

int main(int argc, char** argv) {
  report_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
