// E12 -- Figs. 1-2: the end-to-end RCR architectural stack.
//
// Runs Phase 3 (adaptive-inertia convex QP) -> Phase 2 (discrete PSO tuning
// of the MSY3I) -> Phase 1 (tuned training, convex-relaxation adversarial
// training + layer-wise tightening report, and a QoS RRA solve through the
// same machinery), printing the consolidated report.
#include <cstdio>

#include "rcr/rcr/stack.hpp"

int main() {
  using namespace rcr::core;

  std::printf("=== E12: RCR architectural stack (Fig. 1/2 pipeline) ===\n\n");

  RcrStackConfig config;
  config.train_per_class = 16;
  config.test_per_class = 8;
  config.pso_swarm = 5;
  config.pso_iterations = 6;
  config.tuning_epochs = 10;
  config.final_epochs = 25;
  config.certify_epochs = 60;
  config.seed = 11;

  RcrStack stack(config);
  const RcrStackReport report = stack.run();

  std::printf("[phase 3] adaptive-inertia QP: closed form vs barrier solver "
              "max |diff| = %.2e\n\n", report.inertia_qp_consistency);

  std::printf("[phase 2] PSO hyperparameter tuning (%zu evaluations)\n",
              report.tuning.evaluations);
  std::printf("  best config: stem=%zu squeeze=%zu expand=%zu blocks=%zu\n",
              report.tuning.best_config.stem_filters,
              report.tuning.best_config.fire_squeeze,
              report.tuning.best_config.fire_expand,
              report.tuning.best_config.num_fire_blocks);
  std::printf("  proxy accuracy during tuning: %.3f\n\n",
              report.tuning.best_accuracy);

  std::printf("[phase 1a] final training (tuned vs default MSY3I)\n");
  std::printf("  %-10s %-10s %-10s\n", "model", "params", "test acc");
  std::printf("  %-10s %-10zu %-10.3f\n", "tuned",
              report.final_training.param_count,
              report.final_training.test_accuracy);
  std::printf("  %-10s %-10zu %-10.3f\n\n", "default",
              report.untuned_training.param_count,
              report.untuned_training.test_accuracy);

  std::printf("[phase 1b] convex-relaxation adversarial training\n");
  std::printf("  clean accuracy:            %.3f\n",
              report.certified.clean_accuracy);
  std::printf("  certified accuracy (IBP):  %.3f\n",
              report.certified.certified_accuracy_ibp);
  std::printf("  certified accuracy (CROWN):%.3f\n\n",
              report.certified.certified_accuracy_crown);

  std::printf("  layer-wise bound tightening (mean pre-activation width)\n");
  std::printf("  %-8s %-12s %-12s\n", "layer", "IBP", "CROWN");
  for (std::size_t k = 0; k < report.tightness.ibp_mean_width.size(); ++k)
    std::printf("  %-8zu %-12.4f %-12.4f\n", k,
                report.tightness.ibp_mean_width[k],
                report.tightness.crown_mean_width[k]);

  std::printf("\n  alpha layer-wise slope tightening (margin spec): "
              "%.4f -> %.4f (%zu bound evals)\n",
              report.alpha.initial_bound, report.alpha.optimized_bound,
              report.alpha.evaluations);

  std::printf("\n[phase 1c] QoS RRA through the RCR machinery\n");
  std::printf("  relaxation upper bound: %.3f\n", report.qos_relaxation_bound);
  std::printf("  exact optimum:          %.3f (feasible=%d)\n",
              report.qos_exact.sum_rate, report.qos_exact.feasible ? 1 : 0);
  std::printf("  RCR PSO solution:       %.3f (feasible=%d)\n",
              report.qos_pso.sum_rate, report.qos_pso.feasible ? 1 : 0);

  const bool shape_ok =
      report.alpha.optimized_bound >= report.alpha.initial_bound - 1e-12 &&
      report.inertia_qp_consistency < 1e-4 &&
      report.qos_relaxation_bound >= report.qos_exact.sum_rate - 1e-9 &&
      report.qos_pso.sum_rate <= report.qos_exact.sum_rate + 1e-9;
  std::printf("\nshape check: phase consistency + bound ordering = %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
