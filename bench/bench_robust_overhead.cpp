// Overhead of the rcr::robust guard plumbing on the ADMM / SDP hot paths.
//
// Three configurations per solver, all computing bit-identical iterates:
//
//   plain     guards compiled in but idle: unarmed deadline (polls without
//             reading the clock), no fault policy (one relaxed atomic load
//             per decision point).  This is the production default.
//   deadline  a far-future deadline armed: every poll pays a real monotonic
//             clock read.  This is the production *budgeted* path and the
//             one held to the <2% overhead contract.
//   chaos     a fault policy installed whose site filter matches nothing:
//             every decision point runs the injector's full enabled path
//             (mutex + site filter).  Chaos mode is a test harness, so its
//             cost is reported for information only.
//
// Prints the harness table plus per-kernel overhead lines, and writes
// BENCH_perf.json (schema in bench/harness.hpp).
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;

struct Overheads {
  double plain_ns = 0.0;
  double deadline_ns = 0.0;
  double chaos_ns = 0.0;

  double deadline_pct() const {
    return plain_ns > 0.0 ? 100.0 * (deadline_ns - plain_ns) / plain_ns : 0.0;
  }
  double chaos_pct() const {
    return plain_ns > 0.0 ? 100.0 * (chaos_ns - plain_ns) / plain_ns : 0.0;
  }
};

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();
  const int reps = smoke ? 3 : 12;
  std::printf("=== robust-layer guard overhead (threads=%zu%s) ===\n\n",
              rcr::rt::global_threads(), smoke ? ", smoke" : "");

  rcr::bench::Harness h("robust_overhead");
  Rng rng(7);

  const rcr::robust::Deadline far_deadline =
      rcr::robust::Deadline::after_seconds(3600.0);

  Overheads admm;
  {
    const std::size_t n = smoke ? 24 : 64;
    const Matrix p =
        rcr::opt::random_psd(n, n, rng) + Matrix::identity(n);
    const Vec q = rng.normal_vec(n);
    const Vec lo(n, -1.0), hi(n, 1.0);
    const std::string size = "n=" + std::to_string(n);

    rcr::opt::AdmmOptions plain;
    admm.plain_ns =
        h.run("admm_boxqp/plain", size, reps,
              [&] { rcr::opt::admm_box_qp(p, q, lo, hi, plain); })
            .ns_op;

    rcr::opt::AdmmOptions armed = plain;
    armed.budget.deadline = far_deadline;
    admm.deadline_ns =
        h.run("admm_boxqp/deadline", size, reps,
              [&] { rcr::opt::admm_box_qp(p, q, lo, hi, armed); })
            .ns_op;

    {
      rcr::robust::faults::ScopedFaults faults("seed=1,sites=zzz.*");
      admm.chaos_ns =
          h.run("admm_boxqp/chaos-idle", size, reps,
                [&] { rcr::opt::admm_box_qp(p, q, lo, hi, plain); })
              .ns_op;
    }
  }

  Overheads sdp;
  {
    const std::size_t n = smoke ? 6 : 12;
    rcr::opt::Sdp problem;
    problem.c = rcr::opt::random_psd(n, n, rng) - Matrix::identity(n);
    problem.a_eq.push_back(Matrix::identity(n));
    problem.b_eq.push_back(1.0);
    const std::string size = "n=" + std::to_string(n);

    rcr::opt::SdpOptions plain;
    plain.max_iterations = smoke ? 500 : 2000;
    sdp.plain_ns = h.run("sdp_admm/plain", size, reps,
                         [&] { rcr::opt::solve_sdp(problem, plain); })
                       .ns_op;

    rcr::opt::SdpOptions armed = plain;
    armed.budget.deadline = far_deadline;
    sdp.deadline_ns = h.run("sdp_admm/deadline", size, reps,
                            [&] { rcr::opt::solve_sdp(problem, armed); })
                          .ns_op;

    {
      rcr::robust::faults::ScopedFaults faults("seed=1,sites=zzz.*");
      sdp.chaos_ns = h.run("sdp_admm/chaos-idle", size, reps,
                           [&] { rcr::opt::solve_sdp(problem, plain); })
                         .ns_op;
    }
  }

  h.print_table();
  std::printf("\narmed-deadline overhead vs plain (the <2%% contract):\n");
  std::printf("  admm_boxqp: %+6.2f%%\n", admm.deadline_pct());
  std::printf("  sdp_admm:   %+6.2f%%\n", sdp.deadline_pct());
  std::printf("chaos-mode (idle injector) overhead, informational:\n");
  std::printf("  admm_boxqp: %+6.2f%%\n", admm.chaos_pct());
  std::printf("  sdp_admm:   %+6.2f%%\n", sdp.chaos_pct());
  if (admm.deadline_pct() >= 2.0 || sdp.deadline_pct() >= 2.0)
    std::printf("WARNING: armed-deadline overhead exceeded the 2%% budget\n");

  std::printf("\n%s\n", h.to_json().c_str());
  return h.write_json("BENCH_perf.json") ? 0 : 1;
}
