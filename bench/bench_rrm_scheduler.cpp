// A2 (ablation) -- Sec. I's RRM motivation: "Radio Resource Management (RRM)
// for connections with varied QoS requirements."
//
// Ablates the scheduling policy across 4 policies x several drops:
// throughput vs Jain fairness vs GBR violations -- the classic RRM triangle.
#include <algorithm>
#include <cstdio>

#include "rcr/qos/rrm.hpp"

int main() {
  using namespace rcr::qos;

  std::printf("=== A2: RRM scheduling policies (4 users x 8 RBs x 200 slots) "
              "===\n\n");
  std::printf("%-20s %-14s %-12s %-14s %-14s\n", "policy", "cell thpt",
              "Jain", "min user rate", "GBR violations");

  constexpr int kDrops = 4;
  double fairness[4] = {0, 0, 0, 0};
  double throughput[4] = {0, 0, 0, 0};
  int idx = 0;

  for (SchedulerPolicy policy :
       {SchedulerPolicy::kMaxRate, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kProportionalFair,
        SchedulerPolicy::kQosProportionalFair}) {
    double thpt = 0.0;
    double jain = 0.0;
    double min_rate = 0.0;
    std::size_t violations = 0;
    for (int drop = 0; drop < kDrops; ++drop) {
      RrmConfig c;
      c.num_users = 4;
      c.num_rbs = 8;
      c.num_slots = 200;
      c.seed = static_cast<std::uint64_t>(100 + drop);
      // GBR floors: modest per-user guarantees.
      c.gbr = rcr::Vec(4, 0.4);
      const RrmReport r = run_scheduler(c, policy);
      thpt += r.cell_throughput / kDrops;
      jain += r.jain_fairness / kDrops;
      min_rate +=
          *std::min_element(r.mean_rate.begin(), r.mean_rate.end()) / kDrops;
      violations += r.gbr_violations;
    }
    std::printf("%-20s %-14.2f %-12.3f %-14.3f %zu/%d\n",
                to_string(policy).c_str(), thpt, jain, min_rate, violations,
                4 * kDrops);
    fairness[idx] = jain;
    throughput[idx] = thpt;
    ++idx;
  }

  // Expected RRM triangle: max-rate wins raw throughput but is unfair;
  // round-robin is fair but wasteful; PF sits between; QoS-PF trades a
  // little PF throughput for fewer GBR violations.
  const bool shape_ok = throughput[0] >= throughput[2] &&
                        fairness[2] > fairness[0] &&
                        fairness[1] > fairness[0];
  std::printf("\nshape check: max-rate max throughput / unfair, PF and RR "
              "fairer = %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
