// Conformance-fleet benchmark for rcr::scn (DESIGN.md §14).
//
// Enumerates the declarative conformance fleet and replays every scenario
// through the verdict grader (AllocationService underneath), measuring
// grading throughput rather than solver quality: scenarios/s, p50/p99 grade
// latency, and the verdict distribution -- both counts and ratios (the
// pass_ratio is the CI drift gate against tests/scn/scn_baseline.json).
// The overload fleet (admission control + breakers + watchdog armed) is
// graded as a second block of the same BENCH_perf_scn.json.
//
// RCR_BENCH_SMOKE=1 stride-samples each fleet down to ~96 scenarios for CI
// smoke jobs; RCR_SCN_SEED/RCR_SCN_FLEET keep their usual meaning.  The run
// fails (exit 2) if any scenario in either fleet grades unsound -- the bench
// doubles as a cheap conformance gate on perf hardware.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "rcr/scn/dsl.hpp"
#include "rcr/scn/grader.hpp"

namespace {

using rcr::scn::FleetSpec;
using rcr::scn::GraderOptions;
using rcr::scn::ScenarioSpec;
using rcr::scn::ScenarioVerdict;
using rcr::scn::Verdict;

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

struct FleetRun {
  std::string name;
  std::uint64_t fleet_seed = 0;
  std::size_t scenarios = 0;
  std::size_t cell_ticks = 0;
  std::size_t counts[4] = {0, 0, 0, 0};  // pass, degraded, fail, unsound
  double scenarios_per_s = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean_points = 0.0;
  std::vector<std::string> unsound_replays;
};

FleetRun grade(const std::string& name, const FleetSpec& fleet_spec,
               bool smoke) {
  FleetRun run;
  run.name = name;
  run.fleet_seed = fleet_spec.fleet_seed();
  std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  if (smoke && fleet.size() > 96) {
    // Stride-sample so the smoke fleet still spans every axis.
    const std::size_t stride = (fleet.size() + 95) / 96;
    std::vector<ScenarioSpec> sampled;
    for (std::size_t i = 0; i < fleet.size(); i += stride)
      sampled.push_back(fleet[i]);
    fleet.swap(sampled);
  }
  run.scenarios = fleet.size();

  std::printf("=== %s fleet (threads=%zu%s): %zu scenarios, seed %llu ===\n\n",
              name.c_str(), rcr::rt::global_threads(), smoke ? ", smoke" : "",
              fleet.size(), static_cast<unsigned long long>(run.fleet_seed));

  const GraderOptions options;
  std::vector<double> grade_us;
  grade_us.reserve(fleet.size());
  double total_points = 0.0;

  const auto t0 = std::chrono::steady_clock::now();
  for (const ScenarioSpec& spec : fleet) {
    const auto s0 = std::chrono::steady_clock::now();
    const ScenarioVerdict v = rcr::scn::grade_scenario(spec, options);
    const auto s1 = std::chrono::steady_clock::now();
    grade_us.push_back(
        std::chrono::duration<double, std::micro>(s1 - s0).count());
    ++run.counts[static_cast<std::size_t>(v.verdict)];
    total_points += v.points;
    run.cell_ticks += v.cell_ticks;
    if (v.verdict == Verdict::kUnsound)
      run.unsound_replays.push_back(spec.replay_line(run.fleet_seed));
  }
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  run.scenarios_per_s =
      total_s > 0.0 ? static_cast<double>(fleet.size()) / total_s : 0.0;
  run.p50 = percentile(grade_us, 0.50);
  run.p99 = percentile(grade_us, 0.99);
  run.mean_points =
      fleet.empty() ? 0.0 : total_points / static_cast<double>(fleet.size());

  std::printf("%12s %12s %12s %12s\n", "scenarios/s", "p50(us)", "p99(us)",
              "cell-ticks");
  std::printf("%12.1f %12.1f %12.1f %12zu\n\n", run.scenarios_per_s, run.p50,
              run.p99, run.cell_ticks);
  std::printf("verdicts: pass=%zu degraded=%zu fail=%zu unsound=%zu "
              "(mean points %.1f)\n",
              run.counts[0], run.counts[1], run.counts[2], run.counts[3],
              run.mean_points);
  for (const std::string& replay : run.unsound_replays)
    std::printf("UNSOUND: %s\n", replay.c_str());
  std::printf("\n");
  return run;
}

std::string run_json(const FleetRun& r) {
  const double n = r.scenarios > 0 ? static_cast<double>(r.scenarios) : 1.0;
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"fleet\":\"%s\",\"fleet_seed\":%llu,\"scenarios\":%zu,"
      "\"cell_ticks\":%zu,\"scenarios_per_s\":%.1f,\"grade_p50_us\":%.1f,"
      "\"grade_p99_us\":%.1f,\"mean_points\":%.2f,"
      "\"verdicts\":{\"pass\":%zu,\"degraded\":%zu,\"fail\":%zu,"
      "\"unsound\":%zu},"
      "\"ratios\":{\"pass\":%.4f,\"degraded\":%.4f,\"fail\":%.4f,"
      "\"unsound\":%.4f}}",
      r.name.c_str(), static_cast<unsigned long long>(r.fleet_seed),
      r.scenarios, r.cell_ticks, r.scenarios_per_s, r.p50, r.p99,
      r.mean_points, r.counts[0], r.counts[1], r.counts[2], r.counts[3],
      static_cast<double>(r.counts[0]) / n,
      static_cast<double>(r.counts[1]) / n,
      static_cast<double>(r.counts[2]) / n,
      static_cast<double>(r.counts[3]) / n);
  return buf;
}

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();

  const FleetRun conformance =
      grade("conformance", rcr::scn::conformance_fleet(), smoke);
  const FleetRun overload = grade("overload", rcr::scn::overload_fleet(), smoke);

  // Top-level pass_ratio/unsound keep the conformance fleet as the drift
  // gate's subject; the overload fleet rides along as a second block.
  const double n = conformance.scenarios > 0
                       ? static_cast<double>(conformance.scenarios)
                       : 1.0;
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"bench\":\"scenario_fleet\",\"threads\":%zu,\"smoke\":%d,"
                "\"pass_ratio\":%.4f,\"unsound\":%zu,\"fleets\":[",
                rcr::rt::global_threads(), smoke ? 1 : 0,
                static_cast<double>(conformance.counts[0]) / n,
                conformance.counts[3] + overload.counts[3]);
  const std::string json =
      std::string(head) + run_json(conformance) + "," + run_json(overload) +
      "]}";

  std::printf("%s\n", json.c_str());
  std::FILE* f = std::fopen("BENCH_perf_scn.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  return conformance.counts[3] == 0 && overload.counts[3] == 0 ? 0 : 2;
}
