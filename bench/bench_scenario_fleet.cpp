// Conformance-fleet benchmark for rcr::scn (DESIGN.md §14).
//
// Enumerates the declarative conformance fleet and replays every scenario
// through the verdict grader (AllocationService underneath), measuring
// grading throughput rather than solver quality: scenarios/s, p50/p99 grade
// latency, and the verdict distribution.  Writes BENCH_perf_scn.json.
//
// RCR_BENCH_SMOKE=1 stride-samples the fleet down to ~96 scenarios for CI
// smoke jobs; RCR_SCN_SEED/RCR_SCN_FLEET keep their usual meaning.  The run
// fails (exit 2) if any scenario grades unsound -- the bench doubles as a
// cheap conformance gate on perf hardware.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "rcr/scn/dsl.hpp"
#include "rcr/scn/grader.hpp"

namespace {

using rcr::scn::FleetSpec;
using rcr::scn::GraderOptions;
using rcr::scn::ScenarioSpec;
using rcr::scn::ScenarioVerdict;
using rcr::scn::Verdict;

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();

  const FleetSpec fleet_spec = rcr::scn::conformance_fleet();
  const std::uint64_t fleet_seed = fleet_spec.fleet_seed();
  std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  if (smoke && fleet.size() > 96) {
    // Stride-sample so the smoke fleet still spans every axis.
    const std::size_t stride = (fleet.size() + 95) / 96;
    std::vector<ScenarioSpec> sampled;
    for (std::size_t i = 0; i < fleet.size(); i += stride)
      sampled.push_back(fleet[i]);
    fleet.swap(sampled);
  }

  std::printf("=== scenario fleet (threads=%zu%s): %zu scenarios, seed %llu ===\n\n",
              rcr::rt::global_threads(), smoke ? ", smoke" : "", fleet.size(),
              static_cast<unsigned long long>(fleet_seed));

  const GraderOptions options;
  std::size_t counts[4] = {0, 0, 0, 0};  // pass, degraded, fail, unsound
  std::vector<double> grade_us;
  grade_us.reserve(fleet.size());
  double total_points = 0.0;
  std::size_t cell_ticks = 0;
  std::vector<std::string> unsound_replays;

  const auto t0 = std::chrono::steady_clock::now();
  for (const ScenarioSpec& spec : fleet) {
    const auto s0 = std::chrono::steady_clock::now();
    const ScenarioVerdict v = rcr::scn::grade_scenario(spec, options);
    const auto s1 = std::chrono::steady_clock::now();
    grade_us.push_back(
        std::chrono::duration<double, std::micro>(s1 - s0).count());
    ++counts[static_cast<std::size_t>(v.verdict)];
    total_points += v.points;
    cell_ticks += v.cell_ticks;
    if (v.verdict == Verdict::kUnsound)
      unsound_replays.push_back(spec.replay_line(fleet_seed));
  }
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double scenarios_per_s =
      total_s > 0.0 ? static_cast<double>(fleet.size()) / total_s : 0.0;
  const double p50 = percentile(grade_us, 0.50);
  const double p99 = percentile(grade_us, 0.99);
  const double mean_points =
      fleet.empty() ? 0.0 : total_points / static_cast<double>(fleet.size());

  std::printf("%12s %12s %12s %12s\n", "scenarios/s", "p50(us)", "p99(us)",
              "cell-ticks");
  std::printf("%12.1f %12.1f %12.1f %12zu\n\n", scenarios_per_s, p50, p99,
              cell_ticks);
  std::printf("verdicts: pass=%zu degraded=%zu fail=%zu unsound=%zu "
              "(mean points %.1f)\n",
              counts[0], counts[1], counts[2], counts[3], mean_points);
  for (const std::string& replay : unsound_replays)
    std::printf("UNSOUND: %s\n", replay.c_str());

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"scenario_fleet\",\"threads\":%zu,\"smoke\":%d,"
      "\"fleet_seed\":%llu,\"scenarios\":%zu,\"cell_ticks\":%zu,"
      "\"scenarios_per_s\":%.1f,\"grade_p50_us\":%.1f,\"grade_p99_us\":%.1f,"
      "\"mean_points\":%.2f,\"verdicts\":{\"pass\":%zu,\"degraded\":%zu,"
      "\"fail\":%zu,\"unsound\":%zu}}",
      rcr::rt::global_threads(), smoke ? 1 : 0,
      static_cast<unsigned long long>(fleet_seed), fleet.size(), cell_ticks,
      scenarios_per_s, p50, p99, mean_points, counts[0], counts[1], counts[2],
      counts[3]);

  std::printf("\n%s\n", buf);
  std::FILE* f = std::fopen("BENCH_perf_scn.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "%s\n", buf);
  std::fclose(f);
  return counts[3] == 0 ? 0 : 2;
}
