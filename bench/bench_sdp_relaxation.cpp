// E5 -- Sec. IV-C (Eqs. 7-10): the QCQP -> RMP -> TMP -> SDP chain.
//
// Two measurements:
//  (a) TMP recovery: R_s = (low-rank PSD) + (diagonal) split via trace
//      minimization -- recovery succeeds while the rank is genuinely low.
//  (b) Shor SDP relaxation tightness on random *convex* QCQPs -- the
//      relaxation value matches the interior-point optimum (gap ~ 0), the
//      "QP with semidefinite Hessian is still convex" envelope of Sec. IV-C.
#include <cmath>
#include <cstdio>

#include "harness.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/opt/trace_min.hpp"

int main() {
  using namespace rcr::opt;
  using rcr::Vec;

  std::printf("=== E5a: TMP low-rank + diagonal recovery (n = 8) ===\n\n");
  std::printf("%-8s %-14s %-14s %-14s %-12s\n", "rank", "rc rel err",
              "rn max err", "rank match", "iterations");
  bool tmp_ok = true;
  for (std::size_t rank = 1; rank <= 4; ++rank) {
    double rc_err = 0.0;
    double rn_err = 0.0;
    std::size_t matches = 0;
    std::size_t iters = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      rcr::num::Rng rng(100 * rank + static_cast<unsigned>(t));
      const TraceMinInstance inst =
          random_trace_min_instance(8, rank, 0.5, 2.0, rng);
      const TraceMinResult r = solve_trace_min(inst.r_s);
      const RecoveryReport rep = evaluate_recovery(inst, r, 1e-4);
      rc_err += rep.rc_error / trials;
      rn_err += rep.rn_error / trials;
      if (rep.rank_recovered) ++matches;
      iters += r.iterations / trials;
    }
    std::printf("%-8zu %-14.4f %-14.4f %zu/%-12d %-12zu\n", rank, rc_err,
                rn_err, matches, trials, iters);
    if (rank <= 2 && rc_err > 0.05) tmp_ok = false;
  }

  std::printf("\n=== E5b: Shor SDP relaxation tightness on convex QCQPs ===\n\n");
  std::printf("%-8s %-8s %-14s %-14s %-12s\n", "n", "m_ineq", "exact value",
              "SDP bound", "rel gap");
  bool shor_ok = true;
  for (std::size_t n : {2u, 3u, 4u}) {
    rcr::num::Rng rng(7 + n);
    const Qcqp prob = random_convex_qcqp(n, 2, 0, rng);
    const QcqpResult exact = solve_qcqp_barrier(prob);
    SdpOptions opts;
    opts.max_iterations = 30000;
    const ShorBound bound = shor_lower_bound(prob, opts);
    const double gap = (exact.value - bound.bound) /
                       (1.0 + std::abs(exact.value));
    std::printf("%-8zu %-8d %-14.5f %-14.5f %-12.2e\n", n, 2, exact.value,
                bound.bound, gap);
    if (!exact.converged || std::abs(gap) > 0.05) shor_ok = false;
  }

  // Nonconvex witness: the relaxation is a strict lower bound.
  {
    Qcqp prob;
    prob.objective.p = -2.0 * Matrix::identity(2);
    prob.objective.q = {0.0, 0.0};
    for (std::size_t i = 0; i < 2; ++i) {
      QuadraticForm c;
      c.p = Matrix(2, 2);
      c.p(i, i) = 2.0;
      c.q = {0.0, 0.0};
      c.r = -1.0;
      prob.constraints.push_back(c);
    }
    const ShorBound bound = shor_lower_bound(prob);
    std::printf("\nnonconvex witness (max ||x||^2 in box): true optimum -2, "
                "SDP bound %.4f (strict lower bound: %s)\n",
                bound.bound, bound.bound <= -2.0 + 1e-2 ? "yes" : "NO");
  }

  std::printf("\nshape check: TMP recovers low ranks = %s, convex Shor gap "
              "~ 0 = %s\n", tmp_ok ? "yes" : "NO", shor_ok ? "yes" : "NO");

  // Perf tracking: the ADMM SDP solve and the barrier QCQP solve, with
  // ns/op and allocs/op recorded to BENCH_perf_sdp.json.
  {
    const bool smoke = rcr::bench::smoke_mode();
    rcr::bench::Harness h("sdp_relaxation");
    const int reps = smoke ? 2 : 5;
    rcr::num::Rng rng(11);
    const Qcqp prob = random_convex_qcqp(smoke ? 3 : 6, 3, 0, rng);
    const Sdp sdp = shor_relaxation(prob);
    SdpOptions opts;
    opts.max_iterations = smoke ? 500 : 3000;
    SdpResult sr;
    h.run("solve_sdp", "n" + std::to_string(sdp.dim()), reps,
          [&] { sr = solve_sdp(sdp, opts); });
    QcqpResult qr;
    h.run("qcqp_barrier", "n" + std::to_string(prob.dim()), reps,
          [&] { qr = solve_qcqp_barrier(prob); });
    std::printf("\n");
    h.print_table();
    if (!h.write_json("BENCH_perf_sdp.json")) return 1;
  }
  return (tmp_ok && shor_ok) ? 0 : 1;
}
