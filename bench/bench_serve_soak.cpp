// Soak benchmark for the rcr::serve allocation service (DESIGN.md §13).
//
// Replays the same diurnal block-fading workload through three service
// configurations:
//
//   cold   warm start off, cache off -- every cell-tick solves from scratch;
//          the iteration baseline.
//   warm   warm start on, cache off -- every cell-tick still solves, but
//          resumes from the cell's previous ADMM state.  Inside a coherence
//          interval the problem is unchanged and the warm solve terminates
//          in a couple of iterations; on fading-refresh ticks the AR(1)
//          drift keeps the warm state near the new fixed point.
//   full   warm start + solution cache -- the production configuration;
//          unchanged problems skip the solver entirely via the sharded LRU.
//   learned  warm start on, cache off, plus the rcr::learn warm-start head
//          armed from the checked-in golden artifact (override with
//          RCR_LEARN_ARTIFACT): on fading-refresh ticks -- where the
//          carried state is stale -- the MLP + unrolled-ADMM prediction
//          replaces it whenever its projected-gradient residual is lower.
//
// Prints a per-leg table and writes BENCH_perf_serve.json with ticks/s,
// p50/p99 tick latency, warm-vs-cold iteration counts and their ratio
// (the acceptance bar is < 0.5), the cache hit rate, and the final-tick
// solution hash (bit-exact across RCR_THREADS settings).  RCR_BENCH_SMOKE=1
// shrinks the fleet and tick count for CI smoke jobs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <cstdlib>

#include "harness.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/serve/service.hpp"

namespace {

using rcr::serve::AllocationService;
using rcr::serve::BrownoutState;
using rcr::serve::DiurnalWorkload;
using rcr::serve::ServiceConfig;
using rcr::serve::TickReport;
using rcr::serve::WorkloadConfig;

struct LegResult {
  std::string name;
  double ticks_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t iterations = 0;     ///< ADMM iterations over ticks >= 1.
  std::uint64_t warm_accepted = 0;  ///< Solves that reused warm state.
  std::uint64_t learned_starts = 0;  ///< Solves seeded by the learned head.
  std::uint64_t cache_hits = 0;
  std::uint64_t degraded = 0;
  double cache_hit_rate = 0.0;
  double final_sum_rate = 0.0;
  std::uint64_t solution_hash = 0;  ///< Final tick's determinism witness.
  // Overload-control telemetry (all zero on legs with the layer off).
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t brownout_transitions = 0;
  std::uint64_t dwell_normal = 0;    ///< Ticks spent in each brownout state.
  std::uint64_t dwell_brownout = 0;
  std::uint64_t dwell_shed = 0;
};

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

LegResult run_leg(const std::string& name, const ServiceConfig& sc,
                  const WorkloadConfig& wc, std::size_t ticks) {
  LegResult r;
  r.name = name;
  DiurnalWorkload workload(wc);
  AllocationService service(sc, wc.num_cells);
  std::vector<double> latency_us;
  latency_us.reserve(ticks);
  double total_s = 0.0;
  for (std::size_t t = 0; t < ticks; ++t) {
    workload.advance(t);
    const TickReport rep = service.tick(t, workload);
    latency_us.push_back(rep.tick_seconds * 1e6);
    total_s += rep.tick_seconds;
    // Tick 0 is a cold solve in every leg; excluding it from the iteration
    // sums keeps the warm/cold ratio a pure steady-state comparison.
    if (t > 0) {
      r.iterations += rep.total_iterations;
      r.warm_accepted += rep.warm_accepted;
      r.learned_starts += rep.learned_starts;
    }
    r.cache_hits += rep.cache_hits;
    r.degraded += rep.degraded;
    r.admitted += rep.admitted;
    r.deferred += rep.deferred;
    r.shed += rep.shed;
    r.quarantined += rep.quarantined;
    if (t + 1 == ticks) {
      r.final_sum_rate = rep.sum_rate;
      r.solution_hash = rep.solution_hash;
    }
  }
  r.ticks_per_s = total_s > 0.0 ? static_cast<double>(ticks) / total_s : 0.0;
  r.p50_us = percentile(latency_us, 0.50);
  r.p99_us = percentile(latency_us, 0.99);
  r.cache_hit_rate = service.cache_stats().hit_rate();
  r.brownout_transitions = service.brownout().transitions();
  r.dwell_normal = service.brownout().dwell(BrownoutState::kNormal);
  r.dwell_brownout = service.brownout().dwell(BrownoutState::kBrownout);
  r.dwell_shed = service.brownout().dwell(BrownoutState::kShed);
  return r;
}

std::string leg_json(const LegResult& r) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ticks_per_s\":%.1f,\"p50_us\":%.1f,"
                "\"p99_us\":%.1f,\"iterations\":%llu,\"warm_accepted\":%llu,"
                "\"learned_starts\":%llu,"
                "\"cache_hits\":%llu,\"degraded\":%llu,"
                "\"cache_hit_rate\":%.4f,\"final_sum_rate\":%.6f,"
                "\"solution_hash\":\"%llu\","
                "\"admitted\":%llu,\"deferred\":%llu,\"shed\":%llu,"
                "\"quarantined\":%llu,\"brownout_transitions\":%llu,"
                "\"brownout_dwell\":{\"normal\":%llu,\"brownout\":%llu,"
                "\"shed\":%llu}}",
                r.name.c_str(), r.ticks_per_s, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.iterations),
                static_cast<unsigned long long>(r.warm_accepted),
                static_cast<unsigned long long>(r.learned_starts),
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.degraded),
                r.cache_hit_rate, r.final_sum_rate,
                static_cast<unsigned long long>(r.solution_hash),
                static_cast<unsigned long long>(r.admitted),
                static_cast<unsigned long long>(r.deferred),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.brownout_transitions),
                static_cast<unsigned long long>(r.dwell_normal),
                static_cast<unsigned long long>(r.dwell_brownout),
                static_cast<unsigned long long>(r.dwell_shed));
  return buf;
}

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();

  WorkloadConfig wc;
  wc.num_cells = smoke ? 4 : 16;
  wc.num_rbs = smoke ? 6 : 12;
  wc.min_users = 2;
  wc.peak_users = smoke ? 4 : 8;
  wc.period_ticks = smoke ? 16 : 128;
  wc.coherence_ticks = 4;  // block fading: the warm/cache savings lever
  wc.seed = 42;
  const std::size_t ticks = smoke ? 32 : 384;

  std::printf(
      "=== serve soak (threads=%zu%s): %zu cells, %zu RBs, %zu ticks, "
      "coherence %zu ===\n\n",
      rcr::rt::global_threads(), smoke ? ", smoke" : "", wc.num_cells,
      wc.num_rbs, ticks, wc.coherence_ticks);

  // Arm metrics for the whole soak so the JSON carries the serve telemetry
  // (cache counters, warm accept/reject, fallback depth) next to the timings.
  rcr::obs::ScopedMetrics metrics;

  ServiceConfig cold_cfg;
  cold_cfg.warm_start = false;
  cold_cfg.cache_enabled = false;
  ServiceConfig warm_cfg;
  warm_cfg.cache_enabled = false;
  ServiceConfig full_cfg;  // warm + cache: the production configuration

  // Learned leg: the warm leg plus the golden warm-start head.  The service
  // constructor loads and arms the artifact; a load failure leaves the head
  // off and the leg degenerates to the warm leg (flagged below).
  ServiceConfig learned_cfg;
  learned_cfg.cache_enabled = false;
  learned_cfg.learned.enabled = true;
  const char* artifact_env = std::getenv("RCR_LEARN_ARTIFACT");
  learned_cfg.learned.artifact_path =
      (artifact_env != nullptr && artifact_env[0] != '\0') ? artifact_env
                                                           : RCR_LEARN_GOLDEN;

  // Overload-survival leg: the full config plus the whole self-healing
  // layer armed -- slice-aware admission at half the fleet per tick, the
  // brownout controller, per-solver breakers, and the output watchdog.
  // Under a plain soak the layer mostly idles; under the chaos-soak fault
  // storm it is the thing being measured.
  ServiceConfig overload_cfg;
  overload_cfg.admission.enabled = true;
  overload_cfg.admission.max_solves_per_tick = wc.num_cells / 2;
  overload_cfg.admission.cell_slices = {rcr::qos::ServiceClass::kUrllc,
                                        rcr::qos::ServiceClass::kEmbb,
                                        rcr::qos::ServiceClass::kMmtc};
  overload_cfg.brownout.enabled = true;
  overload_cfg.breaker.enabled = true;
  overload_cfg.watchdog.enabled = true;

  const LegResult cold = run_leg("cold", cold_cfg, wc, ticks);
  const LegResult warm = run_leg("warm", warm_cfg, wc, ticks);
  const LegResult full = run_leg("full", full_cfg, wc, ticks);
  const LegResult learned = run_leg("learned", learned_cfg, wc, ticks);
  const LegResult overload = run_leg("overload", overload_cfg, wc, ticks);

  std::printf("%-8s %12s %10s %10s %12s %10s %10s\n", "leg", "ticks/s",
              "p50(us)", "p99(us)", "iterations", "hits", "hit-rate");
  for (const LegResult* r : {&cold, &warm, &full, &learned, &overload}) {
    std::printf("%-8s %12.1f %10.1f %10.1f %12llu %10llu %9.1f%%\n",
                r->name.c_str(), r->ticks_per_s, r->p50_us, r->p99_us,
                static_cast<unsigned long long>(r->iterations),
                static_cast<unsigned long long>(r->cache_hits),
                100.0 * r->cache_hit_rate);
  }

  const double ratio =
      cold.iterations > 0
          ? static_cast<double>(warm.iterations) /
                static_cast<double>(cold.iterations)
          : 0.0;
  const double learned_ratio =
      cold.iterations > 0
          ? static_cast<double>(learned.iterations) /
                static_cast<double>(cold.iterations)
          : 0.0;
  std::printf("\nwarm/cold iteration ratio: %.3f (bar: < 0.5)\n", ratio);
  std::printf("learned/cold iteration ratio: %.3f (target: <= 0.30, "
              "learned starts: %llu)\n",
              learned_ratio,
              static_cast<unsigned long long>(learned.learned_starts));
  if (learned.learned_starts == 0)
    std::printf("WARNING: learned head never fired (artifact missing or "
                "load failed?)\n");
  std::printf("full-leg cache hit rate:   %.1f%%\n",
              100.0 * full.cache_hit_rate);
  std::printf("solution hash (cold leg, final tick): %llu\n",
              static_cast<unsigned long long>(cold.solution_hash));
  std::printf(
      "overload leg: admitted=%llu deferred=%llu shed=%llu quarantined=%llu "
      "brownout dwell n/b/s=%llu/%llu/%llu (%llu transitions)\n",
      static_cast<unsigned long long>(overload.admitted),
      static_cast<unsigned long long>(overload.deferred),
      static_cast<unsigned long long>(overload.shed),
      static_cast<unsigned long long>(overload.quarantined),
      static_cast<unsigned long long>(overload.dwell_normal),
      static_cast<unsigned long long>(overload.dwell_brownout),
      static_cast<unsigned long long>(overload.dwell_shed),
      static_cast<unsigned long long>(overload.brownout_transitions));
  if (ratio >= 0.5)
    std::printf("WARNING: warm/cold iteration ratio exceeded the 0.5 bar\n");

  std::string json = "{\"bench\":\"serve_soak\",\"threads\":" +
                     std::to_string(rcr::rt::global_threads()) +
                     ",\"smoke\":" + (smoke ? std::string("1") : "0");
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"config\":{\"cells\":%zu,\"rbs\":%zu,\"ticks\":%zu,"
                  "\"coherence_ticks\":%zu,\"seed\":%llu}",
                  wc.num_cells, wc.num_rbs, ticks, wc.coherence_ticks,
                  static_cast<unsigned long long>(wc.seed));
    json += buf;
  }
  json += ",\"legs\":[" + leg_json(cold) + "," + leg_json(warm) + "," +
          leg_json(full) + "," + leg_json(learned) + "," +
          leg_json(overload) + "]";
  {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  ",\"warm_iterations\":%llu,\"cold_iterations\":%llu,"
                  "\"warm_cold_iteration_ratio\":%.4f,"
                  "\"learned_iterations\":%llu,"
                  "\"learned_cold_iteration_ratio\":%.4f,"
                  "\"learned_starts\":%llu,"
                  "\"cache_hit_rate\":%.4f",
                  static_cast<unsigned long long>(warm.iterations),
                  static_cast<unsigned long long>(cold.iterations), ratio,
                  static_cast<unsigned long long>(learned.iterations),
                  learned_ratio,
                  static_cast<unsigned long long>(learned.learned_starts),
                  full.cache_hit_rate);
    json += buf;
  }
  if (rcr::obs::metrics_enabled()) {
    json += ",\"metrics\":[";
    const std::vector<rcr::obs::MetricSample> snap =
        rcr::obs::metrics_snapshot();
    char buf[256];
    for (std::size_t i = 0; i < snap.size(); ++i) {
      const rcr::obs::MetricSample& m = snap[i];
      std::string name = m.name;
      if (!m.label_key.empty())
        name += "{" + m.label_key + "=" + m.label_value + "}";
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%.17g",
                    i == 0 ? "" : ",", name.c_str(), m.kind.c_str(), m.value);
      json += buf;
      if (m.kind == "histogram")
        json += ",\"count\":" + std::to_string(m.count);
      json += "}";
    }
    json += "]";
  }
  json += "}";

  std::printf("\n%s\n", json.c_str());
  std::FILE* f = std::fopen("BENCH_perf_serve.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  // Under an injected fault storm (the chaos-soak job) degraded solves blow
  // up the warm iteration count by design; the ratio bar only gates clean
  // runs.  The storm run's gate is the overload telemetry staying finite,
  // which run_leg already asserts by completing.
  if (rcr::robust::faults::enabled()) {
    std::printf("fault storm active (%s): warm/cold ratio gate skipped\n",
                rcr::robust::faults::replay_spec().c_str());
    return 0;
  }
  return ratio < 0.5 ? 0 : 2;
}
