// SIMD kernel layer + structure-exploiting solver fast paths.
//
// Two layers of measurement:
//
//   kernels   rcr::rt::simd primitives (dot, axpy, matmul, matvec, FFT)
//             timed on the active dispatch table and again under
//             ForceScalarGuard -- the intra-run vectorization gain.
//   solvers   the obs-bench ADMM / SDP workload (same Rng(7) draw, same
//             sizes) in its default configuration and in the opt-in fast
//             configurations: mixed-precision refinement for the box-QP,
//             and structured KKT + warm-started thresholded PSD projection
//             + workspace reuse for the SDP.
//
// When a previous harness JSON is reachable (RCR_BENCH_BASELINE, default
// BENCH_perf_obs.json), matching records gain "speedup_vs" against it; the
// headline sdp_admm/fast record is additionally compared against the
// sdp_admm/off baseline (or this run's own off measurement when no file is
// present) -- the number the >= 4x acceptance gate reads.  Writes
// BENCH_perf_simd.json.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/rt/simd.hpp"
#include "rcr/signal/fft.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;
namespace simd = rcr::rt::simd;

// Kernel timings should price the arithmetic, not the dispatch telemetry.
class DisarmObs {
 public:
  DisarmObs()
      : metrics_(rcr::obs::metrics_enabled()),
        trace_(rcr::obs::trace_enabled()) {
    rcr::obs::set_metrics_enabled(false);
    rcr::obs::set_trace_enabled(false);
  }
  ~DisarmObs() {
    rcr::obs::set_metrics_enabled(metrics_);
    rcr::obs::set_trace_enabled(trace_);
  }

 private:
  bool metrics_;
  bool trace_;
};

volatile double g_sink = 0.0;

}  // namespace

int main() {
  const bool smoke = rcr::bench::smoke_mode();
  const int reps = smoke ? 3 : 12;
  std::printf("=== simd kernels (path=%s, threads=%zu%s) ===\n\n",
              simd::path_name(), rcr::rt::global_threads(),
              smoke ? ", smoke" : "");

  rcr::bench::Harness h("simd_kernels");
  const char* base_env = std::getenv("RCR_BENCH_BASELINE");
  const std::string base_path =
      base_env != nullptr ? base_env : "BENCH_perf_obs.json";
  if (h.set_baseline(base_path, base_path))
    std::printf("baseline: %s\n\n", base_path.c_str());

  DisarmObs off;
  Rng rng(7);

  // --- kernel layer: active table vs forced-scalar -----------------------
  {
    const std::size_t len = smoke ? 1024 : 4096;
    const Vec a = rng.normal_vec(len);
    const Vec b = rng.normal_vec(len);
    Vec c(len, 0.0);
    const std::string size = "len=" + std::to_string(len);
    const int kreps = reps * 64;

    const auto dot = [&] {
      g_sink = simd::active().dot_seq(0.0, a.data(), b.data(), len);
    };
    const auto axpy = [&] {
      simd::active().axpy(1.0 + 1e-9, a.data(), c.data(), len);
    };
    h.run("dot/simd", size, kreps, dot);
    h.run("axpy/simd", size, kreps, axpy);
    {
      simd::ForceScalarGuard scalar;
      h.run("dot/scalar", size, kreps, dot);
      h.run("axpy/scalar", size, kreps, axpy);
    }
  }
  {
    const std::size_t n = smoke ? 48 : 96;
    Rng mrng(11);
    const Matrix ma = rcr::opt::random_psd(n, n, mrng);
    const Matrix mb = rcr::opt::random_psd(n, n, mrng);
    Matrix mc(n, n);
    Vec x = mrng.normal_vec(n);
    Vec y(n, 0.0);
    const std::string size = "n=" + std::to_string(n);

    const auto matmul = [&] { rcr::num::multiply_into(ma, mb, mc); };
    const auto matvec = [&] { rcr::num::matvec_into(ma, x, y); };
    h.run("matmul/simd", size, reps, matmul);
    h.run("matvec/simd", size, reps * 16, matvec);
    {
      simd::ForceScalarGuard scalar;
      h.run("matmul/scalar", size, reps, matmul);
      h.run("matvec/scalar", size, reps * 16, matvec);
    }
  }
  {
    const std::size_t n = smoke ? 1024 : 8192;
    Rng frng(13);
    rcr::sig::CVec sig(n);
    for (auto& v : sig) v = {frng.normal(), frng.normal()};
    rcr::sig::FftWorkspace fws;
    rcr::sig::CVec work;
    const std::string size = "n=" + std::to_string(n);

    const auto fft = [&] {
      work = sig;
      rcr::sig::fft_inplace(work, fws);
    };
    h.run("fft/simd", size, reps * 4, fft);
    {
      simd::ForceScalarGuard scalar;
      h.run("fft/scalar", size, reps * 4, fft);
    }
  }

  // --- solver layer: the obs-bench workload, default vs fast configs -----
  // Same generator stream as bench_obs_overhead (Rng(7), box-QP drawn
  // first) so the sdp_admm/off record here is directly comparable to the
  // pre-optimization baseline JSON.
  {
    const std::size_t n = smoke ? 24 : 64;
    const Matrix p = rcr::opt::random_psd(n, n, rng) + Matrix::identity(n);
    const Vec q = rng.normal_vec(n);
    const Vec lo(n, -1.0), hi(n, 1.0);
    const std::string size = "n=" + std::to_string(n);

    h.run("admm_boxqp/off", size, reps,
          [&] { rcr::opt::admm_box_qp(p, q, lo, hi); });
    rcr::opt::AdmmOptions mixed;
    mixed.mixed_precision = true;
    h.run("admm_boxqp/mixed", size, reps,
          [&] { rcr::opt::admm_box_qp(p, q, lo, hi, mixed); });
  }
  {
    const std::size_t n = smoke ? 6 : 12;
    rcr::opt::Sdp problem;
    problem.c = rcr::opt::random_psd(n, n, rng) - Matrix::identity(n);
    problem.a_eq.push_back(Matrix::identity(n));
    problem.b_eq.push_back(1.0);
    const std::string size = "n=" + std::to_string(n);
    rcr::opt::SdpOptions options;
    options.max_iterations = smoke ? 500 : 2000;

    const rcr::bench::Record& offrec =
        h.run("sdp_admm/off", size, reps,
              [&] { rcr::opt::solve_sdp(problem, options); });
    const double off_ns = offrec.ns_op;

    rcr::opt::SdpOptions fast = options;
    fast.exploit_structure = true;
    fast.warm_start_projection = true;
    fast.projection_rotation_threshold = 1e-9;
    rcr::opt::SdpWorkspace ws;
    bool converged = true;
    rcr::bench::Record& fastrec =
        h.run("sdp_admm/fast", size, reps, [&] {
          converged = rcr::opt::solve_sdp(problem, fast, ws).converged;
        });
    // The acceptance gate compares the combined fast path against the
    // pre-optimization default; fall back to this run's own off record
    // when no baseline file is attached.
    double gate_base = 0.0;
    for (const auto& e : rcr::bench::load_baseline(base_path))
      if (e.kernel == "sdp_admm/off" && e.size == size) gate_base = e.ns_op;
    fastrec.baseline_ns = gate_base > 0.0 ? gate_base : off_ns;

    std::printf("sdp_admm/fast %s: %.2fx vs baseline %.0f ns/op, "
                "%.1f allocs/op, converged=%d\n\n",
                size.c_str(), fastrec.speedup_vs(), fastrec.baseline_ns,
                fastrec.allocs_op, converged ? 1 : 0);
  }

  h.print_table();
  std::printf("\n%s\n", h.to_json().c_str());
  return h.write_json("BENCH_perf_simd.json") ? 0 : 1;
}
