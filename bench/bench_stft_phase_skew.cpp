// E3 -- Sec. IV-B (Eqs. 5-6): phase skew between the time-invariant and
// simplified time-invariant STFT conventions vs stored window length, and
// its exact removal by point-wise multiplication with the a-priori phase-
// factor matrix.
//
// Paper shape: the skew (delay + per-bin phase rotation) depends on the
// stored window length L_g and "would have severe effects on any ensuing
// phase analysis"; conversion between conventions equates to a point-wise
// multiplication with a matrix of phase factors.
#include <cstdio>

#include "harness.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/waveform.hpp"

int main() {
  using namespace rcr::sig;
  using rcr::Vec;

  std::printf("=== E3: STFT phase skew vs stored window length ===\n\n");

  rcr::num::Rng rng(13);
  Vec signal = chirp(512, 3.0, 50.0, 256.0);
  for (double& v : signal) v += rng.normal(0.0, 0.02);

  std::printf("%-8s %-16s %-16s %-16s\n", "L_g", "raw skew (rad)",
              "pred. bin-1 skew", "resid. after fix");
  bool shape_ok = true;
  double prev_skew = 0.0;
  for (std::size_t lg : {16u, 24u, 32u, 48u, 64u}) {
    StftConfig sti;
    sti.window = make_window(WindowKind::kHann, lg);
    sti.hop = 8;
    sti.fft_size = 64;
    sti.convention = StftConvention::kSimplifiedTimeInvariant;
    StftConfig ti = sti;
    ti.convention = StftConvention::kTimeInvariant;

    const TfGrid g_sti = stft(signal, sti);
    const TfGrid g_ti = stft(signal, ti);
    const double floor = 1e-5 * g_ti.max_magnitude();
    const double raw = max_phase_discrepancy(g_sti, g_ti, floor);

    // Predicted per-bin skew at bin 1: 2*pi*floor(Lg/2)/M.
    const double predicted =
        2.0 * 3.14159265358979323846 * static_cast<double>(lg / 2) / 64.0;

    // Correction: STI on the Lg/2-delayed signal, times the phase matrix,
    // equals TI exactly.
    const Vec delayed =
        circular_shift(signal, static_cast<std::ptrdiff_t>(lg / 2));
    const TfGrid fixed =
        convert_sti_to_ti(stft(delayed, sti), lg, sti.fft_size);
    const double resid =
        TfGrid::max_abs_diff(fixed, g_ti) / (1.0 + g_ti.max_magnitude());

    std::printf("%-8zu %-16.4f %-16.4f %-16.3e\n", lg, raw, predicted, resid);
    if (resid > 1e-10) shape_ok = false;
    if (lg > 16 && predicted <= prev_skew) shape_ok = false;
    prev_skew = predicted;
  }

  std::printf("\nshape check: skew grows with L_g and the phase-factor "
              "matrix removes it to machine precision = %s\n",
              shape_ok ? "yes" : "NO");

  // Perf tracking: forward STFT in both conventions through the in-place
  // frame pipeline, recorded to BENCH_perf_stft_phase.json.
  {
    const bool smoke = rcr::bench::smoke_mode();
    rcr::bench::Harness h("stft_phase_skew");
    const int reps = smoke ? 2 : 5;
    StftConfig cfg;
    cfg.window = make_window(WindowKind::kHann, 64);
    cfg.hop = 16;
    cfg.fft_size = 64;
    TfGrid grid;
    h.run("stft_into_sti", "64x" + std::to_string(signal.size()), reps,
          [&] { stft_into(signal, cfg, grid); });
    cfg.convention = StftConvention::kTimeInvariant;
    h.run("stft_into_ti", "64x" + std::to_string(signal.size()), reps,
          [&] { stft_into(signal, cfg, grid); });
    std::printf("\n");
    h.print_table();
    if (!h.write_json("BENCH_perf_stft_phase.json")) return 1;
  }
  return shape_ok ? 0 : 1;
}
