// E2 -- Sec. IV-A: STFT signature consistency across library versions.
//
// A caller using the Librosa-consistent signature (n_fft, hop, window)
// against a pre-v0.4.1-style library gets outputs with the wrong bin count
// and diverging values; after the signature change the outputs agree to
// machine precision.  Paper shape: pre-v0.4.1 "can cause errors or return
// incorrect results"; post-change, consistent.
#include <cstdio>

#include "rcr/signal/variants.hpp"
#include "rcr/signal/waveform.hpp"

int main() {
  using namespace rcr::sig;
  using rcr::Vec;

  std::printf("=== E2: STFT signature consistency (pre/post v0.4.1) ===\n\n");

  rcr::num::Rng rng(1);
  Vec signal = chirp(512, 2.0, 60.0, 256.0);
  for (double& v : signal) v += rng.normal(0.0, 0.02);

  const SimulatedLibrary modern("torch-0.4.1-sim", Defect::kNone);
  const SimulatedLibrary legacy("torch-0.3-sim", Defect::kLegacySignature);

  std::printf("%-10s %-10s %-12s %-12s %-14s\n", "n_fft", "win_len",
              "bins(mod)", "bins(leg)", "max|diff|");
  bool any_mismatch = false;
  for (std::size_t win_len : {32u, 48u, 64u}) {
    for (std::size_t n_fft : {64u, 128u}) {
      const Vec window = make_window(WindowKind::kHann, win_len);
      const TfGrid a = modern.stft(signal, n_fft, 16, window);
      const TfGrid b = legacy.stft(signal, n_fft, 16, window);
      const double diff = TfGrid::max_abs_diff(a, b);
      std::printf("%-10zu %-10zu %-12zu %-12zu %-14.3e\n", n_fft, win_len,
                  a.bins(), b.bins(), diff);
      if (a.bins() != b.bins() || diff > 1e-9) any_mismatch = true;
    }
  }

  // Two modern libraries agree exactly.
  const SimulatedLibrary modern2("librosa-sim", Defect::kNone);
  const Vec window = make_window(WindowKind::kHann, 48);
  const double agree = TfGrid::max_abs_diff(
      modern.stft(signal, 64, 16, window), modern2.stft(signal, 64, 16, window));
  std::printf("\nconsistent-signature libraries max|diff| = %.3e\n", agree);
  std::printf("shape check: legacy signature diverges = %s, "
              "consistent signatures agree = %s\n",
              any_mismatch ? "yes" : "NO", agree < 1e-12 ? "yes" : "NO");
  return (any_mismatch && agree < 1e-12) ? 0 : 1;
}
