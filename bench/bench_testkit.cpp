// Testkit overhead characterization: the property driver, the shrinking
// loop, golden signature hashing, and one full fuzz-harness invocation.
// These numbers bound how much head-room the property suites have inside a
// CI time budget -- e.g. cases/s for a matmul differential property decides
// how many cases the default CheckOptions can afford.
#include <cstdio>

#include "harness.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/testkit/testkit.hpp"

int main() {
  using namespace rcr;
  namespace tk = rcr::testkit;

  std::printf("=== testkit overhead: property driver / shrink / golden / "
              "fuzz ===\n\n");

  const bool smoke = bench::smoke_mode();
  const int reps = smoke ? 3 : 20;
  bench::Harness h("testkit");

  // Property driver throughput on a trivially-true property: measures pure
  // generator + bookkeeping overhead per case.
  {
    tk::CheckOptions opts;
    opts.cases = smoke ? 20 : 200;
    opts.honor_replay_env = false;
    opts.write_artifact = false;
    h.run("check/gen_vec(64)", std::to_string(opts.cases) + " cases", reps,
          [&] {
            const auto result = tk::check<Vec>(
                "bench vec", tk::gen_vec(1, 64, -1.0, 1.0),
                [](const Vec&) { return std::string(); }, opts);
            if (!result.ok) std::abort();
          });
  }

  // Differential property: multiply vs multiply_into on generated squares.
  {
    tk::CheckOptions opts;
    opts.cases = smoke ? 10 : 50;
    opts.honor_replay_env = false;
    opts.write_artifact = false;
    h.run("check/diff_matmul(16)", std::to_string(opts.cases) + " cases",
          reps, [&] {
            const auto result = tk::check<num::Matrix>(
                "bench matmul", tk::gen_matrix(2, 16),
                [](const num::Matrix& m) {
                  num::Matrix out;
                  num::multiply_into(m, m, out);
                  return tk::expect_bits(m * m, out, "product");
                },
                opts);
            if (!result.ok) std::abort();
          });
  }

  // Shrinking cost: a property that always fails forces the full greedy
  // descent from every starting case.
  {
    tk::CheckOptions opts;
    opts.cases = 1;
    opts.honor_replay_env = false;
    opts.write_artifact = false;
    h.run("shrink/vec(64) descent", "1 failing case", reps, [&] {
      const auto result = tk::check<Vec>(
          "bench shrink", tk::gen_vec(64, 64, -1.0, 1.0),
          [](const Vec& v) {
            return v.size() >= 1 ? "always fails" : std::string();
          },
          opts);
      if (result.ok) std::abort();
    });
  }

  // Golden signature hashing over a realistic STFT grid.
  {
    sig::StftConfig config;
    config.window = sig::make_window(sig::WindowKind::kHann, 64);
    config.hop = 16;
    config.fft_size = 64;
    const Vec signal = tk::canonical_signal(smoke ? 512 : 4096, 1);
    const sig::TfGrid grid = sig::stft(signal, config);
    h.run("golden/signature_hash",
          std::to_string(grid.data().size()) + " coeffs", reps,
          [&] {
            (void)tk::signature_hash(
                reinterpret_cast<const double*>(grid.data().data()),
                grid.data().size() * 2);
          });
  }

  // One full fuzz-harness invocation on a mid-sized corpus entry.
  {
    const auto corpus = tk::builtin_corpus();
    const auto& entry = corpus.back();
    h.run("fuzz/fft_stft_one", std::to_string(entry.size()) + " bytes", reps,
          [&] {
            if (!tk::fuzz_fft_stft_one(entry.data(), entry.size()).empty())
              std::abort();
          });
  }

  h.print_table();
  if (!h.write_json("BENCH_perf_testkit.json"))
    std::fprintf(stderr, "warning: could not write BENCH_perf_testkit.json\n");
  std::printf("\nwrote BENCH_perf_testkit.json\n");
  return 0;
}
