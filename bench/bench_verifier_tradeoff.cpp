// E8 -- Sec. II-B-2: exact vs relaxed verification tradeoff.
//
// Paper shapes:
//  - exact verifiers (BnB/MIP-style) have "no false positives or false
//    negatives" but solve NP-hard problems -> slow;
//  - relaxed verifiers (convex relaxation) "can be more quickly resolved and
//    are more scalable, but their effectiveness (false negative rate)
//    degrades quickly" as the perturbation grows.
//
// We train a small robust classifier, then for a sweep of epsilon measure:
// verified fraction (relaxed IBP / relaxed CROWN / exact BnB), the relaxed
// false-negative rate (robust per exact verifier but missed by the
// relaxation), and wall-clock per query via google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rcr/verify/attack.hpp"
#include "rcr/verify/certified.hpp"
#include "rcr/verify/verifier.hpp"

namespace {

using namespace rcr::verify;

struct Fixture {
  CertifiedTrainer trainer{{2, 12, 12, 3}, 11};
  std::vector<LabeledPoint> test;

  Fixture() {
    rcr::num::Rng rng(4);
    const auto train = make_blob_dataset(3, 30, 1.0, 0.15, rng);
    test = make_blob_dataset(3, 15, 1.0, 0.15, rng);
    CertifiedTrainConfig cfg;
    cfg.epochs = 100;
    cfg.epsilon = 0.12;
    cfg.kappa = 0.3;
    trainer.train(train, test, cfg);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void report_table() {
  Fixture& f = fixture();
  std::printf("\n=== E8: verified fraction and relaxed false negatives ===\n\n");
  std::printf("%-8s %-8s %-8s %-8s %-8s %-14s %-14s\n", "eps", "IBP",
              "CROWN", "exact", "PGD", "FN rate (IBP)", "FN rate (CROWN)");
  for (double eps : {0.05, 0.10, 0.20, 0.30, 0.35, 0.40, 0.50}) {
    std::size_t ibp = 0;
    std::size_t crown = 0;
    std::size_t exact = 0;
    std::size_t pgd_robust = 0;
    std::size_t fn_ibp = 0;
    std::size_t fn_crown = 0;
    for (const auto& p : f.test) {
      const auto ri = certify_classification(f.trainer.network(), p.x, eps,
                                             p.label, BoundMethod::kIbp);
      const auto rc = certify_classification(f.trainer.network(), p.x, eps,
                                             p.label, BoundMethod::kCrown);
      ExactOptions opts;
      opts.max_branches = 4000;
      const auto re = certify_classification_exact(f.trainer.network(), p.x,
                                                   eps, p.label, opts);
      if (ri.verdict == Verdict::kVerified) ++ibp;
      if (rc.verdict == Verdict::kVerified) ++crown;
      if (re.verdict == Verdict::kVerified) ++exact;
      if (!pgd_attack(f.trainer.network(), p.x, eps, p.label).success)
        ++pgd_robust;
      if (re.verdict == Verdict::kVerified) {
        if (ri.verdict != Verdict::kVerified) ++fn_ibp;
        if (rc.verdict != Verdict::kVerified) ++fn_crown;
      }
    }
    const double n = static_cast<double>(f.test.size());
    const double e = std::max<std::size_t>(exact, 1);
    std::printf("%-8.2f %-8.2f %-8.2f %-8.2f %-8.2f %-14.2f %-14.2f\n", eps,
                ibp / n, crown / n, exact / n, pgd_robust / n,
                static_cast<double>(fn_ibp) / e,
                static_cast<double>(fn_crown) / e);
  }
  std::printf("\nexpected shapes: IBP <= CROWN <= exact <= PGD-robust (the "
              "certification bracket); fractions fall with eps; relaxed "
              "false-negative rates grow with eps (loosest relaxation "
              "degrades first).\n\n");
}

void BM_RelaxedIbp(benchmark::State& state) {
  Fixture& f = fixture();
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.test[i++ % f.test.size()];
    benchmark::DoNotOptimize(certify_classification(
        f.trainer.network(), p.x, eps, p.label, BoundMethod::kIbp));
  }
}
BENCHMARK(BM_RelaxedIbp)->Arg(5)->Arg(15);

void BM_RelaxedCrown(benchmark::State& state) {
  Fixture& f = fixture();
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.test[i++ % f.test.size()];
    benchmark::DoNotOptimize(certify_classification(
        f.trainer.network(), p.x, eps, p.label, BoundMethod::kCrown));
  }
}
BENCHMARK(BM_RelaxedCrown)->Arg(5)->Arg(15);

void BM_ExactBnb(benchmark::State& state) {
  Fixture& f = fixture();
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  ExactOptions opts;
  opts.max_branches = 4000;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.test[i++ % f.test.size()];
    benchmark::DoNotOptimize(certify_classification_exact(
        f.trainer.network(), p.x, eps, p.label, opts));
  }
}
BENCHMARK(BM_ExactBnb)->Arg(5)->Arg(15);

}  // namespace

int main(int argc, char** argv) {
  report_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
