// Unified perf-tracking harness for the repo's benches.
//
// Collects per-kernel records (best-of-N wall time, allocations per op via
// the rcr_allocprobe counting allocator, optional serial-vs-parallel split),
// prints an aligned table, and writes machine-readable JSON:
//
//   {"bench": "<name>", "threads": N, "smoke": 0|1, "baseline": "...",
//    "results": [{"kernel": "...", "size": "...", "ns_op": ...,
//                 "allocs_op": ..., "serial_ms": ..., "parallel_ms": ...,
//                 "speedup": ..., "baseline_ns_op": ..., "speedup_vs": ...},
//                ...],
//    "metrics": [{"name": "...", "kind": "...", "value": ..., "count": ...}]}
//
// serial_ms/parallel_ms/speedup are present only for records measured with
// run_serial_parallel().  "baseline"/"baseline_ns_op"/"speedup_vs" appear
// only after set_baseline() attached a previous run's JSON: each record
// whose kernel+size matches a baseline entry reports how many times faster
// it runs than that entry (speedup_vs = baseline ns_op / current ns_op).
// "metrics" appears only when the rcr::obs registry
// is armed at export time: the bench's solver telemetry (iteration counts,
// fallback degradations, queue depths) rides along with the timings so a
// perf regression can be cross-checked against behavioural drift.  Set
// RCR_BENCH_SMOKE=1 to shrink rep counts for CI smoke jobs (the JSON then
// carries "smoke": 1 so dashboards can filter).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "rcr/obs/metrics.hpp"
#include "rcr/rt/alloc_probe.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/thread_pool.hpp"

namespace rcr::bench {

/// True when RCR_BENCH_SMOKE=1: benches should use their smallest sizes and
/// rep counts (CI smoke job).
inline bool smoke_mode() {
  const char* env = std::getenv("RCR_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// One measured kernel configuration.
struct Record {
  std::string kernel;
  std::string size;
  double ns_op = 0.0;       ///< Best-of-reps wall time per op, nanoseconds.
  double allocs_op = 0.0;   ///< Heap allocations per op (steady state).
  double serial_ms = -1.0;  ///< < 0 when no serial/parallel split measured.
  double parallel_ms = -1.0;
  double baseline_ns = -1.0;  ///< Matched baseline ns/op; < 0 when unmatched.

  double speedup() const {
    return (serial_ms >= 0.0 && parallel_ms > 0.0) ? serial_ms / parallel_ms
                                                   : 0.0;
  }
  /// How many times faster than the attached baseline (0 when unmatched).
  double speedup_vs() const {
    return (baseline_ns > 0.0 && ns_op > 0.0) ? baseline_ns / ns_op : 0.0;
  }
};

/// One kernel+size timing lifted from a previous run's JSON.
struct BaselineEntry {
  std::string kernel;
  std::string size;
  double ns_op = 0.0;
};

/// Parse the "results" records out of a harness-written JSON file.  A
/// deliberately narrow string scan -- it reads exactly what write_json
/// emits (keys in emission order), which spares the benches a JSON
/// dependency.  Returns an empty vector when the file is missing.
inline std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  std::string text;
  char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    text.append(chunk, got);
  std::fclose(f);

  const std::string kkernel = "{\"kernel\":\"";
  const std::string ksize = "\"size\":\"";
  const std::string kns = "\"ns_op\":";
  std::size_t pos = 0;
  while ((pos = text.find(kkernel, pos)) != std::string::npos) {
    BaselineEntry e;
    std::size_t start = pos + kkernel.size();
    std::size_t end = text.find('"', start);
    if (end == std::string::npos) break;
    e.kernel = text.substr(start, end - start);
    start = text.find(ksize, end);
    if (start == std::string::npos) break;
    start += ksize.size();
    end = text.find('"', start);
    if (end == std::string::npos) break;
    e.size = text.substr(start, end - start);
    start = text.find(kns, end);
    if (start == std::string::npos) break;
    e.ns_op = std::strtod(text.c_str() + start + kns.size(), nullptr);
    out.push_back(std::move(e));
    pos = end;
  }
  return out;
}

class Harness {
 public:
  explicit Harness(std::string name) : name_(std::move(name)) {}

  /// Attach a previous run's JSON as the comparison baseline.  Records
  /// (already collected or measured afterwards) with a matching kernel+size
  /// gain baseline_ns / speedup_vs, the table gains a "vs-base" column, and
  /// the JSON carries the baseline label.  Returns false (and clears any
  /// previous baseline) when the file is missing or holds no records.
  bool set_baseline(const std::string& path, std::string label) {
    baseline_ = load_baseline(path);
    baseline_label_ = baseline_.empty() ? std::string() : std::move(label);
    for (Record& r : records_) r.baseline_ns = baseline_ns_for(r);
    return !baseline_.empty();
  }

  bool has_baseline() const { return !baseline_.empty(); }

  /// Best wall-clock seconds for one invocation of `fn` over `reps` runs.
  static double time_best_of(int reps, const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      if (s < best) best = s;
    }
    return best;
  }

  /// Steady-state allocations per op: one warm-up call, then the
  /// alloc-counter delta over `reps` calls divided by `reps`.
  static double allocs_per_op(int reps, const std::function<void()>& fn) {
    fn();  // warm up caches / workspaces
    const rt::AllocDelta delta;
    for (int r = 0; r < reps; ++r) fn();
    return static_cast<double>(delta.delta()) / static_cast<double>(reps);
  }

  /// Measure `fn` (current threading mode) and record it.
  Record& run(const std::string& kernel, const std::string& size, int reps,
              const std::function<void()>& fn) {
    Record rec;
    rec.kernel = kernel;
    rec.size = size;
    rec.ns_op = 1e9 * time_best_of(reps, fn);
    rec.allocs_op = allocs_per_op(reps, fn);
    rec.baseline_ns = baseline_ns_for(rec);
    records_.push_back(std::move(rec));
    return records_.back();
  }

  /// Measure `fn` under ForceSerialGuard and again on the pool; ns_op and
  /// allocs_op come from the parallel run (the production configuration).
  Record& run_serial_parallel(const std::string& kernel,
                              const std::string& size, int reps,
                              const std::function<void()>& fn) {
    Record rec;
    rec.kernel = kernel;
    rec.size = size;
    {
      rt::ForceSerialGuard serial;
      rec.serial_ms = 1e3 * time_best_of(reps, fn);
    }
    const double parallel_s = time_best_of(reps, fn);
    rec.parallel_ms = 1e3 * parallel_s;
    rec.ns_op = 1e9 * parallel_s;
    rec.allocs_op = allocs_per_op(reps, fn);
    rec.baseline_ns = baseline_ns_for(rec);
    records_.push_back(std::move(rec));
    return records_.back();
  }

  const std::vector<Record>& records() const { return records_; }

  void print_table() const {
    std::printf("%-26s %-14s %14s %12s %12s %12s %9s", "kernel", "size",
                "ns/op", "allocs/op", "serial(ms)", "parallel(ms)", "speedup");
    if (has_baseline()) std::printf(" %9s", "vs-base");
    std::printf("\n");
    for (const Record& r : records_) {
      std::printf("%-26s %-14s %14.0f %12.1f ", r.kernel.c_str(),
                  r.size.c_str(), r.ns_op, r.allocs_op);
      if (r.serial_ms >= 0.0) {
        std::printf("%12.3f %12.3f %8.2fx", r.serial_ms, r.parallel_ms,
                    r.speedup());
      } else {
        std::printf("%12s %12s %9s", "-", "-", "-");
      }
      if (has_baseline()) {
        if (r.baseline_ns > 0.0)
          std::printf(" %8.2fx", r.speedup_vs());
        else
          std::printf(" %9s", "-");
      }
      std::printf("\n");
    }
  }

  std::string to_json() const {
    char buf[256];
    std::string json = "{\"bench\":\"" + name_ + "\",\"threads\":" +
                       std::to_string(rt::global_threads()) +
                       ",\"smoke\":" + (smoke_mode() ? "1" : "0");
    if (!baseline_label_.empty())
      json += ",\"baseline\":\"" + baseline_label_ + "\"";
    json += ",\"results\":[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"kernel\":\"%s\",\"size\":\"%s\",\"ns_op\":%.1f,"
                    "\"allocs_op\":%.2f",
                    i == 0 ? "" : ",", r.kernel.c_str(), r.size.c_str(),
                    r.ns_op, r.allocs_op);
      json += buf;
      if (r.serial_ms >= 0.0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"serial_ms\":%.4f,\"parallel_ms\":%.4f,"
                      "\"speedup\":%.3f",
                      r.serial_ms, r.parallel_ms, r.speedup());
        json += buf;
      }
      if (r.baseline_ns > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      ",\"baseline_ns_op\":%.1f,\"speedup_vs\":%.3f",
                      r.baseline_ns, r.speedup_vs());
        json += buf;
      }
      json += "}";
    }
    json += "]";
    if (obs::metrics_enabled()) {
      json += ",\"metrics\":[";
      const std::vector<obs::MetricSample> snap = obs::metrics_snapshot();
      for (std::size_t i = 0; i < snap.size(); ++i) {
        const obs::MetricSample& m = snap[i];
        std::string name = m.name;
        if (!m.label_key.empty())
          name += "{" + m.label_key + "=" + m.label_value + "}";
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%.17g",
                      i == 0 ? "" : ",", name.c_str(), m.kind.c_str(),
                      m.value);
        json += buf;
        if (m.kind == "histogram")
          json += ",\"count\":" + std::to_string(m.count);
        json += "}";
      }
      json += "]";
    }
    json += "}";
    return json;
  }

  /// Write the JSON document to `path`; returns false on I/O failure.
  bool write_json(const std::string& path = "BENCH_perf.json") const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = to_json();
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    return true;
  }

 private:
  double baseline_ns_for(const Record& rec) const {
    for (const BaselineEntry& e : baseline_)
      if (e.kernel == rec.kernel && e.size == rec.size) return e.ns_op;
    return -1.0;
  }

  std::string name_;
  std::vector<Record> records_;
  std::vector<BaselineEntry> baseline_;
  std::string baseline_label_;
};

}  // namespace rcr::bench
