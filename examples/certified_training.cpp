// Convex-relaxation adversarial training walkthrough (Sec. II-B-2).
//
// Trains two identical networks on the same classification task -- one with
// the standard cross-entropy, one against the IBP worst case -- then
// certifies both with the relaxed (IBP/CROWN) and exact (branch-and-bound)
// verifiers, printing the layer-wise bound-tightening table.
#include <cstdio>

#include "rcr/verify/certified.hpp"
#include "rcr/verify/verifier.hpp"

int main() {
  using namespace rcr::verify;

  std::printf("=== convex-relaxation adversarial (certified) training ===\n\n");

  rcr::num::Rng rng(2026);
  const auto train = make_blob_dataset(3, 30, 1.0, 0.15, rng);
  const auto test = make_blob_dataset(3, 15, 1.0, 0.15, rng);

  CertifiedTrainConfig cfg;
  cfg.epochs = 120;
  cfg.epsilon = 0.15;
  cfg.kappa = 0.3;

  CertifiedTrainer robust({2, 12, 12, 3}, 1);
  const CertifiedTrainReport robust_report = robust.train(train, test, cfg);

  CertifiedTrainer standard({2, 12, 12, 3}, 1);
  const CertifiedTrainReport std_report =
      standard.train_standard(train, test, cfg);

  std::printf("%-22s %-12s %-14s %-14s\n", "training", "clean acc",
              "certified IBP", "certified CROWN");
  std::printf("%-22s %-12.3f %-14.3f %-14.3f\n", "standard CE",
              std_report.clean_accuracy, std_report.certified_accuracy_ibp,
              std_report.certified_accuracy_crown);
  std::printf("%-22s %-12.3f %-14.3f %-14.3f\n", "IBP worst-case",
              robust_report.clean_accuracy,
              robust_report.certified_accuracy_ibp,
              robust_report.certified_accuracy_crown);

  // Exact verification of a handful of test points at a larger epsilon.
  std::printf("\nexact verification at eps = %.2f (first 5 test points):\n",
              2.0 * cfg.epsilon);
  for (std::size_t i = 0; i < 5 && i < test.size(); ++i) {
    const auto r = certify_classification_exact(
        robust.network(), test[i].x, 2.0 * cfg.epsilon, test[i].label);
    std::printf("  point %zu: %s (%zu branches)\n", i,
                to_string(r.verdict).c_str(), r.branches);
  }

  // Layer-wise tightening around the origin.
  const Box domain = Box::around({0.0, 0.0}, cfg.epsilon);
  const TightnessReport tight = tightness_report(robust.network(), domain);
  std::printf("\nlayer-wise mean pre-activation width (robust net):\n");
  std::printf("  %-8s %-12s %-12s %-18s\n", "layer", "IBP", "CROWN",
              "unstable (IBP/CROWN)");
  for (std::size_t k = 0; k < tight.ibp_mean_width.size(); ++k)
    std::printf("  %-8zu %-12.4f %-12.4f %zu / %zu\n", k,
                tight.ibp_mean_width[k], tight.crown_mean_width[k],
                tight.ibp_unstable[k], tight.crown_unstable[k]);
  return 0;
}
