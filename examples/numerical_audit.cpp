// Numerical-audit scenario: run the Fig. 3 differential-testing battery the
// way a 5G engineer would before trusting an ML toolkit's FFT stack
// (Sec. IV's "selection and utilization of various functions from the
// available ML libraries/toolkits is crucial").
//
// Also demonstrates the two error sources of Sec. IV-B on concrete numbers:
// truncation (Taylor/trapezoid, Eqs. 3-4) and round-off/underflow.
#include <cmath>
#include <cstdio>

#include "rcr/numerics/approx.hpp"
#include "rcr/numerics/float_probe.hpp"
#include "rcr/numerics/stable.hpp"
#include "rcr/signal/issue_detector.hpp"

int main() {
  using namespace rcr;

  std::printf("=== library audit: which FFT stack can we trust? ===\n\n");
  const sig::IssueMatrix matrix =
      sig::detect_issues(sig::standard_library_roster(), {});
  std::printf("%s\n", matrix.to_table().c_str());
  for (std::size_t r = 0; r < matrix.library_names.size(); ++r) {
    const std::size_t issues = matrix.issue_count(r);
    std::printf("  %-20s %s\n", matrix.library_names[r].c_str(),
                issues == 0 ? "TRUSTED for the STFT pipeline"
                            : "rejected (differential test failures)");
  }

  std::printf("\n=== truncation error (paper Eqs. 3-4) ===\n\n");
  std::printf("Taylor e^x at x = 3, terms needed for |err| < 1e-10: %zu\n",
              num::exp_taylor_terms_for(3.0, 1e-10));
  std::printf("%-8s %-16s\n", "n", "exp_taylor err");
  for (std::size_t n : {4u, 8u, 16u, 32u})
    std::printf("%-8zu %-16.3e\n", n, num::exp_taylor_error(3.0, n));

  const auto f = [](double x) { return std::sin(x); };
  std::printf("\ntrapezoid integral of sin on [0, pi], true value 2:\n");
  std::printf("%-8s %-16s %-16s\n", "n", "error", "a-posteriori est");
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const double err = std::abs(num::trapezoid(f, 0.0, 3.14159265358979, n) - 2.0);
    std::printf("%-8zu %-16.3e %-16.3e\n", n, err,
                num::trapezoid_error_estimate(f, 0.0, 3.14159265358979, n));
  }

  std::printf("\n=== round-off / underflow probes ===\n\n");
  const rcr::Vec risky = {1e-320, 1e300 * 1e300, std::nan(""), 1.0};
  const num::FloatProfile profile = num::profile(risky);
  std::printf("probe vector: %zu normal, %zu subnormal, %zu overflow, "
              "%zu nan -> clean = %s\n",
              profile.normals, profile.subnormals, profile.overflows,
              profile.nans, profile.clean() ? "yes" : "no");

  const rcr::Vec logits = {0.0, 1000.0};
  std::printf("log-softmax of {0, 1000}: fused = {%.1f, %.3g}, naive "
              "finite = %s\n",
              num::log_softmax(logits)[0], num::log_softmax(logits)[1],
              num::all_finite(num::log_softmax_naive(logits)) ? "yes" : "NO");
  return 0;
}
