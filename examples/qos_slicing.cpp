// Network-operator scenario: one scheduling epoch of a 5G cell.
//
// 1. Slice admission across eMBB / URLLC / mMTC requests (exact knapsack DP
//    vs greedy density).
// 2. Multi-RAT steering for the admitted users.
// 3. Per-cell radio resource allocation with QoS floors (the Sec. I MINLP),
//    solved exactly and by the RCR PSO.
#include <cstdio>

#include "rcr/qos/multirat.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/qos/rrm.hpp"
#include "rcr/qos/slicing.hpp"

int main() {
  using namespace rcr::qos;

  std::printf("=== one scheduling epoch of a 5G cell ===\n\n");

  // ---- 1. Slice admission control.
  const SlicingProblem slicing = random_slicing(24, 48, 7);
  const SlicingSolution admitted = solve_slicing_exact(slicing);
  const SlicingSolution greedy = solve_slicing_greedy(slicing);
  std::printf("[slicing] %zu requests, %zu RB budget\n",
              slicing.requests.size(), slicing.rb_budget);
  std::printf("  exact DP: %zu admitted, utility %.2f, %zu RBs used\n",
              admitted.admitted_count, admitted.total_utility,
              admitted.rbs_used);
  std::printf("  greedy:   %zu admitted, utility %.2f\n",
              greedy.admitted_count, greedy.total_utility);
  std::size_t per_class[3] = {0, 0, 0};
  for (std::size_t i = 0; i < slicing.requests.size(); ++i)
    if (admitted.admitted[i])
      ++per_class[static_cast<int>(slicing.requests[i].service)];
  std::printf("  admitted by class: eMBB %zu, URLLC %zu, mMTC %zu\n\n",
              per_class[0], per_class[1], per_class[2]);

  // ---- 2. Multi-RAT steering.
  const MultiRatProblem rats = random_multirat(8, 9);
  const MultiRatSolution steering = solve_multirat_exact(rats);
  const MultiRatSolution steering_greedy = solve_multirat_greedy(rats);
  std::printf("[multi-RAT] 8 users over {mmWave eMBB, URLLC slice, legacy}\n");
  std::printf("  exact:  %zu served, total rate %.1f Mb/s\n",
              steering.users_served, steering.total_rate);
  std::printf("  greedy: %zu served, total rate %.1f Mb/s\n\n",
              steering_greedy.users_served, steering_greedy.total_rate);

  // ---- 3. Radio resource allocation inside the cell.
  ChannelConfig ch;
  ch.num_users = 4;
  ch.num_rbs = 8;
  ch.seed = 11;
  RraProblem rra;
  rra.gain = make_channel(ch).gain;
  rra.total_power = 1.0;
  rra.min_rate = rcr::Vec(4, 0.4);

  const double bound = relaxation_upper_bound(rra);
  const RraSolution exact = solve_exact(rra);
  RraPsoOptions pso_options;
  pso_options.swarm_size = 30;
  pso_options.max_iterations = 150;
  const RraSolution pso = solve_pso(rra, pso_options);

  std::printf("[RRA] 4 users x 8 RBs, QoS floor 0.4 bit/s/Hz each\n");
  std::printf("  relaxation bound: %.3f\n", bound);
  std::printf("  exact:            %.3f (feasible=%s, %zu nodes)\n",
              exact.sum_rate, exact.feasible ? "yes" : "no",
              exact.nodes_explored);
  std::printf("  RCR PSO:          %.3f (feasible=%s, %zu evaluations)\n",
              pso.sum_rate, pso.feasible ? "yes" : "no", pso.nodes_explored);
  std::printf("  per-user rates (exact):");
  for (double r : exact.user_rate) std::printf(" %.2f", r);
  std::printf("\n\n");

  // ---- 4. Multi-slot RRM: scheduling policies over 200 slots.
  std::printf("[RRM] 200-slot run, policy comparison\n");
  std::printf("  %-20s %-12s %-10s\n", "policy", "cell thpt", "Jain");
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kMaxRate, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kProportionalFair}) {
    RrmConfig rc;
    rc.num_users = 4;
    rc.num_rbs = 8;
    rc.num_slots = 200;
    rc.seed = 11;
    const RrmReport r = run_scheduler(rc, policy);
    std::printf("  %-20s %-12.2f %-10.3f\n", to_string(policy).c_str(),
                r.cell_throughput, r.jain_fairness);
  }
  return 0;
}
