// Quickstart: the RCR framework in ~60 lines.
//
// 1. Pose a 5G QoS problem (radio resource allocation MINLP).
// 2. Solve it three ways: convex relaxation bound, exact branch-and-bound,
//    and the RCR PSO with adaptive-QP inertia (the paper's Phase-3 enabler).
// 3. Certify a small ReLU network with the layer-wise convex relaxations.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "rcr/qos/rra.hpp"
#include "rcr/verify/verifier.hpp"

int main() {
  // ---- A seeded 3-user, 6-resource-block OFDM downlink.
  rcr::qos::ChannelConfig channel_config;
  channel_config.num_users = 3;
  channel_config.num_rbs = 6;
  channel_config.seed = 2026;
  const rcr::qos::ChannelRealization channel =
      rcr::qos::make_channel(channel_config);

  rcr::qos::RraProblem problem;
  problem.gain = channel.gain;
  problem.total_power = 1.0;                 // watts
  problem.min_rate = rcr::Vec(3, 0.5);       // per-user QoS floor (bit/s/Hz)

  // ---- Three solvers, one problem.
  const double bound = rcr::qos::relaxation_upper_bound(problem);
  const rcr::qos::RraSolution exact = rcr::qos::solve_exact(problem);

  rcr::qos::RraPsoOptions pso_options;
  pso_options.adaptive_inertia = true;       // the Phase-3 adaptive-QP weights
  const rcr::qos::RraSolution pso = rcr::qos::solve_pso(problem, pso_options);

  std::printf("RRA sum-rate: relaxation bound %.3f | exact %.3f | RCR-PSO %.3f "
              "(feasible: %s)\n",
              bound, exact.sum_rate, pso.sum_rate,
              pso.feasible ? "yes" : "no");
  std::printf("RB assignment (exact):");
  for (std::size_t user : exact.assignment)
    std::printf(" u%zu", user);
  std::printf("\n\n");

  // ---- Layer-wise convex relaxation of a ReLU network.
  rcr::num::Rng rng(7);
  const auto net = rcr::verify::ReluNetwork::random({2, 16, 16, 3}, rng);
  const rcr::Vec x = {0.5, -0.25};
  const rcr::Vec logits = net.forward(x);
  std::size_t label = 0;
  for (std::size_t k = 1; k < logits.size(); ++k)
    if (logits[k] > logits[label]) label = k;

  const auto relaxed = rcr::verify::certify_classification(
      net, x, /*eps=*/0.02, label, rcr::verify::BoundMethod::kCrown);
  const auto exact_cert =
      rcr::verify::certify_classification_exact(net, x, 0.02, label);

  std::printf("robustness at eps=0.02: relaxed=%s (margin bound %.4f), "
              "exact=%s (%zu branches)\n",
              to_string(relaxed.verdict).c_str(), relaxed.worst_margin_bound,
              to_string(exact_cert.verdict).c_str(), exact_cert.branches);
  return 0;
}
