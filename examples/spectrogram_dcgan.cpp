// Adversarial time-frequency generation (the paper's DC-GAN + STFT pairing,
// and its reference [26], "Adversarial Generation of Time-Frequency
// Features"):
//
// 1. Train the convolutional DCGAN on QPSK spectrograms.
// 2. Generate synthetic spectrograms.
// 3. Ask a separately trained MSY3I classifier what they look like --
//    a generator that has learned the class manifold should produce images
//    the classifier overwhelmingly labels as the training class.
#include <cstdio>

#include "rcr/nn/dcgan.hpp"
#include "rcr/signal/spectrogram.hpp"

namespace {

std::vector<rcr::nn::ImageSample> to_images(
    const std::vector<rcr::sig::ClassSample>& samples) {
  std::vector<rcr::nn::ImageSample> out;
  for (const auto& s : samples)
    out.push_back({s.image.pixels, s.image.height, s.image.width, s.label});
  return out;
}

void print_image(const rcr::nn::Tensor& batch, std::size_t index) {
  static const char* kShades[] = {" ", ".", ":", "+", "#"};
  for (std::size_t r = 0; r < 16; ++r) {
    std::printf("    ");
    for (std::size_t c = 0; c < 16; ++c) {
      const double v = batch.at4(index, 0, r, c);
      const int level = std::min(4, static_cast<int>(v * 5.0));
      std::printf("%s", kShades[level]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace rcr;

  std::printf("=== adversarial spectrogram generation (DCGAN) ===\n\n");
  num::Rng rng(123);

  // All three classes for the classifier; QPSK-only set for the GAN.
  const auto all_classes =
      to_images(sig::make_classification_dataset(24, 16, 0.05, rng));
  std::vector<nn::ImageSample> qpsk_only;
  for (const auto& s : all_classes)
    if (s.label == 1) qpsk_only.push_back(s);  // QPSK = class 1

  // 1. Train the classifier.
  nn::Msy3iConfig cls_cfg;
  cls_cfg.image_size = 16;
  cls_cfg.classes = 3;
  nn::Sequential classifier = nn::build_msy3i_classifier(cls_cfg);
  nn::TrainConfig tc;
  tc.epochs = 25;
  tc.learning_rate = 3e-3;
  const nn::TrainReport creport =
      nn::train_classifier(classifier, all_classes, all_classes, tc);
  std::printf("classifier: %zu params, train accuracy %.2f\n\n",
              creport.param_count, creport.train_accuracy);

  // 2. Train the DCGAN on QPSK spectrograms.
  nn::DcganConfig gan_cfg;
  gan_cfg.steps = 2000;
  gan_cfg.seed = 9;
  nn::DcganTrainer gan(gan_cfg, qpsk_only);
  gan.train();
  const nn::DcganMetrics m = gan.metrics(64);
  std::printf("DCGAN after %zu steps: mean-pixel err %.3f, row-profile "
              "cosine %.3f\n\n", gan_cfg.steps, m.mean_pixel_error,
              m.row_profile_cosine);

  // 3. Classify generated spectrograms.
  const nn::Tensor generated = gan.sample(64);
  std::size_t votes[3] = {0, 0, 0};
  for (std::size_t i = 0; i < 64; ++i) {
    nn::Tensor one({1, 1, 16, 16});
    for (std::size_t k = 0; k < 256; ++k) one[k] = generated[i * 256 + k];
    const auto pred = nn::argmax_rows(classifier.forward(one, false));
    ++votes[pred[0]];
  }
  std::printf("classifier votes on 64 generated spectrograms:\n");
  for (std::size_t k = 0; k < 3; ++k)
    std::printf("  %-6s %zu\n",
                sig::to_string(sig::modulation_classes()[k]).c_str(),
                votes[k]);

  std::printf("\none real QPSK spectrogram:\n");
  {
    nn::Tensor real({1, 1, 16, 16});
    for (std::size_t k = 0; k < 256; ++k) real[k] = qpsk_only[0].pixels[k];
    print_image(real, 0);
  }
  std::printf("\none generated spectrogram:\n");
  print_image(generated, 0);
  return 0;
}
