// Spectrum sensing scenario: detect and classify an OFDM burst in a noisy
// capture using the STFT machinery and the MSY3I networks -- the paper's
// "signal detection and classification in 5G and beyond" workload
// (Sec. IV-A).
//
// Pipeline:
//  1. Generate a noisy capture with an embedded OFDM burst.
//  2. Locate the burst with the MSY3I detector (time-frequency box).
//  3. Classify the modulation with the MSY3I classifier.
//  4. Cross-check against an energy-detector baseline.
#include <cstdio>

#include "rcr/nn/msy3i.hpp"
#include "rcr/signal/spectrogram.hpp"

namespace {

std::vector<rcr::nn::ImageSample> to_images(
    const std::vector<rcr::sig::ClassSample>& samples) {
  std::vector<rcr::nn::ImageSample> out;
  for (const auto& s : samples) {
    out.push_back({s.image.pixels, s.image.height, s.image.width, s.label});
  }
  return out;
}

std::vector<rcr::nn::BoxSample> to_boxes(
    const std::vector<rcr::sig::DetectSample>& samples) {
  std::vector<rcr::nn::BoxSample> out;
  for (const auto& s : samples) {
    rcr::nn::BoxSample b;
    b.pixels = s.image.pixels;
    b.height = s.image.height;
    b.width = s.image.width;
    b.box[0] = s.x_center;
    b.box[1] = s.y_center;
    b.box[2] = s.box_w;
    b.box[3] = s.box_h;
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

int main() {
  using namespace rcr;

  std::printf("=== spectrum sensing with MSY3I ===\n\n");
  num::Rng rng(99);

  // ---- 1. Train the modulation classifier on synthetic spectrograms.
  const auto train = to_images(sig::make_classification_dataset(24, 16, 0.05, rng));
  const auto test = to_images(sig::make_classification_dataset(8, 16, 0.05, rng));

  nn::Msy3iConfig cfg;
  cfg.image_size = 16;
  cfg.classes = 3;
  nn::Sequential classifier = nn::build_msy3i_classifier(cfg);
  nn::TrainConfig tc;
  tc.epochs = 25;
  tc.learning_rate = 3e-3;
  const nn::TrainReport creport =
      nn::train_classifier(classifier, train, test, tc);
  std::printf("classifier: %zu params, test accuracy %.2f\n",
              creport.param_count, creport.test_accuracy);

  // ---- 2. Train the burst detector.
  const auto dtrain = to_boxes(sig::make_detection_dataset(96, 16, 0.05, rng));
  const auto dtest = to_boxes(sig::make_detection_dataset(24, 16, 0.05, rng));
  nn::Sequential detector = nn::build_msy3i_detector(cfg);
  nn::TrainConfig dc;
  dc.epochs = 40;
  dc.learning_rate = 3e-3;
  const nn::DetectReport dreport =
      nn::train_detector(detector, dtrain, dtest, dc);
  std::printf("detector:   %zu params, mean IoU %.2f\n\n",
              dreport.param_count, dreport.mean_iou);

  // ---- 3. Sense one fresh capture.
  sig::OfdmParams burst_params;
  burst_params.modulation = sig::Modulation::kQpsk;
  // Match the training convention: each modulation class occupies its own
  // slice width (QPSK = 32 of 64 subcarriers).
  burst_params.active_subcarriers = 32;
  const sig::BurstCapture capture =
      sig::embedded_burst(2048, burst_params, 0.05, rng);

  sig::StftConfig stft_config;
  stft_config.window = sig::make_window(sig::WindowKind::kHann, 64);
  stft_config.hop = 16;
  stft_config.fft_size = 64;
  const sig::Image img =
      sig::spectrogram_image(capture.samples, stft_config, 16, 16);

  nn::Tensor x({1, 1, 16, 16});
  for (std::size_t i = 0; i < img.pixels.size(); ++i) x[i] = img.pixels[i];

  const nn::Tensor box = detector.forward(x, false);
  // Extract the detected segment and classify *it* (the classifier was
  // trained on burst-only spectrograms).
  const auto seg_start = static_cast<std::size_t>(
      std::max(0.0, (box.at2(0, 0) - box.at2(0, 2) / 2.0)) * 2048.0);
  const auto seg_len = std::max<std::size_t>(
      256, static_cast<std::size_t>(box.at2(0, 2) * 2048.0));
  rcr::Vec segment;
  for (std::size_t k = seg_start;
       k < std::min<std::size_t>(2048, seg_start + seg_len); ++k)
    segment.push_back(capture.samples[k]);
  const sig::Image seg_img =
      sig::spectrogram_image(segment, stft_config, 16, 16);
  nn::Tensor xs({1, 1, 16, 16});
  for (std::size_t i = 0; i < seg_img.pixels.size(); ++i)
    xs[i] = seg_img.pixels[i];
  const double true_x =
      (static_cast<double>(capture.offset) + 0.5 * capture.length) / 2048.0;
  std::printf("burst truth:  center t=%.2f  length=%.2f of capture\n", true_x,
              static_cast<double>(capture.length) / 2048.0);
  std::printf("detector box: center t=%.2f  width=%.2f  (err %.2f)\n",
              box.at2(0, 0), box.at2(0, 2), std::abs(box.at2(0, 0) - true_x));

  const nn::Tensor logits = classifier.forward(xs, false);
  const auto pred = nn::argmax_rows(logits);
  std::printf("modulation:   predicted %s (truth %s)\n",
              sig::to_string(sig::modulation_classes()[pred[0]]).c_str(),
              sig::to_string(burst_params.modulation).c_str());

  // ---- 4. Energy-detector baseline for the burst location.
  double best_energy = 0.0;
  std::size_t best_start = 0;
  const std::size_t win = capture.length;
  for (std::size_t start = 0; start + win <= capture.samples.size();
       start += 64) {
    double e = 0.0;
    for (std::size_t k = 0; k < win; ++k)
      e += capture.samples[start + k] * capture.samples[start + k];
    if (e > best_energy) {
      best_energy = e;
      best_start = start;
    }
  }
  const double ed_center =
      (static_cast<double>(best_start) + 0.5 * win) / 2048.0;
  std::printf("energy det.:  center t=%.2f (err %.2f)\n", ed_center,
              std::abs(ed_center - true_x));
  return 0;
}
