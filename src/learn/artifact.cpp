#include "rcr/learn/artifact.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rcr::learn {

namespace {

struct BlockRef {
  const char* name;
  const Vec* vec;
};

std::vector<BlockRef> blocks_of(const WarmStartPredictor& p) {
  return {{"w1", &p.mlp.w1},         {"b1", &p.mlp.b1},
          {"w2", &p.mlp.w2},         {"b2", &p.mlp.b2},
          {"w3", &p.mlp.w3},         {"b3", &p.mlp.b3},
          {"log_rho", &p.unrolled.log_rho}, {"alpha", &p.unrolled.alpha}};
}

void fnv_accumulate(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int b = 0; b < 8; ++b) {
    h ^= (bits >> (8 * b)) & 0xffu;
    h *= 0x100000001b3ull;
  }
}

robust::Result<WarmStartPredictor> fail(const std::string& detail) {
  robust::Result<WarmStartPredictor> out;
  out.status = robust::make_status(robust::StatusCode::kNumericalFailure,
                                   "learn artifact: " + detail);
  return out;
}

}  // namespace

std::uint64_t predictor_hash(const WarmStartPredictor& p) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const BlockRef& b : blocks_of(p))
    for (double v : *b.vec) fnv_accumulate(h, v);
  return h;
}

void save_predictor(const WarmStartPredictor& p, const std::string& path) {
  if (!p.shape_ok())
    throw std::runtime_error("save_predictor: malformed predictor");
  std::ostringstream out;
  out << "RCRLEARN v" << kArtifactVersion << "\n";
  out << "meta " << p.mlp.hidden << " " << p.unrolled.steps() << "\n";
  char buf[40];
  for (const BlockRef& b : blocks_of(p)) {
    out << "block " << b.name << " " << b.vec->size() << "\n";
    for (double v : *b.vec) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << buf << "\n";
    }
  }
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, predictor_hash(p));
  out << "hash " << buf << "\n";
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("save_predictor: cannot open " + path);
  f << out.str();
  if (!f.good())
    throw std::runtime_error("save_predictor: write failed for " + path);
}

robust::Result<WarmStartPredictor> load_predictor(const std::string& path) {
  std::ifstream f(path);
  if (!f) return fail("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(f, line) || line != "RCRLEARN v1")
    return fail("bad or unsupported header '" + line + "'");
  std::size_t hidden = 0, steps = 0;
  if (!std::getline(f, line) ||
      std::sscanf(line.c_str(), "meta %zu %zu", &hidden, &steps) != 2)
    return fail("bad meta line");
  if (hidden == 0 || hidden > kMaxHidden) return fail("hidden out of range");

  robust::Result<WarmStartPredictor> out;
  WarmStartPredictor& p = out.value;
  p.version = kArtifactVersion;
  p.mlp.hidden = hidden;
  p.mlp.w1.resize(hidden * kFeatures);
  p.mlp.b1.resize(hidden);
  p.mlp.w2.resize(hidden * hidden);
  p.mlp.b2.resize(hidden);
  p.mlp.w3.resize(hidden);
  p.mlp.b3.resize(1);
  p.unrolled.log_rho.resize(steps);
  p.unrolled.alpha.resize(steps);

  for (const BlockRef& b : blocks_of(p)) {
    char name[32];
    std::size_t count = 0;
    if (!std::getline(f, line) ||
        std::sscanf(line.c_str(), "block %31s %zu", name, &count) != 2)
      return fail(std::string("missing block header for '") + b.name + "'");
    if (std::strcmp(name, b.name) != 0)
      return fail(std::string("expected block '") + b.name + "', got '" +
                  name + "'");
    if (count != b.vec->size())
      return fail(std::string("block '") + b.name + "' size mismatch");
    Vec& vec = *const_cast<Vec*>(b.vec);
    for (std::size_t i = 0; i < count; ++i) {
      if (!std::getline(f, line))
        return fail(std::string("truncated block '") + b.name + "'");
      char* end = nullptr;
      const double v = std::strtod(line.c_str(), &end);
      if (end == line.c_str())
        return fail(std::string("unparseable value in '") + b.name + "'");
      if (!std::isfinite(v))
        return fail(std::string("non-finite value in '") + b.name + "'");
      vec[i] = v;
    }
  }

  std::uint64_t stored = 0;
  if (!std::getline(f, line) ||
      std::sscanf(line.c_str(), "hash %" SCNx64, &stored) != 1)
    return fail("missing hash line");
  const std::uint64_t actual = predictor_hash(p);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "hash mismatch (stored %016" PRIx64 ", actual %016" PRIx64
                  ")",
                  stored, actual);
    return fail(msg);
  }
  if (!p.shape_ok()) return fail("shape check failed after load");
  return out;
}

}  // namespace rcr::learn
