// Versioned golden-weights artifact for the learned warm-start predictor.
//
// Text format (line-oriented, locale-free %.17g doubles so values round-trip
// bit-exactly):
//
//   RCRLEARN v1
//   meta <hidden> <unrolled_steps>
//   block <name> <count>
//   <count values, one per line>
//   ... (blocks: w1 b1 w2 b2 w3 b3 log_rho alpha, in that order)
//   hash <16 hex digits>
//
// The trailing hash is FNV-1a over the IEEE-754 bit patterns of every value
// in block order -- any corruption (bit flip, truncation, edited value)
// fails the check.  load_predictor NEVER throws on bad input: a missing
// file, malformed line, shape violation, non-finite value, or hash mismatch
// all come back as a clean robust::Status, because a serving process must
// degrade to the exact solver, not crash, when its model file is bad.
//
// Regeneration follows the repo's golden convention: tests retrain with a
// fixed seed under RCR_REGEN_GOLDEN=1 and rewrite the artifact in place.
#pragma once

#include <string>

#include "rcr/learn/predictor.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::learn {

/// Current artifact format version.
inline constexpr std::uint32_t kArtifactVersion = 1;

/// FNV-1a over the IEEE-754 bit patterns of the predictor's values in
/// serialization order (the artifact's integrity hash).
std::uint64_t predictor_hash(const WarmStartPredictor& p);

/// Serialize to `path`.  Throws std::runtime_error on I/O failure (saving
/// is a training/regen-time operation; serving never writes).
void save_predictor(const WarmStartPredictor& p, const std::string& path);

/// Deserialize from `path`.  Returns kOk with a shape-valid, all-finite,
/// hash-verified predictor, or a failed Status (kNumericalFailure with a
/// detail naming the first problem) -- never throws on bad input.
robust::Result<WarmStartPredictor> load_predictor(const std::string& path);

}  // namespace rcr::learn
