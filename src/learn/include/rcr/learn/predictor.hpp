// The learned warm-start predictor: problem parameters -> (z, u).
//
// Pipeline (all O(K n), allocation-free at inference):
//
//   1. analytic seed: the unconstrained QP minimizer d_unc via
//      Sherman-Morrison (qp.hpp);
//   2. per-RB MLP correction: a small shared-weight network scores each RB
//      from normalized local features + a few global aggregates, and emits a
//      tanh-bounded correction on the p0 scale (shared weights make the
//      predictor independent of n, so one artifact serves every cell size);
//   3. box projection: z0 = clamp(d_unc + p0 * correction) -- feasible by
//      construction, NaN-total (non-finite network output degrades to the
//      box midpoint, never escapes);
//   4. K unrolled ADMM steps (unrolled.hpp) refine (z0, 0) into a
//      primal/dual pair, rescaled to the consumer's penalty.
//
// Inference reads only const flat weight structs and writes caller storage:
// it is a pure function of (problem, weights), safe to call concurrently
// from the serve fan-out and bit-exact across RCR_THREADS.  Training-side
// conversion to/from an rcr::nn::Sequential lives in train.hpp; this header
// stays dependency-light so rcr_serve can link it.
#pragma once

#include <cstdint>

#include "rcr/learn/qp.hpp"
#include "rcr/learn/unrolled.hpp"

namespace rcr::learn {

/// Per-RB feature count consumed by the MLP (see fill_features).
inline constexpr std::size_t kFeatures = 7;

/// Hidden-width ceiling: inference keeps activations on the stack.
inline constexpr std::size_t kMaxHidden = 64;

/// Flat weights of the shared per-RB MLP:
///   features -> Dense(hidden) -> ReLU -> Dense(hidden) -> ReLU
///            -> Dense(1) -> tanh.
/// Row-major out x in blocks, matching nn::Dense's layout so the trainer
/// can copy directly through ParamRef.
struct MlpWeights {
  std::size_t in = kFeatures;
  std::size_t hidden = 0;
  Vec w1, b1;  ///< hidden x in, hidden.
  Vec w2, b2;  ///< hidden x hidden, hidden.
  Vec w3, b3;  ///< 1 x hidden, 1.

  /// Structural sanity: sizes consistent, hidden in (0, kMaxHidden].
  bool shape_ok() const;
};

/// The complete learned head: MLP + unrolled-ADMM refinement parameters.
struct WarmStartPredictor {
  std::uint32_t version = 1;
  MlpWeights mlp;
  UnrolledParams unrolled;

  bool shape_ok() const;
};

/// He-uniform random initialization (tests and training start points).
/// The unrolled head starts as `steps` plain ADMM iterations at `rho`.
WarmStartPredictor random_predictor(std::size_t hidden, std::size_t steps,
                                    double rho, std::uint64_t seed);

/// Zero-MLP predictor: correction identically zero, so the primal seed is
/// the projected analytic minimizer.  The do-no-harm baseline.
WarmStartPredictor zero_predictor(std::size_t hidden, std::size_t steps,
                                  double rho);

/// Write the kFeatures inputs for RB `i` into `f`.  `inv_scale` caches the
/// problem-level normalizers (compute once per cell via feature_scales).
struct FeatureScales {
  double inv_curv = 0.0;   ///< 1 / max(max_curv, fallback 1).
  double inv_slope = 0.0;  ///< 1 / sqrt(max_curv * 1/ln2) slope scale.
  double inv_p0 = 0.0;
  double n_squash = 0.0;   ///< 1 / (1 + n / 64).
  double penalty = 0.0;    ///< lambda * inv_curv (= budget_penalty).
  double mean_dunc = 0.0;  ///< mean of d_unc / p0, clamped.
};
FeatureScales feature_scales(const PowerQp& qp, const double* d_unc);
void fill_features(const PowerQp& qp, const FeatureScales& s,
                   const double* d_unc, std::size_t i, double* f);

/// MLP forward for one RB's feature vector (stack-buffered, const, pure).
double mlp_forward(const MlpWeights& w, const double* f);

/// Predict a warm start for `qp`: writes primal z and scaled dual u (each
/// qp.n long) consistent with consumer penalty `rho_out`.  `scratch` must
/// hold >= 2 * qp.n doubles.  Pure function of (qp, predictor); the result
/// is always box-feasible.  Throws std::invalid_argument on a
/// shape-invalid predictor (callers validate artifacts before arming).
void predict_warm_start(const PowerQp& qp, const WarmStartPredictor& p,
                        double rho_out, double* z, double* u,
                        double* scratch);

}  // namespace rcr::learn
