// Feasibility projections for learned solver outputs.
//
// A learned component is only trustworthy when its output is feasible *by
// construction*: whatever the network emits -- including NaN/Inf garbage
// from corrupted weights -- the projection maps it into the constraint set
// before anything downstream sees it.  Three sets cover the RCR solver
// surface:
//
//   box      lo <= x <= hi           (ADMM box-QP primal, verify bounds)
//   simplex  x >= 0, sum x = total   (per-RB power under a budget)
//   PSD      X symmetric, X >= 0     (SDP relaxation iterates)
//
// Contract (enforced by tests/learn/test_projection.cpp and the
// fuzz_projection driver):
//  - totality: any input, including non-finite entries, maps to a feasible
//    point (non-finite entries are deterministically sanitized first);
//  - idempotence: box projection is a bitwise fixed point (P(P(x)) == P(x));
//    simplex and PSD projections are fixed points to a few ULPs of the
//    iterate scale (their arithmetic re-runs through sums/eigensolves);
//  - determinism: results are pure functions of the input -- no global
//    state, no thread-count dependence.
#pragma once

#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/matrix.hpp"

namespace rcr::learn {

using num::Matrix;
using rcr::Vec;

/// Clamp v into [lo, hi] elementwise; a non-finite entry becomes the box
/// midpoint of its coordinate.  Requires lo[i] <= hi[i], both finite
/// (throws std::invalid_argument otherwise) -- and is then bitwise
/// idempotent.
void project_box(double* v, const double* lo, const double* hi,
                 std::size_t n);
Vec project_box(Vec v, const Vec& lo, const Vec& hi);

/// Euclidean projection onto {x >= 0, sum x = total} (Duchi et al.'s
/// sort-based algorithm).  `total` must be finite and >= 0 (throws
/// otherwise); total == 0 maps everything to the zero vector.  Non-finite
/// input entries are sanitized to 0 and huge magnitudes are clamped so the
/// internal prefix sums cannot overflow.
Vec project_simplex(Vec v, double total);

/// Projection onto the PSD cone in Frobenius norm: symmetrize, clamp the
/// negative eigenvalues of the symmetric part at zero, reconstruct.
/// Non-finite entries are sanitized to 0 first.  Throws
/// std::invalid_argument on a non-square input.
Matrix project_psd(const Matrix& a);

/// True when every entry of v lies in [lo - tol, hi + tol] and is finite.
bool box_feasible(const Vec& v, const Vec& lo, const Vec& hi,
                  double tol = 0.0);

/// True when v >= -tol elementwise and |sum v - total| <= tol * scale,
/// scale = max(1, |total|).
bool simplex_feasible(const Vec& v, double total, double tol = 1e-9);

}  // namespace rcr::learn
