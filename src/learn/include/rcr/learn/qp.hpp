// The serve-layer power QP, factored out as a first-class vocabulary type.
//
// Every tick the allocation service solves, per cell, the second-order
// Taylor model of the sum-rate power allocation around the equal split
// p0 = budget / n, in the step variable d = p - p0:
//
//   minimize  sum_i (1/2 curv_i d_i^2 + slope_i d_i) + lambda (1^T d)^2
//   subject to lo <= d <= hi            (box keeping p in [0, budget])
//
// i.e. a box QP whose Hessian is diagonal-plus-rank-one:
//   P = diag(curv) + 2 lambda 1 1^T.
// That structure is what makes a learned warm start cheap: the objective,
// gradient, projected-gradient residual, and even the *unconstrained*
// minimizer (via Sherman-Morrison) are all O(n), so the learned head and
// its acceptance checks cost a handful of passes over the RB axis.
//
// power_qp_coeffs is the single source of truth for the Taylor coefficients;
// serve::AllocationService::solve_cell calls it with arena pointers and the
// learn trainer/tests call it through make_power_qp, so the two sides can
// never drift apart bit-wise.
#pragma once

#include <cmath>
#include <cstddef>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::learn {

using rcr::Vec;

/// Non-owning view of one cell's power QP (all pointers length n).
struct PowerQp {
  const double* curv = nullptr;   ///< Diagonal of P (>= 0).
  const double* slope = nullptr;  ///< Linear term q.
  const double* lo = nullptr;     ///< Box lower bound (-p0).
  const double* hi = nullptr;     ///< Box upper bound (budget - p0).
  std::size_t n = 0;
  double lambda = 0.0;            ///< Soft budget penalty (P += 2 lambda 11^T).
  double p0 = 0.0;                ///< Equal-split power budget/n.
  double budget = 0.0;            ///< Total power budget.
  double max_curv = 0.0;          ///< max_i curv_i (feature normalizer).
};

/// Owning problem record (the trainer's dataset element).
struct PowerQpData {
  Vec curv, slope, lo, hi;
  std::size_t n = 0;
  double lambda = 0.0;
  double p0 = 0.0;
  double budget = 0.0;
  double max_curv = 0.0;

  PowerQp view() const {
    PowerQp qp;
    qp.curv = curv.data();
    qp.slope = slope.data();
    qp.lo = lo.data();
    qp.hi = hi.data();
    qp.n = n;
    qp.lambda = lambda;
    qp.p0 = p0;
    qp.budget = budget;
    qp.max_curv = max_curv;
    return qp;
  }
};

namespace detail {
constexpr double kInvLn2 = 1.4426950408889634074;  // 1 / ln 2
}

/// Second-order Taylor coefficients of -sum log2(1 + g p) at p0, written
/// into caller storage.  Returns max_i curv_i.  This is the exact loop the
/// serve tick ran before the learn layer existed -- same expressions, same
/// order, same bits.
inline double power_qp_coeffs(const double* gains, std::size_t n, double p0,
                              double* curv, double* slope) {
  double max_curv = 0.0;
  for (std::size_t rb = 0; rb < n; ++rb) {
    const double g = gains[rb];
    const double denom = 1.0 + g * p0;
    curv[rb] = g * g * detail::kInvLn2 / (denom * denom);
    slope[rb] = -g * detail::kInvLn2 / denom;
    if (curv[rb] > max_curv) max_curv = curv[rb];
  }
  return max_curv;
}

/// Assemble the owning record for per-RB `gains` exactly the way the serve
/// tick loop does (p0 = budget/n, lambda = penalty * max(max_curv, 1),
/// box d in [-p0, budget - p0]).
PowerQpData make_power_qp(const Vec& gains, double budget,
                          double budget_penalty = 1.0);

/// f(z) = sum_i (1/2 curv_i z_i^2 + slope_i z_i) + lambda (sum_i z_i)^2.
double qp_objective(const PowerQp& qp, const double* z);

/// g_i = curv_i z_i + slope_i + 2 lambda sum_j z_j, into caller storage.
void qp_gradient(const PowerQp& qp, const double* z, double* g);

/// Projected-gradient residual ||z - clamp(z - g(z), lo, hi)||_2: zero
/// exactly at the box-constrained optimum, and a schedule-independent O(n)
/// proxy for "how many ADMM iterations away is this start point".
double pg_residual(const PowerQp& qp, const double* z);

/// Unconstrained minimizer of f via Sherman-Morrison on
/// (diag(curv) + 2 lambda 11^T) d = -slope, into caller storage.  Vanishing
/// curvature entries are ridge-guarded so the solve is total.
void unconstrained_minimizer(const PowerQp& qp, double* d);

/// Scaled ADMM dual consistent with primal z at penalty rho:
/// u = -(P z + slope) / rho (exact at the fixed point), into caller storage.
void stationarity_dual(const PowerQp& qp, const double* z, double rho,
                       double* u);

}  // namespace rcr::learn
