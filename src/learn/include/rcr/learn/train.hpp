// Unsupervised training for the warm-start predictor.
//
// No labels: the loss is the QP objective itself (Wang et al.,
// arXiv:2407.03668's projection-based unsupervised recipe).  Because the box
// projection is the final layer, every training iterate is feasible and the
// "constraint violation penalty" reduces to the clamp's zero gradient
// outside the active box -- the network only learns to move mass where
// moving mass is legal.
//
// Two stages:
//   A. MLP correction head: minibatch Adam on an rcr::nn::Sequential that
//      mirrors MlpWeights exactly (Dense/ReLU/Dense/ReLU/Dense/Tanh, one
//      batch row per RB).  Gradient of f(clamp(d_unc + p0 * out)) w.r.t.
//      out, masked by the active set, feeds Sequential::backward.
//   B. Unrolled-ADMM knobs (2K scalars): L-BFGS with numerical gradients on
//      the mean post-refinement projected-gradient residual.  The parameter
//      count is tiny, so numerical differentiation is cheap and exact
//      enough.
//
// Everything is single-threaded and seeded: the same (dataset, config) pair
// reproduces the same predictor bit-for-bit, which is what lets the golden
// artifact be regenerated deterministically under RCR_REGEN_GOLDEN.
#pragma once

#include <cstdint>
#include <vector>

#include "rcr/learn/predictor.hpp"

namespace rcr::learn {

struct TrainConfig {
  std::size_t hidden = 16;          ///< MLP hidden width.
  std::size_t unrolled_steps = 4;   ///< K.
  double rho = 1.0;                 ///< Initial / serve-side ADMM penalty.
  std::size_t epochs = 30;          ///< Stage-A passes over the dataset.
  std::size_t batch_problems = 8;   ///< Problems per stage-A minibatch.
  double learning_rate = 3e-3;      ///< Stage-A Adam step.
  std::size_t lbfgs_iterations = 40;  ///< Stage-B budget (0 disables B).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< Init + shuffle stream.
};

struct TrainReport {
  std::size_t problems = 0;
  double initial_loss = 0.0;   ///< Mean normalized objective, epoch 0 start.
  double final_loss = 0.0;     ///< Same after stage A.
  double initial_residual = 0.0;  ///< Mean pg_residual of zero-MLP predict.
  double final_residual = 0.0;    ///< Mean pg_residual of trained predict.
};

/// Mean projected-gradient residual of the full predict pipeline over the
/// dataset (the stage-B objective and the headline eval metric).
double mean_pg_residual(const std::vector<PowerQpData>& dataset,
                        const WarmStartPredictor& p, double rho);

/// Train on `dataset` (throws std::invalid_argument when empty).
WarmStartPredictor train_predictor(const std::vector<PowerQpData>& dataset,
                                   const TrainConfig& config,
                                   TrainReport* report = nullptr);

}  // namespace rcr::learn
