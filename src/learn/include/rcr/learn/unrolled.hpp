// Deep-unrolled ADMM head (He et al., arXiv:2201.08994 style).
//
// A fixed, small number K of ADMM iterations on the power QP, where the
// per-step penalty rho_k and over-relaxation alpha_k are *learnable*
// parameters instead of hand-picked constants.  Because the QP Hessian is
// diagonal-plus-rank-one, each step's x-update is a closed-form
// Sherman-Morrison solve -- the whole head is O(K n) with no factorization,
// so it can run inside the per-cell solve path.
//
// The head refines a starting point (typically the MLP's projected output)
// rather than replacing the exact solver: its output is still only a warm
// start, validated by the opt-layer accept/reject contract before the sound
// tail consumes it.  Parameters live in a flat Vec (log-rho so positivity
// is free) so the trainer can drive them with L-BFGS.
#pragma once

#include <cstddef>

#include "rcr/learn/qp.hpp"

namespace rcr::learn {

/// Learnable per-step parameters for K unrolled iterations.
struct UnrolledParams {
  Vec log_rho;  ///< log penalty per step (rho_k = exp(log_rho[k])).
  Vec alpha;    ///< Over-relaxation per step (classic ADMM: 1.0).

  std::size_t steps() const { return log_rho.size(); }

  /// K steps of plain ADMM at penalty `rho` (log_rho = log rho, alpha = 1):
  /// the do-no-harm initialization training starts from.
  static UnrolledParams plain(std::size_t k, double rho);

  /// Flatten to a single parameter vector [log_rho..., alpha...] for the
  /// numerical-gradient trainer, and back.
  Vec pack() const;
  static UnrolledParams unpack(const Vec& flat);
};

/// Run the K unrolled steps in place on scaled-dual state (z, u), each of
/// length qp.n.  `scratch` must hold >= qp.n doubles.  Standard scaled-dual
/// ADMM with per-step rho_k, alpha_k:
///   x   = argmin_x f(x) + rho_k/2 ||x - z + u||^2     (Sherman-Morrison)
///   xh  = alpha_k x + (1 - alpha_k) z
///   z   = clamp(xh + u, lo, hi)
///   u  += xh - z
/// When rho changes between steps the dual is rescaled (u *= rho_prev /
/// rho_k) so the unscaled multiplier rho*u is continuous.
void unrolled_admm_run(const PowerQp& qp, const UnrolledParams& params,
                       double* z, double* u, double* scratch);

/// Rescale a scaled dual from penalty `rho_from` to `rho_to` (the unscaled
/// multiplier y = rho * u is the invariant).  No-op when equal.
void rescale_dual(double* u, std::size_t n, double rho_from, double rho_to);

}  // namespace rcr::learn
