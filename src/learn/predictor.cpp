#include "rcr/learn/predictor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "rcr/learn/project.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::learn {

bool MlpWeights::shape_ok() const {
  if (in != kFeatures) return false;
  if (hidden == 0 || hidden > kMaxHidden) return false;
  return w1.size() == hidden * in && b1.size() == hidden &&
         w2.size() == hidden * hidden && b2.size() == hidden &&
         w3.size() == hidden && b3.size() == 1;
}

bool WarmStartPredictor::shape_ok() const {
  return version >= 1 && mlp.shape_ok() &&
         unrolled.alpha.size() == unrolled.log_rho.size();
}

WarmStartPredictor random_predictor(std::size_t hidden, std::size_t steps,
                                    double rho, std::uint64_t seed) {
  if (hidden == 0 || hidden > kMaxHidden)
    throw std::invalid_argument("random_predictor: bad hidden width");
  num::Rng rng(seed);
  WarmStartPredictor p;
  p.mlp.hidden = hidden;
  const double b1 = std::sqrt(6.0 / static_cast<double>(kFeatures));
  const double b2 = std::sqrt(6.0 / static_cast<double>(hidden));
  p.mlp.w1 = rng.uniform_vec(hidden * kFeatures, -b1, b1);
  p.mlp.b1.assign(hidden, 0.0);
  p.mlp.w2 = rng.uniform_vec(hidden * hidden, -b2, b2);
  p.mlp.b2.assign(hidden, 0.0);
  p.mlp.w3 = rng.uniform_vec(hidden, -b2, b2);
  p.mlp.b3.assign(1, 0.0);
  p.unrolled = UnrolledParams::plain(steps, rho);
  return p;
}

WarmStartPredictor zero_predictor(std::size_t hidden, std::size_t steps,
                                  double rho) {
  WarmStartPredictor p = random_predictor(hidden, steps, rho, 1);
  std::fill(p.mlp.w3.begin(), p.mlp.w3.end(), 0.0);
  std::fill(p.mlp.b3.begin(), p.mlp.b3.end(), 0.0);
  return p;
}

FeatureScales feature_scales(const PowerQp& qp, const double* d_unc) {
  FeatureScales s;
  const double cscale = qp.max_curv > 0.0 ? qp.max_curv : 1.0;
  s.inv_curv = 1.0 / cscale;
  s.inv_slope = 1.0 / std::sqrt(cscale * detail::kInvLn2);
  s.inv_p0 = qp.p0 > 0.0 ? 1.0 / qp.p0 : 1.0;
  s.n_squash = 1.0 / (1.0 + static_cast<double>(qp.n) / 64.0);
  s.penalty = qp.lambda * s.inv_curv;
  double mean = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) mean += d_unc[i];
  mean = qp.n > 0 ? mean / static_cast<double>(qp.n) : 0.0;
  s.mean_dunc = std::clamp(mean * s.inv_p0, -4.0, 4.0);
  return s;
}

void fill_features(const PowerQp& qp, const FeatureScales& s,
                   const double* d_unc, std::size_t i, double* f) {
  f[0] = qp.curv[i] * s.inv_curv;
  f[1] = qp.slope[i] * s.inv_slope;
  f[2] = std::clamp(d_unc[i] * s.inv_p0, -4.0, 4.0);
  // Saturation g p0 / (1 + g p0) = p0 curv / (-slope); 0 for a dead RB.
  f[3] = qp.slope[i] != 0.0 ? qp.p0 * qp.curv[i] / (-qp.slope[i]) : 0.0;
  f[4] = s.n_squash;
  f[5] = s.penalty;
  f[6] = s.mean_dunc;
}

double mlp_forward(const MlpWeights& w, const double* f) {
  std::array<double, kMaxHidden> h1;
  std::array<double, kMaxHidden> h2;
  const std::size_t hd = w.hidden;
  for (std::size_t o = 0; o < hd; ++o) {
    double acc = w.b1[o];
    const double* row = w.w1.data() + o * w.in;
    for (std::size_t j = 0; j < w.in; ++j) acc += row[j] * f[j];
    h1[o] = acc > 0.0 ? acc : 0.0;
  }
  for (std::size_t o = 0; o < hd; ++o) {
    double acc = w.b2[o];
    const double* row = w.w2.data() + o * hd;
    for (std::size_t j = 0; j < hd; ++j) acc += row[j] * h1[j];
    h2[o] = acc > 0.0 ? acc : 0.0;
  }
  double acc = w.b3[0];
  for (std::size_t j = 0; j < hd; ++j) acc += w.w3[j] * h2[j];
  return std::tanh(acc);
}

void predict_warm_start(const PowerQp& qp, const WarmStartPredictor& p,
                        double rho_out, double* z, double* u,
                        double* scratch) {
  if (!p.shape_ok())
    throw std::invalid_argument("predict_warm_start: malformed predictor");
  if (!(rho_out > 0.0))
    throw std::invalid_argument("predict_warm_start: rho_out must be > 0");
  const std::size_t n = qp.n;
  double* d_unc = scratch;
  double* step_scratch = scratch + n;

  unconstrained_minimizer(qp, d_unc);
  const FeatureScales scales = feature_scales(qp, d_unc);
  std::array<double, kFeatures> f;
  for (std::size_t i = 0; i < n; ++i) {
    fill_features(qp, scales, d_unc, i, f.data());
    z[i] = d_unc[i] + qp.p0 * mlp_forward(p.mlp, f.data());
  }
  // Projection makes the seed feasible-by-construction: even NaN weights
  // only ever yield box midpoints here.
  project_box(z, qp.lo, qp.hi, n);

  for (std::size_t i = 0; i < n; ++i) u[i] = 0.0;
  if (p.unrolled.steps() > 0) {
    unrolled_admm_run(qp, p.unrolled, z, u, step_scratch);
    const double rho_last =
        std::clamp(std::exp(std::clamp(
                       p.unrolled.log_rho[p.unrolled.steps() - 1],
                       -20.0, 20.0)),
                   1e-8, 1e8);
    rescale_dual(u, n, rho_last, rho_out);
    // The z-update clamps every coordinate, so z is still box-feasible; the
    // dual rescale can meet non-finite only via a corrupted parameter, and
    // the opt-layer warm contract rejects that state downstream.
  } else {
    stationarity_dual(qp, z, rho_out, u);
  }
}

}  // namespace rcr::learn
