#include "rcr/learn/project.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rcr::learn {

namespace {
// Magnitude cap applied before the simplex prefix sums: large enough that no
// sane iterate is ever touched, small enough that summing 2^20 capped
// entries cannot overflow a double.
constexpr double kSimplexCap = 1e100;
}  // namespace

void project_box(double* v, const double* lo, const double* hi,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lo[i] <= hi[i]) || !std::isfinite(lo[i]) || !std::isfinite(hi[i]))
      throw std::invalid_argument("project_box: invalid bounds");
    double x = v[i];
    if (!std::isfinite(x)) x = 0.5 * (lo[i] + hi[i]);
    v[i] = std::clamp(x, lo[i], hi[i]);
  }
}

Vec project_box(Vec v, const Vec& lo, const Vec& hi) {
  if (v.size() != lo.size() || v.size() != hi.size())
    throw std::invalid_argument("project_box: size mismatch");
  project_box(v.data(), lo.data(), hi.data(), v.size());
  return v;
}

Vec project_simplex(Vec v, double total) {
  if (!std::isfinite(total) || total < 0.0)
    throw std::invalid_argument("project_simplex: total must be finite, >= 0");
  const std::size_t n = v.size();
  if (n == 0) return v;
  if (total == 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return v;
  }
  for (double& x : v) {
    if (!std::isfinite(x)) x = 0.0;
    x = std::clamp(x, -kSimplexCap, kSimplexCap);
  }
  // Duchi et al. (2008): sort descending, find the largest k with
  // u_k - (prefix_k - total) / k > 0, shift by that theta, clamp at zero.
  std::vector<double> u(v.begin(), v.end());
  std::sort(u.begin(), u.end(), std::greater<double>());
  double prefix = 0.0;
  double theta = 0.0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix += u[i];
    const double cand = (prefix - total) / static_cast<double>(i + 1);
    if (u[i] - cand > 0.0) {
      theta = cand;
      k = i + 1;
    }
  }
  if (k == 0) {
    // All mass collapses onto the single largest coordinate (can only happen
    // through ties at extreme magnitudes); fall back to the uniform point,
    // which is always feasible.
    const double p = total / static_cast<double>(n);
    std::fill(v.begin(), v.end(), p);
    return v;
  }
  for (double& x : v) x = std::max(x - theta, 0.0);
  // At magnitudes near kSimplexCap the shift above cancels catastrophically
  // (absolute error up to |theta| * eps), so the mass can land far from
  // `total`.  A final exact rescale makes feasibility structural: the
  // output is nonnegative by construction and sums to `total` up to a few
  // ulps regardless of the input's conditioning.
  const double sum = std::accumulate(v.begin(), v.end(), 0.0);
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    const double p = total / static_cast<double>(n);
    std::fill(v.begin(), v.end(), p);
    return v;
  }
  const double scale = total / sum;
  if (scale != 1.0)
    for (double& x : v) x *= scale;
  return v;
}

Matrix project_psd(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("project_psd: matrix must be square");
  const std::size_t n = a.rows();
  Matrix sym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double x = a(i, j);
      double y = a(j, i);
      if (!std::isfinite(x)) x = 0.0;
      if (!std::isfinite(y)) y = 0.0;
      sym(i, j) = 0.5 * (x + y);
    }
  }
  return num::project_psd(sym);
}

bool box_feasible(const Vec& v, const Vec& lo, const Vec& hi, double tol) {
  if (v.size() != lo.size() || v.size() != hi.size()) return false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return false;
    if (v[i] < lo[i] - tol || v[i] > hi[i] + tol) return false;
  }
  return true;
}

bool simplex_feasible(const Vec& v, double total, double tol) {
  double sum = 0.0;
  for (double x : v) {
    if (!std::isfinite(x) || x < -tol) return false;
    sum += x;
  }
  return std::abs(sum - total) <= tol * std::max(1.0, std::abs(total));
}

}  // namespace rcr::learn
