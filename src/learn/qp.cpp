#include "rcr/learn/qp.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcr::learn {

namespace {
// Ridge floor for vanishing curvature entries (zero-gain RBs): keeps the
// diagonal solves in unconstrained_minimizer total without perturbing any
// RB that actually carries signal.
constexpr double kCurvFloor = 1e-12;
}  // namespace

PowerQpData make_power_qp(const Vec& gains, double budget,
                          double budget_penalty) {
  if (gains.empty()) throw std::invalid_argument("make_power_qp: empty gains");
  if (!(budget > 0.0))
    throw std::invalid_argument("make_power_qp: budget must be positive");
  PowerQpData qp;
  qp.n = gains.size();
  qp.budget = budget;
  qp.p0 = budget / static_cast<double>(qp.n);
  qp.curv.resize(qp.n);
  qp.slope.resize(qp.n);
  qp.max_curv =
      power_qp_coeffs(gains.data(), qp.n, qp.p0, qp.curv.data(),
                      qp.slope.data());
  qp.lambda = budget_penalty * (qp.max_curv > 0.0 ? qp.max_curv : 1.0);
  qp.lo.assign(qp.n, -qp.p0);
  qp.hi.assign(qp.n, budget - qp.p0);
  return qp;
}

double qp_objective(const PowerQp& qp, const double* z) {
  double quad = 0.0;
  double lin = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) {
    quad += qp.curv[i] * z[i] * z[i];
    lin += qp.slope[i] * z[i];
    total += z[i];
  }
  return 0.5 * quad + lin + qp.lambda * total * total;
}

void qp_gradient(const PowerQp& qp, const double* z, double* g) {
  double total = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) total += z[i];
  const double coupling = 2.0 * qp.lambda * total;
  for (std::size_t i = 0; i < qp.n; ++i)
    g[i] = qp.curv[i] * z[i] + qp.slope[i] + coupling;
}

double pg_residual(const PowerQp& qp, const double* z) {
  double total = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) total += z[i];
  const double coupling = 2.0 * qp.lambda * total;
  double sq = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) {
    const double g = qp.curv[i] * z[i] + qp.slope[i] + coupling;
    const double stepped = std::clamp(z[i] - g, qp.lo[i], qp.hi[i]);
    const double r = z[i] - stepped;
    sq += r * r;
  }
  return std::sqrt(sq);
}

void unconstrained_minimizer(const PowerQp& qp, double* d) {
  // (S + c 11^T) d = -slope with S = diag(max(curv, floor)), c = 2 lambda:
  //   d = -S^-1 slope + (c * 1^T S^-1 slope) / (1 + c * 1^T S^-1 1) * S^-1 1.
  const double c = 2.0 * qp.lambda;
  double s_inv_q = 0.0;  // 1^T S^-1 slope
  double s_inv_1 = 0.0;  // 1^T S^-1 1
  for (std::size_t i = 0; i < qp.n; ++i) {
    const double s = std::max(qp.curv[i], kCurvFloor);
    s_inv_q += qp.slope[i] / s;
    s_inv_1 += 1.0 / s;
  }
  const double gamma = (c * s_inv_q) / (1.0 + c * s_inv_1);
  for (std::size_t i = 0; i < qp.n; ++i) {
    const double s = std::max(qp.curv[i], kCurvFloor);
    d[i] = (-qp.slope[i] + gamma) / s;
  }
}

void stationarity_dual(const PowerQp& qp, const double* z, double rho,
                       double* u) {
  double total = 0.0;
  for (std::size_t i = 0; i < qp.n; ++i) total += z[i];
  const double coupling = 2.0 * qp.lambda * total;
  const double inv_rho = 1.0 / rho;
  for (std::size_t i = 0; i < qp.n; ++i)
    u[i] = -(qp.curv[i] * z[i] + qp.slope[i] + coupling) * inv_rho;
}

}  // namespace rcr::learn
