#include "rcr/learn/train.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rcr/learn/project.hpp"
#include "rcr/nn/layers_basic.hpp"
#include "rcr/nn/network.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/lbfgs.hpp"

namespace rcr::learn {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Weight-independent per-problem precomputation for stage A.
struct ProblemPrep {
  Vec d_unc;
  Vec features;    // n x kFeatures, row-major.
  double inv_ref;  // 1 / (|f(clamp(d_unc))| + 1): loss normalizer.
};

ProblemPrep prepare(const PowerQpData& data) {
  const PowerQp qp = data.view();
  ProblemPrep prep;
  prep.d_unc.resize(qp.n);
  unconstrained_minimizer(qp, prep.d_unc.data());
  const FeatureScales scales = feature_scales(qp, prep.d_unc.data());
  prep.features.resize(qp.n * kFeatures);
  for (std::size_t i = 0; i < qp.n; ++i)
    fill_features(qp, scales, prep.d_unc.data(), i,
                  prep.features.data() + i * kFeatures);
  Vec ref = prep.d_unc;
  project_box(ref.data(), qp.lo, qp.hi, qp.n);
  prep.inv_ref = 1.0 / (std::abs(qp_objective(qp, ref.data())) + 1.0);
  return prep;
}

// Loss of one problem given the MLP outputs for its rows, and the gradient
// of that loss w.r.t. each output (masked by the clamp's active set).
double problem_loss_and_grad(const PowerQp& qp, const ProblemPrep& prep,
                             const double* out, double* grad_out) {
  Vec z(qp.n);
  std::vector<bool> interior(qp.n);
  for (std::size_t i = 0; i < qp.n; ++i) {
    const double raw = prep.d_unc[i] + qp.p0 * out[i];
    z[i] = std::clamp(raw, qp.lo[i], qp.hi[i]);
    interior[i] = raw > qp.lo[i] && raw < qp.hi[i];
  }
  const double loss = qp_objective(qp, z.data()) * prep.inv_ref;
  if (grad_out) {
    double total = 0.0;
    for (double v : z) total += v;
    const double coupling = 2.0 * qp.lambda * total;
    for (std::size_t i = 0; i < qp.n; ++i) {
      const double df =
          qp.curv[i] * z[i] + qp.slope[i] + coupling;  // df/dz_i
      grad_out[i] = interior[i] ? df * qp.p0 * prep.inv_ref : 0.0;
    }
  }
  return loss;
}

// Copy the Sequential's parameter blocks into the flat inference struct.
// Block order is the layer order: Dense exposes weight then bias.
void sync_weights(nn::Sequential& net, MlpWeights& w) {
  const std::vector<nn::ParamRef> params = net.params();
  std::array<Vec*, 6> dst = {&w.w1, &w.b1, &w.w2, &w.b2, &w.w3, &w.b3};
  if (params.size() != dst.size())
    throw std::runtime_error("sync_weights: unexpected block count");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (params[i].value->size() != dst[i]->size())
      throw std::runtime_error("sync_weights: block size mismatch");
    *dst[i] = *params[i].value;
  }
}

}  // namespace

double mean_pg_residual(const std::vector<PowerQpData>& dataset,
                        const WarmStartPredictor& p, double rho) {
  if (dataset.empty()) return 0.0;
  double sum = 0.0;
  Vec z, u, scratch, cold;
  for (const PowerQpData& data : dataset) {
    const PowerQp qp = data.view();
    z.resize(qp.n);
    u.resize(qp.n);
    scratch.resize(2 * qp.n);
    predict_warm_start(qp, p, rho, z.data(), u.data(), scratch.data());
    // Normalize by the cold start's residual (z = 0 is the exact solver's
    // cold initialization) so problems of different scales weigh equally
    // and the metric reads as "fraction of the cold residual remaining".
    cold.assign(qp.n, 0.0);
    const double denom = pg_residual(qp, cold.data()) + 1e-300;
    sum += pg_residual(qp, z.data()) / denom;
  }
  return sum / static_cast<double>(dataset.size());
}

WarmStartPredictor train_predictor(const std::vector<PowerQpData>& dataset,
                                   const TrainConfig& config,
                                   TrainReport* report) {
  if (dataset.empty())
    throw std::invalid_argument("train_predictor: empty dataset");
  if (config.hidden == 0 || config.hidden > kMaxHidden)
    throw std::invalid_argument("train_predictor: bad hidden width");

  std::vector<ProblemPrep> prep;
  prep.reserve(dataset.size());
  for (const PowerQpData& d : dataset) prep.push_back(prepare(d));

  num::Rng rng(config.seed);
  nn::Sequential net;
  net.emplace<nn::Dense>(kFeatures, config.hidden, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(config.hidden, config.hidden, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(config.hidden, 1, rng);
  net.emplace<nn::Tanh>();
  nn::Adam adam(config.learning_rate);

  const auto dataset_loss = [&]() {
    double sum = 0.0;
    for (std::size_t p = 0; p < dataset.size(); ++p) {
      const PowerQp qp = dataset[p].view();
      nn::Tensor x({qp.n, kFeatures}, prep[p].features);
      nn::Tensor out = net.forward(x, /*training=*/false);
      sum += problem_loss_and_grad(qp, prep[p], out.data().data(), nullptr);
    }
    return sum / static_cast<double>(dataset.size());
  };

  TrainReport local;
  TrainReport& rep = report ? *report : local;
  rep.problems = dataset.size();
  rep.initial_loss = dataset_loss();

  // Stage A: minibatch Adam on the per-RB correction head.
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::uint64_t shuffle_state = config.seed ^ 0xa5a5a5a5a5a5a5a5ull;
  const std::size_t batch =
      std::max<std::size_t>(1, config.batch_problems);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[splitmix64(shuffle_state) % i]);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t stop = std::min(start + batch, order.size());
      std::size_t rows = 0;
      for (std::size_t b = start; b < stop; ++b)
        rows += dataset[order[b]].n;
      nn::Tensor x({rows, kFeatures});
      std::size_t row = 0;
      for (std::size_t b = start; b < stop; ++b) {
        const ProblemPrep& pp = prep[order[b]];
        std::copy(pp.features.begin(), pp.features.end(),
                  x.data().begin() + static_cast<long>(row * kFeatures));
        row += dataset[order[b]].n;
      }
      nn::Tensor out = net.forward(x, /*training=*/true);
      nn::Tensor grad({rows, 1});
      row = 0;
      const double inv_batch = 1.0 / static_cast<double>(stop - start);
      for (std::size_t b = start; b < stop; ++b) {
        const PowerQp qp = dataset[order[b]].view();
        problem_loss_and_grad(qp, prep[order[b]],
                              out.data().data() + row,
                              grad.data().data() + row);
        row += qp.n;
      }
      for (double& g : grad.data()) g *= inv_batch;
      net.zero_grad();
      net.backward(grad);
      adam.step(net.params());
    }
  }
  rep.final_loss = dataset_loss();

  WarmStartPredictor p;
  p.version = 1;
  p.mlp.hidden = config.hidden;
  p.mlp.w1.resize(config.hidden * kFeatures);
  p.mlp.b1.resize(config.hidden);
  p.mlp.w2.resize(config.hidden * config.hidden);
  p.mlp.b2.resize(config.hidden);
  p.mlp.w3.resize(config.hidden);
  p.mlp.b3.resize(1);
  sync_weights(net, p.mlp);
  p.unrolled = UnrolledParams::plain(config.unrolled_steps, config.rho);

  {
    WarmStartPredictor baseline =
        zero_predictor(config.hidden, config.unrolled_steps, config.rho);
    rep.initial_residual =
        mean_pg_residual(dataset, baseline, config.rho);
  }

  // Stage B: tune the 2K unrolled knobs on the end-to-end residual.
  if (config.unrolled_steps > 0 && config.lbfgs_iterations > 0) {
    const auto value = [&](const Vec& flat) {
      WarmStartPredictor cand = p;
      cand.unrolled = UnrolledParams::unpack(flat);
      return mean_pg_residual(dataset, cand, config.rho);
    };
    opt::MinimizeOptions mopts;
    mopts.max_iterations = config.lbfgs_iterations;
    mopts.gradient_tolerance = 1e-10;
    opt::MinimizeResult r = opt::lbfgs(
        opt::with_numerical_gradient(value, 1e-5), p.unrolled.pack(), mopts);
    const UnrolledParams tuned = UnrolledParams::unpack(r.x);
    // Keep the tuned knobs only if they actually helped (L-BFGS can stall
    // on this nonsmooth surface; plain ADMM steps are the safe fallback).
    if (mean_pg_residual(dataset, {1, p.mlp, tuned}, config.rho) <
        mean_pg_residual(dataset, p, config.rho))
      p.unrolled = tuned;
  }

  rep.final_residual = mean_pg_residual(dataset, p, config.rho);
  return p;
}

}  // namespace rcr::learn
