#include "rcr/learn/unrolled.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rcr::learn {

UnrolledParams UnrolledParams::plain(std::size_t k, double rho) {
  if (!(rho > 0.0))
    throw std::invalid_argument("UnrolledParams::plain: rho must be positive");
  UnrolledParams p;
  p.log_rho.assign(k, std::log(rho));
  p.alpha.assign(k, 1.0);
  return p;
}

Vec UnrolledParams::pack() const {
  Vec flat;
  flat.reserve(log_rho.size() + alpha.size());
  flat.insert(flat.end(), log_rho.begin(), log_rho.end());
  flat.insert(flat.end(), alpha.begin(), alpha.end());
  return flat;
}

UnrolledParams UnrolledParams::unpack(const Vec& flat) {
  if (flat.size() % 2 != 0)
    throw std::invalid_argument("UnrolledParams::unpack: odd length");
  const std::size_t k = flat.size() / 2;
  UnrolledParams p;
  p.log_rho.assign(flat.begin(), flat.begin() + static_cast<long>(k));
  p.alpha.assign(flat.begin() + static_cast<long>(k), flat.end());
  return p;
}

void rescale_dual(double* u, std::size_t n, double rho_from, double rho_to) {
  if (rho_from == rho_to) return;
  const double scale = rho_from / rho_to;
  for (std::size_t i = 0; i < n; ++i) u[i] *= scale;
}

void unrolled_admm_run(const PowerQp& qp, const UnrolledParams& params,
                       double* z, double* u, double* scratch) {
  if (params.alpha.size() != params.log_rho.size())
    throw std::invalid_argument("unrolled_admm_run: ragged params");
  const std::size_t n = qp.n;
  const double c = 2.0 * qp.lambda;
  double* x = scratch;
  double rho_prev = 0.0;
  for (std::size_t k = 0; k < params.steps(); ++k) {
    // Clamp the learnable knobs to a sane region: training explores freely
    // but a wild parameter (or corrupted artifact) cannot make a step
    // amplify the iterate unboundedly.
    const double rho =
        std::clamp(std::exp(std::clamp(params.log_rho[k], -20.0, 20.0)),
                   1e-8, 1e8);
    const double alpha = std::clamp(params.alpha[k], 0.1, 1.9);
    if (k > 0) rescale_dual(u, n, rho_prev, rho);
    rho_prev = rho;

    // x-update: (diag(curv) + c 11^T + rho I) x = rho (z - u) - slope.
    // Sherman-Morrison with S = diag(curv + rho):
    //   x = S^-1 b - (c 1^T S^-1 b) / (1 + c 1^T S^-1 1) S^-1 1.
    double s_inv_b = 0.0;
    double s_inv_1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = qp.curv[i] + rho;
      const double b = rho * (z[i] - u[i]) - qp.slope[i];
      x[i] = b / s;
      s_inv_b += x[i];
      s_inv_1 += 1.0 / s;
    }
    const double gamma = (c * s_inv_b) / (1.0 + c * s_inv_1);
    for (std::size_t i = 0; i < n; ++i) {
      const double s = qp.curv[i] + rho;
      x[i] -= gamma / s;
    }

    for (std::size_t i = 0; i < n; ++i) {
      const double xh = alpha * x[i] + (1.0 - alpha) * z[i];
      const double znew = std::clamp(xh + u[i], qp.lo[i], qp.hi[i]);
      u[i] += xh - znew;
      z[i] = znew;
    }
  }
}

}  // namespace rcr::learn
