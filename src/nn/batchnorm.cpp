#include "rcr/nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::nn {

std::string to_string(BatchNormPlacement p) {
  switch (p) {
    case BatchNormPlacement::kNone:
      return "none";
    case BatchNormPlacement::kSelective:
      return "selective";
    case BatchNormPlacement::kAllLayers:
      return "all-layers";
  }
  return "unknown";
}

BatchNorm1d::BatchNorm1d(std::size_t features, double momentum, double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(features, 1.0),
      beta_(features, 0.0),
      gamma_grad_(features, 0.0),
      beta_grad_(features, 0.0),
      running_mean_(features, 0.0),
      running_var_(features, 1.0) {}

Tensor BatchNorm1d::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != features_)
    throw std::invalid_argument("BatchNorm1d::forward: bad shape " +
                                input.shape_string());
  const std::size_t batch = input.dim(0);
  Tensor out(input.shape());
  normalized_cache_ = Tensor(input.shape());
  batch_inv_std_.assign(features_, 0.0);
  training_cache_ = training;

  for (std::size_t f = 0; f < features_; ++f) {
    double mean;
    double var;
    if (training) {
      mean = 0.0;
      for (std::size_t b = 0; b < batch; ++b) mean += input.at2(b, f);
      mean /= static_cast<double>(batch);
      var = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const double d = input.at2(b, f) - mean;
        var += d * d;
      }
      var /= static_cast<double>(batch);
      running_mean_[f] = (1.0 - momentum_) * running_mean_[f] + momentum_ * mean;
      running_var_[f] = (1.0 - momentum_) * running_var_[f] + momentum_ * var;
    } else {
      mean = running_mean_[f];
      var = running_var_[f];
    }
    const double inv_std = 1.0 / std::sqrt(var + epsilon_);
    batch_inv_std_[f] = inv_std;
    for (std::size_t b = 0; b < batch; ++b) {
      const double xhat = (input.at2(b, f) - mean) * inv_std;
      normalized_cache_.at2(b, f) = xhat;
      out.at2(b, f) = gamma_[f] * xhat + beta_[f];
    }
  }
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  const auto nb = static_cast<double>(batch);
  Tensor grad_input(grad_output.shape());

  for (std::size_t f = 0; f < features_; ++f) {
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const double g = grad_output.at2(b, f);
      sum_g += g;
      sum_gx += g * normalized_cache_.at2(b, f);
    }
    beta_grad_[f] += sum_g;
    gamma_grad_[f] += sum_gx;
    if (training_cache_) {
      // dL/dx = gamma * inv_std / N * (N*g - sum_g - xhat * sum_gx).
      const double coeff = gamma_[f] * batch_inv_std_[f] / nb;
      for (std::size_t b = 0; b < batch; ++b) {
        const double g = grad_output.at2(b, f);
        grad_input.at2(b, f) =
            coeff * (nb * g - sum_g - normalized_cache_.at2(b, f) * sum_gx);
      }
    } else {
      // Eval mode normalizes with *running* statistics, which are constants
      // w.r.t. the input: the map is affine, dL/dx = gamma * inv_std * g.
      const double coeff = gamma_[f] * batch_inv_std_[f];
      for (std::size_t b = 0; b < batch; ++b)
        grad_input.at2(b, f) = coeff * grad_output.at2(b, f);
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm1d::params() {
  return {{&gamma_, &gamma_grad_, "bn1d.gamma"},
          {&beta_, &beta_grad_, "bn1d.beta"}};
}

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum, double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(channels, 1.0),
      beta_(channels, 0.0),
      gamma_grad_(channels, 0.0),
      beta_grad_(channels, 0.0),
      running_mean_(channels, 0.0),
      running_var_(channels, 1.0) {}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d::forward: bad shape " +
                                input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t area = h * w;
  const auto count = static_cast<double>(batch * area);

  Tensor out(input.shape());
  normalized_cache_ = Tensor(input.shape());
  batch_inv_std_.assign(channels_, 0.0);
  training_cache_ = training;

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean;
    double var;
    if (training) {
      mean = 0.0;
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t k = 0; k < area; ++k)
          mean += input[(b * channels_ + c) * area + k];
      mean /= count;
      var = 0.0;
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t k = 0; k < area; ++k) {
          const double d = input[(b * channels_ + c) * area + k] - mean;
          var += d * d;
        }
      var /= count;
      running_mean_[c] = (1.0 - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0 - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const double inv_std = 1.0 / std::sqrt(var + epsilon_);
    batch_inv_std_[c] = inv_std;
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t k = 0; k < area; ++k) {
        const std::size_t idx = (b * channels_ + c) * area + k;
        const double xhat = (input[idx] - mean) * inv_std;
        normalized_cache_[idx] = xhat;
        out[idx] = gamma_[c] * xhat + beta_[c];
      }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  const std::size_t area = grad_output.dim(2) * grad_output.dim(3);
  const auto count = static_cast<double>(batch * area);
  Tensor grad_input(grad_output.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t k = 0; k < area; ++k) {
        const std::size_t idx = (b * channels_ + c) * area + k;
        sum_g += grad_output[idx];
        sum_gx += grad_output[idx] * normalized_cache_[idx];
      }
    beta_grad_[c] += sum_g;
    gamma_grad_[c] += sum_gx;
    if (training_cache_) {
      const double coeff = gamma_[c] * batch_inv_std_[c] / count;
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t k = 0; k < area; ++k) {
          const std::size_t idx = (b * channels_ + c) * area + k;
          grad_input[idx] = coeff * (count * grad_output[idx] - sum_g -
                                     normalized_cache_[idx] * sum_gx);
        }
    } else {
      // Running statistics are constants in eval mode: affine map only.
      const double coeff = gamma_[c] * batch_inv_std_[c];
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t k = 0; k < area; ++k) {
          const std::size_t idx = (b * channels_ + c) * area + k;
          grad_input[idx] = coeff * grad_output[idx];
        }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {{&gamma_, &gamma_grad_, "bn2d.gamma"},
          {&beta_, &beta_grad_, "bn2d.beta"}};
}

}  // namespace rcr::nn
