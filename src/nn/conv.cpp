#include "rcr/nn/conv.hpp"

#include <limits>
#include <stdexcept>

#include "rcr/rt/parallel.hpp"
#include "rcr/rt/scratch_arena.hpp"

namespace rcr::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               num::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(out_channels * in_channels * kernel * kernel),
      bias_(out_channels, 0.0),
      weight_grad_(weight_.size(), 0.0),
      bias_grad_(out_channels, 0.0) {
  if (kernel == 0 || stride == 0)
    throw std::invalid_argument("Conv2d: zero kernel or stride");
  const double bound = he_bound(in_channels * kernel * kernel);
  for (double& w : weight_) w = rng.uniform(-bound, bound);
}

Tensor Conv2d::forward(const Tensor& input, bool) {
  Tensor out;
  forward_into(input, out);
  return out;
}

void Conv2d::forward_into(const Tensor& input, Tensor& out) {
  if (input.rank() != 4 || input.dim(1) != in_ch_)
    throw std::invalid_argument("Conv2d::forward: expected {B," +
                                std::to_string(in_ch_) + ",H,W}, got " +
                                input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  if (h + 2 * padding_ < kernel_ || w + 2 * padding_ < kernel_)
    throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
  const std::size_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;

  input_cache_ = input;
  out.assign4(batch, out_ch_, oh, ow);

  // Parallel over (batch, out-channel) planes: every output element is
  // written by exactly one task.  The inner loops run i -> r -> c with a
  // row accumulator over x, so each element still receives its terms in
  // ascending (i, r, c) order -- bit-identical to the naive 7-loop kernel --
  // while the input row `irow` and the kernel row `wrow` are walked
  // contiguously.  The row accumulator is arena scratch: each thread bumps
  // its own arena, and the scope rewinds it when the task block finishes.
  const double* in = input.data().data();
  rt::parallel_for(0, batch * out_ch_, 1, [&](std::size_t p0, std::size_t p1) {
    rt::ScratchArena& arena = rt::tls_arena();
    const auto scratch = arena.scope();
    double* acc = arena.alloc<double>(ow);
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t b = p / out_ch_;
      const std::size_t o = p % out_ch_;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) acc[x] = bias_[o];
        for (std::size_t i = 0; i < in_ch_; ++i) {
          for (std::size_t r = 0; r < kernel_; ++r) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * stride_ + r) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            const double* irow =
                in + ((b * in_ch_ + i) * h + static_cast<std::size_t>(iy)) * w;
            const double* wrow = weight_.data() + widx(o, i, r, 0);
            for (std::size_t c = 0; c < kernel_; ++c) {
              const double wv = wrow[c];
              // Valid x range: 0 <= x*stride + c - padding < w.
              std::size_t x_lo = 0;
              if (padding_ > c)
                x_lo = (padding_ - c + stride_ - 1) / stride_;
              for (std::size_t x = x_lo; x < ow; ++x) {
                const std::size_t ix = x * stride_ + c - padding_;
                if (ix >= w) break;
                acc[x] += wv * irow[ix];
              }
            }
          }
        }
        for (std::size_t x = 0; x < ow; ++x) out.at4(b, o, y, x) = acc[x];
      }
    }
  });
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  Tensor grad_input;
  backward_into(grad_output, grad_input);
  return grad_input;
}

void Conv2d::backward_into(const Tensor& grad_output, Tensor& grad_input) {
  const Tensor& input = input_cache_;
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = grad_output.dim(2);
  const std::size_t ow = grad_output.dim(3);

  // Two race-free passes that each preserve the serial accumulation order.
  //
  // Pass 1 -- grad_input, parallel over batch: sample b's input gradient
  // receives contributions only from sample b, in the same (o, y, x, i, r, c)
  // order the fused serial loop used.
  grad_input.assign(input.shape());
  rt::parallel_for(0, batch, 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      for (std::size_t o = 0; o < out_ch_; ++o) {
        for (std::size_t y = 0; y < oh; ++y) {
          for (std::size_t x = 0; x < ow; ++x) {
            const double g = grad_output.at4(b, o, y, x);
            if (g == 0.0) continue;
            for (std::size_t i = 0; i < in_ch_; ++i) {
              for (std::size_t r = 0; r < kernel_; ++r) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y * stride_ + r) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
                for (std::size_t c = 0; c < kernel_; ++c) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(x * stride_ + c) -
                      static_cast<std::ptrdiff_t>(padding_);
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                  grad_input.at4(b, i, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)) +=
                      g * weight_[widx(o, i, r, c)];
                }
              }
            }
          }
        }
      }
    }
  });

  // Pass 2 -- weight/bias gradients, parallel over out-channel: channel o's
  // gradient slice is owned by one task, accumulated over (b, y, x) in the
  // same ascending order as the serial loop.
  rt::parallel_for(0, out_ch_, 1, [&](std::size_t o0, std::size_t o1) {
    for (std::size_t o = o0; o < o1; ++o) {
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t y = 0; y < oh; ++y) {
          for (std::size_t x = 0; x < ow; ++x) {
            const double g = grad_output.at4(b, o, y, x);
            if (g == 0.0) continue;
            bias_grad_[o] += g;
            for (std::size_t i = 0; i < in_ch_; ++i) {
              for (std::size_t r = 0; r < kernel_; ++r) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(y * stride_ + r) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
                const double* irow =
                    input.data().data() +
                    ((b * in_ch_ + i) * h + static_cast<std::size_t>(iy)) * w;
                double* wgrow = weight_grad_.data() + widx(o, i, r, 0);
                for (std::size_t c = 0; c < kernel_; ++c) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(x * stride_ + c) -
                      static_cast<std::ptrdiff_t>(padding_);
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                  wgrow[c] += g * irow[static_cast<std::size_t>(ix)];
                }
              }
            }
          }
        }
      }
    }
  });
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &weight_grad_, "conv2d.weight"},
          {&bias_, &bias_grad_, "conv2d.bias"}};
}

ConvTranspose2d::ConvTranspose2d(std::size_t in_channels,
                                 std::size_t out_channels, std::size_t kernel,
                                 std::size_t stride, std::size_t padding,
                                 num::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(in_channels * out_channels * kernel * kernel),
      bias_(out_channels, 0.0),
      weight_grad_(weight_.size(), 0.0),
      bias_grad_(out_channels, 0.0) {
  if (kernel == 0 || stride == 0)
    throw std::invalid_argument("ConvTranspose2d: zero kernel or stride");
  if (2 * padding >= kernel)
    throw std::invalid_argument("ConvTranspose2d: padding too large");
  const double bound = he_bound(in_channels * kernel * kernel);
  for (double& w : weight_) w = rng.uniform(-bound, bound);
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool) {
  if (input.rank() != 4 || input.dim(1) != in_ch_)
    throw std::invalid_argument("ConvTranspose2d::forward: expected {B," +
                                std::to_string(in_ch_) + ",H,W}, got " +
                                input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = (h - 1) * stride_ + kernel_ - 2 * padding_;
  const std::size_t ow = (w - 1) * stride_ + kernel_ - 2 * padding_;

  input_cache_ = input;
  Tensor out({batch, out_ch_, oh, ow});

  // Gather form: every output element is written by exactly one task, so
  // parallelizing over (batch, out-channel) planes is race free and keeps
  // the serial accumulation order (i, r, c ascending) bit-identical.
  const double* in = input.data().data();
  rt::parallel_for(0, batch * out_ch_, 1, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t b = p / out_ch_;
      const std::size_t o = p % out_ch_;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          double acc = bias_[o];
          for (std::size_t i = 0; i < in_ch_; ++i) {
            for (std::size_t r = 0; r < kernel_; ++r) {
              // y = iy*stride + r - pad  =>  iy = (y + pad - r) / stride.
              const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y) +
                                        static_cast<std::ptrdiff_t>(padding_) -
                                        static_cast<std::ptrdiff_t>(r);
              if (ny < 0 || ny % static_cast<std::ptrdiff_t>(stride_) != 0)
                continue;
              const std::size_t iy =
                  static_cast<std::size_t>(ny) / stride_;
              if (iy >= h) continue;
              const double* irow = in + ((b * in_ch_ + i) * h + iy) * w;
              const double* wrow = weight_.data() + widx(i, o, r, 0);
              for (std::size_t c = 0; c < kernel_; ++c) {
                const std::ptrdiff_t nx =
                    static_cast<std::ptrdiff_t>(x) +
                    static_cast<std::ptrdiff_t>(padding_) -
                    static_cast<std::ptrdiff_t>(c);
                if (nx < 0 || nx % static_cast<std::ptrdiff_t>(stride_) != 0)
                  continue;
                const std::size_t ix =
                    static_cast<std::size_t>(nx) / stride_;
                if (ix >= w) continue;
                acc += wrow[c] * irow[ix];
              }
            }
          }
          out.at4(b, o, y, x) = acc;
        }
      }
    }
  });
  return out;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = grad_output.dim(2);
  const std::size_t ow = grad_output.dim(3);

  // grad_input is an ordinary strided correlation of grad_output with the
  // kernel: input element (iy, ix) touched output (iy*stride + r - pad,
  // ix*stride + c - pad).  Parallel over batch, each sample owned by one
  // task.
  Tensor grad_input(input.shape());
  rt::parallel_for(0, batch, 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      for (std::size_t i = 0; i < in_ch_; ++i) {
        for (std::size_t iy = 0; iy < h; ++iy) {
          for (std::size_t ix = 0; ix < w; ++ix) {
            double acc = 0.0;
            for (std::size_t o = 0; o < out_ch_; ++o) {
              for (std::size_t r = 0; r < kernel_; ++r) {
                const std::ptrdiff_t y =
                    static_cast<std::ptrdiff_t>(iy * stride_ + r) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (y < 0 || y >= static_cast<std::ptrdiff_t>(oh)) continue;
                const double* grow =
                    grad_output.data().data() +
                    ((b * out_ch_ + o) * oh + static_cast<std::size_t>(y)) *
                        ow;
                const double* wrow = weight_.data() + widx(i, o, r, 0);
                for (std::size_t c = 0; c < kernel_; ++c) {
                  const std::ptrdiff_t x =
                      static_cast<std::ptrdiff_t>(ix * stride_ + c) -
                      static_cast<std::ptrdiff_t>(padding_);
                  if (x < 0 || x >= static_cast<std::ptrdiff_t>(ow)) continue;
                  acc += wrow[c] * grow[static_cast<std::size_t>(x)];
                }
              }
            }
            grad_input.at4(b, i, iy, ix) = acc;
          }
        }
      }
    }
  });

  // Weight gradients: slice [i][...] is owned by one task.
  rt::parallel_for(0, in_ch_, 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t iy = 0; iy < h; ++iy) {
          for (std::size_t ix = 0; ix < w; ++ix) {
            const double v = input.at4(b, i, iy, ix);
            if (v == 0.0) continue;
            for (std::size_t o = 0; o < out_ch_; ++o) {
              for (std::size_t r = 0; r < kernel_; ++r) {
                const std::ptrdiff_t y =
                    static_cast<std::ptrdiff_t>(iy * stride_ + r) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (y < 0 || y >= static_cast<std::ptrdiff_t>(oh)) continue;
                const double* grow =
                    grad_output.data().data() +
                    ((b * out_ch_ + o) * oh + static_cast<std::size_t>(y)) *
                        ow;
                double* wgrow = weight_grad_.data() + widx(i, o, r, 0);
                for (std::size_t c = 0; c < kernel_; ++c) {
                  const std::ptrdiff_t x =
                      static_cast<std::ptrdiff_t>(ix * stride_ + c) -
                      static_cast<std::ptrdiff_t>(padding_);
                  if (x < 0 || x >= static_cast<std::ptrdiff_t>(ow)) continue;
                  wgrow[c] += v * grow[static_cast<std::size_t>(x)];
                }
              }
            }
          }
        }
      }
    }
  });

  for (std::size_t o = 0; o < out_ch_; ++o)
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x)
          bias_grad_[o] += grad_output.at4(b, o, y, x);

  return grad_input;
}

std::vector<ParamRef> ConvTranspose2d::params() {
  return {{&weight_, &weight_grad_, "conv_transpose2d.weight"},
          {&bias_, &bias_grad_, "conv_transpose2d.bias"}};
}

Tensor MaxPool2d::forward(const Tensor& input, bool) {
  if (input.rank() != 4)
    throw std::invalid_argument("MaxPool2d::forward: expected rank-4 input");
  const std::size_t batch = input.dim(0);
  const std::size_t ch = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  if (h % 2 != 0 || w % 2 != 0)
    throw std::invalid_argument("MaxPool2d::forward: odd spatial dims");
  input_shape_ = input.shape();

  Tensor out({batch, ch, h / 2, w / 2});
  argmax_.assign(out.size(), 0);
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t y = 0; y < h; y += 2) {
        for (std::size_t x = 0; x < w; x += 2) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t flat =
                  ((b * ch + c) * h + (y + dy)) * w + (x + dx);
              if (input[flat] > best) {
                best = input[flat];
                best_idx = flat;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
          ++oi;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool) {
  if (input.rank() != 4)
    throw std::invalid_argument("GlobalAvgPool::forward: expected rank-4");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  const std::size_t ch = input.dim(1);
  const std::size_t area = input.dim(2) * input.dim(3);
  Tensor out({batch, ch});
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t c = 0; c < ch; ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < area; ++k)
        acc += input[(b * ch + c) * area + k];
      out.at2(b, c) = acc / static_cast<double>(area);
    }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  const std::size_t batch = input_shape_[0];
  const std::size_t ch = input_shape_[1];
  const std::size_t area = input_shape_[2] * input_shape_[3];
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t c = 0; c < ch; ++c) {
      const double g = grad_output.at2(b, c) / static_cast<double>(area);
      for (std::size_t k = 0; k < area; ++k)
        grad_input[(b * ch + c) * area + k] = g;
    }
  return grad_input;
}

}  // namespace rcr::nn
