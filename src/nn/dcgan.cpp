#include "rcr/nn/dcgan.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::nn {

Sequential build_dcgan_generator(const DcganConfig& config) {
  num::Rng rng(config.seed);
  const std::size_t c = config.base_channels;
  Sequential g;
  g.emplace<Dense>(config.latent_dim, c * 4 * 4, rng);
  g.emplace<Relu>();
  g.emplace<Reshape>(std::vector<std::size_t>{c, 4, 4});
  // 4x4 -> 8x8.
  g.emplace<Upsample2x>();
  g.emplace<Conv2d>(c, c, 3, 1, 1, rng);
  if (config.placement != BatchNormPlacement::kNone)
    g.emplace<BatchNorm2d>(c);
  g.emplace<Relu>();
  // 8x8 -> 16x16.
  g.emplace<Upsample2x>();
  g.emplace<Conv2d>(c, c, 3, 1, 1, rng);
  if (config.placement == BatchNormPlacement::kAllLayers)
    g.emplace<BatchNorm2d>(c);  // generator output side (unstable recipe)
  g.emplace<Relu>();
  g.emplace<Conv2d>(c, 1, 3, 1, 1, rng);
  g.emplace<Sigmoid>();  // pixels in [0, 1]
  return g;
}

Sequential build_dcgan_discriminator(const DcganConfig& config) {
  num::Rng rng(config.seed + 1);
  const std::size_t c = config.base_channels;
  Sequential d;
  if (config.placement == BatchNormPlacement::kAllLayers)
    d.emplace<BatchNorm2d>(1);  // raw input (unstable recipe)
  d.emplace<Conv2d>(1, c, 3, 2, 1, rng);  // 16 -> 8
  d.emplace<LeakyRelu>(0.2);
  d.emplace<Conv2d>(c, 2 * c, 3, 2, 1, rng);  // 8 -> 4
  if (config.placement != BatchNormPlacement::kNone)
    d.emplace<BatchNorm2d>(2 * c);
  d.emplace<LeakyRelu>(0.2);
  d.emplace<Flatten>();
  d.emplace<Dense>(2 * c * 4 * 4, 1, rng);
  return d;
}

DcganTrainer::DcganTrainer(const DcganConfig& config,
                           const std::vector<ImageSample>& data)
    : config_(config),
      data_(data),
      rng_(config.seed + 7),
      generator_(build_dcgan_generator(config)),
      discriminator_(build_dcgan_discriminator(config)),
      g_opt_(config.lr_generator),
      d_opt_(config.lr_discriminator) {
  if (data_.empty())
    throw std::invalid_argument("DcganTrainer: empty dataset");
  for (const auto& s : data_)
    if (s.height != 16 || s.width != 16)
      throw std::invalid_argument("DcganTrainer: expects 16x16 images");
}

Tensor DcganTrainer::sample_latent(std::size_t n) {
  Tensor z({n, config_.latent_dim});
  for (double& v : z.data()) v = rng_.normal();
  return z;
}

Tensor DcganTrainer::sample_real(std::size_t n) {
  Tensor x({n, 1, 16, 16});
  for (std::size_t i = 0; i < n; ++i) {
    const ImageSample& s =
        data_[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<int>(data_.size()) - 1))];
    for (std::size_t k = 0; k < 256; ++k) x[i * 256 + k] = s.pixels[k];
  }
  return x;
}

void DcganTrainer::train() {
  const std::size_t half = config_.batch_size;
  for (std::size_t step = 0; step < config_.steps; ++step) {
    // ---- Discriminator: real and fake as separate batches (batchnorm
    // statistics stay per-type, matching the dense-GAN trainer).
    const Tensor real = sample_real(half);
    const Tensor fake = generator_.forward(sample_latent(half), true);

    discriminator_.zero_grad();
    const Tensor d_real = discriminator_.forward(real, true);
    const LossResult real_loss = bce_with_logits(d_real, Vec(half, 1.0));
    discriminator_.backward(real_loss.grad);
    const Tensor d_fake = discriminator_.forward(fake, true);
    const LossResult fake_loss = bce_with_logits(d_fake, Vec(half, 0.0));
    discriminator_.backward(fake_loss.grad);
    d_opt_.step(discriminator_.params());
    d_loss_history_.push_back(0.5 * (real_loss.value + fake_loss.value));

    // ---- Generator: non-saturating loss through the frozen D.
    generator_.zero_grad();
    const Tensor g_out = generator_.forward(sample_latent(half), true);
    discriminator_.zero_grad();
    const Tensor g_logits = discriminator_.forward(g_out, true);
    const LossResult g_loss = bce_with_logits(g_logits, Vec(half, 1.0));
    const Tensor grad_at_g = discriminator_.backward(g_loss.grad);
    generator_.backward(grad_at_g);
    g_opt_.step(generator_.params());
    discriminator_.zero_grad();
    g_loss_history_.push_back(g_loss.value);
  }
}

Tensor DcganTrainer::sample(std::size_t n) {
  return generator_.forward(sample_latent(n), false);
}

DcganMetrics DcganTrainer::metrics(std::size_t n) {
  DcganMetrics m;
  if (!d_loss_history_.empty()) m.d_loss_final = d_loss_history_.back();
  if (!g_loss_history_.empty()) m.g_loss_final = g_loss_history_.back();
  m.d_loss_history = d_loss_history_;
  m.g_loss_history = g_loss_history_;

  const Tensor gen = sample(n);
  // Mean pixel comparison.
  double gen_mean = 0.0;
  for (std::size_t i = 0; i < gen.size(); ++i) gen_mean += gen[i];
  gen_mean /= static_cast<double>(gen.size());
  double data_mean = 0.0;
  std::size_t data_count = 0;
  for (const auto& s : data_)
    for (double v : s.pixels) {
      data_mean += v;
      ++data_count;
    }
  data_mean /= static_cast<double>(data_count);
  m.mean_pixel_error = std::abs(gen_mean - data_mean);

  // Per-row energy profile (frequency occupancy for spectrograms).
  Vec gen_profile(16, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t r = 0; r < 16; ++r)
      for (std::size_t c = 0; c < 16; ++c)
        gen_profile[r] += gen.at4(i, 0, r, c);
  Vec data_profile(16, 0.0);
  for (const auto& s : data_)
    for (std::size_t r = 0; r < 16; ++r)
      for (std::size_t c = 0; c < 16; ++c)
        data_profile[r] += s.pixels[r * 16 + c];
  const double denom =
      num::norm2(gen_profile) * num::norm2(data_profile);
  m.row_profile_cosine =
      denom > 0.0 ? num::dot(gen_profile, data_profile) / denom : 0.0;
  return m;
}

}  // namespace rcr::nn
