#include "rcr/nn/fire.hpp"

#include <stdexcept>

namespace rcr::nn {

Fire::Fire(std::size_t in_channels, std::size_t squeeze, std::size_t expand1,
           std::size_t expand3, num::Rng& rng, std::size_t squeeze_stride)
    : expand1_ch_(expand1),
      expand3_ch_(expand3),
      squeeze_(in_channels, squeeze, 1, squeeze_stride, 0, rng),
      expand1_(squeeze, expand1, 1, 1, 0, rng),
      expand3_(squeeze, expand3, 3, 1, 1, rng) {
  if (expand1 == 0 && expand3 == 0)
    throw std::invalid_argument("Fire: no expand channels");
}

Tensor Fire::forward(const Tensor& input, bool training) {
  const Tensor squeezed =
      squeeze_relu_.forward(squeeze_.forward(input, training), training);
  squeezed_cache_ = squeezed;
  const Tensor e1 = expand1_.forward(squeezed, training);
  const Tensor e3 = expand3_.forward(squeezed, training);

  // Channel concatenation [e1 || e3].
  const std::size_t batch = e1.dim(0);
  const std::size_t h = e1.dim(2);
  const std::size_t w = e1.dim(3);
  const std::size_t area = h * w;
  Tensor cat({batch, expand1_ch_ + expand3_ch_, h, w});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < expand1_ch_; ++c)
      for (std::size_t k = 0; k < area; ++k)
        cat[(b * (expand1_ch_ + expand3_ch_) + c) * area + k] =
            e1[(b * expand1_ch_ + c) * area + k];
    for (std::size_t c = 0; c < expand3_ch_; ++c)
      for (std::size_t k = 0; k < area; ++k)
        cat[(b * (expand1_ch_ + expand3_ch_) + expand1_ch_ + c) * area + k] =
            e3[(b * expand3_ch_ + c) * area + k];
  }
  return out_relu_.forward(cat, training);
}

Tensor Fire::backward(const Tensor& grad_output) {
  const Tensor grad_cat = out_relu_.backward(grad_output);

  const std::size_t batch = grad_cat.dim(0);
  const std::size_t h = grad_cat.dim(2);
  const std::size_t w = grad_cat.dim(3);
  const std::size_t area = h * w;
  Tensor g1({batch, expand1_ch_, h, w});
  Tensor g3({batch, expand3_ch_, h, w});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < expand1_ch_; ++c)
      for (std::size_t k = 0; k < area; ++k)
        g1[(b * expand1_ch_ + c) * area + k] =
            grad_cat[(b * (expand1_ch_ + expand3_ch_) + c) * area + k];
    for (std::size_t c = 0; c < expand3_ch_; ++c)
      for (std::size_t k = 0; k < area; ++k)
        g3[(b * expand3_ch_ + c) * area + k] =
            grad_cat[(b * (expand1_ch_ + expand3_ch_) + expand1_ch_ + c) *
                         area +
                     k];
  }

  Tensor grad_squeezed = expand1_.backward(g1);
  const Tensor grad_squeezed3 = expand3_.backward(g3);
  for (std::size_t i = 0; i < grad_squeezed.size(); ++i)
    grad_squeezed[i] += grad_squeezed3[i];

  return squeeze_.backward(squeeze_relu_.backward(grad_squeezed));
}

std::vector<ParamRef> Fire::params() {
  std::vector<ParamRef> out;
  for (auto& p : squeeze_.params()) out.push_back(p);
  for (auto& p : expand1_.params()) out.push_back(p);
  for (auto& p : expand3_.params()) out.push_back(p);
  return out;
}

}  // namespace rcr::nn
