#include "rcr/nn/gan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "rcr/nn/layers_basic.hpp"

namespace rcr::nn {

Vec RingDistribution::center(std::size_t k) const {
  const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                     static_cast<double>(modes);
  return {radius * std::cos(ang), radius * std::sin(ang)};
}

Vec RingDistribution::sample(num::Rng& rng) const {
  const auto k =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(modes) - 1));
  const Vec c = center(k);
  return {c[0] + rng.normal(0.0, stddev), c[1] + rng.normal(0.0, stddev)};
}

std::size_t RingDistribution::nearest_mode(double x, double y) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < modes; ++k) {
    const Vec c = center(k);
    const double d = (x - c[0]) * (x - c[0]) + (y - c[1]) * (y - c[1]);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

double RingDistribution::distance_to_mode(double x, double y) const {
  const Vec c = center(nearest_mode(x, y));
  return std::hypot(x - c[0], y - c[1]);
}

namespace {

// The DCGAN stability recipe the paper invokes (Sec. II-B-2): batchnorm
// helps on interior layers, but applying it indiscriminately -- in
// particular to the generator's output side and the discriminator's input
// side -- "can result in oscillation and instability".
//   kSelective: batchnorm on interior hidden layers only.
//   kAllLayers: batchnorm everywhere, including the G output side and the
//               raw D input (the unstable recipe).
Sequential build_generator(const GanConfig& config, num::Rng& rng) {
  Sequential g;
  g.emplace<Dense>(config.latent_dim, config.hidden, rng);
  if (config.placement != BatchNormPlacement::kNone)
    g.emplace<BatchNorm1d>(config.hidden);
  g.emplace<Relu>();
  g.emplace<Dense>(config.hidden, config.hidden, rng);
  if (config.placement == BatchNormPlacement::kAllLayers)
    g.emplace<BatchNorm1d>(config.hidden);  // generator output side
  g.emplace<Relu>();
  g.emplace<Dense>(config.hidden, 2, rng);
  return g;
}

Sequential build_discriminator(const GanConfig& config, num::Rng& rng) {
  Sequential d;
  if (config.placement == BatchNormPlacement::kAllLayers)
    d.emplace<BatchNorm1d>(2);  // raw discriminator input
  d.emplace<Dense>(2, config.hidden, rng);
  if (config.placement == BatchNormPlacement::kAllLayers)
    d.emplace<BatchNorm1d>(config.hidden);  // discriminator input side
  d.emplace<LeakyRelu>(0.2);
  d.emplace<Dense>(config.hidden, config.hidden, rng);
  if (config.placement != BatchNormPlacement::kNone)
    d.emplace<BatchNorm1d>(config.hidden);
  d.emplace<LeakyRelu>(0.2);
  d.emplace<Dense>(config.hidden, 1, rng);
  return d;
}

}  // namespace

GanTrainer::GanTrainer(const GanConfig& config, const RingDistribution& target)
    : config_(config), target_(target), rng_(config.seed),
      d_opt_(config.lr_discriminator) {
  for (std::size_t k = 0; k < std::max<std::size_t>(1, config.generators); ++k) {
    generators_.push_back(build_generator(config_, rng_));
    g_opts_.push_back(std::make_unique<Adam>(config_.lr_generator));
  }
  discriminator_ = build_discriminator(config_, rng_);
}

Tensor GanTrainer::sample_latent(std::size_t n) {
  Tensor z({n, config_.latent_dim});
  for (double& v : z.data()) v = rng_.normal(0.0, 1.0);
  return z;
}

Tensor GanTrainer::generate(std::size_t generator_index, const Tensor& z,
                            bool training) {
  return generators_[generator_index].forward(z, training);
}

void GanTrainer::train() {
  const std::size_t half = config_.batch_size / 2;
  for (std::size_t step = 0; step < config_.steps; ++step) {
    const std::size_t gi = step % generators_.size();

    // ---- Discriminator step: real half labelled 1, fake half labelled 0.
    Tensor real({half, 2});
    for (std::size_t i = 0; i < half; ++i) {
      const Vec p = target_.sample(rng_);
      real.at2(i, 0) = p[0];
      real.at2(i, 1) = p[1];
    }
    const Tensor z_d = sample_latent(half);
    const Tensor fake = generate(gi, z_d, /*training=*/true);

    // Real and fake halves run through D as separate batches, so batchnorm
    // statistics are computed per batch type (the standard DCGAN practice;
    // mixing them makes the D and G passes see inconsistent normalizations).
    discriminator_.zero_grad();
    const Tensor d_real = discriminator_.forward(real, /*training=*/true);
    const LossResult real_loss = bce_with_logits(d_real, Vec(half, 1.0));
    discriminator_.backward(real_loss.grad);
    const Tensor d_fake = discriminator_.forward(fake, /*training=*/true);
    const LossResult fake_loss = bce_with_logits(d_fake, Vec(half, 0.0));
    discriminator_.backward(fake_loss.grad);
    d_opt_.step(discriminator_.params());
    d_loss_history_.push_back(0.5 * (real_loss.value + fake_loss.value));

    // ---- Generator step: fool the discriminator (non-saturating loss).
    const Tensor z_g = sample_latent(config_.batch_size);
    generators_[gi].zero_grad();
    const Tensor g_out = generate(gi, z_g, /*training=*/true);
    discriminator_.zero_grad();  // discard D grads from this pass
    const Tensor g_logits = discriminator_.forward(g_out, /*training=*/true);
    const LossResult g_loss =
        bce_with_logits(g_logits, Vec(config_.batch_size, 1.0));
    const Tensor grad_at_g = discriminator_.backward(g_loss.grad);
    generators_[gi].backward(grad_at_g);
    g_opts_[gi]->step(generators_[gi].params());
    discriminator_.zero_grad();
    g_loss_history_.push_back(g_loss.value);
  }
}

std::vector<Vec> GanTrainer::sample(std::size_t n) {
  std::vector<Vec> out;
  out.reserve(n);
  const std::size_t per =
      (n + generators_.size() - 1) / generators_.size();
  for (std::size_t gi = 0; gi < generators_.size() && out.size() < n; ++gi) {
    const std::size_t take = std::min(per, n - out.size());
    const Tensor z = sample_latent(take);
    const Tensor pts = generate(gi, z, /*training=*/false);
    for (std::size_t i = 0; i < take; ++i)
      out.push_back({pts.at2(i, 0), pts.at2(i, 1)});
  }
  return out;
}

GanMetrics GanTrainer::metrics(std::size_t n) {
  GanMetrics m;
  m.d_loss_history = d_loss_history_;
  m.g_loss_history = g_loss_history_;

  const std::vector<Vec> pts = sample(n);
  std::vector<std::size_t> per_mode(target_.modes, 0);
  std::size_t good = 0;
  for (const Vec& p : pts) {
    const double d = target_.distance_to_mode(p[0], p[1]);
    if (d <= 4.0 * target_.stddev) {
      ++good;
      ++per_mode[target_.nearest_mode(p[0], p[1])];
    }
  }
  const auto min_hits = static_cast<std::size_t>(0.02 * static_cast<double>(n));
  for (std::size_t k = 0; k < target_.modes; ++k)
    if (per_mode[k] >= std::max<std::size_t>(1, min_hits)) ++m.modes_covered;
  m.high_quality_fraction = static_cast<double>(good) / static_cast<double>(n);

  // Forward stability: median amplification of a small latent perturbation
  // through the (first) generator.
  const double delta = 1e-4;
  Vec amps;
  for (std::size_t trial = 0; trial < 64; ++trial) {
    Tensor z = sample_latent(1);
    Tensor z2 = z;
    Vec d(config_.latent_dim);
    for (std::size_t j = 0; j < config_.latent_dim; ++j) {
      d[j] = rng_.normal(0.0, 1.0);
    }
    const double dn = num::norm2(d);
    for (std::size_t j = 0; j < config_.latent_dim; ++j)
      z2.at2(0, j) += delta * d[j] / dn;
    const Tensor a = generate(0, z, false);
    const Tensor b = generate(0, z2, false);
    const double diff = std::hypot(a.at2(0, 0) - b.at2(0, 0),
                                   a.at2(0, 1) - b.at2(0, 1));
    amps.push_back(diff / delta);
  }
  std::sort(amps.begin(), amps.end());
  m.forward_amplification = amps[amps.size() / 2];

  // Oscillation: RMS of step-to-step D-loss differences over the last half.
  if (d_loss_history_.size() >= 4) {
    const std::size_t start = d_loss_history_.size() / 2;
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t i = start + 1; i < d_loss_history_.size(); ++i) {
      const double diff = d_loss_history_[i] - d_loss_history_[i - 1];
      acc += diff * diff;
      ++count;
    }
    m.d_loss_oscillation = std::sqrt(acc / static_cast<double>(count));
  }
  return m;
}

std::size_t GanTrainer::generator_param_count() {
  return generators_[0].param_count();
}

std::size_t GanTrainer::discriminator_param_count() {
  return discriminator_.param_count();
}

}  // namespace rcr::nn
