// Batch normalization with the *placement policy* the paper discusses
// (Sec. II-B-2): applying batchnorm to every layer of a DCGAN causes
// oscillation and instability; applying it selectively (generator output /
// discriminator input only) avoids it.  The policy enum lives here so GAN
// builders and the E9 bench share one vocabulary.
#pragma once

#include "rcr/nn/layer.hpp"

namespace rcr::nn {

/// Where batchnorm layers are inserted when building a GAN.
enum class BatchNormPlacement {
  kNone,              ///< No batchnorm anywhere.
  kSelective,         ///< Interior hidden layers only -- skipping the
                      ///< generator output side and discriminator input
                      ///< side (the paper's "proven fashion").
  kAllLayers,         ///< Everywhere, including the G output side and raw D
                      ///< input (the unstable recipe).
};

std::string to_string(BatchNormPlacement p);

/// Batch normalization over {B, F}: per-feature statistics across the batch.
class BatchNorm1d final : public Layer {
 public:
  explicit BatchNorm1d(std::size_t features, double momentum = 0.1,
                       double epsilon = 1e-5);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "batchnorm1d"; }

  const Vec& running_mean() const { return running_mean_; }
  const Vec& running_var() const { return running_var_; }

 private:
  std::size_t features_;
  double momentum_;
  double epsilon_;
  Vec gamma_;
  Vec beta_;
  Vec gamma_grad_;
  Vec beta_grad_;
  Vec running_mean_;
  Vec running_var_;

  // Caches for backward.
  Tensor normalized_cache_;
  Vec batch_inv_std_;
  bool training_cache_ = true;
};

/// Batch normalization over {B, C, H, W}: per-channel statistics across the
/// batch and spatial dimensions.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double epsilon = 1e-5);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "batchnorm2d"; }

 private:
  std::size_t channels_;
  double momentum_;
  double epsilon_;
  Vec gamma_;
  Vec beta_;
  Vec gamma_grad_;
  Vec beta_grad_;
  Vec running_mean_;
  Vec running_var_;

  Tensor normalized_cache_;
  Vec batch_inv_std_;
  bool training_cache_ = true;
};

}  // namespace rcr::nn
