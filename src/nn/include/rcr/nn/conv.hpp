// 2D convolution and pooling layers (channels-first, batch-first).
#pragma once

#include "rcr/nn/layer.hpp"

namespace rcr::nn {

/// 2D convolution: {B, Cin, H, W} -> {B, Cout, H', W'} with
/// H' = (H + 2*pad - k)/stride + 1.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         num::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Workspace variants: write into caller-provided tensors (reshaped,
  /// storage reused), so a training loop that keeps its activation/gradient
  /// tensors alive runs the convolution with zero steady-state heap
  /// allocations.  Row scratch comes from the per-thread arena.
  /// Bit-identical to forward()/backward().
  void forward_into(const Tensor& input, Tensor& out);
  void backward_into(const Tensor& grad_output, Tensor& grad_input);

  std::vector<ParamRef> params() override;
  std::string name() const override { return "conv2d"; }

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel() const { return kernel_; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Vec weight_;  ///< [out][in][k][k] flattened.
  Vec bias_;
  Vec weight_grad_;
  Vec bias_grad_;
  Tensor input_cache_;

  std::size_t widx(std::size_t o, std::size_t i, std::size_t r,
                   std::size_t c) const {
    return ((o * in_ch_ + i) * kernel_ + r) * kernel_ + c;
  }
};

/// Transposed 2D convolution (fractionally-strided): {B, Cin, H, W} ->
/// {B, Cout, H', W'} with H' = (H - 1)*stride + k - 2*pad.  The gradient of
/// a Conv2d forward pass w.r.t. its input, promoted to a learnable layer --
/// the standard DCGAN generator upsampler.
class ConvTranspose2d final : public Layer {
 public:
  ConvTranspose2d(std::size_t in_channels, std::size_t out_channels,
                  std::size_t kernel, std::size_t stride, std::size_t padding,
                  num::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "conv_transpose2d"; }

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel() const { return kernel_; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Vec weight_;  ///< [in][out][k][k] flattened (transposed-conv convention).
  Vec bias_;
  Vec weight_grad_;
  Vec bias_grad_;
  Tensor input_cache_;

  std::size_t widx(std::size_t i, std::size_t o, std::size_t r,
                   std::size_t c) const {
    return ((i * out_ch_ + o) * kernel_ + r) * kernel_ + c;
  }
};

/// 2x2 max pooling with stride 2 (dimensions must be even).
class MaxPool2d final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  std::vector<std::size_t> input_shape_;
  std::vector<std::size_t> argmax_;  ///< Flat input index per output element.
};

/// Global average pooling: {B, C, H, W} -> {B, C}.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace rcr::nn
