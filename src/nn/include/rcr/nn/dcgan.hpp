// Convolutional DCGAN over spectrogram images -- the paper's literal
// DC-YOLO-GAN substrate (a convolutional generator/discriminator pair
// trained adversarially on time-frequency images), at laptop scale.
//
// Generator: latent -> Dense -> reshape 4x4 -> [Upsample2x -> Conv -> BN ->
// ReLU] x2 -> Conv -> Sigmoid (16x16 single-channel image in [0,1]).
// Discriminator: strided Conv stack -> Dense logit, batchnorm placed per
// the Sec. II-B-2 policy.
#pragma once

#include <cstdint>

#include "rcr/nn/batchnorm.hpp"
#include "rcr/nn/conv.hpp"
#include "rcr/nn/msy3i.hpp"
#include "rcr/nn/network.hpp"
#include "rcr/nn/shape_ops.hpp"

namespace rcr::nn {

/// DCGAN configuration (16x16 single-channel images).
struct DcganConfig {
  std::size_t latent_dim = 16;
  std::size_t base_channels = 8;   ///< Generator channel width at 4x4.
  BatchNormPlacement placement = BatchNormPlacement::kSelective;
  std::size_t batch_size = 8;
  std::size_t steps = 200;
  double lr_generator = 2e-3;
  double lr_discriminator = 2e-3;
  std::uint64_t seed = 1;
};

/// Build the convolutional generator: {B, latent} -> {B, 1, 16, 16}.
Sequential build_dcgan_generator(const DcganConfig& config);

/// Build the convolutional discriminator: {B, 1, 16, 16} -> {B, 1} logit.
Sequential build_dcgan_discriminator(const DcganConfig& config);

/// Post-training image statistics.
struct DcganMetrics {
  double d_loss_final = 0.0;
  double g_loss_final = 0.0;
  double mean_pixel_error = 0.0;   ///< |mean(generated) - mean(data)|.
  double row_profile_cosine = 0.0; ///< Cosine similarity of per-row energy
                                   ///< profiles, generated vs data.
  Vec d_loss_history;
  Vec g_loss_history;
};

/// Adversarial trainer on a set of spectrogram images.
class DcganTrainer {
 public:
  DcganTrainer(const DcganConfig& config,
               const std::vector<ImageSample>& data);

  /// Run the configured number of adversarial steps.
  void train();

  /// Generate `n` images ({n, 1, 16, 16}).
  Tensor sample(std::size_t n);

  /// Compute statistics on `n` generated images against the data set.
  DcganMetrics metrics(std::size_t n = 64);

  Sequential& generator() { return generator_; }
  Sequential& discriminator() { return discriminator_; }

 private:
  Tensor sample_latent(std::size_t n);
  Tensor sample_real(std::size_t n);

  DcganConfig config_;
  std::vector<ImageSample> data_;
  num::Rng rng_;
  Sequential generator_;
  Sequential discriminator_;
  Adam g_opt_;
  Adam d_opt_;
  Vec d_loss_history_;
  Vec g_loss_history_;
};

}  // namespace rcr::nn
