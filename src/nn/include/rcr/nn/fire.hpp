// Fire layers (SqueezeNet [5]) and Special Fire Layers (SqueezeDet [6]).
//
// The paper's MSY3I replaces YOLO-v3 convolution stacks with fire layers to
// cut the parameter count: a 1x1 "squeeze" convolution down to s channels,
// then parallel 1x1 and 3x3 "expand" convolutions whose outputs concatenate.
// A Special Fire Layer additionally downsamples (stride-2 squeeze), replacing
// conv+pool pairs.
#pragma once

#include "rcr/nn/conv.hpp"
#include "rcr/nn/layers_basic.hpp"

namespace rcr::nn {

/// Fire layer: squeeze(1x1, s) -> ReLU -> [expand1x1(e1) || expand3x3(e3)]
/// -> ReLU, output channels e1 + e3.
class Fire : public Layer {
 public:
  Fire(std::size_t in_channels, std::size_t squeeze, std::size_t expand1,
       std::size_t expand3, num::Rng& rng, std::size_t squeeze_stride = 1);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "fire"; }

  std::size_t out_channels() const { return expand1_ch_ + expand3_ch_; }

 private:
  std::size_t expand1_ch_;
  std::size_t expand3_ch_;
  Conv2d squeeze_;
  Conv2d expand1_;
  Conv2d expand3_;
  Relu squeeze_relu_;
  Relu out_relu_;
  Tensor squeezed_cache_;  ///< post-ReLU squeeze output
};

/// Special Fire Layer: a fire layer whose squeeze convolution has stride 2,
/// halving the spatial dimensions (the SqueezeDet-style conv+pool
/// replacement).
class SpecialFire final : public Fire {
 public:
  SpecialFire(std::size_t in_channels, std::size_t squeeze,
              std::size_t expand1, std::size_t expand3, num::Rng& rng)
      : Fire(in_channels, squeeze, expand1, expand3, rng, 2) {}
  std::string name() const override { return "special_fire"; }
};

}  // namespace rcr::nn
