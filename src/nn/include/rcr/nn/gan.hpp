// GAN substrate: generator/discriminator training on a Gaussian-ring
// distribution, mixture-of-generators (the paper's DCGAN #3 "additional
// generator ... to assist in mitigating mode failure"), batchnorm placement
// policies (Sec. II-B-2), and the stability metrics of Sec. IV:
//  - mode coverage / mode collapse detection,
//  - forward stability ("a forward stable DCGAN does not amplify
//    perturbations of the input set"),
//  - training-loss oscillation (the all-layers-batchnorm pathology).
#pragma once

#include <cstdint>
#include <memory>

#include "rcr/nn/batchnorm.hpp"
#include "rcr/nn/network.hpp"

namespace rcr::nn {

/// The target distribution: `modes` Gaussians equally spaced on a circle.
struct RingDistribution {
  std::size_t modes = 8;
  double radius = 2.0;
  double stddev = 0.05;

  /// Sample one 2D point.
  Vec sample(num::Rng& rng) const;

  /// Index of the nearest mode center to a point.
  std::size_t nearest_mode(double x, double y) const;

  /// Distance from the point to its nearest mode center.
  double distance_to_mode(double x, double y) const;

  /// Center of mode k.
  Vec center(std::size_t k) const;
};

/// GAN training configuration.
struct GanConfig {
  std::size_t latent_dim = 8;
  std::size_t hidden = 64;
  std::size_t generators = 1;      ///< Mixture size (1 = plain GAN).
  BatchNormPlacement placement = BatchNormPlacement::kNone;
  std::size_t batch_size = 32;
  std::size_t steps = 800;         ///< Discriminator/generator step pairs.
  double lr_generator = 1e-3;
  double lr_discriminator = 1e-3;
  std::uint64_t seed = 1;
};

/// Post-training metrics.
struct GanMetrics {
  std::size_t modes_covered = 0;       ///< Modes hit by >= 2% of samples.
  double high_quality_fraction = 0.0;  ///< Samples within 4 stddev of a mode.
  double forward_amplification = 0.0;  ///< ||G(z+d)-G(z)|| / ||d||, median.
  double d_loss_oscillation = 0.0;     ///< RMS step-to-step D-loss change,
                                       ///< last half of training.
  Vec d_loss_history;
  Vec g_loss_history;
};

/// Trainer for a (mixture-of-generators) GAN on the ring distribution.
class GanTrainer {
 public:
  GanTrainer(const GanConfig& config, const RingDistribution& target);

  /// Run the configured number of adversarial steps.
  void train();

  /// Draw `n` samples from the (mixture of) trained generator(s).
  std::vector<Vec> sample(std::size_t n);

  /// Compute all metrics on `n` fresh samples.
  GanMetrics metrics(std::size_t n = 1024);

  std::size_t generator_param_count();
  std::size_t discriminator_param_count();

 private:
  Tensor sample_latent(std::size_t n);
  Tensor generate(std::size_t generator_index, const Tensor& z, bool training);

  GanConfig config_;
  RingDistribution target_;
  num::Rng rng_;
  std::vector<Sequential> generators_;
  Sequential discriminator_;
  std::vector<std::unique_ptr<Adam>> g_opts_;
  Adam d_opt_;
  Vec d_loss_history_;
  Vec g_loss_history_;
};

}  // namespace rcr::nn
