// Layer interface for the from-scratch network library.
//
// Layers cache whatever they need during forward() and consume it in the
// matching backward(); training code must call them in forward-then-backward
// pairs on the same batch (the Sequential container enforces this order).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rcr/nn/tensor.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::nn {

/// A view of one learnable parameter block and its gradient accumulator.
struct ParamRef {
  Vec* value = nullptr;
  Vec* grad = nullptr;
  std::string name;
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch; `training` toggles batch-statistics behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass: gradient of the loss w.r.t. this layer's input, given the
  /// gradient w.r.t. its output.  Parameter gradients are *accumulated* into
  /// the blocks exposed by params().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameter blocks (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Human-readable layer name.
  virtual std::string name() const = 0;

  /// Number of learnable scalars.
  std::size_t param_count() {
    std::size_t n = 0;
    for (const auto& p : params()) n += p.value->size();
    return n;
  }
};

/// He/Kaiming-uniform initialization bound for fan_in inputs.
double he_bound(std::size_t fan_in);

}  // namespace rcr::nn
