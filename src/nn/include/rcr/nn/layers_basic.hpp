// Dense, activation, and reshaping layers.
#pragma once

#include "rcr/nn/layer.hpp"

namespace rcr::nn {

/// Fully connected layer: {B, in} -> {B, out}.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, num::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Vec weight_;  ///< out x in, row-major.
  Vec bias_;
  Vec weight_grad_;
  Vec bias_grad_;
  Tensor input_cache_;
};

/// ReLU.
class Relu final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor input_cache_;
};

/// LeakyReLU with the given negative slope (DCGAN discriminators use 0.2).
class LeakyRelu final : public Layer {
 public:
  explicit LeakyRelu(double slope = 0.2) : slope_(slope) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "leaky_relu"; }

 private:
  double slope_;
  Tensor input_cache_;
};

/// Logistic sigmoid.
class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "sigmoid"; }

 private:
  Tensor output_cache_;
};

/// Hyperbolic tangent (DCGAN generator output).
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "tanh"; }

 private:
  Tensor output_cache_;
};

/// Flatten {B, C, H, W} (or any rank >= 2) to {B, F}.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace rcr::nn
