// MSY3I builders: the paper's "Modified Squeezed YOLO v3 Implementation" --
// a YOLO-v3-style convolutional backbone whose Conv stacks are replaced by
// Fire Layers (FL) and Special Fire Layers (SFL) to cut the parameter count
// "with only the slightest degradation in performance" (Sec. II-B-1).
//
// Two heads are provided, matching the paper's STFT-based workloads:
//  - a classifier over spectrogram images (modulation recognition), and
//  - a single-box detector predicting a burst's time-frequency box
//    (YOLO-style normalized [x, y, w, h]).
// A conv-only baseline with the same topology stands in for the unsqueezed
// YOLO backbone in the E7 parameter/accuracy comparison.
#pragma once

#include <cstdint>

#include "rcr/nn/batchnorm.hpp"
#include "rcr/nn/fire.hpp"
#include "rcr/nn/network.hpp"

namespace rcr::nn {

/// Architecture hyperparameters -- exactly the knobs the Phase-2 PSO tunes.
struct Msy3iConfig {
  std::size_t image_size = 16;   ///< Square input, single channel.
  std::size_t classes = 3;
  std::size_t stem_filters = 8;  ///< Channels out of the stem convolution.
  std::size_t fire_squeeze = 4;  ///< Squeeze channels per fire layer.
  std::size_t fire_expand = 8;   ///< Each expand path's channels.
  std::size_t num_fire_blocks = 2;  ///< Fire layers between downsamplings.
  bool use_special_fire = true;  ///< SFL downsampling vs maxpool.
  std::uint64_t seed = 42;
};

/// Squeezed classifier backbone + head (the MSY3I).
Sequential build_msy3i_classifier(const Msy3iConfig& config);

/// Conv-only baseline with matched depth/width (stands in for YOLO v3's
/// unsqueezed Conv stacks in the parameter comparison).
Sequential build_conv_baseline(const Msy3iConfig& config);

/// Squeezed detector: same backbone, head outputs 4 sigmoid-activated
/// numbers interpreted as a normalized [x_center, y_center, w, h] box.
Sequential build_msy3i_detector(const Msy3iConfig& config);

/// A labelled image sample (pixels in [0, 1], row-major).
struct ImageSample {
  Vec pixels;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t label = 0;
};

/// A detection sample: image + normalized center-format box.
struct BoxSample {
  Vec pixels;
  std::size_t height = 0;
  std::size_t width = 0;
  double box[4] = {0.0, 0.0, 0.0, 0.0};  ///< x, y, w, h in [0, 1].
};

/// Training hyperparameters.
struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  double learning_rate = 1e-3;
  std::uint64_t seed = 7;
};

/// Classifier training outcome.
struct TrainReport {
  Vec loss_history;        ///< Mean loss per epoch.
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::size_t param_count = 0;
};

/// Train a classifier network on image samples with Adam + fused softmax-CE.
/// Throws std::invalid_argument on empty datasets.
TrainReport train_classifier(Sequential& net,
                             const std::vector<ImageSample>& train,
                             const std::vector<ImageSample>& test,
                             const TrainConfig& config);

/// Accuracy of a trained classifier on a dataset.
double evaluate_classifier(Sequential& net,
                           const std::vector<ImageSample>& samples);

/// Detector training outcome.
struct DetectReport {
  Vec loss_history;
  double mean_iou = 0.0;   ///< On the test set.
  std::size_t param_count = 0;
};

/// Train the detector head with MSE on the box coordinates; reports mean IoU.
DetectReport train_detector(Sequential& net,
                            const std::vector<BoxSample>& train,
                            const std::vector<BoxSample>& test,
                            const TrainConfig& config);

/// Batch image samples into a {B, 1, H, W} tensor.
Tensor batch_images(const std::vector<ImageSample>& samples,
                    const std::vector<std::size_t>& indices);

}  // namespace rcr::nn
