// Sequential container, losses, and optimizers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rcr/nn/layer.hpp"

namespace rcr::nn {

/// Ordered stack of layers with joint forward/backward.
class Sequential {
 public:
  Sequential() = default;

  /// Append a layer (builder style).
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: construct the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training);

  /// Backpropagate from the loss gradient w.r.t. the network output;
  /// accumulates parameter gradients and returns the gradient w.r.t. the
  /// network input.
  Tensor backward(const Tensor& grad_output);

  std::vector<ParamRef> params();
  std::size_t param_count();
  void zero_grad();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Loss value and gradient w.r.t. the network output.
struct LossResult {
  double value = 0.0;
  Tensor grad;
};

/// Mean softmax cross-entropy over the batch, computed with the *fused*
/// stable log-softmax (Sec. V's stability requirement).  `labels` has one
/// class index per batch row.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels);

/// Mean binary cross-entropy with logits: targets in [0, 1], one per row
/// element.  Fused sigmoid+log for stability.
LossResult bce_with_logits(const Tensor& logits, const Vec& targets);

/// Mean squared error against a target tensor of identical shape.
LossResult mse_loss(const Tensor& output, const Tensor& target);

/// Predicted class per batch row (argmax of logits).
std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// Save every parameter block of the network to a text file (one header
/// line with the block count, then per block: name, size, values).
/// Throws std::runtime_error when the file cannot be written.
void save_parameters(Sequential& net, const std::string& path);

/// Load parameters saved by save_parameters into a structurally identical
/// network.  Throws std::runtime_error on I/O failure and
/// std::invalid_argument on any block-count/name/size mismatch.
void load_parameters(Sequential& net, const std::string& path);

/// Optimizer interface over a parameter set.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamRef>& params) = 0;
};

/// SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<ParamRef>& params) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Vec> velocity_;
};

/// Adam.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}
  void step(const std::vector<ParamRef>& params) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::size_t t_ = 0;
  std::vector<Vec> m_;
  std::vector<Vec> v_;
};

}  // namespace rcr::nn
