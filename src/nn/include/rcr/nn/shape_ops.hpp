// Shape-manipulation layers needed by convolutional generators.
#pragma once

#include "rcr/nn/layer.hpp"

namespace rcr::nn {

/// Reshape each sample to a fixed per-sample shape (batch dim preserved).
class Reshape final : public Layer {
 public:
  /// `sample_shape` excludes the batch dimension, e.g. {8, 4, 4}.
  explicit Reshape(std::vector<std::size_t> sample_shape)
      : sample_shape_(std::move(sample_shape)) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "reshape"; }

 private:
  std::vector<std::size_t> sample_shape_;
  std::vector<std::size_t> input_shape_;
};

/// Nearest-neighbour 2x spatial upsampling: {B,C,H,W} -> {B,C,2H,2W}.
class Upsample2x final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "upsample2x"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace rcr::nn
