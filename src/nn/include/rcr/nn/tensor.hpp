// Minimal dense tensor for the neural-network substrate.
//
// Layout is row-major with the batch dimension first:
//   {B, F}        for dense features,
//   {B, C, H, W}  for images.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::nn {

/// Dense N-dimensional array of doubles (batch-first).
class Tensor {
 public:
  Tensor() = default;

  /// Construct with the given shape, zero-filled.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Construct with shape and existing data; throws std::invalid_argument
  /// when sizes disagree.
  Tensor(std::vector<std::size_t> shape, Vec data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// 2D access {B, F}.
  double& at2(std::size_t b, std::size_t f) {
    return data_[b * shape_[1] + f];
  }
  double at2(std::size_t b, std::size_t f) const {
    return data_[b * shape_[1] + f];
  }

  /// 4D access {B, C, H, W}.
  double& at4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  double at4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Reshape preserving the element count; throws std::invalid_argument on
  /// count mismatch.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Reshape to `shape` with every entry zero, reusing the existing heap
  /// blocks when their capacity suffices (the Tensor analogue of
  /// Matrix::assign; lets the `_into` layer variants run allocation-free
  /// once warm).
  void assign(const std::vector<std::size_t>& shape) {
    shape_ = shape;
    data_.assign(element_count(shape_), 0.0);
  }

  /// assign() for the {B, C, H, W} case without materializing a temporary
  /// shape vector (the braced-list form heap-allocates one per call).
  void assign4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
    shape_.assign({b, c, h, w});
    data_.assign(b * c * h * w, 0.0);
  }

  /// Zero tensor with the same shape.
  Tensor zeros_like() const { return Tensor(shape_); }

  /// "BxCxHxW"-style shape string for diagnostics.
  std::string shape_string() const;

  /// Total elements implied by a shape.
  static std::size_t element_count(const std::vector<std::size_t>& shape);

 private:
  std::vector<std::size_t> shape_;
  Vec data_;
};

}  // namespace rcr::nn
