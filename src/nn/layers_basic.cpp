#include "rcr/nn/layers_basic.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::nn {

double he_bound(std::size_t fan_in) {
  return std::sqrt(6.0 / static_cast<double>(fan_in == 0 ? 1 : fan_in));
}

Dense::Dense(std::size_t in_features, std::size_t out_features, num::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(in_features * out_features),
      bias_(out_features, 0.0),
      weight_grad_(in_features * out_features, 0.0),
      bias_grad_(out_features, 0.0) {
  const double bound = he_bound(in_features);
  for (double& w : weight_) w = rng.uniform(-bound, bound);
}

Tensor Dense::forward(const Tensor& input, bool) {
  if (input.rank() != 2 || input.dim(1) != in_)
    throw std::invalid_argument("Dense::forward: expected {B, " +
                                std::to_string(in_) + "}, got " +
                                input.shape_string());
  input_cache_ = input;
  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      double acc = bias_[o];
      const std::size_t row = o * in_;
      for (std::size_t i = 0; i < in_; ++i)
        acc += weight_[row + i] * input.at2(b, i);
      out.at2(b, o) = acc;
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t batch = input_cache_.dim(0);
  Tensor grad_input({batch, in_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      const double g = grad_output.at2(b, o);
      bias_grad_[o] += g;
      const std::size_t row = o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        weight_grad_[row + i] += g * input_cache_.at2(b, i);
        grad_input.at2(b, i) += g * weight_[row + i];
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Dense::params() {
  return {{&weight_, &weight_grad_, "dense.weight"},
          {&bias_, &bias_grad_, "dense.bias"}};
}

Tensor Relu::forward(const Tensor& input, bool) {
  input_cache_ = input;
  Tensor out = input;
  for (double& v : out.data()) v = v > 0.0 ? v : 0.0;
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (input_cache_[i] <= 0.0) grad[i] = 0.0;
  return grad;
}

Tensor LeakyRelu::forward(const Tensor& input, bool) {
  input_cache_ = input;
  Tensor out = input;
  for (double& v : out.data()) v = v > 0.0 ? v : slope_ * v;
  return out;
}

Tensor LeakyRelu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (input_cache_[i] <= 0.0) grad[i] *= slope_;
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool) {
  Tensor out = input;
  for (double& v : out.data()) v = 1.0 / (1.0 + std::exp(-v));
  output_cache_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double s = output_cache_[i];
    grad[i] *= s * (1.0 - s);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool) {
  Tensor out = input;
  for (double& v : out.data()) v = std::tanh(v);
  output_cache_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double t = output_cache_[i];
    grad[i] *= 1.0 - t * t;
  }
  return grad;
}

Tensor Flatten::forward(const Tensor& input, bool) {
  if (input.rank() < 2)
    throw std::invalid_argument("Flatten::forward: rank < 2");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

}  // namespace rcr::nn
