#include "rcr/nn/msy3i.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <stdexcept>

namespace rcr::nn {

namespace {

// Shared backbone: stem conv, then two downsampling stages of fire blocks.
// Returns the channel count feeding the head.
std::size_t build_squeezed_backbone(Sequential& net, const Msy3iConfig& config,
                                    num::Rng& rng) {
  net.emplace<Conv2d>(1, config.stem_filters, 3, 1, 1, rng);
  net.emplace<Relu>();

  std::size_t channels = config.stem_filters;
  for (int stage = 0; stage < 2; ++stage) {
    // Downsample: SFL (stride-2 fire) or maxpool.
    if (config.use_special_fire) {
      net.emplace<SpecialFire>(channels, config.fire_squeeze,
                               config.fire_expand, config.fire_expand, rng);
      channels = 2 * config.fire_expand;
    } else {
      net.emplace<MaxPool2d>();
    }
    for (std::size_t k = 0; k + 1 < config.num_fire_blocks; ++k) {
      net.emplace<Fire>(channels, config.fire_squeeze, config.fire_expand,
                        config.fire_expand, rng);
      channels = 2 * config.fire_expand;
    }
  }
  return channels;
}

std::size_t build_conv_backbone(Sequential& net, const Msy3iConfig& config,
                                num::Rng& rng) {
  // Same receptive-field structure, plain 3x3 convs throughout (the
  // unsqueezed YOLO-style stack): width doubles at each stage.
  net.emplace<Conv2d>(1, config.stem_filters, 3, 1, 1, rng);
  net.emplace<Relu>();

  std::size_t channels = config.stem_filters;
  for (int stage = 0; stage < 2; ++stage) {
    const std::size_t next = 2 * config.fire_expand;  // match MSY3I width
    net.emplace<Conv2d>(channels, next, 3, 2, 1, rng);  // strided conv
    net.emplace<Relu>();
    channels = next;
    for (std::size_t k = 0; k + 1 < config.num_fire_blocks; ++k) {
      net.emplace<Conv2d>(channels, channels, 3, 1, 1, rng);
      net.emplace<Relu>();
    }
  }
  return channels;
}

}  // namespace

Sequential build_msy3i_classifier(const Msy3iConfig& config) {
  num::Rng rng(config.seed);
  Sequential net;
  const std::size_t channels = build_squeezed_backbone(net, config, rng);
  net.emplace<GlobalAvgPool>();
  net.emplace<Dense>(channels, config.classes, rng);
  return net;
}

Sequential build_conv_baseline(const Msy3iConfig& config) {
  num::Rng rng(config.seed);
  Sequential net;
  const std::size_t channels = build_conv_backbone(net, config, rng);
  net.emplace<GlobalAvgPool>();
  net.emplace<Dense>(channels, config.classes, rng);
  return net;
}

Sequential build_msy3i_detector(const Msy3iConfig& config) {
  num::Rng rng(config.seed);
  Sequential net;
  const std::size_t channels = build_squeezed_backbone(net, config, rng);
  net.emplace<GlobalAvgPool>();
  net.emplace<Dense>(channels, 4, rng);
  net.emplace<Sigmoid>();  // normalized box coordinates
  return net;
}

Tensor batch_images(const std::vector<ImageSample>& samples,
                    const std::vector<std::size_t>& indices) {
  if (indices.empty())
    throw std::invalid_argument("batch_images: empty index set");
  const std::size_t h = samples.at(indices[0]).height;
  const std::size_t w = samples.at(indices[0]).width;
  Tensor batch({indices.size(), 1, h, w});
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const ImageSample& s = samples.at(indices[b]);
    if (s.height != h || s.width != w || s.pixels.size() != h * w)
      throw std::invalid_argument("batch_images: inconsistent image sizes");
    for (std::size_t k = 0; k < h * w; ++k) batch[b * h * w + k] = s.pixels[k];
  }
  return batch;
}

double evaluate_classifier(Sequential& net,
                           const std::vector<ImageSample>& samples) {
  if (samples.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Tensor x = batch_images(samples, {i});
    const Tensor logits = net.forward(x, /*training=*/false);
    if (argmax_rows(logits)[0] == samples[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

TrainReport train_classifier(Sequential& net,
                             const std::vector<ImageSample>& train,
                             const std::vector<ImageSample>& test,
                             const TrainConfig& config) {
  if (train.empty())
    throw std::invalid_argument("train_classifier: empty training set");
  num::Rng rng(config.seed);
  Adam opt(config.learning_rate);

  TrainReport report;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(train.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      const Tensor x = batch_images(train, idx);
      std::vector<std::size_t> labels(idx.size());
      for (std::size_t k = 0; k < idx.size(); ++k)
        labels[k] = train[idx[k]].label;

      net.zero_grad();
      const Tensor logits = net.forward(x, /*training=*/true);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      net.backward(loss.grad);
      opt.step(net.params());
      epoch_loss += loss.value;
      ++batches;
    }
    report.loss_history.push_back(epoch_loss /
                                  static_cast<double>(std::max<std::size_t>(1, batches)));
  }
  report.train_accuracy = evaluate_classifier(net, train);
  report.test_accuracy = evaluate_classifier(net, test);
  report.param_count = net.param_count();
  return report;
}

DetectReport train_detector(Sequential& net,
                            const std::vector<BoxSample>& train,
                            const std::vector<BoxSample>& test,
                            const TrainConfig& config) {
  if (train.empty())
    throw std::invalid_argument("train_detector: empty training set");
  num::Rng rng(config.seed);
  Adam opt(config.learning_rate);

  auto batch_boxes = [](const std::vector<BoxSample>& samples,
                        const std::vector<std::size_t>& idx) {
    const std::size_t h = samples.at(idx[0]).height;
    const std::size_t w = samples.at(idx[0]).width;
    Tensor x({idx.size(), 1, h, w});
    Tensor y({idx.size(), 4});
    for (std::size_t b = 0; b < idx.size(); ++b) {
      const BoxSample& s = samples[idx[b]];
      for (std::size_t k = 0; k < h * w; ++k) x[b * h * w + k] = s.pixels[k];
      for (std::size_t k = 0; k < 4; ++k) y.at2(b, k) = s.box[k];
    }
    return std::pair<Tensor, Tensor>(std::move(x), std::move(y));
  };

  DetectReport report;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(train.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      auto [x, y] = batch_boxes(train, idx);
      net.zero_grad();
      const Tensor pred = net.forward(x, /*training=*/true);
      const LossResult loss = mse_loss(pred, y);
      net.backward(loss.grad);
      opt.step(net.params());
      epoch_loss += loss.value;
      ++batches;
    }
    report.loss_history.push_back(epoch_loss /
                                  static_cast<double>(std::max<std::size_t>(1, batches)));
  }

  // Mean IoU on the test set.
  double iou_acc = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    auto [x, y] = batch_boxes(test, {i});
    const Tensor pred = net.forward(x, /*training=*/false);
    // IoU of center-format boxes.
    const double ax = pred.at2(0, 0), ay = pred.at2(0, 1);
    const double aw = pred.at2(0, 2), ah = pred.at2(0, 3);
    const double bx = y.at2(0, 0), by = y.at2(0, 1);
    const double bw = y.at2(0, 2), bh = y.at2(0, 3);
    const double ix = std::max(
        0.0, std::min(ax + aw / 2, bx + bw / 2) - std::max(ax - aw / 2, bx - bw / 2));
    const double iy = std::max(
        0.0, std::min(ay + ah / 2, by + bh / 2) - std::max(ay - ah / 2, by - bh / 2));
    const double inter = ix * iy;
    const double uni = aw * ah + bw * bh - inter;
    iou_acc += uni > 0.0 ? inter / uni : 0.0;
  }
  report.mean_iou =
      test.empty() ? 0.0 : iou_acc / static_cast<double>(test.size());
  report.param_count = net.param_count();
  return report;
}

}  // namespace rcr::nn
