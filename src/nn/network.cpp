#include "rcr/nn/network.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "rcr/numerics/stable.hpp"

namespace rcr::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_)
    for (auto& p : layer->params()) out.push_back(p);
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (auto& layer : layers_) n += layer->param_count();
  return n;
}

void Sequential::zero_grad() {
  for (auto& p : params())
    for (double& g : *p.grad) g = 0.0;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: expected {B, K}");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (labels.size() != batch)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");

  LossResult result;
  result.grad = Tensor(logits.shape());
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    Vec row(classes);
    for (std::size_t k = 0; k < classes; ++k) row[k] = logits.at2(b, k);
    const Vec log_probs = num::log_softmax(row);
    if (labels[b] >= classes)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    total -= log_probs[labels[b]];
    // d/dlogits = softmax - onehot, averaged over the batch.
    for (std::size_t k = 0; k < classes; ++k) {
      const double p = std::exp(log_probs[k]);
      result.grad.at2(b, k) =
          (p - (k == labels[b] ? 1.0 : 0.0)) / static_cast<double>(batch);
    }
  }
  result.value = total / static_cast<double>(batch);
  return result;
}

LossResult bce_with_logits(const Tensor& logits, const Vec& targets) {
  if (logits.size() != targets.size())
    throw std::invalid_argument("bce_with_logits: size mismatch");
  LossResult result;
  result.grad = Tensor(logits.shape());
  const auto n = static_cast<double>(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double z = logits[i];
    const double t = targets[i];
    // Stable: log(1 + e^{-|z|}) + max(z, 0) - z*t.
    total += std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0) - z * t;
    const double sigma = 1.0 / (1.0 + std::exp(-z));
    result.grad[i] = (sigma - t) / n;
  }
  result.value = total / n;
  return result;
}

LossResult mse_loss(const Tensor& output, const Tensor& target) {
  if (output.size() != target.size())
    throw std::invalid_argument("mse_loss: size mismatch");
  LossResult result;
  result.grad = Tensor(output.shape());
  const auto n = static_cast<double>(output.size());
  double total = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    const double d = output[i] - target[i];
    total += d * d;
    result.grad[i] = 2.0 * d / n;
  }
  result.value = total / n;
  return result;
}

std::vector<std::size_t> argmax_rows(const Tensor& logits) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::vector<std::size_t> out(batch, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    double best = logits.at2(b, 0);
    for (std::size_t k = 1; k < classes; ++k)
      if (logits.at2(b, k) > best) {
        best = logits.at2(b, k);
        out[b] = k;
      }
  }
  return out;
}

void save_parameters(Sequential& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  const auto params = net.params();
  out << params.size() << "\n";
  out.precision(17);
  for (const auto& p : params) {
    out << p.name << " " << p.value->size() << "\n";
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      out << (*p.value)[i];
      out << (i + 1 == p.value->size() ? '\n' : ' ');
    }
  }
  if (!out) throw std::runtime_error("save_parameters: write failed: " + path);
}

void load_parameters(Sequential& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  std::size_t count = 0;
  in >> count;
  const auto params = net.params();
  if (count != params.size())
    throw std::invalid_argument("load_parameters: block count mismatch");
  for (const auto& p : params) {
    std::string name;
    std::size_t size = 0;
    in >> name >> size;
    if (name != p.name || size != p.value->size())
      throw std::invalid_argument("load_parameters: block '" + p.name +
                                  "' mismatch (found '" + name + "')");
    for (std::size_t i = 0; i < size; ++i) in >> (*p.value)[i];
  }
  if (!in) throw std::runtime_error("load_parameters: truncated file: " + path);
}

void Sgd::step(const std::vector<ParamRef>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& p : params) velocity_.emplace_back(p.value->size(), 0.0);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Vec& w = *params[i].value;
    const Vec& g = *params[i].grad;
    Vec& v = velocity_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      w[j] += v[j];
    }
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto& p : params) {
      m_.emplace_back(p.value->size(), 0.0);
      v_.emplace_back(p.value->size(), 0.0);
    }
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Vec& w = *params[i].value;
    const Vec& g = *params[i].grad;
    for (std::size_t j = 0; j < w.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * g[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace rcr::nn
