#include "rcr/nn/shape_ops.hpp"

#include <stdexcept>

namespace rcr::nn {

Tensor Reshape::forward(const Tensor& input, bool) {
  if (input.rank() < 1)
    throw std::invalid_argument("Reshape::forward: empty tensor");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  std::vector<std::size_t> out_shape;
  out_shape.push_back(batch);
  std::size_t per_sample = 1;
  for (std::size_t d : sample_shape_) {
    out_shape.push_back(d);
    per_sample *= d;
  }
  if (per_sample * batch != input.size())
    throw std::invalid_argument("Reshape::forward: element count mismatch");
  return input.reshaped(std::move(out_shape));
}

Tensor Reshape::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

Tensor Upsample2x::forward(const Tensor& input, bool) {
  if (input.rank() != 4)
    throw std::invalid_argument("Upsample2x::forward: expected rank-4");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  const std::size_t ch = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  Tensor out({batch, ch, 2 * h, 2 * w});
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t c = 0; c < ch; ++c)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x) {
          const double v = input.at4(b, c, y, x);
          out.at4(b, c, 2 * y, 2 * x) = v;
          out.at4(b, c, 2 * y, 2 * x + 1) = v;
          out.at4(b, c, 2 * y + 1, 2 * x) = v;
          out.at4(b, c, 2 * y + 1, 2 * x + 1) = v;
        }
  return out;
}

Tensor Upsample2x::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  const std::size_t batch = input_shape_[0];
  const std::size_t ch = input_shape_[1];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t c = 0; c < ch; ++c)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x) {
          grad.at4(b, c, y, x) = grad_output.at4(b, c, 2 * y, 2 * x) +
                                 grad_output.at4(b, c, 2 * y, 2 * x + 1) +
                                 grad_output.at4(b, c, 2 * y + 1, 2 * x) +
                                 grad_output.at4(b, c, 2 * y + 1, 2 * x + 1);
        }
  return grad;
}

}  // namespace rcr::nn
