#include "rcr/nn/tensor.hpp"

#include <stdexcept>

namespace rcr::nn {

std::size_t Tensor::element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0) {}

Tensor::Tensor(std::vector<std::size_t> shape, Vec data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != element_count(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (element_count(new_shape) != data_.size())
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  return Tensor(std::move(new_shape), data_);
}

std::string Tensor::shape_string() const {
  std::string s;
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(shape_[i]);
  }
  return s;
}

}  // namespace rcr::nn
