#include "rcr/numerics/approx.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::num {

double exp_taylor(double x, std::size_t n_terms) {
  // Accumulate 1 + x + x^2/2! + ... + x^n/n! with compensated summation so
  // that the measured error is the truncation error, not round-off.
  double sum = 0.0;
  double comp = 0.0;
  double term = 1.0;
  for (std::size_t k = 0; k <= n_terms; ++k) {
    const double y = term - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
    term *= x / static_cast<double>(k + 1);
  }
  return sum;
}

double exp_taylor_error(double x, std::size_t n_terms) {
  return std::abs(exp_taylor(x, n_terms) - std::exp(x));
}

std::size_t exp_taylor_terms_for(double x, double tol, std::size_t max_terms) {
  for (std::size_t n = 0; n <= max_terms; ++n)
    if (exp_taylor_error(x, n) <= tol) return n;
  return max_terms;
}

double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n) {
  if (n == 0) throw std::invalid_argument("trapezoid: n must be positive");
  if (b < a) throw std::invalid_argument("trapezoid: b < a");
  const double h = (b - a) / static_cast<double>(n);
  double acc = 0.5 * (f(a) + f(b));
  for (std::size_t i = 1; i < n; ++i)
    acc += f(a + h * static_cast<double>(i));
  return h * acc;
}

double trapezoid_error_estimate(const std::function<double(double)>& f,
                                double a, double b, std::size_t n) {
  return std::abs(trapezoid(f, a, b, n) - trapezoid(f, a, b, 2 * n)) / 3.0;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n) {
  if (n == 0 || n % 2 != 0)
    throw std::invalid_argument("simpson: n must be positive and even");
  if (b < a) throw std::invalid_argument("simpson: b < a");
  const double h = (b - a) / static_cast<double>(n);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    const double w = (i % 2 == 0) ? 2.0 : 4.0;
    acc += w * f(a + h * static_cast<double>(i));
  }
  return h / 3.0 * acc;
}

double central_difference(const std::function<double(double)>& f, double x,
                          double h) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

Vec numerical_gradient(const std::function<double(const Vec&)>& f, const Vec& x,
                       double h) {
  Vec g(x.size());
  Vec probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    probe[i] = xi + h;
    const double fp = f(probe);
    probe[i] = xi - h;
    const double fm = f(probe);
    probe[i] = xi;
    g[i] = (fp - fm) / (2.0 * h);
  }
  return g;
}

}  // namespace rcr::num
