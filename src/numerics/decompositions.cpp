#include "rcr/numerics/decompositions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "rcr/robust/fault_injection.hpp"

namespace rcr::num {

namespace {
// Deliberately tiny: ill-conditioned but non-singular systems (e.g. barrier
// KKT matrices near a constraint boundary) must still factor; only an
// (essentially) exact zero pivot is treated as singular.
constexpr double kSingularTol = 1e-200;
}

namespace {

// Factor out.lu in place.  `input_max_abs` is max|A_ij| of the *original*
// matrix (the singular test historically used the pristine input, which is
// no longer available once elimination starts overwriting out.lu).
void lu_factor_in_place(LuDecomposition& out, double input_max_abs) {
  const std::size_t n = out.lu.rows();
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest remaining entry in column k.
    std::size_t pivot = k;
    double best = std::abs(out.lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(out.lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best <= kSingularTol * (1.0 + input_max_abs)) {
      out.singular = true;
      continue;
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(out.lu(k, j), out.lu(pivot, j));
      std::swap(out.perm[k], out.perm[pivot]);
      out.sign = -out.sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      out.lu(i, k) /= out.lu(k, k);
      const double lik = out.lu(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j)
        out.lu(i, j) -= lik * out.lu(k, j);
    }
  }
  // Chaos hook: a seeded injector may report this factorization as singular
  // so downstream recovery paths (ridge retries, fallback chains) can be
  // driven deterministically.  No-op unless RCR_FAULTS is installed.
  if (robust::faults::enabled() &&
      robust::faults::should_inject("numerics.lu.singular"))
    out.singular = true;
}

}  // namespace

LuDecomposition lu_decompose(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("lu_decompose: not square");
  LuDecomposition out;
  out.lu = a;
  lu_factor_in_place(out, a.max_abs());
  return out;
}

LuDecomposition lu_decompose(Matrix&& a) {
  if (!a.square()) throw std::invalid_argument("lu_decompose: not square");
  LuDecomposition out;
  out.lu = std::move(a);
  lu_factor_in_place(out, out.lu.max_abs());
  return out;
}

void lu_decompose_into(const Matrix& a, LuDecomposition& out) {
  if (!a.square()) throw std::invalid_argument("lu_decompose: not square");
  out.lu = a;  // vector copy-assign: reuses capacity on same-shape refactors
  out.sign = 1;
  out.singular = false;
  lu_factor_in_place(out, a.max_abs());
}

Vec LuDecomposition::solve(const Vec& b) const {
  Vec x;
  solve_into(b, x);
  return x;
}

void LuDecomposition::solve_into(const Vec& b, Vec& x) const {
  if (singular) throw std::runtime_error("LuDecomposition::solve: singular matrix");
  const std::size_t n = lu.rows();
  if (b.size() != n)
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  x.resize(n);
  // Forward substitution with permuted right-hand side, written into x.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution in place: x[ii] is read once before being overwritten,
  // and entries j > ii are already final -- same arithmetic as the two-buffer
  // form, so the result is bit-identical.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
}

double LuDecomposition::determinant() const {
  if (singular) return 0.0;
  double det = sign;
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

Vec solve(const Matrix& a, const Vec& b) { return lu_decompose(a).solve(b); }

Matrix solve(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("solve(Matrix): row mismatch");
  const LuDecomposition f = lu_decompose(a);
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vec xj = f.solve(b.col(j));
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  return solve(a, Matrix::identity(a.rows()));
}

std::optional<Matrix> cholesky(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return std::nullopt;
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

Vec cholesky_solve(const Matrix& a, const Vec& b) {
  const auto l = cholesky(a);
  if (!l) throw std::runtime_error("cholesky_solve: matrix not SPD");
  const std::size_t n = a.rows();
  if (b.size() != n)
    throw std::invalid_argument("cholesky_solve: size mismatch");
  // L y = b
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= (*l)(i, j) * y[j];
    y[i] = acc / (*l)(i, i);
  }
  // L^T x = y
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= (*l)(j, ii) * x[j];
    x[ii] = acc / (*l)(ii, ii);
  }
  return x;
}

std::optional<LdltDecomposition> ldlt(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("ldlt: not square");
  const std::size_t n = a.rows();
  LdltDecomposition out;
  out.l = Matrix::identity(n);
  out.d.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k)
      dj -= out.l(j, k) * out.l(j, k) * out.d[k];
    if (std::abs(dj) < kSingularTol || !std::isfinite(dj)) return std::nullopt;
    out.d[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k)
        acc -= out.l(i, k) * out.l(j, k) * out.d[k];
      out.l(i, j) = acc / dj;
    }
  }
  return out;
}

Vec LdltDecomposition::solve(const Vec& b) const {
  const std::size_t n = l.rows();
  if (b.size() != n)
    throw std::invalid_argument("LdltDecomposition::solve: size mismatch");
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    y[i] = acc;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] /= d[i];
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * x[j];
    x[ii] = acc;
  }
  return x;
}

bool is_psd(const Matrix& a, double tol) {
  if (!a.square()) return false;
  Matrix shifted = a;
  const double bump = tol * (1.0 + a.max_abs());
  for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += bump;
  return cholesky(shifted).has_value();
}

double condition_number_1(const Matrix& a) {
  const LuDecomposition f = lu_decompose(a);
  if (f.singular) return std::numeric_limits<double>::infinity();
  const Matrix ainv = inverse(a);
  auto norm1 = [](const Matrix& m) {
    double best = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      double colsum = 0.0;
      for (std::size_t i = 0; i < m.rows(); ++i) colsum += std::abs(m(i, j));
      best = std::max(best, colsum);
    }
    return best;
  };
  return norm1(a) * norm1(ainv);
}

}  // namespace rcr::num
