#include "rcr/numerics/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rcr::num {

Matrix EigenDecomposition::reconstruct(const Vec& mapped) const {
  if (mapped.size() != eigenvalues.size())
    throw std::invalid_argument("EigenDecomposition::reconstruct: size mismatch");
  const std::size_t n = mapped.size();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    if (mapped[k] == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = eigenvectors(i, k);
      if (vik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += mapped[k] * vik * eigenvectors(j, k);
    }
  }
  return out;
}

EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: not square");
  const double scale = 1.0 + a.max_abs();
  if (!a.is_symmetric(1e-8 * scale))
    throw std::invalid_argument("eigen_symmetric: matrix not symmetric");

  const std::size_t n = a.rows();
  Matrix m = a;
  m.symmetrize();
  Matrix v = Matrix::identity(n);

  // Cyclic Jacobi: sweep over all off-diagonal pairs, rotating each to zero.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (std::sqrt(off) <= 1e-14 * scale * static_cast<double>(n)) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vec lambda(n);
  for (std::size_t i = 0; i < n; ++i) lambda[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = lambda[order[k]];
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, k) = v(i, order[k]);
  }
  return out;
}

Matrix project_psd(const Matrix& a) {
  Matrix sym = a;
  sym.symmetrize();
  EigenDecomposition e = eigen_symmetric(sym);
  Vec clamped = e.eigenvalues;
  for (double& l : clamped) l = std::max(l, 0.0);
  return e.reconstruct(clamped);
}

Matrix project_psd_floor(const Matrix& a, double eps) {
  Matrix sym = a;
  sym.symmetrize();
  EigenDecomposition e = eigen_symmetric(sym);
  Vec clamped = e.eigenvalues;
  for (double& l : clamped) l = std::max(l, eps);
  return e.reconstruct(clamped);
}

std::size_t symmetric_rank(const Matrix& a, double tol) {
  const EigenDecomposition e = eigen_symmetric(a);
  double max_abs = 0.0;
  for (double l : e.eigenvalues) max_abs = std::max(max_abs, std::abs(l));
  if (max_abs == 0.0) return 0;
  std::size_t r = 0;
  for (double l : e.eigenvalues)
    if (std::abs(l) > tol * max_abs) ++r;
  return r;
}

double max_eigenvalue(const Matrix& a) {
  const EigenDecomposition e = eigen_symmetric(a);
  return e.eigenvalues.back();
}

double min_eigenvalue(const Matrix& a) {
  const EigenDecomposition e = eigen_symmetric(a);
  return e.eigenvalues.front();
}

double spectral_norm(const Matrix& a) {
  const Matrix ata = multiply_at_b(a, a);
  return std::sqrt(std::max(0.0, max_eigenvalue(ata)));
}

}  // namespace rcr::num
