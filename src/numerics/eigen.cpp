#include "rcr/numerics/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "rcr/rt/simd.hpp"

namespace rcr::num {

namespace simd = rcr::rt::simd;

Matrix EigenDecomposition::reconstruct(const Vec& mapped) const {
  if (mapped.size() != eigenvalues.size())
    throw std::invalid_argument("EigenDecomposition::reconstruct: size mismatch");
  const std::size_t n = mapped.size();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    if (mapped[k] == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = eigenvectors(i, k);
      if (vik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += mapped[k] * vik * eigenvectors(j, k);
    }
  }
  return out;
}

namespace {

// Cyclic Jacobi sweeps on m, accumulating rotations into vt, whose row k is
// the k-th eigenvector (transposed layout so the rotation touches two
// contiguous rows).  The per-rotation update order matches the original
// solver exactly -- strided column update, then the two m rows, then the two
// vt rows -- and rotate_pair is lane-independent, so the result is
// bit-identical to the pre-SIMD loop on every path.  rot_thresh > 0 adds
// the opt-in skip of near-converged off-diagonals (warm-started projection
// fast path); 0 preserves legacy behavior.
void jacobi_sweeps(Matrix& m, Matrix& vt, double scale, int max_sweeps,
                   double rot_thresh, double off_tol) {
  const std::size_t n = m.rows();
  const simd::Kernels& K = simd::active();
  double* pm = m.data().data();
  double* pv = vt.data().data();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (std::sqrt(off) <= off_tol * scale * static_cast<double>(n)) break;

    std::size_t rotations = 0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        if (rot_thresh > 0.0 && std::abs(apq) <= rot_thresh * scale) continue;
        ++rotations;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        K.rotate_pair(pm + p * n, pm + q * n, c, s, n);
        K.rotate_pair(pv + p * n, pv + q * n, c, s, n);
      }
    }
    // Every remaining off-diagonal is under the rotation threshold: more
    // sweeps would only rescan the same skips.  (Without a threshold a
    // rotation-free sweep implies every |apq| <= 1e-300, converged too.)
    if (rotations == 0) break;
  }
}

void sort_spectrum(const Matrix& m, Vec& lambda,
                   std::vector<std::size_t>& order) {
  const std::size_t n = m.rows();
  lambda.resize(n);
  for (std::size_t i = 0; i < n; ++i) lambda[i] = m(i, i);
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });
}

void identity_into(Matrix& m, std::size_t n) {
  m.assign(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
}

// out = V diag(max(lambda, floor)) V^T accumulated from vt rows in
// ascending-eigenvalue order -- the same skips and accumulation order as
// EigenDecomposition::reconstruct, so identical bits.
void reconstruct_from_vt(const Matrix& vt, const Vec& lambda,
                         const std::vector<std::size_t>& order,
                         double floor_value, Matrix& out) {
  const std::size_t n = vt.rows();
  const simd::Kernels& K = simd::active();
  out.assign(n, n, 0.0);
  const double* pv = vt.data().data();
  double* po = out.data().data();
  for (std::size_t k = 0; k < n; ++k) {
    const double lam = std::max(lambda[order[k]], floor_value);
    if (lam == 0.0) continue;
    const double* vrow = pv + order[k] * n;
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = vrow[i];
      if (vik == 0.0) continue;
      K.axpy(lam * vik, vrow, po + i * n, n);
    }
  }
}

}  // namespace

void eigen_sym_into(const Matrix& a, EigenWorkspace& ws,
                    EigenDecomposition& out, int max_sweeps) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: not square");
  const double scale = 1.0 + a.max_abs();
  if (!a.is_symmetric(1e-8 * scale))
    throw std::invalid_argument("eigen_symmetric: matrix not symmetric");

  const std::size_t n = a.rows();
  ws.m = a;
  ws.m.symmetrize();
  identity_into(ws.vt, n);
  jacobi_sweeps(ws.m, ws.vt, scale, max_sweeps, 0.0, 1e-14);
  sort_spectrum(ws.m, ws.lambda, ws.order);

  out.eigenvalues.resize(n);
  out.eigenvectors.assign(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = ws.lambda[ws.order[k]];
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, k) = ws.vt(ws.order[k], i);
  }
}

EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps) {
  EigenWorkspace ws;
  EigenDecomposition out;
  eigen_sym_into(a, ws, out, max_sweeps);
  return out;
}

void project_psd_into(const Matrix& a, PsdProjectWorkspace& ws, Matrix& out,
                      const PsdProjectOptions& opts) {
  const std::size_t n = a.rows();
  const bool warm = opts.warm_start && ws.has_basis && ws.basis.rows() == n;
  if (!warm) {
    // Cold path: replicate project_psd's original sequence exactly --
    // symmetrize, scale off the symmetrized matrix, symmetrize again inside
    // the eigensolver -- so default-configured calls are bit-identical to
    // the allocating implementation.
    ws.m = a;
    ws.m.symmetrize();
    const double scale = 1.0 + ws.m.max_abs();
    ws.m.symmetrize();
    identity_into(ws.vt, n);
    jacobi_sweeps(ws.m, ws.vt, scale, opts.max_sweeps,
                  opts.rotation_threshold, opts.off_tolerance);
  } else {
    // Warm path: rotate A into the previous eigenbasis W (rows of basis).
    // S = W A W^T is near-diagonal when A moved little since the last call
    // (the ADMM iterate case), so the sweep does far fewer rotations.
    // Seeding vt = W makes the accumulated rotations land back in the
    // original frame: the final vt rows are eigenvectors of A itself.  Any
    // orthonormal W is valid, so a frame from a different problem only
    // costs sweeps, never correctness.
    ws.t1 = a;
    ws.t1.symmetrize();
    multiply_into(ws.basis, ws.t1, ws.t2);
    multiply_abt_into(ws.t2, ws.basis, ws.m);
    const double scale = 1.0 + ws.m.max_abs();
    ws.vt = ws.basis;
    jacobi_sweeps(ws.m, ws.vt, scale, opts.max_sweeps,
                  opts.rotation_threshold, opts.off_tolerance);
  }
  sort_spectrum(ws.m, ws.lambda, ws.order);
  reconstruct_from_vt(ws.vt, ws.lambda, ws.order, 0.0, out);
  if (opts.warm_start) {
    std::swap(ws.basis, ws.vt);
    ws.has_basis = true;
    // The swap hands vt whatever buffer basis held before -- empty on the
    // cold bootstrap.  Pre-size it and the warm path's scratch here so a
    // single call fully warms the workspace: the next (first warm) call is
    // already allocation-free.
    if (ws.vt.rows() != n || ws.vt.cols() != n) ws.vt.assign(n, n);
    if (ws.t1.rows() != n || ws.t1.cols() != n) ws.t1.assign(n, n);
    if (ws.t2.rows() != n || ws.t2.cols() != n) ws.t2.assign(n, n);
  }
}

Matrix project_psd(const Matrix& a) {
  PsdProjectWorkspace ws;
  Matrix out;
  project_psd_into(a, ws, out);
  return out;
}

Matrix project_psd_floor(const Matrix& a, double eps) {
  Matrix sym = a;
  sym.symmetrize();
  EigenDecomposition e = eigen_symmetric(sym);
  Vec clamped = e.eigenvalues;
  for (double& l : clamped) l = std::max(l, eps);
  return e.reconstruct(clamped);
}

std::size_t symmetric_rank(const Matrix& a, double tol) {
  const EigenDecomposition e = eigen_symmetric(a);
  double max_abs = 0.0;
  for (double l : e.eigenvalues) max_abs = std::max(max_abs, std::abs(l));
  if (max_abs == 0.0) return 0;
  std::size_t r = 0;
  for (double l : e.eigenvalues)
    if (std::abs(l) > tol * max_abs) ++r;
  return r;
}

double max_eigenvalue(const Matrix& a) {
  const EigenDecomposition e = eigen_symmetric(a);
  return e.eigenvalues.back();
}

double min_eigenvalue(const Matrix& a) {
  const EigenDecomposition e = eigen_symmetric(a);
  return e.eigenvalues.front();
}

double spectral_norm(const Matrix& a) {
  const Matrix ata = multiply_at_b(a, a);
  return std::sqrt(std::max(0.0, max_eigenvalue(ata)));
}

}  // namespace rcr::num
