#include "rcr/numerics/float_probe.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rcr::num {

FloatClass classify(double x) {
  switch (std::fpclassify(x)) {
    case FP_NAN:
      return FloatClass::kNan;
    case FP_INFINITE:
      return FloatClass::kOverflow;
    case FP_ZERO:
      return FloatClass::kZero;
    case FP_SUBNORMAL:
      return FloatClass::kSubnormal;
    default:
      return FloatClass::kNormal;
  }
}

std::string to_string(FloatClass c) {
  switch (c) {
    case FloatClass::kNormal:
      return "normal";
    case FloatClass::kSubnormal:
      return "subnormal";
    case FloatClass::kZero:
      return "zero";
    case FloatClass::kOverflow:
      return "overflow";
    case FloatClass::kNan:
      return "nan";
  }
  return "unknown";
}

FloatProfile profile(const Vec& x) {
  FloatProfile p;
  for (double v : x) {
    switch (classify(v)) {
      case FloatClass::kNormal:
        ++p.normals;
        break;
      case FloatClass::kSubnormal:
        ++p.subnormals;
        break;
      case FloatClass::kZero:
        ++p.zeros;
        break;
      case FloatClass::kOverflow:
        ++p.overflows;
        break;
      case FloatClass::kNan:
        ++p.nans;
        break;
    }
  }
  return p;
}

double ulp_distance(double a, double b) {
  constexpr double kSaturated = 1e18;
  if (!std::isfinite(a) || !std::isfinite(b)) return kSaturated;
  if (a == b) return 0.0;
  if ((a < 0.0) != (b < 0.0)) return kSaturated;
  auto to_ordered = [](double x) {
    const auto bits = std::bit_cast<std::uint64_t>(std::abs(x));
    return bits;
  };
  const std::uint64_t ua = to_ordered(a);
  const std::uint64_t ub = to_ordered(b);
  return static_cast<double>(ua > ub ? ua - ub : ub - ua);
}

int matching_digits(double a, double b) {
  if (a == b) return 17;
  if (!std::isfinite(a) || !std::isfinite(b)) return 0;
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 17;
  const double rel = std::abs(a - b) / denom;
  if (rel >= 1.0) return 0;
  const int digits = static_cast<int>(-std::log10(rel));
  return std::min(17, std::max(0, digits));
}

}  // namespace rcr::num
