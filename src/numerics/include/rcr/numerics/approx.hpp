// Finite approximations of infinite objects (paper Eqs. 3-4) and their
// truncation-error estimates.  These illustrate, and let the benches measure,
// the truncation-vs-round-off tradeoff Sec. IV-B discusses.
#pragma once

#include <cstddef>
#include <functional>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::num {

/// Taylor polynomial approximation of e^x truncated after the x^n/n! term
/// (paper Eq. 3).  Terms are accumulated with compensated summation.
double exp_taylor(double x, std::size_t n_terms);

/// Absolute truncation error |exp_taylor(x, n) - std::exp(x)|.
double exp_taylor_error(double x, std::size_t n_terms);

/// Smallest number of terms for which the Taylor series of e^x achieves the
/// requested absolute tolerance (capped at `max_terms`).
std::size_t exp_taylor_terms_for(double x, double tol, std::size_t max_terms = 512);

/// Composite trapezoidal rule over [a, b] with n subintervals (paper Eq. 4).
/// Throws std::invalid_argument when n == 0 or b < a.
double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n);

/// Richardson-style error estimate: |T(n) - T(2n)| / 3, the standard
/// a-posteriori bound for the O(h^2) trapezoidal rule.
double trapezoid_error_estimate(const std::function<double(double)>& f, double a,
                                double b, std::size_t n);

/// Composite Simpson rule (n must be even; throws otherwise) -- used as the
/// higher-order reference when benchmarking trapezoid truncation error.
double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n);

/// Central finite difference df/dx with step h.
double central_difference(const std::function<double(double)>& f, double x,
                          double h);

/// Numerical gradient of a multivariate function via central differences.
Vec numerical_gradient(const std::function<double(const Vec&)>& f, const Vec& x,
                       double h = 1e-6);

}  // namespace rcr::num
