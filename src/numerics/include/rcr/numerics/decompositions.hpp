// Direct factorizations and linear solvers used by the convex-optimization
// substrate (KKT systems, Newton steps, PSD tests).
#pragma once

#include <optional>

#include "rcr/numerics/matrix.hpp"

namespace rcr::num {

/// LU factorization with partial pivoting of a square matrix.
struct LuDecomposition {
  Matrix lu;                   ///< Packed L (unit lower) and U factors.
  std::vector<std::size_t> perm;  ///< Row permutation applied to the input.
  int sign = 1;                ///< Permutation parity (determinant sign).
  bool singular = false;       ///< True when a pivot vanished.

  /// Solve A x = b using the stored factors; throws std::runtime_error when
  /// the matrix was singular.
  Vec solve(const Vec& b) const;

  /// Solve A x = b writing into `x` (resized, storage reused -- zero
  /// allocations once warm).  `x` must not alias `b`.  Bit-identical to
  /// solve().
  void solve_into(const Vec& b, Vec& x) const;

  /// det(A); 0 when singular.
  double determinant() const;
};

/// Factor a square matrix; throws std::invalid_argument when not square.
LuDecomposition lu_decompose(const Matrix& a);

/// Factor a square matrix, moving it into the decomposition's storage (no
/// extra copy).  For callers that build a throwaway matrix just to factor it.
LuDecomposition lu_decompose(Matrix&& a);

/// Factor `a` into an existing decomposition, reusing its storage (zero
/// allocations once `out` has been sized by a previous same-shape call).
/// Bit-identical to lu_decompose(a).
void lu_decompose_into(const Matrix& a, LuDecomposition& out);

/// Solve A x = b via LU with partial pivoting.
/// Throws std::runtime_error when A is singular to working precision.
Vec solve(const Matrix& a, const Vec& b);

/// Solve A X = B column-by-column (B has the same row count as A).
Matrix solve(const Matrix& a, const Matrix& b);

/// Inverse via LU; throws std::runtime_error when singular.
Matrix inverse(const Matrix& a);

/// Cholesky factor L of a symmetric positive-definite A (A = L L^T).
/// Returns std::nullopt when A is not positive definite to working precision.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error when A is not SPD.
Vec cholesky_solve(const Matrix& a, const Vec& b);

/// LDL^T factorization for symmetric (possibly indefinite, but non-pivoting)
/// matrices; returns std::nullopt when a zero pivot is hit.
struct LdltDecomposition {
  Matrix l;  ///< Unit lower-triangular factor.
  Vec d;     ///< Diagonal of D.
  Vec solve(const Vec& b) const;
};
std::optional<LdltDecomposition> ldlt(const Matrix& a);

/// True when symmetric A is positive semidefinite within tolerance `tol`
/// (checked via Cholesky of A + tol*I).
bool is_psd(const Matrix& a, double tol = 1e-9);

/// 1-norm condition number estimate via explicit inverse (small matrices).
/// Returns +inf for singular matrices.
double condition_number_1(const Matrix& a);

}  // namespace rcr::num
