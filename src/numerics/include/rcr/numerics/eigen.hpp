// Symmetric eigenvalue machinery: cyclic Jacobi rotations, spectral
// projections onto the PSD cone, and rank estimation.  These are the
// workhorses behind the SDP/TMP solvers of Sec. IV-C of the paper.
//
// The `_into` workspace variants write the same bits the allocating
// counterparts return (DESIGN.md Sec. 7), so iterative callers -- the ADMM
// SDP projection above all -- can run allocation-free once warm without
// changing results.  Bits change only through explicit PsdProjectOptions
// opt-ins (warm-started eigenbasis, rotation threshold).
#pragma once

#include <cstddef>
#include <vector>

#include "rcr/numerics/matrix.hpp"

namespace rcr::num {

/// Spectral decomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  Vec eigenvalues;   ///< Ascending order.
  Matrix eigenvectors;  ///< Column j is the eigenvector for eigenvalues[j].

  /// Reconstruct V diag(f(lambda)) V^T for an arbitrary spectral map.
  Matrix reconstruct(const Vec& mapped_eigenvalues) const;
};

/// Cyclic Jacobi eigensolver for symmetric matrices.
/// Throws std::invalid_argument when A is not square or not symmetric
/// (tolerance 1e-8 relative to the largest entry).
EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64);

/// Reusable buffers for eigen_sym_into / project_psd_into.  Sized lazily on
/// first use; repeat calls at the same dimension allocate nothing.
struct EigenWorkspace {
  Matrix m;    ///< Working copy, diagonalized in place.
  Matrix vt;   ///< Accumulated rotations; row k is the k-th eigenvector.
  Vec lambda;  ///< Unsorted diagonal.
  std::vector<std::size_t> order;  ///< Ascending-eigenvalue permutation.
};

/// Workspace variant of eigen_symmetric: writes the same bits into `out`
/// that eigen_symmetric returns, reusing `ws` and `out` storage when warm.
void eigen_sym_into(const Matrix& a, EigenWorkspace& ws,
                    EigenDecomposition& out, int max_sweeps = 64);

/// Tuning knobs for project_psd_into.  The defaults reproduce project_psd
/// bit-for-bit; every field that can change bits is an explicit opt-in.
struct PsdProjectOptions {
  /// Reuse the previous call's eigenbasis: rotate the input into that frame
  /// (where it is near-diagonal when consecutive inputs are close, as in
  /// ADMM) before sweeping.  Changes rounding, not the projection contract.
  bool warm_start = false;
  /// When > 0, skip rotations with |a_pq| <= threshold * scale.  Opt-in
  /// early exit on already-converged off-diagonals.
  double rotation_threshold = 0.0;
  /// Sweep convergence cutoff on sqrt(sum of squared off-diagonals),
  /// relative to scale * n.
  double off_tolerance = 1e-14;
  int max_sweeps = 64;
};

/// State carried between project_psd_into calls.
struct PsdProjectWorkspace {
  Matrix m;      ///< Working copy, diagonalized in place.
  Matrix vt;     ///< Accumulated rotations (rows are eigenvectors).
  Matrix basis;  ///< Previous eigenbasis for warm_start (rows).
  Matrix t1, t2;  ///< Warm-start similarity-transform temporaries.
  Vec lambda;
  std::vector<std::size_t> order;
  bool has_basis = false;  ///< basis holds a valid frame from a prior call.

  /// Drop the warm-start frame (e.g. when switching problems mid-workspace;
  /// correctness never requires this -- any orthonormal frame is a valid
  /// starting basis -- but a stale frame wastes sweeps).
  void reset() { has_basis = false; }
};

/// Workspace variant of project_psd.  With default options the output is
/// bit-identical to project_psd; warm_start/rotation_threshold trade bit
/// reproducibility for fewer sweeps (ADMM projection fast path).
void project_psd_into(const Matrix& a, PsdProjectWorkspace& ws, Matrix& out,
                      const PsdProjectOptions& opts = {});

/// Euclidean projection of symmetric A onto the PSD cone:
/// clamp negative eigenvalues to zero.
Matrix project_psd(const Matrix& a);

/// Projection onto {X : X >= eps*I} (used to keep barriers strictly feasible).
Matrix project_psd_floor(const Matrix& a, double eps);

/// Number of eigenvalues with |lambda| > tol * max|lambda| (numerical rank of
/// a symmetric matrix).
std::size_t symmetric_rank(const Matrix& a, double tol = 1e-8);

/// Largest eigenvalue via the symmetric eigendecomposition.
double max_eigenvalue(const Matrix& a);

/// Smallest eigenvalue via the symmetric eigendecomposition.
double min_eigenvalue(const Matrix& a);

/// Spectral norm of an arbitrary matrix: sqrt(lambda_max(A^T A)).
double spectral_norm(const Matrix& a);

}  // namespace rcr::num
