// Symmetric eigenvalue machinery: cyclic Jacobi rotations, spectral
// projections onto the PSD cone, and rank estimation.  These are the
// workhorses behind the SDP/TMP solvers of Sec. IV-C of the paper.
#pragma once

#include "rcr/numerics/matrix.hpp"

namespace rcr::num {

/// Spectral decomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  Vec eigenvalues;   ///< Ascending order.
  Matrix eigenvectors;  ///< Column j is the eigenvector for eigenvalues[j].

  /// Reconstruct V diag(f(lambda)) V^T for an arbitrary spectral map.
  Matrix reconstruct(const Vec& mapped_eigenvalues) const;
};

/// Cyclic Jacobi eigensolver for symmetric matrices.
/// Throws std::invalid_argument when A is not square or not symmetric
/// (tolerance 1e-8 relative to the largest entry).
EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64);

/// Euclidean projection of symmetric A onto the PSD cone:
/// clamp negative eigenvalues to zero.
Matrix project_psd(const Matrix& a);

/// Projection onto {X : X >= eps*I} (used to keep barriers strictly feasible).
Matrix project_psd_floor(const Matrix& a, double eps);

/// Number of eigenvalues with |lambda| > tol * max|lambda| (numerical rank of
/// a symmetric matrix).
std::size_t symmetric_rank(const Matrix& a, double tol = 1e-8);

/// Largest eigenvalue via the symmetric eigendecomposition.
double max_eigenvalue(const Matrix& a);

/// Smallest eigenvalue via the symmetric eigendecomposition.
double min_eigenvalue(const Matrix& a);

/// Spectral norm of an arbitrary matrix: sqrt(lambda_max(A^T A)).
double spectral_norm(const Matrix& a);

}  // namespace rcr::num
