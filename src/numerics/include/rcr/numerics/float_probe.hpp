// Floating-point representation probes (Sec. IV-B's third error source:
// overflow, underflow, and round-off in the representation of reals).
//
// The issue detector in rcr::signal uses these classifications to label the
// defect classes of Fig. 3.
#pragma once

#include <cstddef>
#include <string>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::num {

/// Classification of a computed floating-point result.
enum class FloatClass {
  kNormal,      ///< Finite, normal magnitude.
  kSubnormal,   ///< Finite but denormalized (gradual underflow).
  kZero,        ///< Exactly zero.
  kOverflow,    ///< Infinite.
  kNan,         ///< Not a number.
};

/// Classify a single double.
FloatClass classify(double x);

/// Human-readable name for a FloatClass.
std::string to_string(FloatClass c);

/// Summary of the float classes present in a vector.
struct FloatProfile {
  std::size_t normals = 0;
  std::size_t subnormals = 0;
  std::size_t zeros = 0;
  std::size_t overflows = 0;
  std::size_t nans = 0;

  bool clean() const { return overflows == 0 && nans == 0; }
  /// True when underflow has begun eating precision.
  bool underflowing() const { return subnormals > 0; }
};

/// Profile every entry of x.
FloatProfile profile(const Vec& x);

/// Units-in-the-last-place distance between two doubles; returns a saturated
/// large value when signs differ or either input is non-finite.
double ulp_distance(double a, double b);

/// Number of significant decimal digits on which a and b agree
/// (0 when they differ in the leading digit, capped at 17).
int matching_digits(double a, double b);

}  // namespace rcr::num
