// Dense row-major matrix type for the numerics substrate.
//
// The class maintains the invariant data.size() == rows*cols.  It is a value
// type (copyable, movable) sized for the small/medium problems the RCR
// framework solves (SDP blocks, network layer bounds, channel matrices).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::num {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all entries `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer list; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from vector d.
  static Matrix diag(const Vec& d);

  /// Column vector (n x 1) view of v.
  static Matrix column(const Vec& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Reshape to rows x cols and set every entry to `fill`, reusing the
  /// existing heap block whenever its capacity suffices.  The workhorse of
  /// the `_into` kernel variants: after a warm-up call at a given shape,
  /// repeated assigns are allocation-free.
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Reshape to rows x cols reusing storage; entry values are unspecified.
  void resize(std::size_t rows, std::size_t cols);
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Row i as a vector copy.
  Vec row(std::size_t i) const;
  /// Column j as a vector copy.
  Vec col(std::size_t j) const;
  /// Main diagonal as a vector copy (length min(rows, cols)).
  Vec diagonal() const;

  Matrix transpose() const;

  /// Sum of diagonal entries; requires a square matrix.
  double trace() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max absolute entry; 0 for empty.
  double max_abs() const;

  /// Symmetrize in place: A <- (A + A^T)/2.  Requires square.
  void symmetrize();

  /// True when max |A_ij - A_ji| <= tol.  Requires square.
  bool is_symmetric(double tol = 1e-12) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Matrix product; throws std::invalid_argument on inner-dimension mismatch.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place variants of the hot products.  Each reshapes `out` (reusing its
/// storage; zero allocations once warm at a fixed shape) and writes the same
/// bits the allocating counterpart returns.  `out` must not alias an input.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& out);
void multiply_at_b_into(const Matrix& a, const Matrix& b, Matrix& out);
void multiply_abt_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = A^T, reusing out's storage.  `out` must not alias `a`.
void transpose_into(const Matrix& a, Matrix& out);

/// y = A x written into `y` (resized, storage reused).  `y` must not alias x.
void matvec_into(const Matrix& a, const Vec& x, Vec& y);

/// y = A^T x, writing into `y` (resized, storage reused).  `y` must not
/// alias `x`.  Bit-identical to matvec_transposed().
void matvec_transposed_into(const Matrix& a, const Vec& x, Vec& y);

/// Matrix product that skips zero entries of `a` row-wise.  Worth using when
/// `a` is structurally sparse (masks, selection matrices); on dense data the
/// per-entry branch costs more than it saves -- use operator* there.
Matrix multiply_sparse(const Matrix& a, const Matrix& b);

/// A^T B without materializing the transpose (Gram/normal-equation paths).
/// Bit-identical to `a.transpose() * b`.
Matrix multiply_at_b(const Matrix& a, const Matrix& b);

/// A B^T without materializing the transpose (covariance/SDP paths).
/// Bit-identical to `a * b.transpose()`.
Matrix multiply_abt(const Matrix& a, const Matrix& b);

/// y = A x.  Throws std::invalid_argument on dimension mismatch.
Vec matvec(const Matrix& a, const Vec& x);

/// y = A^T x.  Throws std::invalid_argument on dimension mismatch.
Vec matvec_transposed(const Matrix& a, const Vec& x);

/// x^T A y (bilinear form).  Throws std::invalid_argument on mismatch.
double quad_form(const Vec& x, const Matrix& a, const Vec& y);

/// Outer product x y^T.
Matrix outer(const Vec& x, const Vec& y);

/// <A, B> = tr(A^T B), the Frobenius inner product.
double frobenius_dot(const Matrix& a, const Matrix& b);

/// True when all entries differ by at most tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

}  // namespace rcr::num
