// Mixed-precision linear solves: an fp32 LU factorization whose cheap
// triangular solves are corrected by fp64 residual-based iterative
// refinement (classic Wilkinson refinement).  The opt-in fast path behind
// the solvers' `mixed_precision` options -- the fp64 paths stay the default
// and are bit-identical with the option off.
//
// Contract: refine_solve targets a *residual tolerance*, not bit identity
// with the fp64 LU solve.  The fp32 kernels ride the SIMD layer's
// reassociating class; callers must treat the result like any other
// iterative solver output.  When the fp32 factorization is singular (an
// ill-conditioned matrix can underflow to singularity in fp32 while staying
// solvable in fp64) or refinement stalls, callers fall back to fp64.
#pragma once

#include <cstddef>
#include <vector>

#include "rcr/numerics/matrix.hpp"

namespace rcr::num {

/// fp32 LU factorization with partial pivoting, PA = LU packed in `lu`.
struct FloatLu {
  std::size_t n = 0;
  std::vector<float> lu;           ///< Row-major n x n, L below / U on+above.
  std::vector<std::size_t> perm;   ///< Row permutation (pivoting).
  bool singular = false;           ///< An exact-zero pivot was hit.

  /// x = A^-1 b via forward/back substitution in fp32.
  /// Requires b.size() == x.size() == n and !singular.
  void solve_into(const std::vector<float>& b, std::vector<float>& x) const;
};

/// Factor `a` (converted to fp32) in place into `out`, reusing its storage.
void float_lu_into(const Matrix& a, FloatLu& out);

/// Allocating convenience wrapper around float_lu_into.
FloatLu float_lu(const Matrix& a);

/// Buffers reused across refine_solve calls.
struct RefineWorkspace {
  std::vector<float> bf, xf;  ///< fp32 right-hand side / solution staging.
  Vec r;                      ///< fp64 residual.
  Vec ax;                     ///< fp64 A*x staging.
};

/// Solve a x = b with the fp32 factor `f` plus fp64 iterative refinement:
/// repeat x += A^-1_f32 (b - A x) until ||b - A x||_inf <= tol * (1 +
/// ||b||_inf).  Returns the number of refinement corrections performed
/// (>= 1) on success, or -1 when refinement stalls or diverges (non-finite
/// or non-decreasing residual) -- the caller should redo the solve in fp64.
int refine_solve(const Matrix& a, const FloatLu& f, const Vec& b, Vec& x,
                 double tol, int max_iters, RefineWorkspace& ws);

}  // namespace rcr::num
