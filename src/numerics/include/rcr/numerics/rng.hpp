// Deterministic random-number utilities.
//
// Every stochastic component in the framework (PSO, channel fading, GAN
// training, workload generators) draws from an explicitly seeded Rng so that
// experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::num {

/// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal (mean 0, stddev 1) scaled/shifted.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate.
  double exponential(double rate);

  /// Rayleigh-distributed magnitude with scale sigma
  /// (|h| for h ~ CN(0, 2 sigma^2); used by the fading channel model).
  double rayleigh(double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Vector of iid uniforms.
  Vec uniform_vec(std::size_t n, double lo = 0.0, double hi = 1.0);

  /// Vector of iid normals.
  Vec normal_vec(std::size_t n, double mean = 0.0, double stddev = 1.0);

  /// Sample an index from an unnormalized non-negative weight vector.
  /// Throws std::invalid_argument when weights are empty or all zero.
  std::size_t categorical(const Vec& weights);

  /// Fisher-Yates shuffle of indices 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Underlying engine (for std:: distributions not wrapped here).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rcr::num
