// Numerically stable primitives, plus their deliberately *naive* counterparts.
//
// Sec. V of the paper observes that "mathematical equivalence does not
// necessarily segue to correct results": computing log(softmax(x)) as two
// separate operations blows up as softmax outputs approach 0, while the fused
// log-softmax is stable.  This header provides both forms so the instability
// onset can be measured (experiment E13), along with compensated summation
// and log-sum-exp.
#pragma once

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::num {

/// Kahan compensated summation; accurate to O(eps) independent of length.
double kahan_sum(const Vec& values);

/// Plain left-to-right summation (round-off grows with length).
double naive_sum(const Vec& values);

/// log(sum_i exp(x_i)) computed with the max-shift trick; never overflows for
/// finite inputs.  Returns -inf for the empty vector.
double log_sum_exp(const Vec& x);

/// Stable softmax: exp(x - max) / sum.  Every output is finite and in [0, 1].
Vec softmax(const Vec& x);

/// Naive softmax: exp(x) / sum(exp(x)).  Overflows for large logits.
Vec softmax_naive(const Vec& x);

/// Fused, stable log-softmax: x - max - log(sum exp(x - max)).
Vec log_softmax(const Vec& x);

/// The unstable composition log(softmax_naive(x)) the paper warns about:
/// underflowed softmax entries produce -inf/NaN.
Vec log_softmax_naive(const Vec& x);

/// Stable two-norm avoiding overflow/underflow (scaled accumulation, as in
/// LAPACK's dnrm2).
double stable_norm2(const Vec& x);

/// hypot-style stable sqrt(a^2 + b^2).
double stable_hypot(double a, double b);

/// Relative error |approx - exact| / max(|exact|, floor).
double relative_error(double approx, double exact, double floor = 1e-300);

/// True when every component is finite.
bool all_finite(const Vec& x);

}  // namespace rcr::num
