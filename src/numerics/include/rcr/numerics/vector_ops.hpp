// Dense real-vector algebra used throughout the RCR framework.
//
// Vectors are plain std::vector<double>; all operations are free functions so
// that callers can interoperate with any container of doubles without
// wrapping.  Shape mismatches are programming errors and throw
// std::invalid_argument.
#pragma once

#include <cstddef>
#include <vector>

namespace rcr {

/// Dense column vector of doubles.
using Vec = std::vector<double>;

namespace num {

/// Elementwise sum a + b.  Throws std::invalid_argument on size mismatch.
Vec add(const Vec& a, const Vec& b);

/// Elementwise difference a - b.  Throws std::invalid_argument on size mismatch.
Vec sub(const Vec& a, const Vec& b);

/// Scalar multiple s * a.
Vec scale(const Vec& a, double s);

/// In-place axpy: y += s * x.  Throws std::invalid_argument on size mismatch.
void axpy(double s, const Vec& x, Vec& y);

/// Inner product <a, b>.  Throws std::invalid_argument on size mismatch.
double dot(const Vec& a, const Vec& b);

/// Euclidean (L2) norm.
double norm2(const Vec& a);

/// Infinity norm (max absolute entry); 0 for the empty vector.
double norm_inf(const Vec& a);

/// L1 norm (sum of absolute entries).
double norm1(const Vec& a);

/// Euclidean distance ||a - b||_2.
double distance(const Vec& a, const Vec& b);

/// Elementwise (Hadamard) product.
Vec hadamard(const Vec& a, const Vec& b);

/// Vector filled with `value`, length n.
Vec constant(std::size_t n, double value);

/// Clamp every component of `v` into [lo[i], hi[i]].
/// Throws std::invalid_argument on size mismatch.
Vec clamp(const Vec& v, const Vec& lo, const Vec& hi);

/// Linear interpolation (1-t)*a + t*b.
Vec lerp(const Vec& a, const Vec& b, double t);

/// True when ||a - b||_inf <= tol.
bool approx_equal(const Vec& a, const Vec& b, double tol);

}  // namespace num
}  // namespace rcr
