#include "rcr/numerics/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rcr/rt/parallel.hpp"
#include "rcr/rt/simd.hpp"

namespace rcr::num {

namespace simd = rcr::rt::simd;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vec& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const Vec& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

void Matrix::assign(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

Vec Matrix::row(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("Matrix::row");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

Vec Matrix::col(std::size_t j) const {
  if (j >= cols_) throw std::out_of_range("Matrix::col");
  Vec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Vec Matrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vec out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(i, i);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix t;
  transpose_into(*this, t);
  return t;
}

double Matrix::trace() const {
  if (!square()) throw std::invalid_argument("Matrix::trace: not square");
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Matrix::symmetrize() {
  if (!square()) throw std::invalid_argument("Matrix::symmetrize: not square");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
}

bool Matrix::is_symmetric(double tol) const {
  if (!square()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}
}  // namespace

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "Matrix+=");
  simd::active().add(data_.data(), rhs.data_.data(), data_.data(),
                     data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "Matrix-=");
  simd::active().sub(data_.data(), rhs.data_.data(), data_.data(),
                     data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  simd::active().scale(data_.data(), s, data_.data(), data_.size());
  return *this;
}

namespace {

// Cache-blocking parameters.  The row grain doubles as the parallel_for
// chunk size, so it also fixes the unit of work handed to the pool; the
// k-tile keeps a (kKBlock x cols) slab of B hot in L1/L2 while it is reused
// across every row of the current task.  Accumulation over k stays in
// ascending order for each output element, so the tiled kernel matches the
// naive i-k-j loop bit-for-bit.
constexpr std::size_t kRowGrain = 16;
constexpr std::size_t kKBlock = 64;

void matmul_rows(const simd::Kernels& K, const Matrix& a, const Matrix& b,
                 Matrix& out, std::size_t i0, std::size_t i1) {
  const std::size_t inner = a.cols();
  const std::size_t nj = b.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  for (std::size_t k0 = 0; k0 < inner; k0 += kKBlock) {
    const std::size_t k1 = std::min(inner, k0 + kKBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = pa + i * inner;
      double* orow = po + i * nj;
      for (std::size_t k = k0; k < k1; ++k) {
        // The j-lane axpy is lane-independent, so the vector path writes the
        // same bits as the scalar loop; k stays ascending per element.
        K.axpy(arow[k], pb + k * nj, orow, nj);
      }
    }
  }
}

}  // namespace

Matrix operator*(const Matrix& a, const Matrix& b) {
  Matrix out;
  multiply_into(a, b, out);
  return out;
}

void multiply_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("Matrix*: inner dimension mismatch");
  out.assign(a.rows(), b.cols(), 0.0);
  const simd::Kernels& K = simd::active();
  rt::parallel_for(0, a.rows(), kRowGrain,
                   [&](std::size_t i0, std::size_t i1) {
                     matmul_rows(K, a, b, out, i0, i1);
                   });
}

void transpose_into(const Matrix& a, Matrix& out) {
  out.resize(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
}

Matrix multiply_sparse(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("multiply_sparse: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  const std::size_t inner = a.cols();
  const std::size_t nj = b.cols();
  const simd::Kernels& K = simd::active();
  rt::parallel_for(0, a.rows(), kRowGrain, [&](std::size_t i0, std::size_t i1) {
    const double* pb = b.data().data();
    for (std::size_t i = i0; i < i1; ++i) {
      double* orow = out.data().data() + i * nj;
      for (std::size_t k = 0; k < inner; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        K.axpy(aik, pb + k * nj, orow, nj);
      }
    }
  });
  return out;
}

Matrix multiply_at_b(const Matrix& a, const Matrix& b) {
  Matrix out;
  multiply_at_b_into(a, b, out);
  return out;
}

void multiply_at_b_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("multiply_at_b: dimension mismatch");
  out.assign(a.cols(), b.cols(), 0.0);
  const std::size_t inner = a.rows();
  const std::size_t na = a.cols();
  const std::size_t nj = b.cols();
  const simd::Kernels& K = simd::active();
  rt::parallel_for(0, na, kRowGrain, [&](std::size_t i0, std::size_t i1) {
    const double* pa = a.data().data();
    const double* pb = b.data().data();
    double* po = out.data().data();
    for (std::size_t k0 = 0; k0 < inner; k0 += kKBlock) {
      const std::size_t k1 = std::min(inner, k0 + kKBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        double* orow = po + i * nj;
        for (std::size_t k = k0; k < k1; ++k) {
          K.axpy(pa[k * na + i], pb + k * nj, orow, nj);
        }
      }
    }
  });
}

Matrix multiply_abt(const Matrix& a, const Matrix& b) {
  Matrix out;
  multiply_abt_into(a, b, out);
  return out;
}

void multiply_abt_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("multiply_abt: dimension mismatch");
  out.assign(a.rows(), b.rows(), 0.0);
  const std::size_t inner = a.cols();
  const std::size_t nj = b.rows();
  const simd::Kernels& K = simd::active();
  rt::parallel_for(0, a.rows(), kRowGrain, [&](std::size_t i0, std::size_t i1) {
    const double* pa = a.data().data();
    const double* pb = b.data().data();
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = pa + i * inner;
      double* orow = out.data().data() + i * nj;
      for (std::size_t j = 0; j < nj; ++j) {
        orow[j] = K.dot_seq(0.0, arow, pb + j * inner, inner);
      }
    }
  });
}

Vec matvec(const Matrix& a, const Vec& x) {
  Vec y;
  matvec_into(a, x, y);
  return y;
}

void matvec_into(const Matrix& a, const Vec& x, Vec& y) {
  if (a.cols() != x.size())
    throw std::invalid_argument("matvec: dimension mismatch");
  y.assign(a.rows(), 0.0);
  const simd::Kernels& K = simd::active();
  rt::parallel_for(0, a.rows(), 128, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = a.data().data() + i * a.cols();
      y[i] = K.dot_seq(0.0, arow, x.data(), a.cols());
    }
  });
}

Vec matvec_transposed(const Matrix& a, const Vec& x) {
  Vec y;
  matvec_transposed_into(a, x, y);
  return y;
}

void matvec_transposed_into(const Matrix& a, const Vec& x, Vec& y) {
  if (a.rows() != x.size())
    throw std::invalid_argument("matvec_transposed: dimension mismatch");
  y.assign(a.cols(), 0.0);
  const simd::Kernels& K = simd::active();
  for (std::size_t i = 0; i < a.rows(); ++i)
    K.axpy(x[i], a.data().data() + i * a.cols(), y.data(), a.cols());
}

double quad_form(const Vec& x, const Matrix& a, const Vec& y) {
  return dot(x, matvec(a, y));
}

Matrix outer(const Vec& x, const Vec& y) {
  Matrix out(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < y.size(); ++j) out(i, j) = x[i] * y[j];
  return out;
}

double frobenius_dot(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("frobenius_dot: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    acc += a.data()[i] * b.data()[i];
  return acc;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    if (std::abs(a.data()[i] - b.data()[i]) > tol) return false;
  return true;
}

}  // namespace rcr::num
