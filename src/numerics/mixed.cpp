#include "rcr/numerics/mixed.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rcr/rt/simd.hpp"

namespace rcr::num {

namespace simd = rcr::rt::simd;

void float_lu_into(const Matrix& a, FloatLu& out) {
  if (!a.square()) throw std::invalid_argument("float_lu: not square");
  const std::size_t n = a.rows();
  const simd::Kernels& K = simd::active();
  out.n = n;
  out.singular = false;
  out.lu.resize(n * n);
  out.perm.resize(n);
  K.to_float(a.data().data(), out.lu.data(), n * n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  float* lu = out.lu.data();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting on column k.
    std::size_t piv = k;
    float best = std::abs(lu[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const float v = std::abs(lu[i * n + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0f) {
      out.singular = true;
      return;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu[k * n + j], lu[piv * n + j]);
      std::swap(out.perm[k], out.perm[piv]);
    }
    const float pivot = lu[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const float lik = lu[i * n + k] / pivot;
      lu[i * n + k] = lik;
      K.saxpy(-lik, lu + k * n + k + 1, lu + i * n + k + 1, n - k - 1);
    }
  }
}

FloatLu float_lu(const Matrix& a) {
  FloatLu f;
  float_lu_into(a, f);
  return f;
}

void FloatLu::solve_into(const std::vector<float>& b,
                         std::vector<float>& x) const {
  if (singular) throw std::invalid_argument("FloatLu::solve: singular");
  if (b.size() != n) throw std::invalid_argument("FloatLu::solve: size");
  const simd::Kernels& K = simd::active();
  x.resize(n);
  const float* plu = lu.data();
  // Forward: L y = P b (unit diagonal).
  for (std::size_t i = 0; i < n; ++i)
    x[i] = b[perm[i]] - K.sdot_reassoc(plu + i * n, x.data(), i);
  // Back: U x = y.
  for (std::size_t i = n; i-- > 0;) {
    const float s =
        K.sdot_reassoc(plu + i * n + i + 1, x.data() + i + 1, n - i - 1);
    x[i] = (x[i] - s) / plu[i * n + i];
  }
}

int refine_solve(const Matrix& a, const FloatLu& f, const Vec& b, Vec& x,
                 double tol, int max_iters, RefineWorkspace& ws) {
  const std::size_t n = b.size();
  if (f.singular || f.n != n)
    throw std::invalid_argument("refine_solve: bad factor");
  const simd::Kernels& K = simd::active();

  double bnorm = 0.0;
  for (double v : b) bnorm = std::max(bnorm, std::abs(v));
  const double target = tol * (1.0 + bnorm);

  // Initial fp32 solve, widened to fp64.
  ws.bf.resize(n);
  K.to_float(b.data(), ws.bf.data(), n);
  f.solve_into(ws.bf, ws.xf);
  x.resize(n);
  K.to_double(ws.xf.data(), x.data(), n);

  double prev = std::numeric_limits<double>::infinity();
  for (int it = 1; it <= max_iters; ++it) {
    // fp64 residual r = b - A x.
    matvec_into(a, x, ws.ax);
    ws.r.resize(n);
    K.sub(b.data(), ws.ax.data(), ws.r.data(), n);
    double rnorm = 0.0;
    for (double v : ws.r) rnorm = std::max(rnorm, std::abs(v));
    if (!std::isfinite(rnorm)) return -1;
    if (rnorm <= target) return it;
    // Stalled: fp32 precision exhausted without meeting the fp64 target.
    if (rnorm >= 0.5 * prev) return -1;
    prev = rnorm;
    // Correct with an fp32 solve of the residual system.
    K.to_float(ws.r.data(), ws.bf.data(), n);
    f.solve_into(ws.bf, ws.xf);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += static_cast<double>(ws.xf[i]);
  }
  return -1;
}

}  // namespace rcr::num
