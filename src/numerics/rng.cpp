#include "rcr/numerics/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace rcr::num {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

double Rng::rayleigh(double sigma) {
  // Inverse-CDF sampling: F^{-1}(u) = sigma * sqrt(-2 ln(1-u)).
  const double u = uniform(0.0, 1.0);
  return sigma * std::sqrt(-2.0 * std::log(1.0 - u));
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

Vec Rng::uniform_vec(std::size_t n, double lo, double hi) {
  Vec out(n);
  for (double& v : out) v = uniform(lo, hi);
  return out;
}

Vec Rng::normal_vec(std::size_t n, double mean, double stddev) {
  Vec out(n);
  for (double& v : out) v = normal(mean, stddev);
  return out;
}

std::size_t Rng::categorical(const Vec& weights) {
  if (weights.empty())
    throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::categorical: all-zero weights");
  const double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i-- > 1;) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<int>(i)));
    std::swap(p[i], p[j]);
  }
  return p;
}

}  // namespace rcr::num
