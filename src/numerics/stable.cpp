#include "rcr/numerics/stable.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rcr::num {

double kahan_sum(const Vec& values) {
  double sum = 0.0;
  double comp = 0.0;
  for (double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double naive_sum(const Vec& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum;
}

double log_sum_exp(const Vec& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (double v : x) acc += std::exp(v - m);
  return m + std::log(acc);
}

Vec softmax(const Vec& x) {
  if (x.empty()) return {};
  const double m = *std::max_element(x.begin(), x.end());
  Vec out(x.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] - m);
    denom += out[i];
  }
  for (double& v : out) v /= denom;
  return out;
}

Vec softmax_naive(const Vec& x) {
  Vec out(x.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i]);
    denom += out[i];
  }
  for (double& v : out) v /= denom;
  return out;
}

Vec log_softmax(const Vec& x) {
  Vec out(x.size());
  const double lse = log_sum_exp(x);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - lse;
  return out;
}

Vec log_softmax_naive(const Vec& x) {
  Vec s = softmax_naive(x);
  for (double& v : s) v = std::log(v);
  return s;
}

double stable_norm2(const Vec& x) {
  // LAPACK dnrm2-style scaled accumulation.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double av = std::abs(v);
    if (scale < av) {
      ssq = 1.0 + ssq * (scale / av) * (scale / av);
      scale = av;
    } else {
      ssq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double stable_hypot(double a, double b) { return std::hypot(a, b); }

double relative_error(double approx, double exact, double floor) {
  return std::abs(approx - exact) / std::max(std::abs(exact), floor);
}

bool all_finite(const Vec& x) {
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace rcr::num
