#include "rcr/numerics/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rcr/rt/simd.hpp"

namespace rcr::num {

namespace simd = rcr::rt::simd;

namespace {
void require_same_size(const Vec& a, const Vec& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(op) + ": size mismatch (" +
                                std::to_string(a.size()) + " vs " +
                                std::to_string(b.size()) + ")");
  }
}
}  // namespace

Vec add(const Vec& a, const Vec& b) {
  require_same_size(a, b, "add");
  Vec out(a.size());
  simd::active().add(a.data(), b.data(), out.data(), a.size());
  return out;
}

Vec sub(const Vec& a, const Vec& b) {
  require_same_size(a, b, "sub");
  Vec out(a.size());
  simd::active().sub(a.data(), b.data(), out.data(), a.size());
  return out;
}

Vec scale(const Vec& a, double s) {
  Vec out(a.size());
  simd::active().scale(a.data(), s, out.data(), a.size());
  return out;
}

void axpy(double s, const Vec& x, Vec& y) {
  require_same_size(x, y, "axpy");
  simd::active().axpy(s, x.data(), y.data(), x.size());
}

double dot(const Vec& a, const Vec& b) {
  require_same_size(a, b, "dot");
  // dot_seq keeps the scalar accumulation order: callers observe the same
  // bits whichever path is active.
  return simd::active().dot_seq(0.0, a.data(), b.data(), a.size());
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

double norm1(const Vec& a) {
  double acc = 0.0;
  for (double v : a) acc += std::abs(v);
  return acc;
}

double distance(const Vec& a, const Vec& b) { return norm2(sub(a, b)); }

Vec hadamard(const Vec& a, const Vec& b) {
  require_same_size(a, b, "hadamard");
  Vec out(a.size());
  simd::active().mul(a.data(), b.data(), out.data(), a.size());
  return out;
}

Vec constant(std::size_t n, double value) { return Vec(n, value); }

Vec clamp(const Vec& v, const Vec& lo, const Vec& hi) {
  require_same_size(v, lo, "clamp(lo)");
  require_same_size(v, hi, "clamp(hi)");
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::clamp(v[i], lo[i], hi[i]);
  return out;
}

Vec lerp(const Vec& a, const Vec& b, double t) {
  require_same_size(a, b, "lerp");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = (1.0 - t) * a[i] + t * b[i];
  return out;
}

bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

}  // namespace rcr::num
