// Lock-sharded metrics registry with a thread-local fast path.
//
// Monotonic counters, gauges, and fixed-bucket histograms, named with the
// `rcr.<layer>.<thing>` convention (DESIGN.md §11) and optionally carrying
// one label pair (e.g. rcr.faults.injected{site=...}).  The registry is
// sharded by key hash so concurrent writers from the thread pool contend on
// different mutexes, and each thread keeps a small fixed-size cache of
// resolved cell pointers so the steady-state armed path is one relaxed
// atomic fetch_add with no lock and no allocation.
//
// Zero-overhead-when-off contract: every inline entry point below compiles
// to a single relaxed atomic load + branch when metrics are disabled.  The
// disabled path allocates nothing and perturbs nothing -- instrumented
// solvers stay bit-exact and allocation-free versus an un-instrumented
// build (enforced by tests/obs and bench_obs_overhead).
//
// Arming: programmatically via set_metrics_enabled()/ScopedMetrics, or from
// the environment with RCR_METRICS=<path> which enables the registry before
// main() and exports a snapshot at process exit (Prometheus text when
// <path> ends in ".prom", JSON otherwise; "%p" in <path> expands to the
// process id so parallel ctest binaries do not clobber one file).
//
// Name/label lifetime: the fast path caches `const char*` identity, so
// names and label values passed here must have static storage duration
// (string literals, or pointers that live for the process).  Every call
// site in the tree uses literals or the fault-site registry strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rcr::obs {

namespace detail {
extern std::atomic<bool> g_metrics_on;

void counter_add_slow(const char* name, const char* label_key,
                      const char* label_value, std::uint64_t delta);
void gauge_set_slow(const char* name, double value);
void gauge_set_slow(const char* name, const char* label_key,
                    const char* label_value, double value);
void gauge_max_slow(const char* name, double value);
void histogram_observe_slow(const char* name, double value);
}  // namespace detail

/// True when the registry is armed.  Relaxed load; safe from any thread.
inline bool metrics_enabled() {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}

/// Increment the monotonic counter `name` by `delta`.
inline void counter_add(const char* name, std::uint64_t delta = 1) {
  if (metrics_enabled())
    detail::counter_add_slow(name, nullptr, nullptr, delta);
}

/// Increment the labelled counter `name{label_key=label_value}` by `delta`.
inline void counter_add(const char* name, const char* label_key,
                        const char* label_value, std::uint64_t delta = 1) {
  if (metrics_enabled())
    detail::counter_add_slow(name, label_key, label_value, delta);
}

/// Set the gauge `name` to `value` (last-write-wins).
inline void gauge_set(const char* name, double value) {
  if (metrics_enabled()) detail::gauge_set_slow(name, value);
}

/// Set the labelled gauge `name{label_key=label_value}` to `value`
/// (last-write-wins; e.g. rcr.fallback.depth{chain=rra}).
inline void gauge_set(const char* name, const char* label_key,
                      const char* label_value, double value) {
  if (metrics_enabled())
    detail::gauge_set_slow(name, label_key, label_value, value);
}

/// Raise the gauge `name` to `value` if `value` is larger (high-water mark).
inline void gauge_max(const char* name, double value) {
  if (metrics_enabled()) detail::gauge_max_slow(name, value);
}

/// Record `value` into the fixed-bucket histogram `name`.
/// Buckets are powers of two: le=1,2,4,...,2^19, plus +Inf.
inline void histogram_observe(const char* name, double value) {
  if (metrics_enabled()) detail::histogram_observe_slow(name, value);
}

/// Number of finite histogram buckets (le = 2^0 .. 2^19); one more
/// overflow bucket (+Inf) is tracked on top.
inline constexpr int kHistogramBuckets = 20;

/// Arm or disarm the registry.  Existing values are retained.
void set_metrics_enabled(bool on);

/// Zero every registered cell (keys stay registered so cached pointers in
/// other threads remain valid).  Call between test cases, not mid-workload.
void reset_metrics();

/// One exported metric in a snapshot.
struct MetricSample {
  std::string name;         ///< e.g. "rcr.admm.iterations"
  std::string label_key;    ///< empty when unlabelled
  std::string label_value;  ///< empty when unlabelled
  std::string kind;         ///< "counter" | "gauge" | "histogram"
  double value = 0.0;       ///< counter/gauge value; histogram: sum
  std::uint64_t count = 0;  ///< histogram observation count
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts + overflow last
};

/// Consistent point-in-time view, sorted by (name, label_key, label_value).
/// Sorting makes snapshots order-independent: the same workload merged from
/// any thread interleaving serializes identically.
std::vector<MetricSample> metrics_snapshot();

/// Snapshot rendered as a JSON document (schema: tests/golden/obs_schema.json).
std::string metrics_json();

/// Snapshot rendered as Prometheus text exposition format
/// (dots become underscores; histograms emit cumulative _bucket/_sum/_count).
std::string metrics_prometheus();

/// Write the current snapshot to `path` ("%p" expands to the pid;
/// ".prom" suffix selects Prometheus text, anything else JSON).
/// Returns false if the file could not be written.
bool write_metrics(const std::string& path);

/// RAII arm + reset for tests: enables the registry and zeroes all cells on
/// entry, restores the previous armed state on exit.
class ScopedMetrics {
 public:
  ScopedMetrics();
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool was_on_;
};

}  // namespace rcr::obs
