// Umbrella header for the rcr::obs observability layer.
//
// Pulls in the metrics registry and the tracing spans.  Instrumented code
// includes this one header; everything it adds is zero-overhead-when-off
// (one relaxed atomic load + branch per call site).  See DESIGN.md §11 for
// naming conventions, the overhead contract, and the export formats.
#pragma once

#include "rcr/obs/metrics.hpp"
#include "rcr/obs/trace.hpp"
