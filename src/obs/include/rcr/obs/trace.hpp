// RAII tracing spans with per-thread ring buffers.
//
// A Span marks the dynamic extent of one unit of solver work ("admm.box_qp",
// "stack.phase3.inertia_qp", ...).  Spans nest naturally with scope, carry a
// handful of numeric/string attributes (iterations, residuals, fallback
// step, fault site), and are recorded as chrome://tracing begin/end event
// pairs.  Each thread writes to its own fixed-capacity ring buffer -- the
// armed hot path is a couple of stores plus one steady-clock read, with no
// lock and no allocation after a thread's first span.
//
// Zero-overhead-when-off contract: constructing a Span when tracing is
// disabled is a single relaxed atomic load + branch; attribute setters and
// the destructor then reduce to a branch on the cached `armed_` flag.  No
// allocation, no clock read, bit-exact solver behaviour (enforced by
// tests/obs and bench_obs_overhead).
//
// Buffer-full policy: drop-newest, whole spans.  A begin event only commits
// if the buffer can also hold its matching end event (one slot is reserved
// per open span), so exported traces always contain matched B/E pairs even
// when events were dropped; trace_dropped() counts the casualties.
//
// Arming: set_trace_enabled()/ScopedTrace, or RCR_TRACE=<path> which
// enables tracing before main() and writes chrome://tracing JSON at process
// exit ("%p" in <path> expands to the pid).  Load the file via
// chrome://tracing or https://ui.perfetto.dev.
//
// Export contract: trace_json()/write_trace()/reset_trace() expect
// quiescence -- call them when no instrumented workload is running and no
// span is open (end of process, end of test case).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rcr::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;

inline constexpr int kMaxNumAttrs = 6;
inline constexpr int kMaxStrAttrs = 2;
inline constexpr int kStrAttrLen = 48;

class Span;  // fwd for the slow-path signatures below
}  // namespace detail

/// True when tracing is armed.  Relaxed load; safe from any thread.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// RAII trace span.  Construct at the top of the region of interest; the
/// destructor emits the matching end event with any attributes attached in
/// between.  Not copyable/movable: a span is pinned to its scope + thread.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric attribute (up to 6; silently dropped beyond that).
  /// No-op when the span is not recording.
  void attr(const char* key, double value);

  /// Attach a short string attribute (up to 2, truncated to 47 chars;
  /// copied into the span, so the value pointer need not outlive the call).
  void attr_str(const char* key, const char* value);

  /// True when this span is actually recording (tracing armed at
  /// construction and the ring buffer had room).
  bool armed() const { return armed_; }

 private:
  const char* name_;
  bool armed_;
  int n_num_ = 0;
  int n_str_ = 0;
  const char* num_keys_[detail::kMaxNumAttrs];
  double num_vals_[detail::kMaxNumAttrs];
  const char* str_keys_[detail::kMaxStrAttrs];
  char str_vals_[detail::kMaxStrAttrs][detail::kStrAttrLen];

  void begin_slow();
  void end_slow();
};

inline Span::Span(const char* name) : name_(name), armed_(false) {
  if (trace_enabled()) begin_slow();
}

inline Span::~Span() {
  if (armed_) end_slow();
}

inline void Span::attr(const char* key, double value) {
  if (!armed_ || n_num_ >= detail::kMaxNumAttrs) return;
  num_keys_[n_num_] = key;
  num_vals_[n_num_] = value;
  ++n_num_;
}

inline void Span::attr_str(const char* key, const char* value) {
  if (!armed_ || n_str_ >= detail::kMaxStrAttrs) return;
  str_keys_[n_str_] = key;
  char* dst = str_vals_[n_str_];
  int i = 0;
  for (; i < detail::kStrAttrLen - 1 && value[i] != '\0'; ++i) dst[i] = value[i];
  dst[i] = '\0';
  ++n_str_;
}

/// Record a zero-duration annotated event (an immediately closed B/E pair),
/// e.g. one fault injection.  One relaxed load + branch when tracing is off.
void instant(const char* name, const char* key, const char* value);

/// Arm or disarm tracing.  Already-buffered events are retained.
void set_trace_enabled(bool on);

/// Clear every thread's ring buffer and the dropped-event count.
/// Requires quiescence (no open spans, no concurrent instrumented work).
void reset_trace();

/// Total events currently buffered across all threads.
std::uint64_t trace_event_count();

/// Spans/instants dropped because a ring buffer was full.
std::uint64_t trace_dropped();

/// Override the per-thread ring capacity (events) for buffers created after
/// this call.  Also settable via RCR_TRACE_BUFFER.  Default 16384.
void set_trace_buffer_capacity(std::uint32_t events);

/// All buffered events as a chrome://tracing JSON document
/// ({"traceEvents": [...]}, ts in microseconds, one tid per thread buffer).
/// Requires quiescence.
std::string trace_json();

/// Write trace_json() to `path` ("%p" expands to the pid).
bool write_trace(const std::string& path);

/// RAII arm + reset for tests: enables tracing and clears all buffers on
/// entry, restores the previous armed state on exit.
class ScopedTrace {
 public:
  ScopedTrace();
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool was_on_;
};

}  // namespace rcr::obs
