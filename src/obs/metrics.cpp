#include "rcr/obs/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rcr::obs {

std::atomic<bool> detail::g_metrics_on{false};

namespace {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

// One registered metric cell.  Cells are immortal: once interned they are
// never freed or moved, so threads may cache raw pointers without any
// lifetime protocol (reset_metrics zeroes values in place).
struct Cell {
  Kind kind;
  std::string name;
  std::string label_key;
  std::string label_value;
  std::atomic<std::uint64_t> count{0};  // counter value / histogram count
  std::atomic<double> value{0.0};       // gauge value / histogram sum
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets + 1> buckets{};

  Cell(Kind k, const char* n, const char* lk, const char* lv)
      : kind(k),
        name(n),
        label_key(lk == nullptr ? "" : lk),
        label_value(lv == nullptr ? "" : lv) {}
};

constexpr int kShards = 16;

struct Shard {
  std::mutex mu;
  // Keyed by name '\x1f' label_key '\x1f' label_value so distinct label
  // values of one counter family intern distinct cells.
  std::map<std::string, std::unique_ptr<Cell>> cells;
};

struct Registry {
  Shard shards[kShards];
};

// Heap-allocated and deliberately leaked: the RCR_METRICS atexit exporter
// may run after static destructors, so the registry must never die.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Resolve (intern on first touch) the cell for a metric.  Slow path only:
// takes the shard lock; may allocate the first time a key is seen.
Cell* intern(Kind kind, const char* name, const char* label_key,
             const char* label_value) {
  std::string key(name);
  key += '\x1f';
  if (label_key != nullptr) key += label_key;
  key += '\x1f';
  if (label_value != nullptr) key += label_value;

  Shard& shard = registry().shards[fnv1a(key.c_str()) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cells.find(key);
  if (it == shard.cells.end()) {
    it = shard.cells
             .emplace(std::move(key), std::make_unique<Cell>(
                                          kind, name, label_key, label_value))
             .first;
  }
  return it->second.get();
}

// Per-thread pointer cache so the steady-state armed path never locks.
// Keyed by the *identity* of the name/label pointers (call sites pass
// literals / registry strings with static storage), open-addressed, fixed
// size: a full cache degrades to the shard lookup, never to an allocation.
struct TlsCache {
  struct Entry {
    const char* name = nullptr;
    const char* label_value = nullptr;
    Cell* cell = nullptr;
  };
  static constexpr int kSlots = 256;  // power of two
  static constexpr int kProbes = 4;
  Entry entries[kSlots];

  static std::size_t slot_of(const char* name, const char* lv) {
    auto mix = reinterpret_cast<std::uintptr_t>(name) * 0x9e3779b97f4a7c15ull;
    mix ^= reinterpret_cast<std::uintptr_t>(lv) * 0xff51afd7ed558ccdull;
    return static_cast<std::size_t>((mix >> 17) & (kSlots - 1));
  }

  Cell* find(const char* name, const char* lv) {
    std::size_t s = slot_of(name, lv);
    for (int p = 0; p < kProbes; ++p) {
      const Entry& e = entries[(s + p) & (kSlots - 1)];
      if (e.name == name && e.label_value == lv) return e.cell;
      if (e.name == nullptr) return nullptr;
    }
    return nullptr;
  }

  void insert(const char* name, const char* lv, Cell* cell) {
    std::size_t s = slot_of(name, lv);
    for (int p = 0; p < kProbes; ++p) {
      Entry& e = entries[(s + p) & (kSlots - 1)];
      if (e.name == nullptr || (e.name == name && e.label_value == lv)) {
        e = {name, lv, cell};
        return;
      }
    }
    entries[s] = {name, lv, cell};  // evict; correctness is unaffected
  }
};

Cell* resolve(Kind kind, const char* name, const char* label_key,
              const char* label_value) {
  thread_local TlsCache cache;
  if (Cell* hit = cache.find(name, label_value)) return hit;
  Cell* cell = intern(kind, name, label_key, label_value);
  cache.insert(name, label_value, cell);
  return cell;
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

int bucket_index(double value) {
  // Buckets le = 2^0 .. 2^(kHistogramBuckets-1); anything above lands in
  // the overflow slot (index kHistogramBuckets).
  double le = 1.0;
  for (int i = 0; i < kHistogramBuckets; ++i, le *= 2.0)
    if (value <= le) return i;
  return kHistogramBuckets;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '-') c = '_';
  return out;
}

std::string expand_pid(const std::string& path) {
  const std::size_t pos = path.find("%p");
  if (pos == std::string::npos) return path;
  std::string out = path;
  out.replace(pos, 2, std::to_string(static_cast<long>(::getpid())));
  return out;
}

}  // namespace

namespace detail {

void counter_add_slow(const char* name, const char* label_key,
                      const char* label_value, std::uint64_t delta) {
  Cell* cell = resolve(Kind::kCounter, name, label_key, label_value);
  cell->count.fetch_add(delta, std::memory_order_relaxed);
}

void gauge_set_slow(const char* name, double value) {
  Cell* cell = resolve(Kind::kGauge, name, nullptr, nullptr);
  cell->value.store(value, std::memory_order_relaxed);
}

void gauge_set_slow(const char* name, const char* label_key,
                    const char* label_value, double value) {
  Cell* cell = resolve(Kind::kGauge, name, label_key, label_value);
  cell->value.store(value, std::memory_order_relaxed);
}

void gauge_max_slow(const char* name, double value) {
  Cell* cell = resolve(Kind::kGauge, name, nullptr, nullptr);
  atomic_max_double(cell->value, value);
}

void histogram_observe_slow(const char* name, double value) {
  Cell* cell = resolve(Kind::kHistogram, name, nullptr, nullptr);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(cell->value, value);
  cell->buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

void reset_metrics() {
  Registry& reg = registry();
  for (Shard& shard : reg.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [key, cell] : shard.cells) {
      cell->count.store(0, std::memory_order_relaxed);
      cell->value.store(0.0, std::memory_order_relaxed);
      for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<MetricSample> metrics_snapshot() {
  std::vector<MetricSample> out;
  Registry& reg = registry();
  for (Shard& shard : reg.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [key, cell] : shard.cells) {
      MetricSample s;
      s.name = cell->name;
      s.label_key = cell->label_key;
      s.label_value = cell->label_value;
      switch (cell->kind) {
        case Kind::kCounter:
          s.kind = "counter";
          s.value =
              static_cast<double>(cell->count.load(std::memory_order_relaxed));
          break;
        case Kind::kGauge:
          s.kind = "gauge";
          s.value = cell->value.load(std::memory_order_relaxed);
          break;
        case Kind::kHistogram:
          s.kind = "histogram";
          s.value = cell->value.load(std::memory_order_relaxed);
          s.count = cell->count.load(std::memory_order_relaxed);
          s.buckets.resize(kHistogramBuckets + 1);
          for (int i = 0; i <= kHistogramBuckets; ++i)
            s.buckets[static_cast<std::size_t>(i)] =
                cell->buckets[static_cast<std::size_t>(i)].load(
                    std::memory_order_relaxed);
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.label_key != b.label_key) return a.label_key < b.label_key;
              return a.label_value < b.label_value;
            });
  return out;
}

std::string metrics_json() {
  const std::vector<MetricSample> snap = metrics_snapshot();
  std::string out = "{\n  \"version\": 1,\n  \"metrics\": [";
  bool first = true;
  for (const MetricSample& s : snap) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    json_escape_into(out, s.name);
    out += "\", \"kind\": \"" + s.kind + "\"";
    if (!s.label_key.empty()) {
      out += ", \"labels\": {\"";
      json_escape_into(out, s.label_key);
      out += "\": \"";
      json_escape_into(out, s.label_value);
      out += "\"}";
    }
    if (s.kind == "counter") {
      out += ", \"value\": " +
             std::to_string(static_cast<std::uint64_t>(s.value));
    } else if (s.kind == "gauge") {
      out += ", \"value\": " + format_double(s.value);
    } else {
      out += ", \"count\": " + std::to_string(s.count);
      out += ", \"sum\": " + format_double(s.value);
      out += ", \"buckets\": [";
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(s.buckets[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string metrics_prometheus() {
  const std::vector<MetricSample> snap = metrics_snapshot();
  std::string out;
  std::string last_family;
  for (const MetricSample& s : snap) {
    const std::string family = prom_name(s.name);
    if (family != last_family) {
      out += "# TYPE " + family + " " + s.kind + "\n";
      last_family = family;
    }
    std::string labels;
    if (!s.label_key.empty()) {
      labels = "{" + s.label_key + "=\"";
      for (char c : s.label_value) {
        if (c == '"' || c == '\\') labels += '\\';
        labels += c;
      }
      labels += "\"}";
    }
    if (s.kind == "counter") {
      out += family + labels + " " +
             std::to_string(static_cast<std::uint64_t>(s.value)) + "\n";
    } else if (s.kind == "gauge") {
      out += family + labels + " " + format_double(s.value) + "\n";
    } else {
      std::uint64_t cumulative = 0;
      double le = 1.0;
      for (int i = 0; i < kHistogramBuckets; ++i, le *= 2.0) {
        cumulative += s.buckets[static_cast<std::size_t>(i)];
        out += family + "_bucket{le=\"" +
               std::to_string(static_cast<std::uint64_t>(le)) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += s.buckets[kHistogramBuckets];
      out += family + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
             "\n";
      out += family + "_sum " + format_double(s.value) + "\n";
      out += family + "_count " + std::to_string(s.count) + "\n";
    }
  }
  return out;
}

bool write_metrics(const std::string& path) {
  const std::string target = expand_pid(path);
  const bool prom = target.size() >= 5 &&
                    target.compare(target.size() - 5, 5, ".prom") == 0;
  const std::string body = prom ? metrics_prometheus() : metrics_json();
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size();
}

ScopedMetrics::ScopedMetrics() : was_on_(metrics_enabled()) {
  set_metrics_enabled(true);
  reset_metrics();
}

ScopedMetrics::~ScopedMetrics() { set_metrics_enabled(was_on_); }

namespace {

// Arms the registry before main() when RCR_METRICS is set and schedules the
// exit-time export.  Lives in this TU so it is always linked (every
// instrumented call references g_metrics_on).  The path string is leaked so
// the atexit handler can run after static destruction.
std::string* g_export_path = nullptr;

[[maybe_unused]] const bool g_env_armed = [] {
  const char* env = std::getenv("RCR_METRICS");
  if (env == nullptr || env[0] == '\0') return false;
  g_export_path = new std::string(env);
  set_metrics_enabled(true);
  std::atexit(+[] { write_metrics(*g_export_path); });
  return true;
}();

}  // namespace

}  // namespace rcr::obs
