#include "rcr/obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace rcr::obs {

std::atomic<bool> detail::g_trace_on{false};

namespace {

using detail::kMaxNumAttrs;
using detail::kMaxStrAttrs;
using detail::kStrAttrLen;

struct TraceEvent {
  const char* name;
  char ph;  // 'B' or 'E'
  std::int64_t ts_ns;
  int n_num;
  int n_str;
  const char* num_keys[kMaxNumAttrs];
  double num_vals[kMaxNumAttrs];
  const char* str_keys[kMaxStrAttrs];
  char str_vals[kMaxStrAttrs][kStrAttrLen];
};

// One thread's ring.  Single writer (the owning thread); readers observe a
// consistent prefix through the release/acquire pair on `used`.  Buffers
// are created on a thread's first armed span and never destroyed, so a
// thread's cached pointer outlives the thread itself.
struct TraceBuffer {
  explicit TraceBuffer(std::uint32_t cap, int tid_)
      : events(cap), capacity(cap), tid(tid_) {}
  std::vector<TraceEvent> events;
  std::atomic<std::uint32_t> used{0};
  std::uint32_t capacity;
  std::uint32_t reserved = 0;  // end-event slots owed to open spans
  int tid;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

// Leaked so the RCR_TRACE atexit exporter can run after static destruction.
TraceRegistry& trace_registry() {
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint32_t> g_capacity{16384};

std::int64_t now_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

TraceBuffer* tls_buffer() {
  thread_local TraceBuffer* buf = nullptr;
  if (buf == nullptr) {
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const int tid = static_cast<int>(reg.buffers.size()) + 1;
    reg.buffers.push_back(std::make_unique<TraceBuffer>(
        g_capacity.load(std::memory_order_relaxed), tid));
    buf = reg.buffers.back().get();
  }
  return buf;
}

void copy_str(char* dst, const char* src) {
  int i = 0;
  for (; i < kStrAttrLen - 1 && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event(std::string& out, const TraceEvent& ev, int tid) {
  char buf[96];
  out += "{\"name\": \"";
  json_escape_into(out, ev.name);
  std::snprintf(buf, sizeof(buf),
                "\", \"cat\": \"rcr\", \"ph\": \"%c\", \"ts\": %.3f, "
                "\"pid\": 1, \"tid\": %d",
                ev.ph, static_cast<double>(ev.ts_ns) / 1000.0, tid);
  out += buf;
  if (ev.n_num > 0 || ev.n_str > 0) {
    out += ", \"args\": {";
    bool first = true;
    for (int i = 0; i < ev.n_num; ++i) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      json_escape_into(out, ev.num_keys[i]);
      std::snprintf(buf, sizeof(buf), "\": %.17g", ev.num_vals[i]);
      out += buf;
    }
    for (int i = 0; i < ev.n_str; ++i) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      json_escape_into(out, ev.str_keys[i]);
      out += "\": \"";
      json_escape_into(out, ev.str_vals[i]);
      out += "\"";
    }
    out += "}";
  }
  out += "}";
}

std::string expand_pid(const std::string& path) {
  const std::size_t pos = path.find("%p");
  if (pos == std::string::npos) return path;
  std::string out = path;
  out.replace(pos, 2, std::to_string(static_cast<long>(::getpid())));
  return out;
}

}  // namespace

void Span::begin_slow() {
  TraceBuffer* buf = tls_buffer();
  const std::uint32_t used = buf->used.load(std::memory_order_relaxed);
  // A begin commits only if its end event also fits: one slot per open span
  // stays reserved, so exported traces always pair B with E.
  if (used + buf->reserved + 2 > buf->capacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& ev = buf->events[used];
  ev.name = name_;
  ev.ph = 'B';
  ev.ts_ns = now_ns();
  ev.n_num = 0;
  ev.n_str = 0;
  buf->used.store(used + 1, std::memory_order_release);
  buf->reserved += 1;
  armed_ = true;
}

void Span::end_slow() {
  TraceBuffer* buf = tls_buffer();
  buf->reserved -= 1;
  const std::uint32_t used = buf->used.load(std::memory_order_relaxed);
  TraceEvent& ev = buf->events[used];
  ev.name = name_;
  ev.ph = 'E';
  ev.ts_ns = now_ns();
  ev.n_num = n_num_;
  ev.n_str = n_str_;
  for (int i = 0; i < n_num_; ++i) {
    ev.num_keys[i] = num_keys_[i];
    ev.num_vals[i] = num_vals_[i];
  }
  for (int i = 0; i < n_str_; ++i) {
    ev.str_keys[i] = str_keys_[i];
    copy_str(ev.str_vals[i], str_vals_[i]);
  }
  buf->used.store(used + 1, std::memory_order_release);
}

void instant(const char* name, const char* key, const char* value) {
  if (!trace_enabled()) return;
  TraceBuffer* buf = tls_buffer();
  const std::uint32_t used = buf->used.load(std::memory_order_relaxed);
  if (used + buf->reserved + 2 > buf->capacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::int64_t ts = now_ns();
  TraceEvent& b = buf->events[used];
  b.name = name;
  b.ph = 'B';
  b.ts_ns = ts;
  b.n_num = 0;
  b.n_str = 0;
  TraceEvent& e = buf->events[used + 1];
  e.name = name;
  e.ph = 'E';
  e.ts_ns = ts;
  e.n_num = 0;
  e.n_str = 1;
  e.str_keys[0] = key;
  copy_str(e.str_vals[0], value);
  buf->used.store(used + 2, std::memory_order_release);
}

void set_trace_enabled(bool on) {
  detail::g_trace_on.store(on, std::memory_order_relaxed);
}

void reset_trace() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) buf->used.store(0, std::memory_order_release);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_event_count() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (auto& buf : reg.buffers)
    total += buf->used.load(std::memory_order_acquire);
  return total;
}

std::uint64_t trace_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::uint32_t events) {
  if (events < 4) events = 4;
  g_capacity.store(events, std::memory_order_relaxed);
}

std::string trace_json() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (auto& buf : reg.buffers) {
    const std::uint32_t n = buf->used.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      out += first ? "\n" : ",\n";
      first = false;
      append_event(out, buf->events[i], buf->tid);
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_trace(const std::string& path) {
  const std::string target = expand_pid(path);
  const std::string body = trace_json();
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size();
}

ScopedTrace::ScopedTrace() : was_on_(trace_enabled()) {
  set_trace_enabled(true);
  reset_trace();
}

ScopedTrace::~ScopedTrace() { set_trace_enabled(was_on_); }

namespace {

std::string* g_trace_path = nullptr;

[[maybe_unused]] const bool g_env_armed = [] {
  if (const char* cap = std::getenv("RCR_TRACE_BUFFER");
      cap != nullptr && cap[0] != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(cap, &end, 10);
    if (end != cap && *end == '\0' && v > 0)
      set_trace_buffer_capacity(static_cast<std::uint32_t>(v));
  }
  const char* env = std::getenv("RCR_TRACE");
  if (env == nullptr || env[0] == '\0') return false;
  g_trace_path = new std::string(env);
  set_trace_enabled(true);
  std::atexit(+[] { write_trace(*g_trace_path); });
  return true;
}();

}  // namespace

}  // namespace rcr::obs
