#include "rcr/opt/admm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::opt {

Vec soft_threshold(const Vec& v, double kappa) {
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] > kappa) {
      out[i] = v[i] - kappa;
    } else if (v[i] < -kappa) {
      out[i] = v[i] + kappa;
    } else {
      out[i] = 0.0;
    }
  }
  return out;
}

robust::Result<BoxQpFactor> try_prefactor_box_qp(const Matrix& p, double rho,
                                                 double ridge, bool mixed) {
  // x-update solves (P + rho I) x = rho (z - u) - q; factor once.  The
  // shifted matrix is moved straight into the decomposition -- no second
  // copy beyond the one the factorization itself owns (the mixed path keeps
  // one fp64 copy for residual evaluation during refinement).
  Matrix m = p;
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += rho + ridge;
  robust::Result<BoxQpFactor> out;
  if (mixed) {
    out.value.mixed = true;
    out.value.pshift = m;
    num::float_lu_into(out.value.pshift, out.value.factor_f);
  }
  out.value.factor = num::lu_decompose(std::move(m));
  out.value.rho = rho;
  if (robust::faults::enabled() &&
      robust::faults::should_inject("admm.factor.singular"))
    out.value.factor.singular = true;
  if (out.value.factor.singular)
    out.status = robust::make_status(
        robust::StatusCode::kSingular,
        "P + rho I singular (rho=" + std::to_string(rho) +
            ", ridge=" + std::to_string(ridge) + ")");
  return out;
}

BoxQpFactor prefactor_box_qp(const Matrix& p, double rho, bool mixed) {
  robust::Result<BoxQpFactor> r = try_prefactor_box_qp(p, rho, 0.0, mixed);
  if (!r.status.ok())
    throw std::runtime_error("admm_box_qp: P + rho I singular (P not PSD?)");
  return std::move(r.value);
}

AdmmResult admm_box_qp(const Matrix& p, const Vec& q, const Vec& lo,
                       const Vec& hi, const AdmmOptions& options) {
  // Factor-recovery ladder: the requested (rho, 0), then escalating diagonal
  // ridge, then rho backoff (x10) with the ridge ladder re-run.  Every
  // failed rung is recorded in the degradation trail.
  robust::Status recovery;
  robust::Result<BoxQpFactor> factor =
      try_prefactor_box_qp(p, options.rho, 0.0, options.mixed_precision);
  AdmmOptions effective = options;
  if (!factor.status.ok() && options.max_factor_retries > 0) {
    const double ridge0 = 1e-10 * (1.0 + p.max_abs());
    double rho = options.rho;
    double ridge = ridge0;
    for (std::size_t attempt = 0;
         attempt < options.max_factor_retries && !factor.status.ok();
         ++attempt) {
      recovery.note("factor failed (" + factor.status.detail +
                    "); retrying with rho=" + std::to_string(rho) +
                    " ridge=" + std::to_string(ridge));
      factor = try_prefactor_box_qp(p, rho, ridge, options.mixed_precision);
      if (factor.status.ok()) {
        effective.rho = rho;
        break;
      }
      // Escalate: two ridge rungs per rho, then back off rho itself.
      if (attempt % 2 == 0) {
        ridge *= 1e4;
      } else {
        rho *= 10.0;
        ridge = ridge0;
      }
    }
  }
  if (!factor.status.ok()) {
    // Unrecoverable: report instead of aborting; x = box projection of 0 is
    // always feasible, so even this worst case returns a valid point.
    AdmmResult result;
    result.x = num::clamp(Vec(q.size(), 0.0), lo, hi);
    result.objective = 0.5 * num::quad_form(result.x, p, result.x) +
                       num::dot(q, result.x);
    result.status = factor.status;
    result.status.trail = recovery.trail;
    return result;
  }
  AdmmResult result =
      admm_box_qp(p, factor.value, q, lo, hi, effective);
  if (!recovery.trail.empty()) {
    // Surface the recovery rungs ahead of whatever the solve recorded.
    recovery.trail.insert(recovery.trail.end(), result.status.trail.begin(),
                          result.status.trail.end());
    result.status.trail = std::move(recovery.trail);
    if (result.status.code == robust::StatusCode::kOk)
      result.status.code = robust::StatusCode::kDegraded;
  }
  return result;
}

AdmmResult admm_box_qp(const Matrix& p, const BoxQpFactor& factor,
                       const Vec& q, const Vec& lo, const Vec& hi,
                       const AdmmOptions& options) {
  return admm_box_qp(p, factor, q, lo, hi, options, nullptr);
}

AdmmResult admm_box_qp(const Matrix& p, const BoxQpFactor& factor,
                       const Vec& q, const Vec& lo, const Vec& hi,
                       const AdmmOptions& options, AdmmWarmState* warm) {
  const std::size_t n = q.size();
  if (p.rows() != n || p.cols() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument("admm_box_qp: dimension mismatch");
  if (factor.rho != options.rho)
    throw std::invalid_argument("admm_box_qp: factor rho != options rho");
  for (std::size_t i = 0; i < n; ++i)
    if (lo[i] > hi[i])
      throw std::invalid_argument("admm_box_qp: lo > hi");

  obs::Span span("admm.box_qp");

  if (options.mixed_precision && !factor.mixed)
    throw std::invalid_argument(
        "admm_box_qp: mixed_precision requires a factor built with "
        "prefactor_box_qp(p, rho, /*mixed=*/true)");

  Vec x(n, 0.0);
  Vec z = num::clamp(Vec(n, 0.0), lo, hi);
  Vec u(n, 0.0);

  AdmmResult result;
  if (warm != nullptr && !warm->empty()) {
    if (detail::warm_vec_ok(warm->z, n) && detail::warm_vec_ok(warm->u, n)) {
      // Re-clamp the warm primal so z stays feasible-by-construction even
      // when the box moved between solves.
      for (std::size_t i = 0; i < n; ++i)
        z[i] = std::clamp(warm->z[i], lo[i], hi[i]);
      u = warm->u;
      result.warm_use = WarmUse::kAccepted;
      obs::counter_add("rcr.warm.accepted", "solver", "admm");
    } else {
      result.warm_use = WarmUse::kRejected;
      result.status.note("warm state rejected (size mismatch or non-finite); "
                         "cold start");
      obs::counter_add("rcr.warm.rejected", "solver", "admm");
    }
  }

  // Iteration-persistent workspaces: after this point the loop body
  // performs no heap allocations.
  Vec rhs(n);
  Vec z_prev(n);
  num::RefineWorkspace refine_ws;
  // Refinement drives the x-update residual to fp64 roundoff territory,
  // well under any tolerance the outer loop checks against.
  constexpr double kRefineTol = 1e-12;
  constexpr int kRefineMaxIters = 8;

  // fp32 can underflow to singular on matrices fp64 handles fine: degrade
  // to the fp64 path with a note rather than failing.
  const bool use_mixed =
      options.mixed_precision && factor.mixed && !factor.factor_f.singular;
  if (options.mixed_precision && !use_mixed)
    result.status.note("fp32 factor singular; running fp64 x-updates");
  bool refine_stall_noted = false;
  const double scale = 1.0 + num::norm_inf(q);
  const bool faults_on = robust::faults::enabled();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("admm.deadline"))) {
      result.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired at iteration " + std::to_string(it));
      break;
    }
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = options.rho * (z[i] - u[i]) - q[i];
    if (use_mixed) {
      const int refined =
          num::refine_solve(factor.pshift, factor.factor_f, rhs, x,
                            kRefineTol, kRefineMaxIters, refine_ws);
      if (refined < 0) {
        // Stalled below the refinement target: redo this solve in fp64.
        factor.factor.solve_into(rhs, x);
        if (!refine_stall_noted) {
          result.status.note("refinement stalled at iteration " +
                             std::to_string(it) + "; fp64 fallback");
          refine_stall_noted = true;
        }
      } else {
        result.refine_iterations += static_cast<std::size_t>(refined);
      }
    } else {
      factor.factor.solve_into(rhs, x);
    }
    if (faults_on && !x.empty() &&
        robust::faults::should_inject("admm.iterate.nan"))
      x[0] = std::numeric_limits<double>::quiet_NaN();

    z_prev = z;
    for (std::size_t i = 0; i < n; ++i)
      z[i] = std::clamp(x[i] + u[i], lo[i], hi[i]);
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    // norm2(x - z) and norm2(z - z_prev) without the difference temporaries;
    // sqrt(sum of squares) in the same ascending order num::norm2 uses.
    double primal2 = 0.0;
    double dual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pd = x[i] - z[i];
      primal2 += pd * pd;
      const double dd = z[i] - z_prev[i];
      dual2 += dd * dd;
    }
    // NaN/Inf sentinel: a poisoned iterate shows up in the residual sums.
    // Roll back to the last clean feasible z and stop -- degraded, not dead.
    if (!std::isfinite(primal2) || !std::isfinite(dual2)) {
      z = z_prev;
      result.status = robust::make_status(
          robust::StatusCode::kNumericalFailure,
          "non-finite iterate at iteration " + std::to_string(it + 1) +
              "; rolled back to last clean feasible point");
      result.iterations = it + 1;
      break;
    }
    const double primal = std::sqrt(primal2);
    const double dual = options.rho * std::sqrt(dual2);
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged && result.status.ok())
    result.status = robust::make_status(robust::StatusCode::kNonConverged,
                                        "max_iterations exhausted");
  result.x = z;  // feasible by construction
  result.objective = 0.5 * num::quad_form(result.x, p, result.x) +
                     num::dot(q, result.x);
  if (warm != nullptr) {
    // Chainable state on a clean exit; cleared after a poisoned iterate so
    // the next solve cold-starts instead of inheriting the corruption.
    if (result.status.code == robust::StatusCode::kNumericalFailure) {
      warm->clear();
    } else {
      warm->z = z;
      warm->u = u;
    }
  }
  obs::counter_add("rcr.admm.solves");
  obs::counter_add("rcr.admm.iterations", result.iterations);
  if (result.refine_iterations > 0)
    obs::counter_add("rcr.admm.refine_iters", result.refine_iterations);
  span.attr("iterations", static_cast<double>(result.iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("objective", result.objective);
  return result;
}

LassoFactor prefactor_lasso(const Matrix& a, double rho) {
  // x-update solves (A^T A + rho I) x = A^T b + rho (z - u).  The Gram
  // product is the dominant setup cost; cache its factorization.
  Matrix m = num::multiply_at_b(a, a);
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += rho;
  LassoFactor out;
  out.factor = num::lu_decompose(std::move(m));
  out.rho = rho;
  return out;
}

AdmmResult admm_lasso(const Matrix& a, const Vec& b, double lambda,
                      const AdmmOptions& options) {
  return admm_lasso(a, prefactor_lasso(a, options.rho), b, lambda, options);
}

AdmmResult admm_lasso(const Matrix& a, const LassoFactor& factor, const Vec& b,
                      double lambda, const AdmmOptions& options) {
  const std::size_t n = a.cols();
  if (a.rows() != b.size())
    throw std::invalid_argument("admm_lasso: dimension mismatch");
  if (lambda < 0.0)
    throw std::invalid_argument("admm_lasso: negative lambda");
  if (factor.rho != options.rho)
    throw std::invalid_argument("admm_lasso: factor rho != options rho");

  obs::Span span("admm.lasso");

  const Vec atb = num::matvec_transposed(a, b);

  Vec x(n, 0.0);
  Vec z(n, 0.0);
  Vec u(n, 0.0);

  // Iteration-persistent workspaces (loop body is allocation-free).
  Vec rhs(n);
  Vec z_prev(n);
  const double kappa = lambda / options.rho;

  AdmmResult result;
  const double scale = 1.0 + num::norm_inf(atb);
  const bool faults_on = robust::faults::enabled();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("admm.deadline"))) {
      result.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired at iteration " + std::to_string(it));
      break;
    }
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = atb[i] + options.rho * (z[i] - u[i]);
    factor.factor.solve_into(rhs, x);
    if (faults_on && !x.empty() &&
        robust::faults::should_inject("admm.iterate.nan"))
      x[0] = std::numeric_limits<double>::quiet_NaN();

    z_prev = z;
    // z = soft_threshold(x + u, kappa), elementwise in place.
    for (std::size_t i = 0; i < n; ++i) {
      const double v = x[i] + u[i];
      if (v > kappa) {
        z[i] = v - kappa;
      } else if (v < -kappa) {
        z[i] = v + kappa;
      } else {
        z[i] = 0.0;
      }
    }
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    double primal2 = 0.0;
    double dual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pd = x[i] - z[i];
      primal2 += pd * pd;
      const double dd = z[i] - z_prev[i];
      dual2 += dd * dd;
    }
    if (!std::isfinite(primal2) || !std::isfinite(dual2)) {
      z = z_prev;
      result.status = robust::make_status(
          robust::StatusCode::kNumericalFailure,
          "non-finite iterate at iteration " + std::to_string(it + 1) +
              "; rolled back to last clean point");
      result.iterations = it + 1;
      break;
    }
    const double primal = std::sqrt(primal2);
    const double dual = options.rho * std::sqrt(dual2);
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged && result.status.ok())
    result.status = robust::make_status(robust::StatusCode::kNonConverged,
                                        "max_iterations exhausted");
  result.x = z;
  const Vec resid = num::sub(num::matvec(a, result.x), b);
  result.objective =
      0.5 * num::dot(resid, resid) + lambda * num::norm1(result.x);
  obs::counter_add("rcr.admm.solves");
  obs::counter_add("rcr.admm.iterations", result.iterations);
  span.attr("iterations", static_cast<double>(result.iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("objective", result.objective);
  return result;
}

}  // namespace rcr::opt
