#include "rcr/opt/admm.hpp"

#include <cmath>
#include <stdexcept>

#include "rcr/numerics/decompositions.hpp"

namespace rcr::opt {

Vec soft_threshold(const Vec& v, double kappa) {
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] > kappa) {
      out[i] = v[i] - kappa;
    } else if (v[i] < -kappa) {
      out[i] = v[i] + kappa;
    } else {
      out[i] = 0.0;
    }
  }
  return out;
}

AdmmResult admm_box_qp(const Matrix& p, const Vec& q, const Vec& lo,
                       const Vec& hi, const AdmmOptions& options) {
  const std::size_t n = q.size();
  if (p.rows() != n || p.cols() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument("admm_box_qp: dimension mismatch");
  for (std::size_t i = 0; i < n; ++i)
    if (lo[i] > hi[i])
      throw std::invalid_argument("admm_box_qp: lo > hi");

  // x-update solves (P + rho I) x = rho (z - u) - q; factor once.
  Matrix m = p;
  for (std::size_t i = 0; i < n; ++i) m(i, i) += options.rho;
  const num::LuDecomposition factor = num::lu_decompose(m);
  if (factor.singular)
    throw std::runtime_error("admm_box_qp: P + rho I singular (P not PSD?)");

  Vec x(n, 0.0);
  Vec z = num::clamp(Vec(n, 0.0), lo, hi);
  Vec u(n, 0.0);

  AdmmResult result;
  const double scale = 1.0 + num::norm_inf(q);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Vec rhs(n);
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = options.rho * (z[i] - u[i]) - q[i];
    x = factor.solve(rhs);

    Vec z_prev = z;
    Vec xu = num::add(x, u);
    z = num::clamp(xu, lo, hi);
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    const double primal = num::norm2(num::sub(x, z));
    const double dual = options.rho * num::norm2(num::sub(z, z_prev));
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  result.x = z;  // feasible by construction
  result.objective = 0.5 * num::quad_form(result.x, p, result.x) +
                     num::dot(q, result.x);
  return result;
}

AdmmResult admm_lasso(const Matrix& a, const Vec& b, double lambda,
                      const AdmmOptions& options) {
  const std::size_t n = a.cols();
  if (a.rows() != b.size())
    throw std::invalid_argument("admm_lasso: dimension mismatch");
  if (lambda < 0.0)
    throw std::invalid_argument("admm_lasso: negative lambda");

  // x-update solves (A^T A + rho I) x = A^T b + rho (z - u).
  Matrix m = num::multiply_at_b(a, a);
  for (std::size_t i = 0; i < n; ++i) m(i, i) += options.rho;
  const num::LuDecomposition factor = num::lu_decompose(m);
  const Vec atb = num::matvec_transposed(a, b);

  Vec x(n, 0.0);
  Vec z(n, 0.0);
  Vec u(n, 0.0);

  AdmmResult result;
  const double scale = 1.0 + num::norm_inf(atb);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Vec rhs(n);
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = atb[i] + options.rho * (z[i] - u[i]);
    x = factor.solve(rhs);

    Vec z_prev = z;
    z = soft_threshold(num::add(x, u), lambda / options.rho);
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    const double primal = num::norm2(num::sub(x, z));
    const double dual = options.rho * num::norm2(num::sub(z, z_prev));
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  result.x = z;
  const Vec resid = num::sub(num::matvec(a, result.x), b);
  result.objective =
      0.5 * num::dot(resid, resid) + lambda * num::norm1(result.x);
  return result;
}

}  // namespace rcr::opt
