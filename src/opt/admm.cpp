#include "rcr/opt/admm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rcr/numerics/decompositions.hpp"

namespace rcr::opt {

Vec soft_threshold(const Vec& v, double kappa) {
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] > kappa) {
      out[i] = v[i] - kappa;
    } else if (v[i] < -kappa) {
      out[i] = v[i] + kappa;
    } else {
      out[i] = 0.0;
    }
  }
  return out;
}

BoxQpFactor prefactor_box_qp(const Matrix& p, double rho) {
  // x-update solves (P + rho I) x = rho (z - u) - q; factor once.  The
  // shifted matrix is moved straight into the decomposition -- no second
  // copy beyond the one the factorization itself owns.
  Matrix m = p;
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += rho;
  BoxQpFactor out;
  out.factor = num::lu_decompose(std::move(m));
  out.rho = rho;
  if (out.factor.singular)
    throw std::runtime_error("admm_box_qp: P + rho I singular (P not PSD?)");
  return out;
}

AdmmResult admm_box_qp(const Matrix& p, const Vec& q, const Vec& lo,
                       const Vec& hi, const AdmmOptions& options) {
  return admm_box_qp(p, prefactor_box_qp(p, options.rho), q, lo, hi, options);
}

AdmmResult admm_box_qp(const Matrix& p, const BoxQpFactor& factor,
                       const Vec& q, const Vec& lo, const Vec& hi,
                       const AdmmOptions& options) {
  const std::size_t n = q.size();
  if (p.rows() != n || p.cols() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument("admm_box_qp: dimension mismatch");
  if (factor.rho != options.rho)
    throw std::invalid_argument("admm_box_qp: factor rho != options rho");
  for (std::size_t i = 0; i < n; ++i)
    if (lo[i] > hi[i])
      throw std::invalid_argument("admm_box_qp: lo > hi");

  Vec x(n, 0.0);
  Vec z = num::clamp(Vec(n, 0.0), lo, hi);
  Vec u(n, 0.0);

  // Iteration-persistent workspaces: after this point the loop body
  // performs no heap allocations.
  Vec rhs(n);
  Vec z_prev(n);

  AdmmResult result;
  const double scale = 1.0 + num::norm_inf(q);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = options.rho * (z[i] - u[i]) - q[i];
    factor.factor.solve_into(rhs, x);

    z_prev = z;
    for (std::size_t i = 0; i < n; ++i)
      z[i] = std::clamp(x[i] + u[i], lo[i], hi[i]);
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    // norm2(x - z) and norm2(z - z_prev) without the difference temporaries;
    // sqrt(sum of squares) in the same ascending order num::norm2 uses.
    double primal2 = 0.0;
    double dual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pd = x[i] - z[i];
      primal2 += pd * pd;
      const double dd = z[i] - z_prev[i];
      dual2 += dd * dd;
    }
    const double primal = std::sqrt(primal2);
    const double dual = options.rho * std::sqrt(dual2);
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  result.x = z;  // feasible by construction
  result.objective = 0.5 * num::quad_form(result.x, p, result.x) +
                     num::dot(q, result.x);
  return result;
}

LassoFactor prefactor_lasso(const Matrix& a, double rho) {
  // x-update solves (A^T A + rho I) x = A^T b + rho (z - u).  The Gram
  // product is the dominant setup cost; cache its factorization.
  Matrix m = num::multiply_at_b(a, a);
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += rho;
  LassoFactor out;
  out.factor = num::lu_decompose(std::move(m));
  out.rho = rho;
  return out;
}

AdmmResult admm_lasso(const Matrix& a, const Vec& b, double lambda,
                      const AdmmOptions& options) {
  return admm_lasso(a, prefactor_lasso(a, options.rho), b, lambda, options);
}

AdmmResult admm_lasso(const Matrix& a, const LassoFactor& factor, const Vec& b,
                      double lambda, const AdmmOptions& options) {
  const std::size_t n = a.cols();
  if (a.rows() != b.size())
    throw std::invalid_argument("admm_lasso: dimension mismatch");
  if (lambda < 0.0)
    throw std::invalid_argument("admm_lasso: negative lambda");
  if (factor.rho != options.rho)
    throw std::invalid_argument("admm_lasso: factor rho != options rho");

  const Vec atb = num::matvec_transposed(a, b);

  Vec x(n, 0.0);
  Vec z(n, 0.0);
  Vec u(n, 0.0);

  // Iteration-persistent workspaces (loop body is allocation-free).
  Vec rhs(n);
  Vec z_prev(n);
  const double kappa = lambda / options.rho;

  AdmmResult result;
  const double scale = 1.0 + num::norm_inf(atb);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = atb[i] + options.rho * (z[i] - u[i]);
    factor.factor.solve_into(rhs, x);

    z_prev = z;
    // z = soft_threshold(x + u, kappa), elementwise in place.
    for (std::size_t i = 0; i < n; ++i) {
      const double v = x[i] + u[i];
      if (v > kappa) {
        z[i] = v - kappa;
      } else if (v < -kappa) {
        z[i] = v + kappa;
      } else {
        z[i] = 0.0;
      }
    }
    for (std::size_t i = 0; i < n; ++i) u[i] += x[i] - z[i];

    double primal2 = 0.0;
    double dual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pd = x[i] - z[i];
      primal2 += pd * pd;
      const double dd = z[i] - z_prev[i];
      dual2 += dd * dd;
    }
    const double primal = std::sqrt(primal2);
    const double dual = options.rho * std::sqrt(dual2);
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  result.x = z;
  const Vec resid = num::sub(num::matvec(a, result.x), b);
  result.objective =
      0.5 * num::dot(resid, resid) + lambda * num::norm1(result.x);
  return result;
}

}  // namespace rcr::opt
