// Alternating Direction Method of Multipliers.
//
// Sec. I of the paper lists ADMM among the general-purpose routes "for
// nonconvex and nonsmooth functions" once a problem has been decomposed.
// This module provides the two decompositions the RCR pipeline uses:
//  - box-constrained QP (cross-checks the barrier solver), and
//  - lasso (the sum-of-smooth-plus-nonsmooth decomposition of [1]).
#pragma once

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/mixed.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/warm.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::opt {

/// Shared ADMM options.
struct AdmmOptions {
  double rho = 1.0;
  double tolerance = 1e-8;
  std::size_t max_iterations = 10000;
  /// Wall-clock budget; unlimited by default.  When the deadline fires the
  /// solver returns its best (feasible-by-construction) iterate with
  /// status kDeadlineExpired.
  robust::Budget budget;
  /// Recovery ladder for a singular P + rho I: escalating diagonal ridge,
  /// then rho backoff (x10) with the ridge ladder re-run.  0 disables.
  std::size_t max_factor_retries = 4;
  /// Opt-in mixed-precision x-update: fp32 triangular solves corrected by
  /// fp64 iterative refinement (num::refine_solve).  Requires a factor
  /// built with mixed=true.  Off by default; the fp64 path is bit-identical
  /// with this off.  Iterations where refinement stalls fall back to the
  /// fp64 factor transparently (see AdmmResult::refine_iterations).
  bool mixed_precision = false;
};

/// Cached x-update operator for admm_box_qp: the LU factors of P + rho I.
/// Build once with prefactor_box_qp and reuse across solves with the same P
/// and rho -- repeated calls then skip the per-call matrix copy and
/// refactorization entirely.
struct BoxQpFactor {
  num::LuDecomposition factor;  ///< LU of P + rho I.
  double rho = 0.0;             ///< The rho the factor was built with.
  /// Mixed-precision extension (populated when built with mixed=true): the
  /// shifted matrix in fp64 for residual evaluation plus its fp32 factor.
  bool mixed = false;
  Matrix pshift;          ///< P + (rho + ridge) I.
  num::FloatLu factor_f;  ///< fp32 LU of pshift.
};

/// Factor P + rho I for the box-QP x-update.  Throws std::runtime_error when
/// P + rho I is singular (P not PSD).  `mixed` additionally builds the fp32
/// factor consumed by AdmmOptions::mixed_precision.
BoxQpFactor prefactor_box_qp(const Matrix& p, double rho, bool mixed = false);

/// Non-throwing factor: status kSingular (with the factor left unusable)
/// instead of the throw.  `ridge` adds an extra diagonal shift beyond rho
/// (the escalating-regularization retry path).
robust::Result<BoxQpFactor> try_prefactor_box_qp(const Matrix& p, double rho,
                                                 double ridge = 0.0,
                                                 bool mixed = false);

/// Cached x-update operator for admm_lasso: the LU factors of A^T A + rho I.
/// The Gram product is the dominant setup cost; building it once amortizes
/// it across solves against many right-hand sides b.
struct LassoFactor {
  num::LuDecomposition factor;  ///< LU of A^T A + rho I.
  double rho = 0.0;
};

/// Factor A^T A + rho I for the lasso x-update.
LassoFactor prefactor_lasso(const Matrix& a, double rho);

/// Primal/dual state carried between admm_box_qp solves (see warm.hpp for
/// the acceptance/rejection/writeback contract).  `z` is the consensus
/// primal iterate (feasible by construction), `u` the scaled dual.  An empty
/// state means "cold start"; the solver fills it on a clean exit and clears
/// it after a numerical failure.
struct AdmmWarmState {
  Vec z;  ///< Consensus primal iterate.
  Vec u;  ///< Scaled dual iterate.

  bool empty() const { return z.empty() && u.empty(); }
  void clear() {
    z.clear();
    u.clear();
  }
};

/// ADMM outcome.
struct AdmmResult {
  Vec x;
  double objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  /// Runtime disposition: kOk on convergence, kNonConverged on iteration
  /// exhaustion, kNumericalFailure when a NaN/Inf iterate was caught (the
  /// last clean feasible iterate is returned), kDeadlineExpired on budget
  /// expiry, kSingular/kDegraded through the factor-recovery ladder.  The
  /// trail records every recovery step taken.
  robust::Status status;
  /// Total fp64 refinement corrections across all iterations (0 unless
  /// mixed_precision ran).
  std::size_t refine_iterations = 0;
  /// Disposition of the warm state handed to this solve (kCold when none).
  WarmUse warm_use = WarmUse::kCold;
};

/// Box-constrained QP:
///   minimize (1/2) x^T P x + q^T x   subject to  lo <= x <= hi.
/// P must be symmetric PSD.  Splitting: x unconstrained quadratic prox
/// (factorized once), z clamped to the box.
///
/// Runtime numerical failures no longer throw: a singular P + rho I walks
/// the escalating-ridge / rho-backoff ladder (`max_factor_retries`), and a
/// NaN iterate rolls back to the last clean feasible z -- inspect
/// result.status.  Argument-shape errors still throw std::invalid_argument.
AdmmResult admm_box_qp(const Matrix& p, const Vec& q, const Vec& lo,
                       const Vec& hi, const AdmmOptions& options = {});

/// Box-QP with a prefactored operator (see prefactor_box_qp).
/// `factor.rho` must match `options.rho`; throws std::invalid_argument
/// otherwise.  Iterations are allocation-free once warm.
AdmmResult admm_box_qp(const Matrix& p, const BoxQpFactor& factor,
                       const Vec& q, const Vec& lo, const Vec& hi,
                       const AdmmOptions& options = {});

/// Warm-started box-QP: when `warm` is non-null and holds a valid state (n
/// entries each, all finite), iteration starts from z = clamp(warm->z),
/// u = warm->u instead of the cold (clamped zero) initialization, and the
/// final state is written back on a clean exit (cleared after a
/// kNumericalFailure).  A null or empty `warm` is exactly the cold path; an
/// invalid state is rejected with a status-trail note and the solve runs
/// cold (bit-identical to no warm state).  result.warm_use reports the
/// disposition.
AdmmResult admm_box_qp(const Matrix& p, const BoxQpFactor& factor,
                       const Vec& q, const Vec& lo, const Vec& hi,
                       const AdmmOptions& options, AdmmWarmState* warm);

/// Lasso:
///   minimize (1/2) ||A x - b||^2 + lambda ||x||_1.
/// Splitting: least-squares prox + soft-thresholding.
AdmmResult admm_lasso(const Matrix& a, const Vec& b, double lambda,
                      const AdmmOptions& options = {});

/// Lasso with a prefactored Gram operator (see prefactor_lasso), skipping
/// the per-call A^T A product and factorization.  `factor.rho` must match
/// `options.rho`.
AdmmResult admm_lasso(const Matrix& a, const LassoFactor& factor, const Vec& b,
                      double lambda, const AdmmOptions& options = {});

/// Soft-thresholding operator: sign(v) * max(|v| - kappa, 0).
Vec soft_threshold(const Vec& v, double kappa);

}  // namespace rcr::opt
