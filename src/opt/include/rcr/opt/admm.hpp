// Alternating Direction Method of Multipliers.
//
// Sec. I of the paper lists ADMM among the general-purpose routes "for
// nonconvex and nonsmooth functions" once a problem has been decomposed.
// This module provides the two decompositions the RCR pipeline uses:
//  - box-constrained QP (cross-checks the barrier solver), and
//  - lasso (the sum-of-smooth-plus-nonsmooth decomposition of [1]).
#pragma once

#include "rcr/opt/quadratic.hpp"

namespace rcr::opt {

/// Shared ADMM options.
struct AdmmOptions {
  double rho = 1.0;
  double tolerance = 1e-8;
  std::size_t max_iterations = 10000;
};

/// ADMM outcome.
struct AdmmResult {
  Vec x;
  double objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Box-constrained QP:
///   minimize (1/2) x^T P x + q^T x   subject to  lo <= x <= hi.
/// P must be symmetric PSD.  Splitting: x unconstrained quadratic prox
/// (factorized once), z clamped to the box.
AdmmResult admm_box_qp(const Matrix& p, const Vec& q, const Vec& lo,
                       const Vec& hi, const AdmmOptions& options = {});

/// Lasso:
///   minimize (1/2) ||A x - b||^2 + lambda ||x||_1.
/// Splitting: least-squares prox + soft-thresholding.
AdmmResult admm_lasso(const Matrix& a, const Vec& b, double lambda,
                      const AdmmOptions& options = {});

/// Soft-thresholding operator: sign(v) * max(|v| - kappa, 0).
Vec soft_threshold(const Vec& v, double kappa);

}  // namespace rcr::opt
