// Langevin-diffusion global optimization (paper Sec. I: "there are indeed
// forays, such as Langevin Diffusions (with the possibility of premature
// stagnation of particles at local optima) for nonconvex problems").
//
// Unadjusted Langevin dynamics with temperature annealing:
//   x_{k+1} = x_k - step * grad f(x_k) + sqrt(2 * step * T_k) * xi_k
// with T_k cooled geometrically.  At T = 0 this degenerates to plain
// gradient descent; cooled too fast it stagnates at local optima -- exactly
// the failure mode the paper flags.
#pragma once

#include <cstdint>
#include <optional>

#include "rcr/numerics/rng.hpp"
#include "rcr/opt/lbfgs.hpp"

namespace rcr::opt {

/// Annealed-Langevin options.
struct LangevinOptions {
  std::size_t iterations = 2000;
  double step = 1e-3;
  double initial_temperature = 1.0;
  double cooling = 0.999;   ///< T <- cooling * T each iteration.
  std::uint64_t seed = 1;
  /// Optional box projection (both empty = unconstrained).
  Vec lower;
  Vec upper;
};

/// Outcome: the best point visited (not the final iterate -- the chain is
/// noisy by design).
struct LangevinResult {
  Vec best_x;
  double best_value = 0.0;
  Vec final_x;
  double final_temperature = 0.0;
  std::size_t iterations = 0;
};

/// Minimize a smooth (possibly nonconvex) objective with annealed Langevin
/// dynamics.  Throws std::invalid_argument on malformed options.
LangevinResult langevin_minimize(const Smooth& f, Vec x0,
                                 const LangevinOptions& options = {});

}  // namespace rcr::opt
