// Smooth unconstrained minimizers: gradient descent, BFGS, and L-BFGS.
//
// Sec. IV-C of the paper motivates BFGS-style Hessian proxies (computing the
// exact Hessian being "computationally impractical") with trust-region
// safeguards; the trust-region drivers live in trust_region.hpp.
#pragma once

#include <functional>

#include "rcr/numerics/vector_ops.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::opt {

/// Smooth objective: value and gradient at x.
struct Smooth {
  std::function<double(const Vec&)> value;
  std::function<Vec(const Vec&)> gradient;
};

/// Common minimizer options.
struct MinimizeOptions {
  std::size_t max_iterations = 500;
  double gradient_tolerance = 1e-8;  ///< Stop when ||g||_inf <= this.
  std::size_t history = 10;          ///< L-BFGS memory.
  /// Wall-clock budget; unlimited by default.  On expiry the minimizer
  /// returns its current iterate with status kDeadlineExpired.
  robust::Budget budget;
};

/// Minimizer outcome.
struct MinimizeResult {
  Vec x;
  double value = 0.0;
  double gradient_norm = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  /// Runtime disposition: kOk on convergence, kNonConverged otherwise,
  /// kNumericalFailure on a non-finite gradient (last clean iterate is
  /// returned), kDeadlineExpired on budget expiry.
  robust::Status status;
};

/// Steepest descent with Armijo backtracking (baseline).
MinimizeResult gradient_descent(const Smooth& f, Vec x0,
                                const MinimizeOptions& options = {});

/// Dense BFGS with explicit inverse-Hessian approximation.
MinimizeResult bfgs(const Smooth& f, Vec x0,
                    const MinimizeOptions& options = {});

/// Limited-memory BFGS (two-loop recursion).
MinimizeResult lbfgs(const Smooth& f, Vec x0,
                     const MinimizeOptions& options = {});

/// Wrap a value function with numerical gradients (testing convenience).
Smooth with_numerical_gradient(std::function<double(const Vec&)> value,
                               double h = 1e-6);

}  // namespace rcr::opt
