// Backtracking line searches shared by the smooth solvers.
#pragma once

#include <cmath>
#include <functional>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::opt {

/// Result of a line search.
struct LineSearchResult {
  double step = 0.0;
  double value = 0.0;   ///< f(x + step * d).
  bool success = false; ///< Sufficient decrease achieved before min step.
};

/// Armijo backtracking: find t with
/// f(x + t d) <= f(x) + c1 * t * <g, d>, halving from t0.
LineSearchResult armijo_backtrack(const std::function<double(const Vec&)>& f,
                                  const Vec& x, const Vec& direction,
                                  const Vec& gradient, double f_x,
                                  double t0 = 1.0, double c1 = 1e-4,
                                  double shrink = 0.5, double min_step = 1e-14);

}  // namespace rcr::opt
