// Convex QP / QCQP solver: log-barrier interior-point method with
// equality-constrained Newton steps (Boyd & Vandenberghe Ch. 11).
//
// This is the solver the paper's Sec. IV-C relies on: a QCQP with PSD P_i is
// convex and solvable in polynomial time; the barrier method here certifies
// its answer with the m/t duality-gap bound.
#pragma once

#include <optional>

#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/warm.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::opt {

/// Linear-constraint QP: minimize (1/2) x^T P x + q^T x subject to
/// G x <= h and A x = b.
struct Qp {
  Matrix p;
  Vec q;
  Matrix g;  ///< Possibly 0 x n.
  Vec h;
  Matrix a;  ///< Possibly 0 x n.
  Vec b;

  /// Lift to a QCQP with linear inequality forms (P_i = 0).
  Qcqp to_qcqp() const;
};

/// Barrier-method options.
struct BarrierOptions {
  double t0 = 1.0;          ///< Initial barrier weight.
  double mu = 10.0;         ///< Barrier growth factor per outer iteration.
  double duality_gap = 1e-8;  ///< Stop when m/t falls below this.
  double newton_tolerance = 1e-10;  ///< Newton decrement^2 / 2 threshold.
  std::size_t max_newton = 60;      ///< Newton steps per centering.
  std::size_t max_outer = 60;
  /// Wall-clock budget; unlimited by default.  On expiry the solver returns
  /// its current (strictly feasible) iterate with status kDeadlineExpired.
  robust::Budget budget;
  /// Recovery for a non-finite or singular Newton step: restore the last
  /// centered iterate, roll the barrier weight back one stage, and resume
  /// with a gentler growth factor mu.  0 disables.
  std::size_t max_mu_restarts = 2;
};

/// Interior-point state carried between solve_qcqp_barrier calls (warm.hpp
/// documents the acceptance/rejection/writeback contract).  `x` is the last
/// centered primal iterate and `t` the barrier weight reached -- together
/// they place the solver back on the central path near where the previous
/// solve ended.  Acceptance additionally requires `x` to be *strictly
/// feasible for the new problem*; otherwise the state is rejected and
/// phase I runs as usual.  Empty (x.empty()) means cold start.
struct BarrierWarmState {
  Vec x;          ///< Last centered iterate.
  double t = 0.0; ///< Barrier weight reached (0 = none recorded).

  bool empty() const { return x.empty(); }
  void clear() {
    x.clear();
    t = 0.0;
  }
};

/// Solver outcome.
struct QcqpResult {
  Vec x;
  double value = 0.0;
  bool converged = false;
  std::size_t newton_iterations = 0;  ///< Total across centerings.
  double duality_gap_bound = 0.0;     ///< m/t certificate at exit.
  std::string message;
  /// Runtime disposition: kOk on convergence, kInfeasible when no strictly
  /// feasible start exists, kNonConverged on outer-iteration exhaustion,
  /// kNumericalFailure when the mu-restart ladder was exhausted,
  /// kDeadlineExpired on budget expiry.  The trail records mu restarts.
  robust::Status status;
  /// Disposition of the warm state handed to this solve (kCold when none).
  WarmUse warm_use = WarmUse::kCold;
};

/// Find a strictly feasible point of a convex QCQP (phase I): penalized
/// smooth minimization, then exact restoration of the equality constraints.
/// Returns std::nullopt when no strictly feasible point is found.
std::optional<Vec> find_strictly_feasible(const Qcqp& problem,
                                          double margin = 1e-3);

/// Solve a convex QCQP via the barrier method.  When `x0` is absent, phase I
/// runs first.  Throws std::invalid_argument on malformed problems; returns
/// converged = false (with message) when no strictly feasible point exists.
QcqpResult solve_qcqp_barrier(const Qcqp& problem,
                              std::optional<Vec> x0 = std::nullopt,
                              const BarrierOptions& options = {});

/// Warm-started barrier solve: when `warm` is non-null and holds a valid
/// state (right size, finite, strictly feasible for *this* problem), the
/// solve starts from warm->x with the barrier weight resumed at the ladder's
/// geometric midpoint (t = max(t0, sqrt(t0 * warm->t))), halving the outer
/// stages while keeping the drifted start inside the Newton convergence
/// radius; phase I is skipped entirely.  The final (x, t)
/// is written back on a clean exit (cleared on kNumericalFailure /
/// kInfeasible).  A null or empty `warm` is exactly the cold path; an
/// invalid state is rejected with a status-trail note and the solve runs
/// cold.  result.warm_use reports the disposition.
QcqpResult solve_qcqp_barrier(const Qcqp& problem,
                              const BarrierOptions& options,
                              BarrierWarmState* warm);

/// Solve a convex QP via the same machinery.
QcqpResult solve_qp(const Qp& problem, std::optional<Vec> x0 = std::nullopt,
                    const BarrierOptions& options = {});

/// Solve the equality-constrained QP  min (1/2)x^T P x + q^T x  s.t. A x = b
/// directly via its KKT system (no inequalities).  Throws std::runtime_error
/// when the KKT matrix is singular.
Vec solve_equality_qp(const Matrix& p, const Vec& q, const Matrix& a,
                      const Vec& b);

}  // namespace rcr::opt
