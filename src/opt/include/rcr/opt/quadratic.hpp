// Quadratic forms and QCQP problem data (paper Eq. 7).
#pragma once

#include <cstddef>
#include <vector>

#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::opt {

using num::Matrix;

/// f(x) = (1/2) x^T P x + q^T x + r.
struct QuadraticForm {
  Matrix p;
  Vec q;
  double r = 0.0;

  std::size_t dim() const { return q.size(); }
  double value(const Vec& x) const;
  Vec gradient(const Vec& x) const;

  /// gradient() writing into `g`, using `scratch` for the P^T x product.
  /// Both are resized with storage reuse -- allocation-free once warm.
  /// Bit-identical to gradient().
  void gradient_into(const Vec& x, Vec& g, Vec& scratch) const;

  /// True when P is symmetric PSD within tolerance (the convexity envelope
  /// condition of Sec. IV-C).
  bool is_convex(double tol = 1e-9) const;
};

/// Quadratically constrained quadratic program (paper Eq. 7):
///   minimize   f0(x)
///   subject to fi(x) <= 0, i = 1..m
///              A x = b.
struct Qcqp {
  QuadraticForm objective;
  std::vector<QuadraticForm> constraints;
  Matrix a;  ///< Equality matrix (possibly 0 x n).
  Vec b;

  std::size_t dim() const { return objective.dim(); }

  /// max_i fi(x); -inf when there are no inequality constraints.
  double max_constraint_violation(const Vec& x) const;

  /// ||Ax - b||_inf; 0 when there are no equality constraints.
  double equality_residual(const Vec& x) const;

  /// Validates dimensional consistency; throws std::invalid_argument.
  void validate() const;
};

/// Random convex QCQP with known strictly feasible interior (all constraints
/// are balls around points near the origin); used by the E5 bench and tests.
Qcqp random_convex_qcqp(std::size_t n, std::size_t m_ineq,
                        std::size_t m_eq, num::Rng& rng);

/// Random symmetric PSD matrix with the given rank: sum of r random
/// outer products.
Matrix random_psd(std::size_t n, std::size_t rank, num::Rng& rng);

}  // namespace rcr::opt
