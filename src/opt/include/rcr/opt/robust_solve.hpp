// Degradation-aware front door for the box-constrained QP -- the workhorse
// subproblem of the RCR pipeline (Sec. IV-C).  Instead of trusting a single
// solver, requests walk a declarative fallback chain
//
//   Shor SDP relaxation -> QCQP barrier -> ADMM -> projected gradient
//
// where each step records why its predecessor failed and the answer is
// tagged with the soundness level of the step that produced it.  The last
// resort (projected gradient onto the box) cannot fail: it always returns a
// feasible point, so a request degrades but never dies.
#pragma once

#include <string>

#include "rcr/opt/admm.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/robust/fallback.hpp"

namespace rcr::opt {

/// Options for the robust box-QP chain.  The chain deadline is shared: it is
/// checked between steps, and each sub-solver whose own budget is unlimited
/// inherits it.
struct RobustBoxQpOptions {
  robust::Deadline deadline;
  SdpOptions sdp;
  BarrierOptions barrier;
  AdmmOptions admm;
  std::size_t pgd_max_iterations = 20000;
  double pgd_tolerance = 1e-10;
  /// Skip the (expensive) SDP relaxation step; the chain then starts at the
  /// barrier solver.  The exact steps still answer identically.
  bool skip_sdp = true;
};

/// Outcome of the chain: the winning step's answer plus the full trail.
struct RobustBoxQpResult {
  Vec x;
  double objective = 0.0;
  std::string method;  ///< Name of the step that produced x.
  robust::Soundness soundness = robust::Soundness::kHeuristic;
  robust::Status status;  ///< Trail names every fallback taken.
  std::size_t attempts = 0;
};

/// Projected gradient descent on (1/2) x^T P x + q^T x over [lo, hi] -- the
/// always-feasible last resort.  Fixed step 1 / (||P||_inf + 1).  Returns
/// kNonConverged (usable) when the iteration budget runs out.
robust::Result<Vec> projected_gradient_box_qp(
    const Matrix& p, const Vec& q, const Vec& lo, const Vec& hi,
    std::size_t max_iterations = 20000, double tolerance = 1e-10,
    const robust::Budget& budget = {});

/// Run the fallback chain.  Never throws on runtime numerical failure; the
/// worst case is a kDegraded heuristic answer (or kFallbackExhausted if the
/// deadline fires before any step can run).  Argument-shape errors still
/// throw std::invalid_argument.
RobustBoxQpResult solve_box_qp_robust(const Matrix& p, const Vec& q,
                                      const Vec& lo, const Vec& hi,
                                      const RobustBoxQpOptions& options = {});

}  // namespace rcr::opt
