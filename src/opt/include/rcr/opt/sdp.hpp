// Semidefinite programming via ADMM (conic splitting), plus the Shor
// relaxation that turns a QCQP into an SDP -- the "numerous SDP solvers"
// role SDPT3 plays in the paper's M-GNU-O platform (Sec. IV-C, Eq. 10).
//
// Problem form (all matrices n x n symmetric):
//   minimize   <C, X>
//   subject to <Aeq_i, X>  =  beq_i,   i = 1..m_eq
//              <Ain_j, X>  <= bin_j,   j = 1..m_in
//              X is symmetric PSD.
#pragma once

#include <string>
#include <vector>

#include "rcr/opt/quadratic.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::opt {

/// SDP problem data.
struct Sdp {
  Matrix c;
  std::vector<Matrix> a_eq;
  Vec b_eq;
  std::vector<Matrix> a_in;
  Vec b_in;

  std::size_t dim() const { return c.rows(); }
  void validate() const;  ///< Throws std::invalid_argument on inconsistency.
};

/// ADMM options.
struct SdpOptions {
  double rho = 1.0;         ///< Augmented-Lagrangian penalty.
  double tolerance = 1e-6;  ///< Primal & dual residual threshold.
  std::size_t max_iterations = 8000;
  /// Wall-clock budget; unlimited by default.  On expiry the solver returns
  /// its best PSD-projected iterate with status kDeadlineExpired.
  robust::Budget budget;
  /// Recovery ladder for a degenerate (rank-deficient) constraint system:
  /// escalating diagonal ridge on the KKT matrix.  0 disables, in which
  /// case a singular KKT system yields status kSingular immediately.
  std::size_t max_kkt_retries = 4;
};

/// Solver outcome.
struct SdpResult {
  Matrix x;
  double objective = 0.0;
  double primal_residual = 0.0;  ///< Constraint + cone violation at exit.
  std::size_t iterations = 0;
  bool converged = false;
  /// Runtime disposition: kOk on convergence, kNonConverged on iteration
  /// exhaustion, kDegraded when the KKT ridge ladder had to fire (trail
  /// records each rung), kSingular when it was exhausted,
  /// kNumericalFailure on a caught NaN/Inf iterate (last clean iterate
  /// returned), kDeadlineExpired on budget expiry.
  robust::Status status;
};

/// Solve the SDP via ADMM: an affine proximal step (equality-constrained
/// quadratic, KKT factorized once) alternating with projection onto
/// PSD-cone x nonnegative-slack.
SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options = {});

/// Shor semidefinite relaxation of a QCQP: lift to
/// X = [1, x^T; x, x x^T] >= 0, drop the rank-1 constraint.  Objective and
/// constraints become linear in X; the equality X_00 = 1 pins the corner.
/// Equality constraints a_k^T x = b_k are embedded as linear rows of X.
Sdp shor_relaxation(const Qcqp& problem);

/// Lower bound on the QCQP optimum from its Shor relaxation (tight for
/// convex problems -- the E5 measurement; a strict lower bound otherwise).
struct ShorBound {
  double bound = 0.0;
  Vec x_extracted;              ///< Candidate solution X[1:,0] / X[0,0].
  double extraction_value = 0.0;  ///< f0(x_extracted).
  std::size_t iterations = 0;   ///< Inner SDP iterations consumed.
  bool converged = false;
  robust::Status status;        ///< Inner SDP disposition (see SdpResult).
};
ShorBound shor_lower_bound(const Qcqp& problem, const SdpOptions& options = {});

}  // namespace rcr::opt
