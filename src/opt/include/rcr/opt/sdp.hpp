// Semidefinite programming via ADMM (conic splitting), plus the Shor
// relaxation that turns a QCQP into an SDP -- the "numerous SDP solvers"
// role SDPT3 plays in the paper's M-GNU-O platform (Sec. IV-C, Eq. 10).
//
// Problem form (all matrices n x n symmetric):
//   minimize   <C, X>
//   subject to <Aeq_i, X>  =  beq_i,   i = 1..m_eq
//              <Ain_j, X>  <= bin_j,   j = 1..m_in
//              X is symmetric PSD.
#pragma once

#include <string>
#include <vector>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/mixed.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/warm.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::opt {

/// SDP problem data.
struct Sdp {
  Matrix c;
  std::vector<Matrix> a_eq;
  Vec b_eq;
  std::vector<Matrix> a_in;
  Vec b_in;

  std::size_t dim() const { return c.rows(); }
  void validate() const;  ///< Throws std::invalid_argument on inconsistency.
};

/// ADMM options.
struct SdpOptions {
  double rho = 1.0;         ///< Augmented-Lagrangian penalty.
  double tolerance = 1e-6;  ///< Primal & dual residual threshold.
  std::size_t max_iterations = 8000;
  /// Wall-clock budget; unlimited by default.  On expiry the solver returns
  /// its best PSD-projected iterate with status kDeadlineExpired.
  robust::Budget budget;
  /// Recovery ladder for a degenerate (rank-deficient) constraint system:
  /// escalating diagonal ridge on the KKT matrix.  0 disables, in which
  /// case a singular KKT system yields status kSingular immediately.
  std::size_t max_kkt_retries = 4;
  /// Reuse the previous iterate's eigenbasis to precondition each PSD
  /// projection (near-diagonal Jacobi input after the first few iterations).
  /// Off by default: the warm path reassociates, so results are close but
  /// not bit-identical to the cold projection.
  bool warm_start_projection = false;
  /// Skip Jacobi rotations whose off-diagonal is below threshold * scale
  /// inside the projection (see num::PsdProjectOptions::rotation_threshold).
  /// 0 keeps the exact legacy sweep.
  double projection_rotation_threshold = 0.0;
  /// Solve the per-iteration KKT system with an fp32 LU factor plus fp64
  /// iterative refinement (num::refine_solve).  Off by default; the fp64
  /// path is bit-identical with this off.  Ignored when exploit_structure
  /// is set (the m x m Schur solve is already cheap in fp64).  Falls back
  /// to fp64 when the fp32 factor is singular or refinement stalls.
  bool mixed_precision = false;
  /// Exploit the arrow structure of the KKT system [rho*I, M^T; M, 0]:
  /// eliminate the block-diagonal to an m x m Schur complement
  /// (M M^T / rho + ridge*I) instead of factoring the dense
  /// (n^2 + m_in + m)-square system.  Same linear system, different
  /// factorization -- results are close but not bit-identical.
  bool exploit_structure = false;
};

/// Iteration-persistent buffers for solve_sdp.  Reusing one workspace across
/// repeated solves removes every steady-state heap allocation except the
/// result matrix and the (once-per-solve) factorization copies.  A workspace
/// carries the warm-start eigenbasis between solves; call reset() when
/// switching to an unrelated problem (stale bases are still correct -- any
/// orthonormal frame is -- they just cost extra Jacobi sweeps).
struct SdpWorkspace {
  num::PsdProjectWorkspace projection;
  num::LuDecomposition kkt;      ///< Dense KKT factor.
  num::FloatLu kkt_f;            ///< fp32 KKT factor (mixed_precision).
  num::RefineWorkspace refine;
  num::LuDecomposition gram_lu;  ///< Schur-complement factor (structured).
  Matrix big;                    ///< Dense KKT matrix.
  Matrix mrows;                  ///< m x dim_y affine rows (structured).
  Matrix gram;                   ///< m x m Schur complement (structured).
  Matrix xw, xp;                 ///< PSD-projection staging.
  Vec cvec, d, z, u, y, rhs, sol, w, z_next;
  Vec t_small, lambda_small, mty;  ///< Structured-solve staging.
  void reset() { projection.reset(); }
};

/// Primal/dual splitting state carried between solve_sdp calls (warm.hpp
/// documents the acceptance/rejection/writeback contract).  Both vectors
/// live in the stacked [vec(X); slacks] coordinates of length
/// dim()^2 + m_in: `z` is the projected (PSD x nonnegative) iterate, `u`
/// the scaled dual.  Empty means cold start.
struct SdpWarmState {
  Vec z;  ///< Projected splitting iterate.
  Vec u;  ///< Scaled dual iterate.

  bool empty() const { return z.empty() && u.empty(); }
  void clear() {
    z.clear();
    u.clear();
  }
};

/// Solver outcome.
struct SdpResult {
  Matrix x;
  double objective = 0.0;
  double primal_residual = 0.0;  ///< Constraint + cone violation at exit.
  std::size_t iterations = 0;
  bool converged = false;
  /// Total fp64 refinement corrections across all KKT solves (0 unless
  /// mixed_precision was on and the fp32 path was used).
  std::size_t refine_iterations = 0;
  /// Runtime disposition: kOk on convergence, kNonConverged on iteration
  /// exhaustion, kDegraded when the KKT ridge ladder had to fire (trail
  /// records each rung), kSingular when it was exhausted,
  /// kNumericalFailure on a caught NaN/Inf iterate (last clean iterate
  /// returned), kDeadlineExpired on budget expiry.
  robust::Status status;
  /// Disposition of the warm state handed to this solve (kCold when none).
  WarmUse warm_use = WarmUse::kCold;
};

/// Solve the SDP via ADMM: an affine proximal step (equality-constrained
/// quadratic, KKT factorized once) alternating with projection onto
/// PSD-cone x nonnegative-slack.
SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options = {});

/// Workspace-reusing overload: repeated solves through the same workspace
/// allocate only the result matrix and the per-solve factorization.
SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options,
                    SdpWorkspace& ws);

/// Warm-started solve: when `warm` is non-null and holds a valid state
/// (dim()^2 + m_in entries each, all finite), the splitting starts from the
/// supplied (z, u) instead of zeros, and the final state is written back on
/// a clean exit (cleared on kNumericalFailure / kSingular).  A null or
/// empty `warm` is exactly the cold path; an invalid state is rejected with
/// a status-trail note and the solve runs cold (bit-identical to no warm
/// state).  result.warm_use reports the disposition.
SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options,
                    SdpWorkspace& ws, SdpWarmState* warm);

/// Shor semidefinite relaxation of a QCQP: lift to
/// X = [1, x^T; x, x x^T] >= 0, drop the rank-1 constraint.  Objective and
/// constraints become linear in X; the equality X_00 = 1 pins the corner.
/// Equality constraints a_k^T x = b_k are embedded as linear rows of X.
Sdp shor_relaxation(const Qcqp& problem);

/// Lower bound on the QCQP optimum from its Shor relaxation (tight for
/// convex problems -- the E5 measurement; a strict lower bound otherwise).
struct ShorBound {
  double bound = 0.0;
  Vec x_extracted;              ///< Candidate solution X[1:,0] / X[0,0].
  double extraction_value = 0.0;  ///< f0(x_extracted).
  std::size_t iterations = 0;   ///< Inner SDP iterations consumed.
  bool converged = false;
  robust::Status status;        ///< Inner SDP disposition (see SdpResult).
};
ShorBound shor_lower_bound(const Qcqp& problem, const SdpOptions& options = {});

}  // namespace rcr::opt
