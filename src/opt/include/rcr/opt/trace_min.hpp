// The paper's RMP -> TMP -> SDP chain (Sec. IV-C, Eqs. 8-10).
//
// Rank Minimization Problem (Eq. 8): split a sample matrix R_s into a
// low-rank PSD part R_c and a diagonal part R_n by minimizing rank(R_c) --
// nonconvex and discontinuous, so not directly solvable.  The convex
// surrogate replaces rank with trace (Eq. 9, the Trace Minimization
// Problem), which is an SDP (Eq. 10).  This module solves the TMP with a
// specialized ADMM (its feasible set fixes the off-diagonal of R_c, making
// both proximal steps closed-form) and provides ground-truth instance
// generators for measuring recovery (experiment E5).
#pragma once

#include "rcr/opt/quadratic.hpp"

namespace rcr::opt {

/// TMP solver options.
struct TraceMinOptions {
  double rho = 1.0;
  double tolerance = 1e-9;
  std::size_t max_iterations = 20000;
};

/// TMP outcome: R_s ~= r_c + r_n with r_c PSD and r_n diagonal.
struct TraceMinResult {
  Matrix r_c;
  Matrix r_n;
  double trace = 0.0;            ///< tr(r_c), the surrogate objective.
  std::size_t iterations = 0;
  bool converged = false;
  double offdiag_residual = 0.0;  ///< max off-diag |R_s - r_c| (should be ~0).
};

/// Solve Eq. 9: minimize tr(R_c) s.t. R_c + R_n = R_s, R_c PSD, R_n diagonal.
/// Throws std::invalid_argument when R_s is not square/symmetric.
TraceMinResult solve_trace_min(const Matrix& r_s,
                               const TraceMinOptions& options = {});

/// Ground-truth instance R_s = R_c* + R_n* with rank(R_c*) = rank and
/// R_n* = diag(uniform noise levels in [noise_lo, noise_hi]).
struct TraceMinInstance {
  Matrix r_s;
  Matrix r_c_true;
  Matrix r_n_true;
};
TraceMinInstance random_trace_min_instance(std::size_t n, std::size_t rank,
                                           double noise_lo, double noise_hi,
                                           num::Rng& rng);

/// Recovery metrics for E5.
struct RecoveryReport {
  double rc_error = 0.0;        ///< ||r_c - r_c*||_F / ||r_c*||_F.
  double rn_error = 0.0;        ///< ||diag(r_n) - diag(r_n*)||_inf.
  std::size_t recovered_rank = 0;
  std::size_t true_rank = 0;
  bool rank_recovered = false;
};
RecoveryReport evaluate_recovery(const TraceMinInstance& instance,
                                 const TraceMinResult& result,
                                 double rank_tol = 1e-5);

}  // namespace rcr::opt
