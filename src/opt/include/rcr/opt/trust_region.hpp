// Trust-region machinery (paper Sec. IV-C): quadratic-model subproblem
// solvers and a BFGS-proxy trust-region driver, following the
// L-BFGS-initialized trust-region approach the paper cites [28].
#pragma once

#include "rcr/numerics/matrix.hpp"
#include "rcr/opt/lbfgs.hpp"

namespace rcr::opt {

/// Solution of min_{||p|| <= radius} (1/2) p^T B p + g^T p.
struct TrustRegionStep {
  Vec p;
  double model_decrease = 0.0;  ///< -(model value at p).
  bool on_boundary = false;     ///< ||p|| == radius (to working precision).
};

/// Exact small-scale subproblem solver (More-Sorensen style): finds the
/// multiplier lambda >= 0 with (B + lambda I) p = -g, ||p|| <= radius via the
/// spectral decomposition of B.  B must be symmetric.
TrustRegionStep solve_trust_region_exact(const num::Matrix& b, const Vec& g,
                                         double radius);

/// Steihaug-Toint truncated conjugate gradient: matrix-free, stops at the
/// boundary or at negative curvature.  Suitable for larger problems.
TrustRegionStep solve_trust_region_cg(
    const std::function<Vec(const Vec&)>& hessian_vec, const Vec& g,
    double radius, double tolerance = 1e-10, std::size_t max_iterations = 200);

/// Options for the trust-region driver.
struct TrustRegionOptions {
  std::size_t max_iterations = 200;
  double gradient_tolerance = 1e-8;
  double initial_radius = 1.0;
  double max_radius = 100.0;
  double eta_accept = 0.1;   ///< rho below this rejects the step.
  double eta_expand = 0.75;  ///< rho above this grows the radius.
  /// Wall-clock budget; unlimited by default.  On expiry the driver returns
  /// its current iterate with status kDeadlineExpired.
  robust::Budget budget;
};

/// Trust-region minimizer with a BFGS Hessian proxy (not inverse), guarded by
/// curvature checks -- the "avoid false curvature information" requirement of
/// Sec. IV-C.
MinimizeResult trust_region_bfgs(const Smooth& f, Vec x0,
                                 const TrustRegionOptions& options = {});

}  // namespace rcr::opt
