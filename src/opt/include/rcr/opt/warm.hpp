// Warm-start vocabulary shared by the iterative solvers.
//
// The serving loop (src/serve) re-solves near-identical problems tick after
// tick: on a slowly-varying channel the previous tick's primal/dual state is
// an excellent starting point, and ADMM / interior-point methods both
// converge in a fraction of their cold iteration counts when seeded with it.
// Each solver defines its own state struct (AdmmWarmState, SdpWarmState,
// BarrierWarmState); this header holds the shared acceptance taxonomy and
// the validation helper every accept path runs.
//
// Contract (enforced by tests/serve/test_warm_start.cpp):
//  - A null/empty warm state is a cold start, bit-identical to the legacy
//    overloads.
//  - A warm state equal to the solver's cold initialization produces
//    bit-identical results to a cold start (same arithmetic, same order).
//  - A corrupted warm state (wrong size, NaN/Inf anywhere) is *rejected*:
//    the solver notes the rejection in its status trail, falls back to the
//    cold initialization, and the result is bit-identical to a cold start.
//  - On a clean exit the solver writes its final state back so the caller
//    can chain solves; after a numerical failure the state is cleared
//    instead, so the next solve cold-starts rather than inheriting poison.
#pragma once

#include <cmath>
#include <cstddef>

#include "rcr/numerics/matrix.hpp"

namespace rcr::opt {

/// What the solver did with the warm state it was handed.
enum class WarmUse {
  kCold,      ///< No warm state supplied (or it was empty): cold start.
  kAccepted,  ///< Warm state validated and used as the initial iterate.
  kRejected   ///< Warm state failed validation; cold start was used.
};

inline const char* to_string(WarmUse use) {
  switch (use) {
    case WarmUse::kCold:
      return "cold";
    case WarmUse::kAccepted:
      return "accepted";
    case WarmUse::kRejected:
      return "rejected";
  }
  return "?";
}

namespace detail {

/// True when `v` has exactly `n` entries, all finite.
inline bool warm_vec_ok(const Vec& v, std::size_t n) {
  if (v.size() != n) return false;
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace detail

}  // namespace rcr::opt
