#include "rcr/opt/langevin.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rcr::opt {

LangevinResult langevin_minimize(const Smooth& f, Vec x0,
                                 const LangevinOptions& options) {
  if (options.step <= 0.0)
    throw std::invalid_argument("langevin_minimize: non-positive step");
  if (options.cooling <= 0.0 || options.cooling > 1.0)
    throw std::invalid_argument("langevin_minimize: cooling must be in (0,1]");
  if (options.initial_temperature < 0.0)
    throw std::invalid_argument("langevin_minimize: negative temperature");
  const bool boxed = !options.lower.empty() || !options.upper.empty();
  if (boxed && (options.lower.size() != x0.size() ||
                options.upper.size() != x0.size()))
    throw std::invalid_argument("langevin_minimize: box size mismatch");

  num::Rng rng(options.seed);
  Vec x = std::move(x0);

  LangevinResult result;
  result.best_x = x;
  result.best_value = f.value(x);
  double temperature = options.initial_temperature;

  for (std::size_t it = 0; it < options.iterations; ++it) {
    const Vec g = f.gradient(x);
    const double noise_scale = std::sqrt(2.0 * options.step * temperature);
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] += -options.step * g[j] + noise_scale * rng.normal();
      if (boxed) x[j] = std::clamp(x[j], options.lower[j], options.upper[j]);
    }
    const double value = f.value(x);
    if (value < result.best_value) {
      result.best_value = value;
      result.best_x = x;
    }
    temperature *= options.cooling;
    result.iterations = it + 1;
  }
  result.final_x = std::move(x);
  result.final_temperature = temperature;
  return result;
}

}  // namespace rcr::opt
