#include "rcr/opt/lbfgs.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <string>

#include "rcr/numerics/approx.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/linesearch.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/robust/guards.hpp"

namespace rcr::opt {

namespace {

bool stop(const Vec& g, const MinimizeOptions& options) {
  return num::norm_inf(g) <= options.gradient_tolerance;
}

MinimizeResult finish(Vec x, const Smooth& f, std::size_t iters,
                      const MinimizeOptions& options,
                      robust::Status status = {},
                      obs::Span* span = nullptr) {
  MinimizeResult r;
  const Vec g = f.gradient(x);
  r.gradient_norm = num::norm_inf(g);
  r.converged = r.gradient_norm <= options.gradient_tolerance;
  r.value = f.value(x);
  r.x = std::move(x);
  r.iterations = iters;
  r.status = std::move(status);
  if (!r.converged && r.status.ok())
    r.status = robust::make_status(robust::StatusCode::kNonConverged,
                                   "stopped before reaching tolerance");
  obs::counter_add("rcr.lbfgs.minimizes");
  obs::counter_add("rcr.lbfgs.iterations", iters);
  if (span != nullptr) {
    span->attr("iterations", static_cast<double>(iters));
    span->attr("converged", r.converged ? 1.0 : 0.0);
    span->attr("gradient_norm", r.gradient_norm);
  }
  return r;
}

// NaN/Inf sentinel on a freshly evaluated gradient.  The injector may poison
// it first (site "lbfgs.gradient.nan").  Returns true when the caller should
// abandon the step and report the last clean iterate.
bool gradient_poisoned(Vec& g, bool faults_on) {
  if (faults_on && !g.empty() &&
      robust::faults::should_inject("lbfgs.gradient.nan"))
    g[0] = std::numeric_limits<double>::quiet_NaN();
  return !robust::all_finite(g);
}

MinimizeResult fail_gradient(Vec x, const Smooth& f, std::size_t iters,
                             obs::Span* span = nullptr) {
  // The iterate itself is the last clean point; only its gradient went bad.
  MinimizeResult r;
  r.value = f.value(x);
  r.gradient_norm = std::numeric_limits<double>::quiet_NaN();
  r.x = std::move(x);
  r.iterations = iters;
  r.status = robust::make_status(
      robust::StatusCode::kNumericalFailure,
      "non-finite gradient at iteration " + std::to_string(iters) +
          "; returning last clean iterate");
  obs::counter_add("rcr.lbfgs.minimizes");
  obs::counter_add("rcr.lbfgs.iterations", iters);
  if (span != nullptr) {
    span->attr("iterations", static_cast<double>(iters));
    span->attr("converged", 0.0);
  }
  return r;
}

robust::Status deadline_status(std::size_t it) {
  return robust::make_status(
      robust::StatusCode::kDeadlineExpired,
      "deadline fired at iteration " + std::to_string(it));
}

}  // namespace

MinimizeResult gradient_descent(const Smooth& f, Vec x0,
                                const MinimizeOptions& options) {
  obs::Span span("opt.gradient_descent");
  Vec x = std::move(x0);
  const bool faults_on = robust::faults::enabled();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("lbfgs.deadline")))
      return finish(std::move(x), f, it, options, deadline_status(it), &span);
    Vec g = f.gradient(x);
    if (gradient_poisoned(g, faults_on))
      return fail_gradient(std::move(x), f, it, &span);
    if (stop(g, options)) return finish(std::move(x), f, it, options, {}, &span);
    const Vec d = num::scale(g, -1.0);
    const auto ls = armijo_backtrack(f.value, x, d, g, f.value(x));
    if (!ls.success) return finish(std::move(x), f, it, options, {}, &span);
    num::axpy(ls.step, d, x);
  }
  return finish(std::move(x), f, options.max_iterations, options, {}, &span);
}

MinimizeResult bfgs(const Smooth& f, Vec x0, const MinimizeOptions& options) {
  obs::Span span("opt.bfgs");
  const std::size_t n = x0.size();
  Vec x = std::move(x0);
  num::Matrix h_inv = num::Matrix::identity(n);
  const bool faults_on = robust::faults::enabled();
  Vec g = f.gradient(x);
  if (gradient_poisoned(g, faults_on)) return fail_gradient(std::move(x), f, 0, &span);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("lbfgs.deadline")))
      return finish(std::move(x), f, it, options, deadline_status(it), &span);
    if (stop(g, options)) return finish(std::move(x), f, it, options, {}, &span);
    Vec d = num::scale(num::matvec(h_inv, g), -1.0);
    if (num::dot(d, g) >= 0.0) {
      // Reset on loss of descent direction.
      h_inv = num::Matrix::identity(n);
      d = num::scale(g, -1.0);
    }
    const auto ls = armijo_backtrack(f.value, x, d, g, f.value(x));
    if (!ls.success) return finish(std::move(x), f, it, options, {}, &span);

    Vec x_new = x;
    num::axpy(ls.step, d, x_new);
    Vec g_new = f.gradient(x_new);
    if (gradient_poisoned(g_new, faults_on))
      return fail_gradient(std::move(x), f, it + 1, &span);
    const Vec s = num::sub(x_new, x);
    const Vec y = num::sub(g_new, g);
    const double sy = num::dot(s, y);
    if (sy > 1e-12 * num::norm2(s) * num::norm2(y)) {
      // Standard BFGS inverse update:
      // H <- (I - rho s y^T) H (I - rho y s^T) + rho s s^T.
      const double rho = 1.0 / sy;
      const num::Matrix eye = num::Matrix::identity(n);
      num::Matrix left = eye - rho * num::outer(s, y);
      num::Matrix right = eye - rho * num::outer(y, s);
      h_inv = left * h_inv * right + rho * num::outer(s, s);
    }
    x = std::move(x_new);
    g = g_new;
  }
  return finish(std::move(x), f, options.max_iterations, options, {}, &span);
}

MinimizeResult lbfgs(const Smooth& f, Vec x0, const MinimizeOptions& options) {
  obs::Span span("opt.lbfgs");
  Vec x = std::move(x0);
  const bool faults_on = robust::faults::enabled();
  Vec g = f.gradient(x);
  if (gradient_poisoned(g, faults_on)) return fail_gradient(std::move(x), f, 0, &span);
  std::deque<Vec> s_hist;
  std::deque<Vec> y_hist;
  std::deque<double> rho_hist;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("lbfgs.deadline")))
      return finish(std::move(x), f, it, options, deadline_status(it), &span);
    if (stop(g, options)) return finish(std::move(x), f, it, options, {}, &span);

    // Two-loop recursion for d = -H g.
    Vec q = g;
    std::vector<double> alpha(s_hist.size());
    for (std::size_t k = s_hist.size(); k-- > 0;) {
      alpha[k] = rho_hist[k] * num::dot(s_hist[k], q);
      num::axpy(-alpha[k], y_hist[k], q);
    }
    // Initial scaling gamma = s'y / y'y (Nocedal & Wright 7.20).
    double gamma = 1.0;
    if (!s_hist.empty()) {
      const Vec& s = s_hist.back();
      const Vec& y = y_hist.back();
      const double yy = num::dot(y, y);
      if (yy > 0.0) gamma = num::dot(s, y) / yy;
    }
    Vec d = num::scale(q, -gamma);
    for (std::size_t k = 0; k < s_hist.size(); ++k) {
      const double beta = rho_hist[k] * num::dot(y_hist[k], d);
      num::axpy(-(alpha[k] + beta), s_hist[k], d);
    }
    // `d` accumulated the corrections with flipped sign because q was negated
    // up front; recompute cleanly if not a descent direction.
    if (num::dot(d, g) >= 0.0) d = num::scale(g, -1.0);

    const auto ls = armijo_backtrack(f.value, x, d, g, f.value(x));
    if (!ls.success) return finish(std::move(x), f, it, options, {}, &span);

    Vec x_new = x;
    num::axpy(ls.step, d, x_new);
    Vec g_new = f.gradient(x_new);
    if (gradient_poisoned(g_new, faults_on))
      return fail_gradient(std::move(x), f, it + 1, &span);
    const Vec s = num::sub(x_new, x);
    const Vec y = num::sub(g_new, g);
    const double sy = num::dot(s, y);
    if (sy > 1e-12 * num::norm2(s) * num::norm2(y)) {
      s_hist.push_back(s);
      y_hist.push_back(y);
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    x = std::move(x_new);
    g = g_new;
  }
  return finish(std::move(x), f, options.max_iterations, options, {}, &span);
}

Smooth with_numerical_gradient(std::function<double(const Vec&)> value,
                               double h) {
  Smooth s;
  s.value = value;
  s.gradient = [value = std::move(value), h](const Vec& x) {
    return num::numerical_gradient(value, x, h);
  };
  return s;
}

}  // namespace rcr::opt
