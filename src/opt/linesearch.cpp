#include "rcr/opt/linesearch.hpp"

namespace rcr::opt {

LineSearchResult armijo_backtrack(const std::function<double(const Vec&)>& f,
                                  const Vec& x, const Vec& direction,
                                  const Vec& gradient, double f_x, double t0,
                                  double c1, double shrink, double min_step) {
  LineSearchResult out;
  const double slope = num::dot(gradient, direction);
  double t = t0;
  while (t >= min_step) {
    Vec trial = x;
    num::axpy(t, direction, trial);
    const double ft = f(trial);
    if (std::isfinite(ft) && ft <= f_x + c1 * t * slope) {
      out.step = t;
      out.value = ft;
      out.success = true;
      return out;
    }
    t *= shrink;
  }
  out.step = 0.0;
  out.value = f_x;
  out.success = false;
  return out;
}

}  // namespace rcr::opt
