#include "rcr/opt/qcqp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::opt {

Qcqp Qp::to_qcqp() const {
  const std::size_t n = q.size();
  Qcqp out;
  out.objective.p = p;
  out.objective.q = q;
  out.objective.r = 0.0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    QuadraticForm c;
    c.p = Matrix(n, n);
    c.q = g.row(i);
    c.r = -h[i];
    out.constraints.push_back(std::move(c));
  }
  out.a = a;
  out.b = b;
  return out;
}

Vec solve_equality_qp(const Matrix& p, const Vec& q, const Matrix& a,
                      const Vec& b) {
  const std::size_t n = q.size();
  const std::size_t m = a.rows();
  if (m == 0) {
    return num::solve(p, num::scale(q, -1.0));
  }
  // KKT system: [P A^T; A 0] [x; nu] = [-q; b].
  Matrix kkt(n + m, n + m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) kkt(i, j) = p(i, j);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      kkt(n + i, j) = a(i, j);
      kkt(j, n + i) = a(i, j);
    }
  Vec rhs(n + m);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = -q[i];
  for (std::size_t i = 0; i < m; ++i) rhs[n + i] = b[i];
  const Vec sol = num::solve(kkt, rhs);
  return Vec(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
}

namespace {

// Restore A x = b exactly: x += A^T (A A^T)^{-1} (b - A x).
Vec restore_equalities(const Qcqp& prob, Vec x) {
  if (prob.a.rows() == 0) return x;
  const Vec resid = num::sub(prob.b, num::matvec(prob.a, x));
  const Matrix aat = num::multiply_abt(prob.a, prob.a);
  const Vec w = num::solve(aat, resid);
  const Vec corr = num::matvec_transposed(prob.a, w);
  return num::add(x, corr);
}

}  // namespace

std::optional<Vec> find_strictly_feasible(const Qcqp& problem, double margin) {
  problem.validate();
  const std::size_t n = problem.dim();

  // Penalized smooth surrogate: sum softplus-squared of (f_i + margin) plus
  // a heavy equality penalty; convex, minimized by L-BFGS.
  const double eq_weight = 1e4;
  auto value = [&](const Vec& x) {
    double acc = 0.0;
    for (const auto& c : problem.constraints) {
      const double v = c.value(x) + margin;
      if (v > 0.0) acc += v * v;
    }
    if (problem.a.rows() > 0) {
      const Vec r = num::sub(num::matvec(problem.a, x), problem.b);
      acc += eq_weight * num::dot(r, r);
    }
    return acc;
  };
  auto gradient = [&](const Vec& x) {
    Vec g(n, 0.0);
    for (const auto& c : problem.constraints) {
      const double v = c.value(x) + margin;
      if (v > 0.0) num::axpy(2.0 * v, c.gradient(x), g);
    }
    if (problem.a.rows() > 0) {
      const Vec r = num::sub(num::matvec(problem.a, x), problem.b);
      num::axpy(2.0 * eq_weight, num::matvec_transposed(problem.a, r), g);
    }
    return g;
  };

  Smooth f{value, gradient};
  MinimizeOptions opts;
  opts.max_iterations = 2000;
  opts.gradient_tolerance = 1e-10;
  MinimizeResult r = lbfgs(f, Vec(n, 0.0), opts);
  Vec x = restore_equalities(problem, std::move(r.x));

  for (const auto& c : problem.constraints)
    if (c.value(x) >= -margin / 2.0) return std::nullopt;
  if (problem.equality_residual(x) > 1e-7) return std::nullopt;
  return x;
}

namespace {

// True when `x` is strictly inside every inequality constraint of `problem`
// (the barrier domain) and consistent with its equalities.
bool strictly_feasible_for(const Qcqp& problem, const Vec& x) {
  for (const auto& c : problem.constraints)
    if (!(c.value(x) < 0.0)) return false;
  return problem.equality_residual(x) <= 1e-7;
}

QcqpResult solve_qcqp_barrier_impl(const Qcqp& problem, std::optional<Vec> x0,
                                   const BarrierOptions& options,
                                   BarrierWarmState* warm) {
  problem.validate();
  const std::size_t n = problem.dim();
  const std::size_t m_ineq = problem.constraints.size();
  const std::size_t m_eq = problem.a.rows();

  QcqpResult result;
  Vec x;
  // Barrier weight resume point; stays t0 unless a warm state is accepted.
  double t_start = options.t0;
  bool have_start = false;
  if (x0) {
    x = *x0;
    if (x.size() != n)
      throw std::invalid_argument("solve_qcqp_barrier: x0 dimension mismatch");
    have_start = true;
  } else if (warm != nullptr && !warm->empty()) {
    // Warm acceptance needs more than finiteness: the interior-point method
    // requires strict feasibility for *this* problem, so a state carried
    // across a large problem change rejects itself naturally.
    if (detail::warm_vec_ok(warm->x, n) && std::isfinite(warm->t) &&
        strictly_feasible_for(problem, warm->x)) {
      x = warm->x;
      // Resume at the geometric midpoint of the ladder: re-centering at the
      // far end (t near warm->t) is ill-conditioned from a drifted start --
      // the line search stalls against the barrier and max_newton runs out
      // before the iterate is centered -- while sqrt(t0 * t_final) keeps
      // the point inside the Newton convergence radius and still halves the
      // number of outer stages versus a cold ladder.
      if (warm->t > options.t0)
        t_start = std::max(options.t0, std::sqrt(options.t0 * warm->t));
      have_start = true;
      result.warm_use = WarmUse::kAccepted;
      obs::counter_add("rcr.warm.accepted", "solver", "qcqp");
    } else {
      result.warm_use = WarmUse::kRejected;
      result.status.note(
          "warm state rejected (size mismatch, non-finite, or not strictly "
          "feasible); phase I cold start");
      obs::counter_add("rcr.warm.rejected", "solver", "qcqp");
    }
  }
  if (!have_start) {
    auto feasible = find_strictly_feasible(problem);
    if (!feasible) {
      if (warm != nullptr) warm->clear();
      result.message = "no strictly feasible point found (phase I failed)";
      result.status.code = robust::StatusCode::kInfeasible;
      result.status.detail = result.message;
      return result;
    }
    x = std::move(*feasible);
  }
  for (const auto& c : problem.constraints) {
    if (c.value(x) >= 0.0) {
      if (warm != nullptr) warm->clear();
      result.message = "initial point not strictly feasible";
      result.status.code = robust::StatusCode::kInfeasible;
      result.status.detail = result.message;
      return result;
    }
  }

  // No inequalities: the problem is an equality-constrained QP.
  if (m_ineq == 0) {
    result.x = solve_equality_qp(problem.objective.p, problem.objective.q,
                                 problem.a, problem.b);
    result.value = problem.objective.value(result.x);
    result.converged = true;
    if (warm != nullptr) {
      warm->x = result.x;
      warm->t = options.t0;
    }
    return result;
  }

  double t = t_start;
  // Barrier growth factor; softened by the mu-restart recovery ladder when a
  // Newton step goes non-finite or the KKT system turns singular.
  double mu_eff = options.mu;
  std::size_t mu_restarts = 0;
  Vec x_good = x;  // last successfully centered iterate
  const bool faults_on = robust::faults::enabled();
  // Iteration-persistent workspaces: every Newton iteration reuses these
  // buffers (and the LU factor storage), so the centering loop performs no
  // steady-state heap allocations.
  Vec grad;
  Vec gi;
  Vec grad_scratch;
  Matrix hess;
  Matrix kkt;  // doubles as h_reg when m_eq == 0
  Vec rhs;
  Vec sol;
  Vec dx;
  Vec trial;
  num::LuDecomposition lu_ws;
  for (std::size_t outer = 0; outer < options.max_outer; ++outer) {
    // Centering: Newton on t*f0 + phi restricted to {A x = b}.
    std::string newton_failure;  // non-empty => this centering went bad
    for (std::size_t newton = 0; newton < options.max_newton; ++newton) {
      if (options.budget.expired_at(result.newton_iterations) ||
          (faults_on && robust::faults::should_inject("qcqp.deadline"))) {
        result.status = robust::make_status(
            robust::StatusCode::kDeadlineExpired,
            "deadline fired after " +
                std::to_string(result.newton_iterations) + " Newton steps");
        result.x = std::move(x);
        result.value = problem.objective.value(result.x);
        result.duality_gap_bound = static_cast<double>(m_ineq) / t;
        if (warm != nullptr) {
          // The deadline iterate is still strictly feasible, so it is a
          // legitimate resume point for the next tick.
          warm->x = result.x;
          warm->t = t;
        }
        return result;
      }
      // Gradient and Hessian of the barrier-augmented objective.
      problem.objective.gradient_into(x, grad, grad_scratch);
      for (std::size_t i = 0; i < n; ++i) grad[i] *= t;
      hess.assign(n, n);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          hess(i, j) = problem.objective.p(i, j) * t;
      for (const auto& c : problem.constraints) {
        const double fi = c.value(x);
        c.gradient_into(x, gi, grad_scratch);
        const double inv = -1.0 / fi;  // fi < 0
        num::axpy(inv, gi, grad);
        // hess += inv * c.p, then hess += (inv * inv) * gi gi^T, elementwise
        // in place.  Two separate additions per element -- same association
        // as the old temporary-matrix path, so bit-identical.
        const double inv2 = inv * inv;
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += inv * c.p(i, j);
            hess(i, j) += inv2 * (gi[i] * gi[j]);
          }
      }
      hess.symmetrize();

      // KKT step: [H A^T; A 0][dx; w] = [-grad; 0].
      if (m_eq == 0) {
        // Regularize slightly for safety.
        kkt = hess;
        for (std::size_t i = 0; i < n; ++i) kkt(i, i) += 1e-12;
        rhs.resize(n);
        for (std::size_t i = 0; i < n; ++i) rhs[i] = grad[i] * -1.0;
        num::lu_decompose_into(kkt, lu_ws);
        if (lu_ws.singular) {
          newton_failure = "singular Newton system";
          break;
        }
        lu_ws.solve_into(rhs, dx);
      } else {
        kkt.assign(n + m_eq, n + m_eq);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) kkt(i, j) = hess(i, j);
        for (std::size_t i = 0; i < m_eq; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            kkt(n + i, j) = problem.a(i, j);
            kkt(j, n + i) = problem.a(i, j);
          }
        rhs.assign(n + m_eq, 0.0);
        for (std::size_t i = 0; i < n; ++i) rhs[i] = -grad[i];
        num::lu_decompose_into(kkt, lu_ws);
        if (lu_ws.singular) {
          newton_failure = "singular KKT system";
          break;
        }
        lu_ws.solve_into(rhs, sol);
        dx.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
      }
      ++result.newton_iterations;
      if (faults_on && !dx.empty() &&
          robust::faults::should_inject("qcqp.newton.nan"))
        dx[0] = std::numeric_limits<double>::quiet_NaN();

      const double decrement2 = -num::dot(grad, dx);
      // NaN/Inf sentinel: a poisoned Newton direction would otherwise walk
      // the iterate out of the domain and destroy strict feasibility.
      if (!std::isfinite(decrement2)) {
        newton_failure = "non-finite Newton decrement";
        break;
      }
      if (decrement2 / 2.0 <= options.newton_tolerance) break;

      // Backtracking: stay strictly feasible, then Armijo on the barrier
      // objective.
      auto barrier_value = [&](const Vec& xt) {
        double v = t * problem.objective.value(xt);
        for (const auto& c : problem.constraints) {
          const double fi = c.value(xt);
          if (fi >= 0.0) return std::numeric_limits<double>::infinity();
          v -= std::log(-fi);
        }
        return v;
      };
      const double f_x = barrier_value(x);
      double step = 1.0;
      bool moved = false;
      while (step >= 1e-14) {
        trial = x;
        num::axpy(step, dx, trial);
        const double ft = barrier_value(trial);
        if (std::isfinite(ft) && ft <= f_x - 1e-4 * step * decrement2) {
          std::swap(x, trial);
          moved = true;
          break;
        }
        step *= 0.5;
      }
      if (!moved) break;
    }

    if (!newton_failure.empty()) {
      // mu-restart recovery: restore the last centered iterate, roll the
      // barrier weight back one stage, and resume with gentler growth.
      if (mu_restarts >= options.max_mu_restarts) {
        result.status.code = robust::StatusCode::kNumericalFailure;
        result.status.detail =
            newton_failure + "; mu-restart ladder exhausted after " +
            std::to_string(mu_restarts) + " restarts";
        x = x_good;
        break;
      }
      ++mu_restarts;
      t = std::max(options.t0, t / mu_eff);
      mu_eff = 1.0 + (mu_eff - 1.0) * 0.5;
      result.status.note(newton_failure + "; mu restart #" +
                         std::to_string(mu_restarts) + ": t rolled back to " +
                         std::to_string(t) + ", mu softened to " +
                         std::to_string(mu_eff));
      x = x_good;
      continue;
    }
    x_good = x;

    result.duality_gap_bound = static_cast<double>(m_ineq) / t;
    if (result.duality_gap_bound <= options.duality_gap) {
      result.converged = true;
      break;
    }
    t *= mu_eff;
  }

  result.x = std::move(x);
  result.value = problem.objective.value(result.x);
  if (!result.converged) {
    result.message = "barrier method exhausted outer iterations";
    if (result.status.code == robust::StatusCode::kOk)
      result.status = robust::make_status(robust::StatusCode::kNonConverged,
                                          result.message);
  } else if (!result.status.trail.empty() &&
             result.status.code == robust::StatusCode::kOk) {
    result.status.code = robust::StatusCode::kDegraded;
    result.status.detail = "converged after mu restart(s)";
  }
  if (warm != nullptr) {
    if (result.status.code == robust::StatusCode::kNumericalFailure) {
      warm->clear();
    } else {
      warm->x = result.x;
      warm->t = t;
    }
  }
  return result;
}

}  // namespace

QcqpResult solve_qcqp_barrier(const Qcqp& problem, std::optional<Vec> x0,
                              const BarrierOptions& options) {
  // Thin observability shell: the impl above has several exit paths
  // (phase-I failure, equality-QP shortcut, deadline, convergence) and this
  // keeps the accounting uniform across all of them.
  obs::Span span("qcqp.barrier");
  QcqpResult result =
      solve_qcqp_barrier_impl(problem, std::move(x0), options, nullptr);
  obs::counter_add("rcr.qcqp.solves");
  obs::counter_add("rcr.qcqp.newton_iterations", result.newton_iterations);
  span.attr("newton_iterations",
            static_cast<double>(result.newton_iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("duality_gap_bound", result.duality_gap_bound);
  return result;
}

QcqpResult solve_qcqp_barrier(const Qcqp& problem,
                              const BarrierOptions& options,
                              BarrierWarmState* warm) {
  obs::Span span("qcqp.barrier");
  QcqpResult result =
      solve_qcqp_barrier_impl(problem, std::nullopt, options, warm);
  obs::counter_add("rcr.qcqp.solves");
  obs::counter_add("rcr.qcqp.newton_iterations", result.newton_iterations);
  span.attr("newton_iterations",
            static_cast<double>(result.newton_iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("duality_gap_bound", result.duality_gap_bound);
  return result;
}

QcqpResult solve_qp(const Qp& problem, std::optional<Vec> x0,
                    const BarrierOptions& options) {
  return solve_qcqp_barrier(problem.to_qcqp(), std::move(x0), options);
}

}  // namespace rcr::opt
