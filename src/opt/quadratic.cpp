#include "rcr/opt/quadratic.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rcr/numerics/decompositions.hpp"

namespace rcr::opt {

double QuadraticForm::value(const Vec& x) const {
  return 0.5 * num::quad_form(x, p, x) + num::dot(q, x) + r;
}

Vec QuadraticForm::gradient(const Vec& x) const {
  Vec g;
  Vec scratch;
  gradient_into(x, g, scratch);
  return g;
}

void QuadraticForm::gradient_into(const Vec& x, Vec& g, Vec& scratch) const {
  num::matvec_into(p, x, g);
  // Guard against mildly asymmetric P: gradient of x^T P x / 2 is
  // (P + P^T) x / 2.
  num::matvec_transposed_into(p, x, scratch);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = 0.5 * (g[i] + scratch[i]) + q[i];
}

bool QuadraticForm::is_convex(double tol) const {
  if (!p.is_symmetric(1e-9 * (1.0 + p.max_abs()))) return false;
  return num::is_psd(p, tol);
}

double Qcqp::max_constraint_violation(const Vec& x) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& c : constraints) worst = std::max(worst, c.value(x));
  return worst;
}

double Qcqp::equality_residual(const Vec& x) const {
  if (a.rows() == 0) return 0.0;
  const Vec ax = num::matvec(a, x);
  return num::norm_inf(num::sub(ax, b));
}

void Qcqp::validate() const {
  const std::size_t n = dim();
  if (objective.p.rows() != n || objective.p.cols() != n)
    throw std::invalid_argument("Qcqp: objective P shape mismatch");
  for (const auto& c : constraints) {
    if (c.dim() != n || c.p.rows() != n || c.p.cols() != n)
      throw std::invalid_argument("Qcqp: constraint shape mismatch");
  }
  if (a.rows() != b.size())
    throw std::invalid_argument("Qcqp: equality rows != b size");
  if (a.rows() > 0 && a.cols() != n)
    throw std::invalid_argument("Qcqp: equality cols != dim");
}

Matrix random_psd(std::size_t n, std::size_t rank, num::Rng& rng) {
  Matrix m(n, n);
  for (std::size_t k = 0; k < rank; ++k) {
    const Vec v = rng.normal_vec(n);
    m += num::outer(v, v);
  }
  m.symmetrize();
  return m;
}

Qcqp random_convex_qcqp(std::size_t n, std::size_t m_ineq, std::size_t m_eq,
                        num::Rng& rng) {
  Qcqp prob;
  prob.objective.p = random_psd(n, n, rng);
  // Regularize so the objective is strongly convex.
  for (std::size_t i = 0; i < n; ++i) prob.objective.p(i, i) += 1.0;
  prob.objective.q = rng.normal_vec(n);
  prob.objective.r = rng.normal(0.0, 1.0);

  // Ball constraints ||x - c_i||^2 <= rho_i^2 with centers close enough to
  // the origin that x = 0 is strictly feasible for all of them.
  for (std::size_t i = 0; i < m_ineq; ++i) {
    QuadraticForm c;
    c.p = Matrix::identity(n) * 2.0;  // (1/2) x^T (2I) x = ||x||^2
    const Vec center = rng.normal_vec(n, 0.0, 0.3);
    c.q = num::scale(center, -2.0);
    const double rho = 2.0 + rng.uniform(0.0, 1.0);
    c.r = num::dot(center, center) - rho * rho;
    prob.constraints.push_back(std::move(c));
  }

  if (m_eq > 0) {
    // Rows orthogonal-ish; right-hand side consistent with x = 0 for strict
    // feasibility of the full problem.
    prob.a = Matrix(m_eq, n);
    for (std::size_t i = 0; i < m_eq; ++i) {
      const Vec row = rng.normal_vec(n);
      for (std::size_t j = 0; j < n; ++j) prob.a(i, j) = row[j];
    }
    prob.b = Vec(m_eq, 0.0);
  }
  return prob;
}

}  // namespace rcr::opt
