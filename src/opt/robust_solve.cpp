#include "rcr/opt/robust_solve.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::opt {

robust::Result<Vec> projected_gradient_box_qp(const Matrix& p, const Vec& q,
                                              const Vec& lo, const Vec& hi,
                                              std::size_t max_iterations,
                                              double tolerance,
                                              const robust::Budget& budget) {
  const std::size_t n = q.size();
  if (p.rows() != n || p.cols() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument("projected_gradient_box_qp: dimension mismatch");

  // Fixed step from the inf-norm Lipschitz bound of the gradient.
  double lmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowsum += std::abs(p(i, j));
    lmax = std::max(lmax, rowsum);
  }
  const double step = 1.0 / (lmax + 1.0);
  const double scale = 1.0 + num::norm_inf(q);

  robust::Result<Vec> out;
  Vec x = num::clamp(Vec(n, 0.0), lo, hi);
  Vec grad(n);
  bool converged = false;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    if (budget.expired_at(it)) {
      out.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired at iteration " + std::to_string(it));
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      double acc = q[i];
      for (std::size_t j = 0; j < n; ++j) acc += p(i, j) * x[j];
      grad[i] = acc;
    }
    double move2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double xn = std::clamp(x[i] - step * grad[i], lo[i], hi[i]);
      const double d = xn - x[i];
      move2 += d * d;
      x[i] = xn;
    }
    if (std::sqrt(move2) <= tolerance * scale * step) {
      converged = true;
      break;
    }
  }
  if (!converged && out.status.ok())
    out.status = robust::make_status(robust::StatusCode::kNonConverged,
                                     "projected gradient budget exhausted");
  out.value = std::move(x);
  return out;
}

namespace {

// Lift the box QP to a QCQP with 2n linear inequality constraints.
Qcqp box_qp_as_qcqp(const Matrix& p, const Vec& q, const Vec& lo,
                    const Vec& hi) {
  const std::size_t n = q.size();
  Qcqp prob;
  prob.objective.p = p;
  prob.objective.q = q;
  prob.objective.r = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    QuadraticForm upper;  // x_i - hi_i <= 0
    upper.p = Matrix(n, n);
    upper.q = Vec(n, 0.0);
    upper.q[i] = 1.0;
    upper.r = -hi[i];
    prob.constraints.push_back(std::move(upper));
    QuadraticForm lower;  // lo_i - x_i <= 0
    lower.p = Matrix(n, n);
    lower.q = Vec(n, 0.0);
    lower.q[i] = -1.0;
    lower.r = lo[i];
    prob.constraints.push_back(std::move(lower));
  }
  return prob;
}

}  // namespace

RobustBoxQpResult solve_box_qp_robust(const Matrix& p, const Vec& q,
                                      const Vec& lo, const Vec& hi,
                                      const RobustBoxQpOptions& options) {
  const std::size_t n = q.size();
  if (p.rows() != n || p.cols() != n || lo.size() != n || hi.size() != n)
    throw std::invalid_argument("solve_box_qp_robust: dimension mismatch");
  for (std::size_t i = 0; i < n; ++i)
    if (lo[i] > hi[i])
      throw std::invalid_argument("solve_box_qp_robust: lo > hi");

  // Sub-solvers with unlimited budgets inherit the chain deadline.
  SdpOptions sdp_opts = options.sdp;
  BarrierOptions barrier_opts = options.barrier;
  AdmmOptions admm_opts = options.admm;
  if (!options.deadline.is_unlimited()) {
    if (sdp_opts.budget.deadline.is_unlimited())
      sdp_opts.budget.deadline = options.deadline;
    if (barrier_opts.budget.deadline.is_unlimited())
      barrier_opts.budget.deadline = options.deadline;
    if (admm_opts.budget.deadline.is_unlimited())
      admm_opts.budget.deadline = options.deadline;
  }
  robust::Budget pgd_budget;
  pgd_budget.deadline = options.deadline;

  robust::FallbackChain<Vec> chain("box-qp");
  if (!options.skip_sdp) {
    chain.add("sdp-shor", robust::Soundness::kRelaxation, [&]() {
      const Qcqp prob = box_qp_as_qcqp(p, q, lo, hi);
      ShorBound shor = shor_lower_bound(prob, sdp_opts);
      robust::Result<Vec> r;
      r.value = num::clamp(std::move(shor.x_extracted), lo, hi);
      r.status = shor.status;
      if (r.status.ok() && !shor.converged)
        r.status = robust::make_status(robust::StatusCode::kNonConverged,
                                       "SDP relaxation did not converge");
      return r;
    });
  }
  chain.add("qcqp-barrier", robust::Soundness::kExact, [&]() {
    QcqpResult br = solve_qcqp_barrier(box_qp_as_qcqp(p, q, lo, hi),
                                       std::nullopt, barrier_opts);
    robust::Result<Vec> r;
    r.status = br.status;
    if (!br.converged && r.status.ok())
      r.status = robust::make_status(robust::StatusCode::kNonConverged,
                                     br.message.empty() ? "barrier stalled"
                                                        : br.message);
    // The barrier iterate can sit a hair outside the box (strict interior
    // tracking); clamping is a no-op when it is inside.
    r.value = num::clamp(std::move(br.x), lo, hi);
    return r;
  });
  chain.add("admm", robust::Soundness::kExact, [&]() {
    AdmmResult ar = admm_box_qp(p, q, lo, hi, admm_opts);
    robust::Result<Vec> r;
    r.value = std::move(ar.x);  // feasible by construction
    r.status = ar.status;
    return r;
  });
  chain.add("projected-gradient", robust::Soundness::kHeuristic, [&]() {
    return projected_gradient_box_qp(p, q, lo, hi,
                                     options.pgd_max_iterations,
                                     options.pgd_tolerance, pgd_budget);
  });

  robust::ChainOutcome<Vec> outcome = chain.run(options.deadline);

  RobustBoxQpResult result;
  result.method = outcome.step;
  result.soundness = outcome.soundness;
  result.status = std::move(outcome.status);
  result.attempts = outcome.attempts;
  if (outcome.value.size() == n) {
    result.x = std::move(outcome.value);
    result.objective =
        0.5 * num::quad_form(result.x, p, result.x) + num::dot(q, result.x);
  } else {
    // Chain exhausted before any step ran (deadline): still hand back a
    // feasible point so callers never see an empty answer.
    result.x = num::clamp(Vec(n, 0.0), lo, hi);
    result.objective =
        0.5 * num::quad_form(result.x, p, result.x) + num::dot(q, result.x);
    result.method = "box-projection";
    result.soundness = robust::Soundness::kHeuristic;
  }
  return result;
}

}  // namespace rcr::opt
