#include "rcr/opt/sdp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::opt {

void Sdp::validate() const {
  const std::size_t n = dim();
  if (!c.square()) throw std::invalid_argument("Sdp: C not square");
  if (a_eq.size() != b_eq.size())
    throw std::invalid_argument("Sdp: equality count mismatch");
  if (a_in.size() != b_in.size())
    throw std::invalid_argument("Sdp: inequality count mismatch");
  for (const auto& m : a_eq)
    if (m.rows() != n || m.cols() != n)
      throw std::invalid_argument("Sdp: A_eq shape mismatch");
  for (const auto& m : a_in)
    if (m.rows() != n || m.cols() != n)
      throw std::invalid_argument("Sdp: A_in shape mismatch");
}

SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options,
                    SdpWorkspace& ws) {
  return solve_sdp(problem, options, ws, nullptr);
}

SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options,
                    SdpWorkspace& ws, SdpWarmState* warm) {
  problem.validate();
  obs::Span span("sdp.solve");
  const std::size_t n = problem.dim();
  const std::size_t nn = n * n;
  const std::size_t m_eq = problem.a_eq.size();
  const std::size_t m_in = problem.a_in.size();
  const std::size_t dim_y = nn + m_in;        // [vec(X); slacks]
  const std::size_t m = m_eq + m_in;          // affine rows
  const double rho = options.rho;
  const bool structured = options.exploit_structure;

  SdpResult result;
  const bool faults_on = robust::faults::enabled();

  ws.d.assign(m, 0.0);
  for (std::size_t i = 0; i < m_eq; ++i) ws.d[i] = problem.b_eq[i];
  for (std::size_t j = 0; j < m_in; ++j) ws.d[m_eq + j] = problem.b_in[j];

  // Unrecoverable degeneracy: report instead of aborting.  X = 0 is PSD,
  // so even this worst case hands back a valid (if useless) point.
  auto fail_singular = [&]() {
    if (warm != nullptr) warm->clear();
    result.status.code = robust::StatusCode::kSingular;
    result.status.detail =
        "degenerate constraint system: KKT singular after " +
        std::to_string(options.max_kkt_retries) + " ridge retries";
    result.x = Matrix(n, n);
    double viol0 = 0.0;
    for (std::size_t i = 0; i < m_eq; ++i)
      viol0 = std::max(viol0, std::abs(problem.b_eq[i]));
    for (std::size_t j = 0; j < m_in; ++j)
      viol0 = std::max(viol0, -problem.b_in[j]);
    result.primal_residual = viol0;
    obs::counter_add("rcr.sdp.solves");
    span.attr("iterations", 0.0);
    span.attr("converged", 0.0);
    span.attr("primal_residual", result.primal_residual);
    return result;
  };

  // Factor the affine-step system.  A degenerate (rank-deficient) constraint
  // set makes it singular; instead of aborting, regularize the multiplier
  // block with an escalating ridge -- the damped least-squares multiplier.
  // Each rung is recorded in the degradation trail.
  if (!structured) {
    // Dense KKT: stack M y = d into [rho*I, M^T; M, -ridge*I].
    ws.big.assign(dim_y + m, dim_y + m, 0.0);
    for (std::size_t i = 0; i < dim_y; ++i) ws.big(i, i) = rho;
    auto fill_row = [&](std::size_t row, const Matrix& a_mat, bool with_slack,
                        std::size_t slack_index) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
          ws.big(dim_y + row, i * n + j) = a_mat(i, j);
          ws.big(i * n + j, dim_y + row) = a_mat(i, j);
        }
      if (with_slack) {
        ws.big(dim_y + row, nn + slack_index) = 1.0;
        ws.big(nn + slack_index, dim_y + row) = 1.0;
      }
    };
    for (std::size_t i = 0; i < m_eq; ++i)
      fill_row(i, problem.a_eq[i], false, 0);
    for (std::size_t j = 0; j < m_in; ++j)
      fill_row(m_eq + j, problem.a_in[j], true, j);

    auto factor_kkt = [&](double ridge) {
      for (std::size_t i = 0; i < m; ++i) ws.big(dim_y + i, dim_y + i) = -ridge;
      num::lu_decompose_into(ws.big, ws.kkt);
      if (faults_on && robust::faults::should_inject("sdp.kkt.singular"))
        ws.kkt.singular = true;
    };
    factor_kkt(0.0);
    if (ws.kkt.singular) {
      double ridge = 1e-10 * (1.0 + ws.big.max_abs());
      for (std::size_t attempt = 0;
           attempt < options.max_kkt_retries && ws.kkt.singular; ++attempt) {
        result.status.note(
            "KKT factorization singular (degenerate constraint system); "
            "retrying with least-squares multiplier ridge=" +
            std::to_string(ridge));
        factor_kkt(ridge);
        ridge *= 1e4;
      }
      if (ws.kkt.singular) return fail_singular();
      result.status.code = robust::StatusCode::kDegraded;
      result.status.detail =
          "KKT system regularized (least-squares multiplier)";
    }
  } else {
    // Structured: the KKT matrix is an arrow -- rho*I over the whole y
    // block -- so eliminating it leaves the m x m Schur complement
    // G = M M^T / rho + ridge*I.  Only the affine rows M are materialized;
    // per-iteration work drops from a (dim_y + m)-square triangular solve
    // to two thin matvecs and an m x m solve.
    ws.mrows.assign(m, dim_y, 0.0);
    for (std::size_t r = 0; r < m_eq; ++r) {
      const Matrix& a_mat = problem.a_eq[r];
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          ws.mrows(r, i * n + j) = a_mat(i, j);
    }
    for (std::size_t s = 0; s < m_in; ++s) {
      const Matrix& a_mat = problem.a_in[s];
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          ws.mrows(m_eq + s, i * n + j) = a_mat(i, j);
      ws.mrows(m_eq + s, nn + s) = 1.0;
    }
    if (m > 0) {
      auto factor_gram = [&](double ridge) {
        num::multiply_abt_into(ws.mrows, ws.mrows, ws.gram);
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < m; ++j) ws.gram(i, j) /= rho;
        for (std::size_t i = 0; i < m; ++i) ws.gram(i, i) += ridge;
        num::lu_decompose_into(ws.gram, ws.gram_lu);
        if (faults_on && robust::faults::should_inject("sdp.kkt.singular"))
          ws.gram_lu.singular = true;
      };
      factor_gram(0.0);
      if (ws.gram_lu.singular) {
        double ridge = 1e-10 * (1.0 + ws.gram.max_abs());
        for (std::size_t attempt = 0;
             attempt < options.max_kkt_retries && ws.gram_lu.singular;
             ++attempt) {
          result.status.note(
              "KKT factorization singular (degenerate constraint system); "
              "retrying with least-squares multiplier ridge=" +
              std::to_string(ridge));
          factor_gram(ridge);
          ridge *= 1e4;
        }
        if (ws.gram_lu.singular) return fail_singular();
        result.status.code = robust::StatusCode::kDegraded;
        result.status.detail =
            "KKT system regularized (least-squares multiplier)";
      }
    }
  }

  // Opt-in mixed precision on the dense path: fp32 LU of the KKT matrix,
  // fp64 residual refinement per solve.  Degrades to fp64 when fp32
  // underflows the factorization to singularity.
  bool use_mixed = false;
  if (options.mixed_precision && !structured) {
    num::float_lu_into(ws.big, ws.kkt_f);
    if (ws.kkt_f.singular)
      result.status.note("fp32 KKT factor singular; running fp64 solves");
    else
      use_mixed = true;
  }
  constexpr double kRefineTol = 1e-12;
  constexpr int kRefineMaxIters = 8;
  bool refine_stalled = false;

  ws.cvec.assign(dim_y, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) ws.cvec[i * n + j] = problem.c(i, j);

  ws.z.assign(dim_y, 0.0);
  ws.u.assign(dim_y, 0.0);
  if (warm != nullptr && !warm->empty()) {
    if (detail::warm_vec_ok(warm->z, dim_y) &&
        detail::warm_vec_ok(warm->u, dim_y)) {
      ws.z = warm->z;
      ws.u = warm->u;
      result.warm_use = WarmUse::kAccepted;
      obs::counter_add("rcr.warm.accepted", "solver", "sdp");
    } else {
      result.warm_use = WarmUse::kRejected;
      result.status.note("warm state rejected (size mismatch or non-finite); "
                         "cold start");
      obs::counter_add("rcr.warm.rejected", "solver", "sdp");
    }
  }
  ws.y.assign(dim_y, 0.0);
  ws.rhs.assign(structured ? dim_y : dim_y + m, 0.0);
  ws.w.assign(dim_y, 0.0);
  ws.z_next.assign(dim_y, 0.0);
  ws.xw.assign(n, n, 0.0);
  Vec& cvec = ws.cvec;
  Vec& d = ws.d;
  Vec& z = ws.z;
  Vec& u = ws.u;
  Vec& y = ws.y;
  Vec& rhs = ws.rhs;
  Vec& w = ws.w;
  Vec& z_next = ws.z_next;
  Matrix& xw = ws.xw;

  num::PsdProjectOptions popts;
  popts.warm_start = options.warm_start_projection;
  popts.rotation_threshold = options.projection_rotation_threshold;

  const double scale = 1.0 + problem.c.max_abs() + num::norm_inf(d);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("sdp.deadline"))) {
      result.status.note("deadline fired at iteration " + std::to_string(it));
      result.status.code = robust::StatusCode::kDeadlineExpired;
      result.status.detail = "deadline fired at iteration " + std::to_string(it);
      break;
    }
    // y-update: min c^T y + rho/2 ||y - z + u||^2  s.t.  M y = d.
    for (std::size_t i = 0; i < dim_y; ++i)
      rhs[i] = rho * (z[i] - u[i]) - cvec[i];
    if (!structured) {
      for (std::size_t i = 0; i < m; ++i) rhs[dim_y + i] = d[i];
      if (use_mixed) {
        const int refined =
            num::refine_solve(ws.big, ws.kkt_f, rhs, ws.sol, kRefineTol,
                              kRefineMaxIters, ws.refine);
        if (refined < 0) {
          if (!refine_stalled) {
            result.status.note(
                "mixed-precision refinement stalled at iteration " +
                std::to_string(it + 1) + "; fp64 fallback for this solve");
            refine_stalled = true;
          }
          ws.kkt.solve_into(rhs, ws.sol);
        } else {
          result.refine_iterations += static_cast<std::size_t>(refined);
        }
      } else {
        ws.kkt.solve_into(rhs, ws.sol);
      }
      if (faults_on && !ws.sol.empty() &&
          robust::faults::should_inject("sdp.iterate.nan"))
        ws.sol[0] = std::numeric_limits<double>::quiet_NaN();
      for (std::size_t i = 0; i < dim_y; ++i) y[i] = ws.sol[i];
    } else {
      if (m > 0) {
        // lambda from (M M^T / rho + ridge*I) lambda = M rhs1 / rho - d,
        // then y = (rhs1 - M^T lambda) / rho.
        num::matvec_into(ws.mrows, rhs, ws.t_small);
        for (std::size_t i = 0; i < m; ++i)
          ws.t_small[i] = ws.t_small[i] / rho - d[i];
        ws.gram_lu.solve_into(ws.t_small, ws.lambda_small);
        num::matvec_transposed_into(ws.mrows, ws.lambda_small, ws.mty);
        for (std::size_t i = 0; i < dim_y; ++i)
          y[i] = (rhs[i] - ws.mty[i]) / rho;
      } else {
        for (std::size_t i = 0; i < dim_y; ++i) y[i] = rhs[i] / rho;
      }
      if (faults_on && dim_y > 0 &&
          robust::faults::should_inject("sdp.iterate.nan"))
        y[0] = std::numeric_limits<double>::quiet_NaN();
    }
    // NaN/Inf sentinel BEFORE the PSD projection: feeding a poisoned iterate
    // to the eigendecomposition would waste a full sweep budget on garbage.
    // z still holds the last clean projected iterate, so stop on it.
    bool finite = true;
    for (std::size_t i = 0; i < dim_y; ++i)
      if (!std::isfinite(y[i])) {
        finite = false;
        break;
      }
    if (!finite) {
      result.status.code = robust::StatusCode::kNumericalFailure;
      result.status.detail =
          "non-finite iterate at iteration " + std::to_string(it + 1) +
          "; returning last clean PSD-projected point";
      result.iterations = it + 1;
      break;
    }

    // z-update: project y + u onto PSD-cone x nonnegative-orthant.
    for (std::size_t i = 0; i < dim_y; ++i) w[i] = y[i] + u[i];
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) xw(i, j) = w[i * n + j];
    num::project_psd_into(xw, ws.projection, ws.xp, popts);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) z_next[i * n + j] = ws.xp(i, j);
    for (std::size_t k = 0; k < m_in; ++k)
      z_next[nn + k] = std::max(0.0, w[nn + k]);

    // norm2 of the update deltas without the num::sub temporaries (sqrt of
    // an ascending sum of squares, matching num::norm2's order).
    double dual2 = 0.0;
    for (std::size_t i = 0; i < dim_y; ++i) {
      const double dd = z_next[i] - z[i];
      dual2 += dd * dd;
    }
    const double dual_res = rho * std::sqrt(dual2);
    std::swap(z, z_next);
    for (std::size_t i = 0; i < dim_y; ++i) u[i] += y[i] - z[i];
    double primal2 = 0.0;
    for (std::size_t i = 0; i < dim_y; ++i) {
      const double pd = y[i] - z[i];
      primal2 += pd * pd;
    }
    const double primal_res = std::sqrt(primal2);

    result.iterations = it + 1;
    if (primal_res <= options.tolerance * scale &&
        dual_res <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged &&
      (result.status.code == robust::StatusCode::kOk ||
       result.status.code == robust::StatusCode::kDegraded)) {
    if (result.status.code == robust::StatusCode::kDegraded)
      result.status.note(result.status.detail);
    result.status.code = robust::StatusCode::kNonConverged;
    result.status.detail = "max_iterations exhausted";
  }

  result.x = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) result.x(i, j) = z[i * n + j];
  result.x.symmetrize();
  result.objective = num::frobenius_dot(problem.c, result.x);
  if (warm != nullptr) {
    // z is the last clean projected iterate even on the NaN-sentinel path,
    // but u may have absorbed the poisoned y there -- clear instead.
    if (result.status.code == robust::StatusCode::kNumericalFailure) {
      warm->clear();
    } else {
      warm->z = z;
      warm->u = u;
    }
  }

  double viol = 0.0;
  for (std::size_t i = 0; i < m_eq; ++i)
    viol = std::max(viol, std::abs(num::frobenius_dot(problem.a_eq[i],
                                                      result.x) -
                                   problem.b_eq[i]));
  for (std::size_t j = 0; j < m_in; ++j)
    viol = std::max(viol, num::frobenius_dot(problem.a_in[j], result.x) -
                              problem.b_in[j]);
  result.primal_residual = viol;
  obs::counter_add("rcr.sdp.solves");
  obs::counter_add("rcr.sdp.iterations", result.iterations);
  if (result.refine_iterations > 0)
    obs::counter_add("rcr.sdp.refine_iters", result.refine_iterations);
  span.attr("iterations", static_cast<double>(result.iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("primal_residual", result.primal_residual);
  return result;
}

SdpResult solve_sdp(const Sdp& problem, const SdpOptions& options) {
  SdpWorkspace ws;
  return solve_sdp(problem, options, ws);
}

namespace {

// Embed f(x) = (1/2) x^T P x + q^T x + r as <M, [1 x^T; x xx^T]>.
Matrix lift_quadratic(const QuadraticForm& f) {
  const std::size_t n = f.dim();
  Matrix m(n + 1, n + 1);
  m(0, 0) = f.r;
  for (std::size_t i = 0; i < n; ++i) {
    m(0, i + 1) = f.q[i] / 2.0;
    m(i + 1, 0) = f.q[i] / 2.0;
    for (std::size_t j = 0; j < n; ++j) m(i + 1, j + 1) = f.p(i, j) / 2.0;
  }
  m.symmetrize();
  return m;
}

}  // namespace

Sdp shor_relaxation(const Qcqp& problem) {
  problem.validate();
  const std::size_t n = problem.dim();
  Sdp sdp;
  sdp.c = lift_quadratic(problem.objective);

  // Corner normalization X_00 = 1.
  {
    Matrix corner(n + 1, n + 1);
    corner(0, 0) = 1.0;
    sdp.a_eq.push_back(std::move(corner));
    sdp.b_eq.push_back(1.0);
  }
  // Linear equalities a_k^T x = b_k.
  for (std::size_t k = 0; k < problem.a.rows(); ++k) {
    Matrix e(n + 1, n + 1);
    for (std::size_t j = 0; j < n; ++j) {
      e(0, j + 1) = problem.a(k, j) / 2.0;
      e(j + 1, 0) = problem.a(k, j) / 2.0;
    }
    sdp.a_eq.push_back(std::move(e));
    sdp.b_eq.push_back(problem.b[k]);
  }
  // Quadratic inequalities f_i(x) <= 0.
  for (const auto& c : problem.constraints) {
    sdp.a_in.push_back(lift_quadratic(c));
    sdp.b_in.push_back(0.0);
  }
  return sdp;
}

ShorBound shor_lower_bound(const Qcqp& problem, const SdpOptions& options) {
  const Sdp sdp = shor_relaxation(problem);
  const SdpResult r = solve_sdp(sdp, options);
  ShorBound out;
  out.bound = r.objective;
  out.iterations = r.iterations;
  out.converged = r.converged;
  out.status = r.status;
  const std::size_t n = problem.dim();
  out.x_extracted.resize(n);
  const double corner = std::max(r.x(0, 0), 1e-12);
  for (std::size_t i = 0; i < n; ++i)
    out.x_extracted[i] = r.x(i + 1, 0) / corner;
  out.extraction_value = problem.objective.value(out.x_extracted);
  return out;
}

}  // namespace rcr::opt
