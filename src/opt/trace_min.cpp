#include "rcr/opt/trace_min.hpp"

#include <cmath>
#include <stdexcept>

#include "rcr/numerics/eigen.hpp"

namespace rcr::opt {

TraceMinResult solve_trace_min(const Matrix& r_s,
                               const TraceMinOptions& options) {
  if (!r_s.square())
    throw std::invalid_argument("solve_trace_min: R_s not square");
  if (!r_s.is_symmetric(1e-8 * (1.0 + r_s.max_abs())))
    throw std::invalid_argument("solve_trace_min: R_s not symmetric");
  const std::size_t n = r_s.rows();
  const double rho = options.rho;
  const double scale = 1.0 + r_s.max_abs();

  // ADMM on  min tr(X) + I_{offdiag(X) = offdiag(R_s)}(X) + I_PSD(Z),
  // X = Z.  Both proximal maps are closed-form.
  Matrix x(n, n);
  Matrix z = r_s;
  z.symmetrize();
  Matrix u(n, n);

  TraceMinResult result;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // X-update: off-diagonal pinned to R_s; diagonal minimizes
    // x_ii + (rho/2)(x_ii - (z_ii - u_ii))^2  =>  x_ii = z_ii - u_ii - 1/rho.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        x(i, j) = (i == j) ? z(i, i) - u(i, i) - 1.0 / rho : r_s(i, j);
      }
    }
    // Z-update: PSD projection of X + U.
    Matrix z_prev = z;
    z = num::project_psd(x + u);
    // Dual update.
    u += x - z;

    const double primal = (x - z).frobenius_norm();
    const double dual = rho * (z - z_prev).frobenius_norm();
    result.iterations = it + 1;
    if (primal <= options.tolerance * scale &&
        dual <= options.tolerance * scale) {
      result.converged = true;
      break;
    }
  }

  result.r_c = z;  // PSD by construction
  result.r_n = Matrix(n, n);
  double offdiag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.r_n(i, i) = r_s(i, i) - result.r_c(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j)
        offdiag = std::max(offdiag, std::abs(r_s(i, j) - result.r_c(i, j)));
    }
  }
  result.offdiag_residual = offdiag;
  result.trace = result.r_c.trace();
  return result;
}

TraceMinInstance random_trace_min_instance(std::size_t n, std::size_t rank,
                                           double noise_lo, double noise_hi,
                                           num::Rng& rng) {
  TraceMinInstance inst;
  inst.r_c_true = random_psd(n, rank, rng);
  inst.r_n_true = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    inst.r_n_true(i, i) = rng.uniform(noise_lo, noise_hi);
  inst.r_s = inst.r_c_true + inst.r_n_true;
  return inst;
}

RecoveryReport evaluate_recovery(const TraceMinInstance& instance,
                                 const TraceMinResult& result,
                                 double rank_tol) {
  RecoveryReport report;
  const double denom = std::max(instance.r_c_true.frobenius_norm(), 1e-12);
  report.rc_error = (result.r_c - instance.r_c_true).frobenius_norm() / denom;
  double rn_err = 0.0;
  for (std::size_t i = 0; i < instance.r_n_true.rows(); ++i)
    rn_err = std::max(rn_err, std::abs(result.r_n(i, i) -
                                       instance.r_n_true(i, i)));
  report.rn_error = rn_err;
  report.true_rank = num::symmetric_rank(instance.r_c_true);
  report.recovered_rank = num::symmetric_rank(result.r_c, rank_tol);
  report.rank_recovered = report.recovered_rank == report.true_rank;
  return report;
}

}  // namespace rcr::opt
