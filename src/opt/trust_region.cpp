#include "rcr/opt/trust_region.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "rcr/numerics/eigen.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/robust/guards.hpp"

namespace rcr::opt {

TrustRegionStep solve_trust_region_exact(const num::Matrix& b, const Vec& g,
                                         double radius) {
  const auto eig = num::eigen_symmetric(b);
  const std::size_t n = g.size();
  // Work in the eigenbasis: p = V z, model = sum (1/2) lam_i z_i^2 + gh_i z_i.
  const Vec gh = num::matvec_transposed(eig.eigenvectors, g);

  auto z_for_lambda = [&](double lambda) {
    Vec z(n);
    for (std::size_t i = 0; i < n; ++i)
      z[i] = -gh[i] / (eig.eigenvalues[i] + lambda);
    return z;
  };

  const double lambda_min = eig.eigenvalues.front();
  TrustRegionStep step;

  // Try the interior solution first (only valid when B is PD).
  if (lambda_min > 1e-12) {
    const Vec z = z_for_lambda(0.0);
    if (num::norm2(z) <= radius) {
      step.p = num::matvec(eig.eigenvectors, z);
      step.on_boundary = false;
      double m = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        m += 0.5 * eig.eigenvalues[i] * z[i] * z[i] + gh[i] * z[i];
      step.model_decrease = -m;
      return step;
    }
  }

  // Boundary solution: bisection on lambda > max(0, -lambda_min) so that
  // ||z(lambda)|| = radius.  ||z|| is decreasing in lambda.
  double lo = std::max(0.0, -lambda_min) + 1e-12;
  double hi = lo + 1.0;
  while (num::norm2(z_for_lambda(hi)) > radius && hi < 1e12) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (num::norm2(z_for_lambda(mid)) > radius) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Vec z = z_for_lambda(hi);
  step.p = num::matvec(eig.eigenvectors, z);
  step.on_boundary = true;
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    m += 0.5 * eig.eigenvalues[i] * z[i] * z[i] + gh[i] * z[i];
  step.model_decrease = -m;
  return step;
}

TrustRegionStep solve_trust_region_cg(
    const std::function<Vec(const Vec&)>& hessian_vec, const Vec& g,
    double radius, double tolerance, std::size_t max_iterations) {
  const std::size_t n = g.size();
  TrustRegionStep step;
  step.p = Vec(n, 0.0);
  Vec r = num::scale(g, -1.0);  // residual of B p = -g at p = 0
  Vec d = r;
  double r_norm2 = num::dot(r, r);
  if (std::sqrt(r_norm2) <= tolerance) return step;

  auto boundary_tau = [&](const Vec& p, const Vec& dir) {
    // Positive root of ||p + tau dir||^2 = radius^2.
    const double dd = num::dot(dir, dir);
    const double pd = num::dot(p, dir);
    const double pp = num::dot(p, p);
    const double disc = pd * pd - dd * (pp - radius * radius);
    return (-pd + std::sqrt(std::max(0.0, disc))) / dd;
  };

  for (std::size_t it = 0; it < max_iterations; ++it) {
    const Vec bd = hessian_vec(d);
    const double curvature = num::dot(d, bd);
    if (curvature <= 0.0) {
      // Negative curvature: walk to the boundary along d.
      const double tau = boundary_tau(step.p, d);
      num::axpy(tau, d, step.p);
      step.on_boundary = true;
      break;
    }
    const double alpha = r_norm2 / curvature;
    Vec p_next = step.p;
    num::axpy(alpha, d, p_next);
    if (num::norm2(p_next) >= radius) {
      const double tau = boundary_tau(step.p, d);
      num::axpy(tau, d, step.p);
      step.on_boundary = true;
      break;
    }
    step.p = std::move(p_next);
    num::axpy(-alpha, bd, r);
    const double r_norm2_next = num::dot(r, r);
    if (std::sqrt(r_norm2_next) <= tolerance) break;
    const double beta = r_norm2_next / r_norm2;
    r_norm2 = r_norm2_next;
    Vec d_next = r;
    num::axpy(beta, d, d_next);
    d = std::move(d_next);
  }

  const Vec bp = hessian_vec(step.p);
  step.model_decrease = -(0.5 * num::dot(step.p, bp) + num::dot(g, step.p));
  return step;
}

MinimizeResult trust_region_bfgs(const Smooth& f, Vec x0,
                                 const TrustRegionOptions& options) {
  obs::Span span("opt.trust_region");
  const std::size_t n = x0.size();
  Vec x = std::move(x0);
  num::Matrix b = num::Matrix::identity(n);  // Hessian proxy (not inverse)
  double radius = options.initial_radius;

  MinimizeResult result;
  const bool faults_on = robust::faults::enabled();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.budget.expired_at(it) ||
        (faults_on && robust::faults::should_inject("tr.deadline"))) {
      result.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired at iteration " + std::to_string(it));
      result.iterations = it;
      break;
    }
    const Vec g = f.gradient(x);
    if (num::norm_inf(g) <= options.gradient_tolerance) {
      result.iterations = it;
      break;
    }
    TrustRegionStep step = solve_trust_region_exact(b, g, radius);
    if (faults_on && !step.p.empty() &&
        robust::faults::should_inject("tr.step.nan"))
      step.p[0] = std::numeric_limits<double>::quiet_NaN();
    // NaN/Inf sentinel: a poisoned subproblem step must not reach the
    // iterate; x is still the last clean point, so stop on it.
    if (!robust::all_finite(step.p)) {
      result.status = robust::make_status(
          robust::StatusCode::kNumericalFailure,
          "non-finite trust-region step at iteration " + std::to_string(it) +
              "; returning last clean iterate");
      result.iterations = it;
      break;
    }
    if (num::norm2(step.p) <= 1e-15) {
      result.iterations = it;
      break;
    }
    Vec x_trial = num::add(x, step.p);
    const double actual = f.value(x) - f.value(x_trial);
    const double rho =
        step.model_decrease > 0.0 ? actual / step.model_decrease : -1.0;

    if (rho >= options.eta_accept) {
      // BFGS update of the Hessian proxy with curvature guard (skip updates
      // that would inject "false curvature information", Sec. IV-C).
      const Vec g_new = f.gradient(x_trial);
      const Vec s = step.p;
      const Vec y = num::sub(g_new, g);
      const double sy = num::dot(s, y);
      if (sy > 1e-12 * num::norm2(s) * num::norm2(y)) {
        const Vec bs = num::matvec(b, s);
        const double sbs = num::dot(s, bs);
        // B <- B - (B s s^T B)/(s^T B s) + (y y^T)/(s^T y)
        if (sbs > 0.0) {
          b -= (1.0 / sbs) * num::outer(bs, bs);
          b += (1.0 / sy) * num::outer(y, y);
          b.symmetrize();
        }
      }
      x = std::move(x_trial);
    }

    if (rho < 0.25) {
      radius *= 0.25;
    } else if (rho > options.eta_expand && step.on_boundary) {
      radius = std::min(2.0 * radius, options.max_radius);
    }
    if (radius < 1e-14) {
      result.status = robust::make_status(
          robust::StatusCode::kNonConverged,
          "trust-region radius collapsed at iteration " + std::to_string(it));
      result.iterations = it;
      break;
    }
    result.iterations = it + 1;
  }

  const Vec g = f.gradient(x);
  result.gradient_norm = num::norm_inf(g);
  result.converged = result.gradient_norm <= options.gradient_tolerance;
  result.value = f.value(x);
  result.x = std::move(x);
  if (!result.converged && result.status.ok())
    result.status = robust::make_status(robust::StatusCode::kNonConverged,
                                        "stopped before reaching tolerance");
  obs::counter_add("rcr.tr.solves");
  obs::counter_add("rcr.tr.iterations", result.iterations);
  span.attr("iterations", static_cast<double>(result.iterations));
  span.attr("converged", result.converged ? 1.0 : 0.0);
  span.attr("gradient_norm", result.gradient_norm);
  return result;
}

}  // namespace rcr::opt
