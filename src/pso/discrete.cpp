#include "rcr/pso/discrete.hpp"

#include "rcr/obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rcr::pso {

namespace {

void normalize_distribution(Vec& p) {
  double total = 0.0;
  for (double& v : p) {
    v = std::max(v, 1e-6);  // keep every value reachable
    total += v;
  }
  for (double& v : p) v /= total;
}

/// One-hot vector for index k over m values.
Vec one_hot(std::size_t m, std::size_t k) {
  Vec v(m, 0.0);
  v[k] = 1.0;
  return v;
}

}  // namespace

DiscretePsoResult minimize_discrete(
    const std::vector<CategoricalAttribute>& attributes,
    const DiscreteObjective& objective, const DiscretePsoConfig& config,
    InertiaSchedule* inertia) {
  if (attributes.empty())
    throw std::invalid_argument("minimize_discrete: no attributes");
  for (const auto& a : attributes)
    if (a.values.empty())
      throw std::invalid_argument("minimize_discrete: attribute '" + a.name +
                                  "' has no values");
  if (config.swarm_size == 0)
    throw std::invalid_argument("minimize_discrete: empty swarm");

  obs::Span span("pso.discrete");
  num::Rng rng(config.seed);
  const std::size_t n_attr = attributes.size();
  const std::size_t swarm = config.swarm_size;

  // Particle state: per-attribute distribution + velocity in simplex space.
  struct Particle {
    std::vector<Vec> dist;
    std::vector<Vec> vel;
    std::vector<Vec> best_dist;      // distributions at personal best
    DiscreteAssignment best_sample;  // personal best concrete assignment
    double best_value = std::numeric_limits<double>::infinity();
    std::size_t stagnant = 0;
  };
  std::vector<Particle> particles(swarm);

  DiscretePsoResult result;
  DiscreteAssignment gbest_sample;
  std::vector<Vec> gbest_dist;
  double gbest_value = std::numeric_limits<double>::infinity();

  auto sample_assignment = [&](const std::vector<Vec>& dist) {
    DiscreteAssignment a(n_attr);
    for (std::size_t k = 0; k < n_attr; ++k) a[k] = rng.categorical(dist[k]);
    return a;
  };

  // Initialize with uniform distributions and zero velocity.
  for (auto& p : particles) {
    p.dist.resize(n_attr);
    p.vel.resize(n_attr);
    for (std::size_t k = 0; k < n_attr; ++k) {
      const std::size_t m = attributes[k].values.size();
      p.dist[k] = Vec(m, 1.0 / static_cast<double>(m));
      p.vel[k] = Vec(m, 0.0);
    }
    p.best_dist = p.dist;
  }

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    for (std::size_t i = 0; i < swarm; ++i) {
      Particle& p = particles[i];

      // Evaluate: sample concrete assignments from the distributions.
      for (std::size_t s = 0; s < config.samples_per_eval; ++s) {
        const DiscreteAssignment a = sample_assignment(p.dist);
        const double f = objective(a);
        ++result.evaluations;
        if (f < p.best_value) {
          p.best_value = f;
          p.best_sample = a;
          // Personal best distribution: sharpen toward the sampled values.
          for (std::size_t k = 0; k < n_attr; ++k)
            p.best_dist[k] = one_hot(attributes[k].values.size(), a[k]);
          p.stagnant = 0;
        }
        if (f < gbest_value) {
          gbest_value = f;
          gbest_sample = a;
          gbest_dist = p.best_dist;
        }
      }
      ++p.stagnant;

      // Velocity/position update in distribution space (Eqs. 1-2 applied to
      // probability vectors, then re-projection onto the simplex).
      double w = config.inertia;
      if (inertia != nullptr) {
        InertiaContext ctx;
        ctx.iteration = iter;
        ctx.max_iterations = config.max_iterations;
        ctx.particle = i;
        ctx.stagnant_iters = p.stagnant;
        double vnorm = 0.0;
        double dist_best = 0.0;
        for (std::size_t k = 0; k < n_attr; ++k) {
          vnorm += num::dot(p.vel[k], p.vel[k]);
          const Vec diff = num::sub(p.best_dist[k], p.dist[k]);
          dist_best += num::dot(diff, diff);
        }
        ctx.velocity_norm = std::sqrt(vnorm);
        ctx.dist_to_pbest = std::sqrt(dist_best);
        ctx.dist_to_gbest = ctx.dist_to_pbest;
        w = inertia->weight(ctx);
      }

      for (std::size_t k = 0; k < n_attr; ++k) {
        const std::size_t m = attributes[k].values.size();
        const Vec& gtarget =
            gbest_dist.empty() ? p.best_dist[k] : gbest_dist[k];
        for (std::size_t j = 0; j < m; ++j) {
          const double b1 = rng.uniform();
          const double b2 = rng.uniform();
          p.vel[k][j] = w * p.vel[k][j] +
                        config.alpha1 * b1 * (p.best_dist[k][j] - p.dist[k][j]) +
                        config.alpha2 * b2 * (gtarget[j] - p.dist[k][j]);
          p.dist[k][j] += p.vel[k][j];
        }
        normalize_distribution(p.dist[k]);
      }
    }
    result.best_value_history.push_back(gbest_value);
  }

  result.best_assignment = std::move(gbest_sample);
  result.best_value = gbest_value;
  result.best_distributions = std::move(gbest_dist);
  obs::counter_add("rcr.pso.solves");
  obs::counter_add("rcr.pso.generations", result.best_value_history.size());
  obs::counter_add("rcr.pso.evaluations", result.evaluations);
  span.attr("generations",
            static_cast<double>(result.best_value_history.size()));
  span.attr("evaluations", static_cast<double>(result.evaluations));
  span.attr("best_value", result.best_value);
  return result;
}

ExhaustiveResult minimize_exhaustive(
    const std::vector<CategoricalAttribute>& attributes,
    const DiscreteObjective& objective, std::size_t max_space) {
  std::size_t space = 1;
  for (const auto& a : attributes) {
    if (a.values.empty())
      throw std::invalid_argument("minimize_exhaustive: empty attribute");
    if (space > max_space / a.values.size())
      throw std::invalid_argument("minimize_exhaustive: space too large");
    space *= a.values.size();
  }

  ExhaustiveResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  DiscreteAssignment a(attributes.size(), 0);
  for (std::size_t idx = 0; idx < space; ++idx) {
    std::size_t rem = idx;
    for (std::size_t k = 0; k < attributes.size(); ++k) {
      a[k] = rem % attributes[k].values.size();
      rem /= attributes[k].values.size();
    }
    const double f = objective(a);
    ++result.evaluations;
    if (f < result.best_value) {
      result.best_value = f;
      result.best_assignment = a;
    }
  }
  return result;
}

}  // namespace rcr::pso
