// Distribution-based discrete PSO (the paper's [9], Strasser et al.):
// "each attribute of a PSO particle is a distribution over its possible
// values rather than a specific value", which preserves the continuous
// update semantics when the search space is categorical -- exactly what the
// MSY3I hyperparameter-tuning phase needs.
//
// Each particle holds, per attribute, a probability vector over that
// attribute's candidate values.  Velocities act on the probability simplex;
// evaluation samples a concrete configuration from the distributions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rcr/numerics/rng.hpp"
#include "rcr/pso/inertia.hpp"

namespace rcr::pso {

/// One categorical hyperparameter: a name and its candidate values.
struct CategoricalAttribute {
  std::string name;
  Vec values;  ///< Candidate values (interpreted by the objective).
};

/// A concrete configuration: one chosen value index per attribute.
using DiscreteAssignment = std::vector<std::size_t>;

/// Objective over concrete assignments (lower is better).
using DiscreteObjective = std::function<double(const DiscreteAssignment&)>;

/// Configuration of the discrete swarm.
struct DiscretePsoConfig {
  std::size_t swarm_size = 12;
  std::size_t max_iterations = 60;
  double alpha1 = 1.3;  ///< Cognitive pull on the distributions.
  double alpha2 = 1.3;  ///< Social pull on the distributions.
  double inertia = 0.6; ///< Used when no schedule is supplied.
  std::uint64_t seed = 1;
  std::size_t samples_per_eval = 1;  ///< Draws per particle per iteration.
};

/// Run outcome.
struct DiscretePsoResult {
  DiscreteAssignment best_assignment;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  Vec best_value_history;
  /// Final per-attribute distributions of the best particle (insight into
  /// how confident the swarm became).
  std::vector<Vec> best_distributions;
};

/// Minimize a discrete objective with distribution-based PSO.
/// Throws std::invalid_argument when attributes are empty or any attribute
/// has no values.
DiscretePsoResult minimize_discrete(
    const std::vector<CategoricalAttribute>& attributes,
    const DiscreteObjective& objective, const DiscretePsoConfig& config,
    InertiaSchedule* inertia = nullptr);

/// Exhaustive search over all assignments (tiny spaces only; throws
/// std::invalid_argument when the space exceeds `max_space`).  Oracle for
/// tests and the E6/E12 quality comparisons.
struct ExhaustiveResult {
  DiscreteAssignment best_assignment;
  double best_value = 0.0;
  std::size_t evaluations = 0;
};
ExhaustiveResult minimize_exhaustive(
    const std::vector<CategoricalAttribute>& attributes,
    const DiscreteObjective& objective, std::size_t max_space = 200000);

}  // namespace rcr::pso
