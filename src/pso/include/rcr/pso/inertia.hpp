// Inertia-weight schedules for PSO (paper Secs. II-A-2 and III).
//
// The paper's Phase-3 enabler ("M-GNU-O") supplies *adaptive inertial
// weighting* so that integer-rounded particles do not stagnate prematurely;
// choosing the weights is itself framed as a convex optimization problem.
// AdaptiveQpInertia realizes that framing: each iteration it solves a small
// box-constrained convex QP for the per-particle weights (closed form via
// the separable structure; opt::solve_qp reproduces the same answer, which
// the test suite cross-checks).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::pso {

/// Per-particle state visible to an inertia schedule.
struct InertiaContext {
  std::size_t iteration = 0;
  std::size_t max_iterations = 1;
  std::size_t particle = 0;
  double velocity_norm = 0.0;     ///< ||v_i|| before the update.
  double dist_to_pbest = 0.0;     ///< ||x_i - I_i||.
  double dist_to_gbest = 0.0;     ///< ||x_i - G||.
  double swarm_diversity = 0.0;   ///< Mean pairwise distance proxy.
  std::size_t stagnant_iters = 0; ///< Consecutive near-zero-velocity steps.
};

/// Interface: produce iota^(k) for one particle.
class InertiaSchedule {
 public:
  virtual ~InertiaSchedule() = default;
  virtual double weight(const InertiaContext& context) = 0;
  virtual std::string name() const = 0;
};

/// Fixed weight.
std::unique_ptr<InertiaSchedule> constant_inertia(double w);

/// Linear decay from w_start to w_end across the run (the classic schedule).
std::unique_ptr<InertiaSchedule> linear_decay_inertia(double w_start,
                                                      double w_end);

/// Chaotic-random inertia: w = 0.5 * z + base with z from a logistic map
/// (deterministic chaos keeps runs reproducible).
std::unique_ptr<InertiaSchedule> chaotic_inertia(double base = 0.4);

/// Distance-adaptive inertia: grows with the particle's stagnation count and
/// distance to its local optimum ("weighting the distance from the
/// particle's local optimum", Sec. II-A-2), so stalled particles get pushed
/// past their current local optimum.
std::unique_ptr<InertiaSchedule> adaptive_distance_inertia(double w_min = 0.4,
                                                           double w_max = 1.2);

/// QP-based adaptive inertia (the paper's "yet another convex optimization
/// problem"): per iteration solve
///   min_w  sum_i (w_i * v_i - d_i)^2 + lambda * (w_i - w_ref)^2
///   s.t.   w_min <= w_i <= w_max
/// where d_i is the particle's distance to the global best (the step scale
/// that would reach it) and w_ref recenters toward a nominal weight.  The
/// problem is separable; the closed-form solution is the clamped ridge
/// estimate.
class AdaptiveQpInertia final : public InertiaSchedule {
 public:
  AdaptiveQpInertia(double w_min = 0.3, double w_max = 1.4,
                    double w_ref = 0.7, double lambda = 0.5)
      : w_min_(w_min), w_max_(w_max), w_ref_(w_ref), lambda_(lambda) {}

  double weight(const InertiaContext& context) override;
  std::string name() const override { return "adaptive-qp"; }

  /// The underlying scalar QP solution for one particle (exposed so tests
  /// can cross-check it against opt::solve_qp).
  static double solve_scalar_qp(double v, double d, double w_ref,
                                double lambda, double w_min, double w_max);

 private:
  double w_min_;
  double w_max_;
  double w_ref_;
  double lambda_;
};

std::unique_ptr<InertiaSchedule> adaptive_qp_inertia(double w_min = 0.3,
                                                     double w_max = 1.4,
                                                     double w_ref = 0.7,
                                                     double lambda = 0.5);

}  // namespace rcr::pso
