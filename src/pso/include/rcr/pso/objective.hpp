// Benchmark objective suite for the PSO experiments (E6): standard
// multimodal test functions with known global optima, used to measure
// premature stagnation and inertia-schedule quality.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::pso {

/// A box-bounded objective with a known global optimum.
struct Objective {
  std::string name;
  std::function<double(const Vec&)> value;
  Vec lower;           ///< Per-dimension lower bound.
  Vec upper;           ///< Per-dimension upper bound.
  Vec optimum;         ///< Global minimizer.
  double optimum_value = 0.0;

  std::size_t dim() const { return lower.size(); }
};

/// Convex bowl: sum x_i^2.  Optimum at 0.
Objective sphere(std::size_t n);

/// Rosenbrock valley.  Optimum at (1,...,1).
Objective rosenbrock(std::size_t n);

/// Rastrigin: highly multimodal with a regular lattice of local minima --
/// the canonical trap for integer-rounded particles.  Optimum at 0.
Objective rastrigin(std::size_t n);

/// Ackley: nearly flat outer region, sharp funnel at 0.
Objective ackley(std::size_t n);

/// Griewank: product term couples dimensions.  Optimum at 0.
Objective griewank(std::size_t n);

/// The full suite in canonical order.
std::vector<Objective> standard_suite(std::size_t n);

}  // namespace rcr::pso
