// Particle Swarm Optimization (paper Eqs. 1-2) with the implementation
// choices Sec. II-A-2 discusses: position/velocity updates with cognitive
// (I) and social (G) pulls, optional integer rounding of positions (the
// "artificial paradigm" that causes premature stagnation), stagnation
// detection with dispersion, and pluggable inertia schedules.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "rcr/numerics/rng.hpp"
#include "rcr/pso/inertia.hpp"
#include "rcr/pso/objective.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::pso {

/// How positions are quantized after each update.
enum class Rounding {
  kNone,     ///< Continuous PSO.
  kInteger,  ///< Round every coordinate to the nearest integer (MINLP mode).
};

/// Swarm configuration.
struct PsoConfig {
  std::size_t swarm_size = 20;
  std::size_t max_iterations = 200;
  double alpha1 = 1.49445;  ///< Cognitive acceleration (alpha_1 in Eq. 2).
  double alpha2 = 1.49445;  ///< Social acceleration (alpha_2 in Eq. 2).
  double velocity_clamp_fraction = 0.5;  ///< v_max as a fraction of range.
  Rounding rounding = Rounding::kNone;
  /// MINLP mode: when non-empty, marks which coordinates are integer
  /// (true) vs continuous (false); overrides `rounding` per dimension.
  /// Must be empty or match the objective dimension.
  std::vector<bool> integer_mask;
  std::uint64_t seed = 1;

  // Stagnation machinery (Sec. II-A-2 / [15]).
  double stagnation_velocity_eps = 1e-6;  ///< ||v|| below this counts as stalled.
  std::size_t stagnation_patience = 10;   ///< Stalled iterations before "stuck".
  bool disperse_on_stagnation = false;    ///< Re-energize stuck particles.

  /// Stop early once the best value reaches target_value (when set).
  std::optional<double> target_value;

  /// Wall-clock budget; unlimited by default.  Checked per iteration and
  /// inside the parallel evaluation phase; on expiry the swarm stops and
  /// returns the best-so-far with status kDeadlineExpired.
  robust::Budget budget;
};

/// Run outcome and diagnostics.
struct PsoResult {
  Vec best_position;
  double best_value = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  Vec best_value_history;         ///< gbest value per iteration.
  std::size_t stagnation_events = 0;  ///< Particles that hit the patience cap.
  std::size_t dispersions = 0;        ///< Re-energizations performed.
  double final_stagnant_fraction = 0.0;  ///< Share of particles stalled at exit.
  bool reached_target = false;
  /// Particles whose objective came back NaN/Inf and were re-seeded from
  /// their personal best instead of poisoning the swarm best.
  std::size_t nan_quarantines = 0;
  /// Runtime disposition: kOk normally, kDeadlineExpired on budget expiry,
  /// kNumericalFailure when every initial evaluation was non-finite.
  robust::Status status;
};

/// Minimize `objective` within its box bounds.  The inertia schedule is
/// consulted per particle per iteration (pass nullptr for the classic 0.7
/// constant).
///
/// Updates are synchronous: all particles move against the iteration-start
/// global best, and objective evaluations run in parallel on the rcr::rt
/// pool -- objective.value must therefore be safe to call concurrently
/// (pure functions of the position; every objective in this repo is).
/// Each particle draws from its own per-iteration RNG stream, so results
/// are deterministic and independent of the thread count.
PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   InertiaSchedule* inertia = nullptr);

/// Convenience overload owning a schedule.
PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   const std::unique_ptr<InertiaSchedule>& inertia);

}  // namespace rcr::pso
