#include "rcr/pso/inertia.hpp"

#include <algorithm>
#include <cmath>

namespace rcr::pso {

namespace {

class ConstantInertia final : public InertiaSchedule {
 public:
  explicit ConstantInertia(double w) : w_(w) {}
  double weight(const InertiaContext&) override { return w_; }
  std::string name() const override { return "constant"; }

 private:
  double w_;
};

class LinearDecayInertia final : public InertiaSchedule {
 public:
  LinearDecayInertia(double w_start, double w_end)
      : w_start_(w_start), w_end_(w_end) {}
  double weight(const InertiaContext& context) override {
    const double t = static_cast<double>(context.iteration) /
                     static_cast<double>(std::max<std::size_t>(
                         1, context.max_iterations - 1));
    return w_start_ + (w_end_ - w_start_) * std::min(1.0, t);
  }
  std::string name() const override { return "linear-decay"; }

 private:
  double w_start_;
  double w_end_;
};

class ChaoticInertia final : public InertiaSchedule {
 public:
  explicit ChaoticInertia(double base) : base_(base) {}
  double weight(const InertiaContext&) override {
    z_ = 4.0 * z_ * (1.0 - z_);  // logistic map, r = 4
    return base_ + 0.5 * z_;
  }
  std::string name() const override { return "chaotic"; }

 private:
  double base_;
  double z_ = 0.37;
};

class AdaptiveDistanceInertia final : public InertiaSchedule {
 public:
  AdaptiveDistanceInertia(double w_min, double w_max)
      : w_min_(w_min), w_max_(w_max) {}
  double weight(const InertiaContext& context) override {
    // Stalled particles (many near-zero-velocity iterations, still far from
    // their own best) get weights near w_max; freely moving particles decay
    // toward w_min as the run progresses.
    const double stall = 1.0 - std::exp(-0.5 * static_cast<double>(
                                                   context.stagnant_iters));
    const double spread =
        context.swarm_diversity > 0.0
            ? std::min(1.0, context.dist_to_pbest / context.swarm_diversity)
            : 0.0;
    const double boost = std::max(stall, 0.5 * spread);
    const double t = static_cast<double>(context.iteration) /
                     static_cast<double>(std::max<std::size_t>(
                         1, context.max_iterations - 1));
    const double base = w_min_ + (0.9 - w_min_) * (1.0 - std::min(1.0, t));
    return std::min(w_max_, base + (w_max_ - base) * boost);
  }
  std::string name() const override { return "adaptive-distance"; }

 private:
  double w_min_;
  double w_max_;
};

}  // namespace

std::unique_ptr<InertiaSchedule> constant_inertia(double w) {
  return std::make_unique<ConstantInertia>(w);
}

std::unique_ptr<InertiaSchedule> linear_decay_inertia(double w_start,
                                                      double w_end) {
  return std::make_unique<LinearDecayInertia>(w_start, w_end);
}

std::unique_ptr<InertiaSchedule> chaotic_inertia(double base) {
  return std::make_unique<ChaoticInertia>(base);
}

std::unique_ptr<InertiaSchedule> adaptive_distance_inertia(double w_min,
                                                           double w_max) {
  return std::make_unique<AdaptiveDistanceInertia>(w_min, w_max);
}

double AdaptiveQpInertia::solve_scalar_qp(double v, double d, double w_ref,
                                          double lambda, double w_min,
                                          double w_max) {
  // min_w (w v - d)^2 + lambda (w - w_ref)^2 over [w_min, w_max]:
  // stationary point w* = (v d + lambda w_ref) / (v^2 + lambda), clamped.
  const double denom = v * v + lambda;
  const double w_star = denom > 0.0 ? (v * d + lambda * w_ref) / denom : w_ref;
  return std::clamp(w_star, w_min, w_max);
}

double AdaptiveQpInertia::weight(const InertiaContext& context) {
  return solve_scalar_qp(context.velocity_norm, context.dist_to_gbest, w_ref_,
                         lambda_, w_min_, w_max_);
}

std::unique_ptr<InertiaSchedule> adaptive_qp_inertia(double w_min, double w_max,
                                                     double w_ref,
                                                     double lambda) {
  return std::make_unique<AdaptiveQpInertia>(w_min, w_max, w_ref, lambda);
}

}  // namespace rcr::pso
