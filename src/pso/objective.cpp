#include "rcr/pso/objective.hpp"

#include <cmath>
#include <numbers>

namespace rcr::pso {

namespace {
Objective make(std::string name, std::size_t n, double lo, double hi,
               std::function<double(const Vec&)> f, Vec opt, double opt_val) {
  Objective o;
  o.name = std::move(name);
  o.value = std::move(f);
  o.lower = Vec(n, lo);
  o.upper = Vec(n, hi);
  o.optimum = std::move(opt);
  o.optimum_value = opt_val;
  return o;
}
}  // namespace

Objective sphere(std::size_t n) {
  return make(
      "sphere", n, -5.12, 5.12,
      [](const Vec& x) {
        double acc = 0.0;
        for (double v : x) acc += v * v;
        return acc;
      },
      Vec(n, 0.0), 0.0);
}

Objective rosenbrock(std::size_t n) {
  return make(
      "rosenbrock", n, -2.048, 2.048,
      [](const Vec& x) {
        double acc = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) {
          const double a = x[i + 1] - x[i] * x[i];
          const double b = 1.0 - x[i];
          acc += 100.0 * a * a + b * b;
        }
        return acc;
      },
      Vec(n, 1.0), 0.0);
}

Objective rastrigin(std::size_t n) {
  return make(
      "rastrigin", n, -5.12, 5.12,
      [](const Vec& x) {
        double acc = 10.0 * static_cast<double>(x.size());
        for (double v : x)
          acc += v * v - 10.0 * std::cos(2.0 * std::numbers::pi * v);
        return acc;
      },
      Vec(n, 0.0), 0.0);
}

Objective ackley(std::size_t n) {
  return make(
      "ackley", n, -32.768, 32.768,
      [](const Vec& x) {
        const auto d = static_cast<double>(x.size());
        double sum_sq = 0.0;
        double sum_cos = 0.0;
        for (double v : x) {
          sum_sq += v * v;
          sum_cos += std::cos(2.0 * std::numbers::pi * v);
        }
        return -20.0 * std::exp(-0.2 * std::sqrt(sum_sq / d)) -
               std::exp(sum_cos / d) + 20.0 + std::numbers::e;
      },
      Vec(n, 0.0), 0.0);
}

Objective griewank(std::size_t n) {
  return make(
      "griewank", n, -600.0, 600.0,
      [](const Vec& x) {
        double sum = 0.0;
        double prod = 1.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          sum += x[i] * x[i] / 4000.0;
          prod *= std::cos(x[i] / std::sqrt(static_cast<double>(i + 1)));
        }
        return sum - prod + 1.0;
      },
      Vec(n, 0.0), 0.0);
}

std::vector<Objective> standard_suite(std::size_t n) {
  return {sphere(n), rosenbrock(n), rastrigin(n), ackley(n), griewank(n)};
}

}  // namespace rcr::pso
