#include "rcr/pso/swarm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rcr::pso {

namespace {

double swarm_diversity(const std::vector<Vec>& positions, const Vec& centroid) {
  double acc = 0.0;
  for (const auto& p : positions) acc += num::distance(p, centroid);
  return positions.empty() ? 0.0 : acc / static_cast<double>(positions.size());
}

}  // namespace

PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   InertiaSchedule* inertia) {
  if (config.swarm_size == 0)
    throw std::invalid_argument("pso::minimize: empty swarm");
  if (objective.dim() == 0)
    throw std::invalid_argument("pso::minimize: zero-dimensional objective");

  const std::size_t n = objective.dim();
  if (!config.integer_mask.empty() && config.integer_mask.size() != n)
    throw std::invalid_argument("pso::minimize: integer_mask size mismatch");
  const std::size_t swarm = config.swarm_size;
  num::Rng rng(config.seed);

  std::unique_ptr<InertiaSchedule> default_inertia;
  if (inertia == nullptr) {
    default_inertia = constant_inertia(0.7);
    inertia = default_inertia.get();
  }

  // Velocity clamp per dimension.
  Vec vmax(n);
  for (std::size_t j = 0; j < n; ++j)
    vmax[j] = config.velocity_clamp_fraction *
              (objective.upper[j] - objective.lower[j]);

  auto quantize = [&](Vec& x) {
    if (!config.integer_mask.empty()) {
      for (std::size_t j = 0; j < x.size(); ++j)
        if (config.integer_mask[j]) x[j] = std::round(x[j]);
    } else if (config.rounding == Rounding::kInteger) {
      for (double& v : x) v = std::round(v);
    }
  };

  // Initialization: uniform positions, small random velocities.
  std::vector<Vec> x(swarm), v(swarm), pbest(swarm);
  Vec pbest_val(swarm);
  std::vector<std::size_t> stagnant(swarm, 0);
  Vec gbest;
  double gbest_val = std::numeric_limits<double>::infinity();

  PsoResult result;
  for (std::size_t i = 0; i < swarm; ++i) {
    x[i].resize(n);
    v[i].resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      x[i][j] = rng.uniform(objective.lower[j], objective.upper[j]);
      v[i][j] = rng.uniform(-vmax[j], vmax[j]) * 0.1;
    }
    quantize(x[i]);
    pbest[i] = x[i];
    pbest_val[i] = objective.value(x[i]);
    ++result.evaluations;
    if (pbest_val[i] < gbest_val) {
      gbest_val = pbest_val[i];
      gbest = x[i];
    }
  }

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Centroid-based diversity feeds the adaptive schedules.
    Vec centroid(n, 0.0);
    for (const auto& p : x) num::axpy(1.0 / static_cast<double>(swarm), p, centroid);
    const double diversity = swarm_diversity(x, centroid);

    for (std::size_t i = 0; i < swarm; ++i) {
      InertiaContext ctx;
      ctx.iteration = iter;
      ctx.max_iterations = config.max_iterations;
      ctx.particle = i;
      ctx.velocity_norm = num::norm2(v[i]);
      ctx.dist_to_pbest = num::distance(x[i], pbest[i]);
      ctx.dist_to_gbest = num::distance(x[i], gbest);
      ctx.swarm_diversity = diversity;
      ctx.stagnant_iters = stagnant[i];
      const double w = inertia->weight(ctx);

      // Eq. 2: v <- iota*v + a1*[b1 .* (I - x)] + a2*[b2 .* (G - x)].
      for (std::size_t j = 0; j < n; ++j) {
        const double b1 = rng.uniform();
        const double b2 = rng.uniform();
        v[i][j] = w * v[i][j] + config.alpha1 * b1 * (pbest[i][j] - x[i][j]) +
                  config.alpha2 * b2 * (gbest[j] - x[i][j]);
        v[i][j] = std::clamp(v[i][j], -vmax[j], vmax[j]);
      }
      // Eq. 1: x <- x + v, then the MINLP quantization (the step that
      // creates the "artificial paradigm" of premature stagnation).
      for (std::size_t j = 0; j < n; ++j) {
        x[i][j] = std::clamp(x[i][j] + v[i][j], objective.lower[j],
                             objective.upper[j]);
      }
      quantize(x[i]);

      // Stagnation bookkeeping: in integer mode a sub-half-unit velocity
      // cannot move the particle, so count that as stalled too.
      const double vn = num::norm2(v[i]);
      const bool all_integer = config.integer_mask.empty()
                                   ? config.rounding == Rounding::kInteger
                                   : false;
      const bool stalled =
          vn < config.stagnation_velocity_eps ||
          (all_integer && num::norm_inf(v[i]) < 0.5);
      if (stalled) {
        if (++stagnant[i] == config.stagnation_patience)
          ++result.stagnation_events;
      } else {
        stagnant[i] = 0;
      }

      if (config.disperse_on_stagnation &&
          stagnant[i] >= config.stagnation_patience) {
        // Dispersion [15]: relaunch the particle from a random position with
        // a fresh velocity; its memory (pbest) is kept.
        for (std::size_t j = 0; j < n; ++j) {
          x[i][j] = rng.uniform(objective.lower[j], objective.upper[j]);
          v[i][j] = rng.uniform(-vmax[j], vmax[j]);
        }
        quantize(x[i]);
        stagnant[i] = 0;
        ++result.dispersions;
      }

      const double f = objective.value(x[i]);
      ++result.evaluations;
      if (f < pbest_val[i]) {
        pbest_val[i] = f;
        pbest[i] = x[i];
      }
      if (f < gbest_val) {
        gbest_val = f;
        gbest = x[i];
      }
    }

    result.best_value_history.push_back(gbest_val);
    result.iterations = iter + 1;
    if (config.target_value && gbest_val <= *config.target_value) {
      result.reached_target = true;
      break;
    }
  }

  std::size_t stalled_now = 0;
  for (std::size_t i = 0; i < swarm; ++i)
    if (stagnant[i] >= config.stagnation_patience) ++stalled_now;
  result.final_stagnant_fraction =
      static_cast<double>(stalled_now) / static_cast<double>(swarm);
  result.best_position = std::move(gbest);
  result.best_value = gbest_val;
  return result;
}

PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   const std::unique_ptr<InertiaSchedule>& inertia) {
  return minimize(objective, config, inertia.get());
}

}  // namespace rcr::pso
