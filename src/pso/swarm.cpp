#include "rcr/pso/swarm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"

namespace rcr::pso {

namespace {

double swarm_diversity(const std::vector<Vec>& positions, const Vec& centroid) {
  double acc = 0.0;
  for (const auto& p : positions) acc += num::distance(p, centroid);
  return positions.empty() ? 0.0 : acc / static_cast<double>(positions.size());
}

// SplitMix64-style mix of (seed, iteration, particle) into an Rng seed.
// Each particle draws from its own stream each iteration, so the update
// phase runs on any thread without perturbing another particle's draws and
// the trajectory is identical for every pool size.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t iteration,
                          std::uint64_t particle) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (iteration + 1) +
                    0xbf58476d1ce4e5b9ull * (particle + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

}  // namespace

PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   InertiaSchedule* inertia) {
  if (config.swarm_size == 0)
    throw std::invalid_argument("pso::minimize: empty swarm");
  if (objective.dim() == 0)
    throw std::invalid_argument("pso::minimize: zero-dimensional objective");

  const std::size_t n = objective.dim();
  if (!config.integer_mask.empty() && config.integer_mask.size() != n)
    throw std::invalid_argument("pso::minimize: integer_mask size mismatch");
  const std::size_t swarm = config.swarm_size;
  obs::Span span("pso.minimize");
  num::Rng rng(config.seed);

  std::unique_ptr<InertiaSchedule> default_inertia;
  if (inertia == nullptr) {
    default_inertia = constant_inertia(0.7);
    inertia = default_inertia.get();
  }

  // Velocity clamp per dimension.
  Vec vmax(n);
  for (std::size_t j = 0; j < n; ++j)
    vmax[j] = config.velocity_clamp_fraction *
              (objective.upper[j] - objective.lower[j]);

  auto quantize = [&](Vec& x) {
    if (!config.integer_mask.empty()) {
      for (std::size_t j = 0; j < x.size(); ++j)
        if (config.integer_mask[j]) x[j] = std::round(x[j]);
    } else if (config.rounding == Rounding::kInteger) {
      for (double& v : x) v = std::round(v);
    }
  };

  // Initialization: uniform positions, small random velocities.
  std::vector<Vec> x(swarm), v(swarm), pbest(swarm);
  Vec pbest_val(swarm);
  std::vector<std::size_t> stagnant(swarm, 0);
  Vec gbest;
  double gbest_val = std::numeric_limits<double>::infinity();

  PsoResult result;
  // Draw every particle's initial state from the master stream first, then
  // evaluate the swarm in parallel: objective.value must be safe to call
  // concurrently (every objective in this repo captures only const state).
  for (std::size_t i = 0; i < swarm; ++i) {
    x[i].resize(n);
    v[i].resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      x[i][j] = rng.uniform(objective.lower[j], objective.upper[j]);
      v[i][j] = rng.uniform(-vmax[j], vmax[j]) * 0.1;
    }
    quantize(x[i]);
    pbest[i] = x[i];
  }
  const bool faults_on = robust::faults::enabled();
  rt::parallel_for(0, swarm, 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      pbest_val[i] = objective.value(pbest[i]);
      // Keyed injection: the decision depends only on (seed, site, particle),
      // so it is identical for every RCR_THREADS chunking.
      if (faults_on &&
          robust::faults::should_inject("pso.objective.nan", i))
        pbest_val[i] = std::numeric_limits<double>::quiet_NaN();
    }
  });
  result.evaluations += swarm;
  for (std::size_t i = 0; i < swarm; ++i) {
    // NaN quarantine at init: a non-finite personal best must never seed the
    // swarm best; park the particle at +inf so any finite value displaces it.
    if (!std::isfinite(pbest_val[i])) {
      pbest_val[i] = std::numeric_limits<double>::infinity();
      ++result.nan_quarantines;
      continue;
    }
    if (pbest_val[i] < gbest_val) {
      gbest_val = pbest_val[i];
      gbest = x[i];
    }
  }
  if (gbest.empty()) {
    // Every initial evaluation was non-finite: nothing sound to move toward.
    result.status = robust::make_status(
        robust::StatusCode::kNumericalFailure,
        "all initial objective evaluations were non-finite");
    result.best_position = x.front();
    result.best_value = gbest_val;
    obs::counter_add("rcr.pso.solves");
    obs::counter_add("rcr.pso.evaluations", result.evaluations);
    obs::counter_add("rcr.pso.nan_quarantines", result.nan_quarantines);
    span.attr("generations", 0.0);
    span.attr("evaluations", static_cast<double>(result.evaluations));
    return result;
  }

  // Synchronous parallel iterations: every particle moves against the
  // iteration-start global best, the expensive objective evaluations fan
  // out across the pool, and pbest/gbest are folded in ascending particle
  // order afterwards -- the trajectory is bit-identical for any RCR_THREADS.
  Vec f(swarm, 0.0);
  Vec weights(swarm, 0.0);
  std::vector<std::uint8_t> hit_patience(swarm, 0);
  std::vector<std::uint8_t> dispersed(swarm, 0);
  std::atomic<bool> expired_mid{false};
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    if (config.budget.expired_at(iter) ||
        (faults_on && robust::faults::should_inject("pso.deadline"))) {
      result.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired at iteration " + std::to_string(iter));
      break;
    }
    // Centroid-based diversity feeds the adaptive schedules.
    Vec centroid(n, 0.0);
    for (const auto& p : x) num::axpy(1.0 / static_cast<double>(swarm), p, centroid);
    const double diversity = swarm_diversity(x, centroid);

    // Inertia schedules may be stateful (chaotic map), so weights are
    // computed serially in particle order before the parallel phase.
    for (std::size_t i = 0; i < swarm; ++i) {
      InertiaContext ctx;
      ctx.iteration = iter;
      ctx.max_iterations = config.max_iterations;
      ctx.particle = i;
      ctx.velocity_norm = num::norm2(v[i]);
      ctx.dist_to_pbest = num::distance(x[i], pbest[i]);
      ctx.dist_to_gbest = num::distance(x[i], gbest);
      ctx.swarm_diversity = diversity;
      ctx.stagnant_iters = stagnant[i];
      weights[i] = inertia->weight(ctx);
    }

    rt::parallel_for(0, swarm, 1, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        // In-body deadline check: a slow objective must not pin the pool past
        // the budget.  Skipped particles keep their personal best as this
        // iteration's value, which leaves the fold below well-defined.  Never
        // taken when no deadline is armed (expired() is then clock-free).
        if (config.budget.deadline.expired()) {
          expired_mid.store(true, std::memory_order_relaxed);
          hit_patience[i] = 0;
          dispersed[i] = 0;
          x[i] = pbest[i];
          f[i] = pbest_val[i];
          continue;
        }
        num::Rng stream(stream_seed(config.seed, iter, i));
        const double w = weights[i];
        hit_patience[i] = 0;
        dispersed[i] = 0;

        // Eq. 2: v <- iota*v + a1*[b1 .* (I - x)] + a2*[b2 .* (G - x)].
        for (std::size_t j = 0; j < n; ++j) {
          const double b1 = stream.uniform();
          const double b2 = stream.uniform();
          v[i][j] = w * v[i][j] + config.alpha1 * b1 * (pbest[i][j] - x[i][j]) +
                    config.alpha2 * b2 * (gbest[j] - x[i][j]);
          v[i][j] = std::clamp(v[i][j], -vmax[j], vmax[j]);
        }
        // Eq. 1: x <- x + v, then the MINLP quantization (the step that
        // creates the "artificial paradigm" of premature stagnation).
        for (std::size_t j = 0; j < n; ++j) {
          x[i][j] = std::clamp(x[i][j] + v[i][j], objective.lower[j],
                               objective.upper[j]);
        }
        quantize(x[i]);

        // Stagnation bookkeeping: in integer mode a sub-half-unit velocity
        // cannot move the particle, so count that as stalled too.
        const double vn = num::norm2(v[i]);
        const bool all_integer = config.integer_mask.empty()
                                     ? config.rounding == Rounding::kInteger
                                     : false;
        const bool stalled =
            vn < config.stagnation_velocity_eps ||
            (all_integer && num::norm_inf(v[i]) < 0.5);
        if (stalled) {
          if (++stagnant[i] == config.stagnation_patience)
            hit_patience[i] = 1;
        } else {
          stagnant[i] = 0;
        }

        if (config.disperse_on_stagnation &&
            stagnant[i] >= config.stagnation_patience) {
          // Dispersion [15]: relaunch the particle from a random position
          // with a fresh velocity; its memory (pbest) is kept.
          for (std::size_t j = 0; j < n; ++j) {
            x[i][j] = stream.uniform(objective.lower[j], objective.upper[j]);
            v[i][j] = stream.uniform(-vmax[j], vmax[j]);
          }
          quantize(x[i]);
          stagnant[i] = 0;
          dispersed[i] = 1;
        }

        f[i] = objective.value(x[i]);
        // Keyed on (iteration, particle): deterministic for any chunking.
        if (faults_on && robust::faults::should_inject("pso.objective.nan",
                                                       iter * swarm + i))
          f[i] = std::numeric_limits<double>::quiet_NaN();
      }
    });

    for (std::size_t i = 0; i < swarm; ++i) {
      ++result.evaluations;
      result.stagnation_events += hit_patience[i];
      result.dispersions += dispersed[i];
      // NaN quarantine: a poisoned evaluation is re-seeded from the
      // particle's personal best -- position and value -- so it can never
      // propagate into pbest/gbest.  Serial fold => deterministic for any
      // RCR_THREADS.
      if (!std::isfinite(f[i])) {
        ++result.nan_quarantines;
        x[i] = pbest[i];
        f[i] = pbest_val[i];
      }
      if (f[i] < pbest_val[i]) {
        pbest_val[i] = f[i];
        pbest[i] = x[i];
      }
      if (f[i] < gbest_val) {
        gbest_val = f[i];
        gbest = x[i];
      }
    }

    result.best_value_history.push_back(gbest_val);
    result.iterations = iter + 1;
    if (expired_mid.load(std::memory_order_relaxed)) {
      result.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired during evaluation at iteration " +
              std::to_string(iter));
      break;
    }
    if (config.target_value && gbest_val <= *config.target_value) {
      result.reached_target = true;
      break;
    }
  }

  std::size_t stalled_now = 0;
  for (std::size_t i = 0; i < swarm; ++i)
    if (stagnant[i] >= config.stagnation_patience) ++stalled_now;
  result.final_stagnant_fraction =
      static_cast<double>(stalled_now) / static_cast<double>(swarm);
  result.best_position = std::move(gbest);
  result.best_value = gbest_val;
  obs::counter_add("rcr.pso.solves");
  obs::counter_add("rcr.pso.generations", result.iterations);
  obs::counter_add("rcr.pso.evaluations", result.evaluations);
  obs::counter_add("rcr.pso.nan_quarantines", result.nan_quarantines);
  span.attr("generations", static_cast<double>(result.iterations));
  span.attr("evaluations", static_cast<double>(result.evaluations));
  span.attr("nan_quarantines", static_cast<double>(result.nan_quarantines));
  span.attr("best_value", result.best_value);
  return result;
}

PsoResult minimize(const Objective& objective, const PsoConfig& config,
                   const std::unique_ptr<InertiaSchedule>& inertia) {
  return minimize(objective, config, inertia.get());
}

}  // namespace rcr::pso
