#include "rcr/qos/channel.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::qos {

double spectral_efficiency(double snr) { return std::log2(1.0 + snr); }

namespace {

void fill_gains(const ChannelConfig& config, const Vec& distances,
                num::Rng& rng, ChannelRealization& out) {
  const double noise_w = std::pow(10.0, (config.noise_power_dbm - 30.0) / 10.0);
  const double ref_gain = std::pow(10.0, config.reference_gain_db / 10.0);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    const double pathloss =
        ref_gain * std::pow(distances[u], -config.pathloss_exponent);
    for (std::size_t rb = 0; rb < config.num_rbs; ++rb) {
      // Rayleigh amplitude with unit average power: |h|^2 ~ Exp(1).
      const double amp = rng.rayleigh(1.0 / std::sqrt(2.0));
      out.gain(u, rb) = pathloss * amp * amp / noise_w;
    }
  }
}

}  // namespace

ChannelRealization make_channel_faded(const ChannelConfig& config,
                                      const Vec& distances,
                                      std::uint64_t fade_seed) {
  if (distances.size() != config.num_users)
    throw std::invalid_argument("make_channel_faded: distance count mismatch");
  num::Rng rng(fade_seed);
  ChannelRealization out;
  out.gain = Matrix(config.num_users, config.num_rbs);
  out.user_distance_m = distances;
  fill_gains(config, distances, rng, out);
  return out;
}

ChannelRealization make_channel(const ChannelConfig& config) {
  num::Rng rng(config.seed);
  ChannelRealization out;
  out.gain = Matrix(config.num_users, config.num_rbs);
  out.user_distance_m.resize(config.num_users);

  for (std::size_t u = 0; u < config.num_users; ++u) {
    // Uniform over the cell area: d = R * sqrt(U(0,1)), floored.
    out.user_distance_m[u] = std::max(
        config.min_distance_m,
        config.cell_radius_m * std::sqrt(rng.uniform(0.0, 1.0)));
  }
  fill_gains(config, out.user_distance_m, rng, out);
  return out;
}

}  // namespace rcr::qos
