// OFDM channel model for the 5G QoS problems of Sec. I: per-user, per-
// resource-block channel gains from log-distance path loss with Rayleigh
// fading, normalized by noise power.  Deterministic given the seed.
#pragma once

#include <cstdint>

#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::qos {

using num::Matrix;

/// Scenario parameters.
struct ChannelConfig {
  std::size_t num_users = 4;
  std::size_t num_rbs = 8;        ///< Frequency-time resource blocks.
  double cell_radius_m = 500.0;
  double min_distance_m = 35.0;
  double pathloss_exponent = 3.5;
  double reference_gain_db = -30.0;  ///< Gain at 1 m.
  double noise_power_dbm = -100.0;
  std::uint64_t seed = 1;
};

/// Channel realization: normalized gains g(u, rb) such that a transmit power
/// p (in watts) on RB rb for user u yields SNR = p * g(u, rb).
struct ChannelRealization {
  Matrix gain;         ///< num_users x num_rbs, linear scale.
  Vec user_distance_m; ///< Drawn distances.

  std::size_t num_users() const { return gain.rows(); }
  std::size_t num_rbs() const { return gain.cols(); }
};

/// Draw a channel realization (distances and fading together).
ChannelRealization make_channel(const ChannelConfig& config);

/// Redraw only the fast fading for fixed user distances (slow path loss);
/// used by the multi-slot RRM scheduler so users keep their geometry.
/// Throws std::invalid_argument when distances.size() != num_users.
ChannelRealization make_channel_faded(const ChannelConfig& config,
                                      const Vec& distances,
                                      std::uint64_t fade_seed);

/// Shannon spectral efficiency log2(1 + snr) in bit/s/Hz.
double spectral_efficiency(double snr);

}  // namespace rcr::qos
