// Multi-RAT (Radio Access Technology) selection (Sec. I): assign users to
// RATs "each with its own QoS requirements" -- a capacity-constrained
// assignment MINLP.
//
//   maximize   sum_u utility(u, rat_u)
//   subject to |{u : rat_u = r}| <= capacity_r
//              latency(u, rat_u) <= latency_budget_u
#pragma once

#include <cstdint>
#include <optional>

#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::qos {

/// Problem data for multi-RAT selection.
struct MultiRatProblem {
  num::Matrix rate;      ///< users x RATs achievable rate.
  num::Matrix latency;   ///< users x RATs latency (ms).
  std::vector<std::size_t> capacity;  ///< Per-RAT connection capacity.
  Vec latency_budget;    ///< Per-user latency requirement (ms).

  std::size_t num_users() const { return rate.rows(); }
  std::size_t num_rats() const { return rate.cols(); }
  void validate() const;  ///< Throws std::invalid_argument on inconsistency.
};

/// A selection: one RAT index per user (or kUnassigned when dropped).
inline constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

struct MultiRatSolution {
  std::vector<std::size_t> rat_of_user;
  double total_rate = 0.0;
  std::size_t users_served = 0;
  bool feasible = false;  ///< Capacities respected and latency budgets met
                          ///< for every *served* user.
};

/// Random instance: eMBB-style wide-band RAT, URLLC-style low-latency RAT,
/// legacy RAT; users drawn with mixed requirements.
MultiRatProblem random_multirat(std::size_t users, std::uint64_t seed);

/// Exact solver (branch and bound over users; exponential, for small
/// instances).  `max_nodes` caps the search.
MultiRatSolution solve_multirat_exact(const MultiRatProblem& problem,
                                      std::size_t max_nodes = 2000000);

/// Greedy: users in decreasing best-rate order take their best feasible RAT
/// with remaining capacity.
MultiRatSolution solve_multirat_greedy(const MultiRatProblem& problem);

/// Evaluate a given selection.
MultiRatSolution evaluate_selection(const MultiRatProblem& problem,
                                    const std::vector<std::size_t>& selection);

}  // namespace rcr::qos
