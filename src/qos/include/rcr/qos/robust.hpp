// Degradation-aware front doors for the QoS solvers: each request walks a
// fallback chain (tightest solver first) and returns a usable answer tagged
// with how it was obtained, instead of dying on a runtime failure or
// blowing through a deadline.
//
//   RRA:       exact branch-and-bound -> integer PSO -> greedy + repair
//   multi-RAT: exact branch-and-bound -> greedy
//   slicing:   exact knapsack DP      -> greedy density
//
// Every step records why its predecessor failed in the degradation trail;
// the soundness tag says whether the winning step is exact or heuristic.
#pragma once

#include <string>

#include "rcr/qos/multirat.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/qos/slicing.hpp"
#include "rcr/robust/fallback.hpp"

namespace rcr::qos {

/// Options for the robust RRA chain.
struct RraRobustOptions {
  robust::Deadline deadline;            ///< Shared across the whole chain.
  std::size_t max_nodes = 2000000;      ///< Exact-search node budget.
  RraPsoOptions pso;                    ///< PSO step configuration.
};

/// Chain outcome for the robust solvers.
template <typename SolutionT>
struct QosRobustResult {
  SolutionT solution;
  std::string method;  ///< Name of the step that produced the solution.
  robust::Soundness soundness = robust::Soundness::kHeuristic;
  robust::Status status;  ///< Trail names every fallback taken.
  std::size_t attempts = 0;
};

using RraRobustResult = QosRobustResult<RraSolution>;
using MultiRatRobustResult = QosRobustResult<MultiRatSolution>;
using SlicingRobustResult = QosRobustResult<SlicingSolution>;

/// RRA with degradation: exact -> PSO -> greedy.  Never throws on runtime
/// failure; the worst case is a greedy (heuristic) allocation.
RraRobustResult solve_rra_robust(const RraProblem& problem,
                                 const RraRobustOptions& options = {});

/// Multi-RAT selection with degradation: exact -> greedy.
MultiRatRobustResult solve_multirat_robust(const MultiRatProblem& problem,
                                           std::size_t max_nodes = 2000000,
                                           const robust::Deadline& deadline =
                                               robust::Deadline());

/// Slicing admission with degradation: exact DP -> greedy density.
SlicingRobustResult solve_slicing_robust(const SlicingProblem& problem,
                                         const robust::Deadline& deadline =
                                             robust::Deadline());

}  // namespace rcr::qos
