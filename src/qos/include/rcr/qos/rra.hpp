// Radio Resource Allocation -- the paper's flagship MINLP (Sec. I):
// "optimally assigning frequency-time blocks (integer variables) to a number
// of served connections while simultaneously determining the appropriate
// transmit powers (continuous variables)".
//
//   maximize   sum_rb log2(1 + p_rb * g(a_rb, rb))
//   subject to sum_rb p_rb <= P_max,  p_rb >= 0
//              a_rb in {0..U-1}            (RB exclusivity)
//              rate_u >= min_rate_u        (per-user QoS)
//
// Solvers: exact enumeration/branch-and-bound, continuous relaxation upper
// bound, greedy max-gain, and integer-rounded PSO -- the E11 comparison set.
#pragma once

#include <optional>
#include <string>

#include "rcr/qos/channel.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::qos {

/// Problem data.
struct RraProblem {
  Matrix gain;          ///< users x RBs normalized channel gains.
  double total_power = 1.0;   ///< P_max (watts).
  Vec min_rate;         ///< Per-user minimum sum rate (bit/s/Hz); may be 0.

  std::size_t num_users() const { return gain.rows(); }
  std::size_t num_rbs() const { return gain.cols(); }
  void validate() const;  ///< Throws std::invalid_argument on inconsistency.
};

/// RB-to-user assignment (one user index per RB).
using Assignment = std::vector<std::size_t>;

/// A complete solution.
struct RraSolution {
  Assignment assignment;
  Vec power;            ///< Per-RB transmit power.
  double sum_rate = 0.0;
  Vec user_rate;        ///< Achieved per-user rates.
  bool feasible = false;  ///< All QoS minima met.
  std::size_t nodes_explored = 0;  ///< Exact solver accounting.
};

/// Water-filling over the RBs of a fixed assignment: maximize sum rate
/// subject to the power budget only (no per-user minima).  Gains must be
/// positive; zero-gain RBs receive no power.
Vec waterfill(const Vec& gains, double total_power);

/// Each RB assigned to its best-gain user: the seed shared by the greedy
/// solver, the relaxation bound, and the serve tick loop.  Ties go to the
/// lowest user index (deterministic).
Assignment best_gain_assignment(const RraProblem& problem);

/// Per-RB effective gains under a fixed assignment:
/// gains[rb] = gain(assignment[rb], rb).  Throws std::invalid_argument on an
/// assignment of the wrong length or with out-of-range user indices.
Vec assigned_gains(const RraProblem& problem, const Assignment& assignment);

/// Constraint residuals of an externally produced allocation — the
/// conformance grader's feasibility probe.  All violations are reported as
/// nonnegative magnitudes (0 = satisfied).
struct AllocationResiduals {
  double budget_excess = 0.0;    ///< max(0, sum(power) - total_power).
  double negative_power = 0.0;   ///< max(0, -min(power)).
  bool assignment_valid = true;  ///< Right length, in-range user indices.

  double max_violation() const {
    return budget_excess > negative_power ? budget_excess : negative_power;
  }
};

/// Measure `power`/`assignment` against the problem's power constraints.
/// Unlike assigned_gains this never throws: a malformed assignment is itself
/// the finding (assignment_valid = false).  Non-finite powers report an
/// infinite violation.
AllocationResiduals allocation_residuals(const RraProblem& problem,
                                         const Assignment& assignment,
                                         const Vec& power);

/// Achieved per-user rates of an externally produced allocation:
/// rate[u] = sum over RBs assigned to u of log2(1 + power[rb] * gain(u, rb)).
/// Throws std::invalid_argument on a malformed assignment or power length.
Vec per_user_rates(const RraProblem& problem, const Assignment& assignment,
                   const Vec& power);

/// Two-phase power allocation for a fixed assignment: first the minimum
/// power meeting each user's QoS floor (on that user's best assigned RBs),
/// then water-filling of the residual budget.  Returns std::nullopt when the
/// QoS floors alone exceed the budget.
std::optional<Vec> qos_power_allocation(const RraProblem& problem,
                                        const Assignment& assignment);

/// Evaluate a (possibly infeasible) assignment with QoS-aware powers.
RraSolution evaluate_assignment(const RraProblem& problem,
                                const Assignment& assignment);

/// Exact solver: depth-first branch-and-bound over assignments with an
/// optimistic bound (best-gain relaxation) for pruning.
/// Throws std::invalid_argument when users^RBs would overflow the budget
/// of `max_nodes`... the search simply reports the best found with
/// `nodes_explored` == max_nodes when the budget is hit.
RraSolution solve_exact(const RraProblem& problem,
                        std::size_t max_nodes = 2000000);

/// Budget-aware exact solver: the DFS checks the wall-clock deadline every
/// 64 nodes and stops on expiry, reporting the best assignment found so far
/// with status kDeadlineExpired (usable, not exact).  A node-budget hit
/// reports kNonConverged; a completed search reports kOk.
robust::Result<RraSolution> solve_exact_budgeted(
    const RraProblem& problem, std::size_t max_nodes = 2000000,
    const robust::Budget& budget = {});

/// Continuous relaxation upper bound: every RB served by its best-gain user,
/// QoS minima dropped, water-filled power.  Always >= the exact optimum.
double relaxation_upper_bound(const RraProblem& problem);

/// Greedy baseline: each RB to its best-gain user, equal power split, then a
/// repair pass that reassigns RBs toward QoS-violating users.
RraSolution solve_greedy(const RraProblem& problem);

/// Minimum transmit power that meets every user's QoS floor under a fixed
/// assignment (Sec. I's "without excessive allocation of network
/// resources"); std::nullopt when some constrained user holds no RB.
std::optional<double> minimum_power_for_qos(const RraProblem& problem,
                                            const Assignment& assignment);

/// Power-minimization outcome.
struct MinPowerSolution {
  Assignment assignment;
  double power = 0.0;          ///< Total transmit power needed.
  bool feasible = false;       ///< A serving assignment exists.
  std::size_t nodes_explored = 0;
};

/// Exact assignment search minimizing the total power that meets the QoS
/// floors (ignores the budget; compare the result against total_power to
/// decide admission).
MinPowerSolution solve_min_power_exact(const RraProblem& problem,
                                       std::size_t max_nodes = 2000000);

/// Greedy baseline: each user takes its strongest RBs round-robin.
MinPowerSolution solve_min_power_greedy(const RraProblem& problem);

/// PSO-based solver (integer-rounded particles over the assignment vector,
/// penalized QoS violations) -- the paper's MINLP-via-PSO route.
struct RraPsoOptions {
  std::size_t swarm_size = 24;
  std::size_t max_iterations = 120;
  double qos_penalty = 50.0;  ///< Scaled by the relaxation bound internally.
  std::uint64_t seed = 5;
  bool adaptive_inertia = true;  ///< Adaptive-QP schedule vs constant 0.7.
  robust::Budget budget;         ///< Forwarded to the swarm; unlimited default.
};
RraSolution solve_pso(const RraProblem& problem,
                      const RraPsoOptions& options = {});

}  // namespace rcr::qos
