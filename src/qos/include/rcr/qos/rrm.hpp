// Radio Resource Management across time (Sec. I): a multi-slot scheduler
// serving "connections with varied QoS requirements".
//
// Each slot, every resource block goes to one user according to the policy;
// rates follow the per-slot fading realization.  Policies:
//  - max-rate (spectral-efficiency-greedy, starves cell-edge users),
//  - round-robin (fair in slots, wasteful in rate),
//  - proportional fair (the production default: marginal rate over average
//    throughput), and
//  - QoS-aware PF: PF weight boosted for users below their GBR floor.
#pragma once

#include <cstdint>
#include <string>

#include "rcr/qos/channel.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::qos {

/// Scheduling policy.
enum class SchedulerPolicy { kMaxRate, kRoundRobin, kProportionalFair,
                             kQosProportionalFair };

std::string to_string(SchedulerPolicy p);

/// Scenario configuration.
struct RrmConfig {
  std::size_t num_users = 4;
  std::size_t num_rbs = 8;
  std::size_t num_slots = 200;
  double power_per_rb = 0.125;       ///< Fixed per-RB transmit power (W).
  Vec gbr;                           ///< Guaranteed bit rate per user
                                     ///< (bit/s/Hz, averaged); may be empty.
  double pf_smoothing = 0.05;        ///< EWMA factor for average throughput.
  double qos_boost = 4.0;            ///< Weight multiplier below the GBR.
  std::uint64_t seed = 1;
  ChannelConfig channel;             ///< num_users/num_rbs overridden.
  /// Wall-clock budget; unlimited by default.  On expiry the run stops at
  /// the current slot and reports statistics over the completed slots.
  robust::Budget budget;
};

/// Scheduler outcome.
struct RrmReport {
  Vec mean_rate;                 ///< Per-user average rate over the run.
  double cell_throughput = 0.0;  ///< Sum of mean rates.
  double jain_fairness = 0.0;    ///< Jain's index over mean rates, in (0,1].
  std::size_t gbr_violations = 0;  ///< Users below their GBR at the end.
  std::vector<std::size_t> slots_served;  ///< Slots in which each user got
                                          ///< at least one RB.
  std::size_t slots_completed = 0;  ///< == num_slots unless the deadline fired.
  /// kOk normally, kDeadlineExpired when the run was cut short (statistics
  /// then cover only the completed slots).
  robust::Status status;
};

/// Run the scheduler for the configured number of slots.
/// Throws std::invalid_argument on inconsistent configuration.
RrmReport run_scheduler(const RrmConfig& config, SchedulerPolicy policy);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
double jain_index(const Vec& x);

}  // namespace rcr::qos
