// Network-slicing admission control across the three 5G service categories
// (eMBB / URLLC / mMTC, Sec. I): requests ask for resource blocks; admit a
// subset maximizing utility under the RB budget -- an exact-DP-solvable
// knapsack with per-class QoS weighting, plus the greedy baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/numerics/rng.hpp"

namespace rcr::qos {

/// 5G service categories.
enum class ServiceClass { kEmbb, kUrllc, kMmtc };

std::string to_string(ServiceClass c);

/// One slice request.
struct SliceRequest {
  ServiceClass service = ServiceClass::kEmbb;
  std::size_t rb_demand = 1;   ///< Resource blocks required.
  double utility = 1.0;        ///< Operator value when admitted.
};

/// Admission problem: requests against a total RB budget.
struct SlicingProblem {
  std::vector<SliceRequest> requests;
  std::size_t rb_budget = 0;
};

/// Admission decision.
struct SlicingSolution {
  std::vector<bool> admitted;
  double total_utility = 0.0;
  std::size_t rbs_used = 0;
  std::size_t admitted_count = 0;
};

/// Random workload: URLLC requests are small but high-utility (reliability
/// premium), eMBB large and moderately valued, mMTC tiny and cheap.
SlicingProblem random_slicing(std::size_t requests, std::size_t rb_budget,
                              std::uint64_t seed);

/// Exact 0/1-knapsack dynamic program (pseudo-polynomial in rb_budget).
SlicingSolution solve_slicing_exact(const SlicingProblem& problem);

/// Greedy by utility-per-RB density.
SlicingSolution solve_slicing_greedy(const SlicingProblem& problem);

}  // namespace rcr::qos
