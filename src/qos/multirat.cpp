#include "rcr/qos/multirat.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rcr::qos {

void MultiRatProblem::validate() const {
  if (rate.empty()) throw std::invalid_argument("MultiRatProblem: empty rate");
  if (latency.rows() != rate.rows() || latency.cols() != rate.cols())
    throw std::invalid_argument("MultiRatProblem: latency shape mismatch");
  if (capacity.size() != rate.cols())
    throw std::invalid_argument("MultiRatProblem: capacity size mismatch");
  if (latency_budget.size() != rate.rows())
    throw std::invalid_argument("MultiRatProblem: budget size mismatch");
}

MultiRatProblem random_multirat(std::size_t users, std::uint64_t seed) {
  num::Rng rng(seed);
  MultiRatProblem p;
  const std::size_t rats = 3;
  p.rate = num::Matrix(users, rats);
  p.latency = num::Matrix(users, rats);
  p.capacity = {std::max<std::size_t>(1, users / 2),
                std::max<std::size_t>(1, users / 3),
                users};  // legacy RAT never runs out
  p.latency_budget.resize(users);

  for (std::size_t u = 0; u < users; ++u) {
    // RAT 0: eMBB millimeter-wave -- high rate, moderate latency.
    p.rate(u, 0) = rng.uniform(80.0, 150.0);
    p.latency(u, 0) = rng.uniform(8.0, 20.0);
    // RAT 1: URLLC slice -- modest rate, very low latency.
    p.rate(u, 1) = rng.uniform(10.0, 30.0);
    p.latency(u, 1) = rng.uniform(0.5, 2.0);
    // RAT 2: legacy wide-area -- low rate, high latency.
    p.rate(u, 2) = rng.uniform(5.0, 15.0);
    p.latency(u, 2) = rng.uniform(25.0, 60.0);
    // A third of users are latency-critical.
    p.latency_budget[u] = (u % 3 == 0) ? rng.uniform(1.5, 5.0)
                                       : rng.uniform(20.0, 80.0);
  }
  return p;
}

MultiRatSolution evaluate_selection(
    const MultiRatProblem& problem, const std::vector<std::size_t>& selection) {
  MultiRatSolution sol;
  sol.rat_of_user = selection;
  sol.feasible = true;
  std::vector<std::size_t> load(problem.num_rats(), 0);
  for (std::size_t u = 0; u < selection.size(); ++u) {
    const std::size_t r = selection[u];
    if (r == kUnassigned) continue;
    if (r >= problem.num_rats())
      throw std::invalid_argument("evaluate_selection: RAT index out of range");
    ++load[r];
    ++sol.users_served;
    sol.total_rate += problem.rate(u, r);
    if (problem.latency(u, r) > problem.latency_budget[u]) sol.feasible = false;
  }
  for (std::size_t r = 0; r < problem.num_rats(); ++r)
    if (load[r] > problem.capacity[r]) sol.feasible = false;
  return sol;
}

namespace {

struct RatSearch {
  const MultiRatProblem& problem;
  std::size_t max_nodes;
  std::vector<std::size_t> load;
  std::vector<std::size_t> current;
  MultiRatSolution best;
  std::size_t nodes = 0;
  double best_possible_rest = 0.0;  // unused placeholder for clarity

  void dfs(std::size_t user, double rate_so_far, std::size_t served_so_far) {
    if (nodes >= max_nodes) return;
    if (user == problem.num_users()) {
      ++nodes;
      if (rate_so_far > best.total_rate ||
          (best.rat_of_user.empty() && best.users_served == 0)) {
        best.rat_of_user = current;
        best.total_rate = rate_so_far;
        best.users_served = served_so_far;
        best.feasible = true;  // construction maintains feasibility
      }
      return;
    }
    // Optimistic bound: every remaining user gets its best feasible rate.
    double bound = rate_so_far;
    for (std::size_t v = user; v < problem.num_users(); ++v) {
      double b = 0.0;
      for (std::size_t r = 0; r < problem.num_rats(); ++r)
        if (problem.latency(v, r) <= problem.latency_budget[v])
          b = std::max(b, problem.rate(v, r));
      bound += b;
    }
    if (bound <= best.total_rate) return;

    for (std::size_t r = 0; r < problem.num_rats(); ++r) {
      if (load[r] >= problem.capacity[r]) continue;
      if (problem.latency(user, r) > problem.latency_budget[user]) continue;
      ++load[r];
      current[user] = r;
      dfs(user + 1, rate_so_far + problem.rate(user, r), served_so_far + 1);
      --load[r];
      if (nodes >= max_nodes) return;
    }
    // Option: drop the user.
    current[user] = kUnassigned;
    dfs(user + 1, rate_so_far, served_so_far);
    current[user] = kUnassigned;
  }
};

}  // namespace

MultiRatSolution solve_multirat_exact(const MultiRatProblem& problem,
                                      std::size_t max_nodes) {
  problem.validate();
  RatSearch search{problem,
                   max_nodes,
                   std::vector<std::size_t>(problem.num_rats(), 0),
                   std::vector<std::size_t>(problem.num_users(), kUnassigned),
                   MultiRatSolution{},
                   0,
                   0.0};
  search.dfs(0, 0.0, 0);
  return search.best;
}

MultiRatSolution solve_multirat_greedy(const MultiRatProblem& problem) {
  problem.validate();
  std::vector<std::size_t> order(problem.num_users());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    auto best = [&](std::size_t u) {
      double v = 0.0;
      for (std::size_t r = 0; r < problem.num_rats(); ++r)
        if (problem.latency(u, r) <= problem.latency_budget[u])
          v = std::max(v, problem.rate(u, r));
      return v;
    };
    return best(a) > best(b);
  });

  std::vector<std::size_t> selection(problem.num_users(), kUnassigned);
  std::vector<std::size_t> load(problem.num_rats(), 0);
  for (std::size_t u : order) {
    double best_rate = -1.0;
    std::size_t best_rat = kUnassigned;
    for (std::size_t r = 0; r < problem.num_rats(); ++r) {
      if (load[r] >= problem.capacity[r]) continue;
      if (problem.latency(u, r) > problem.latency_budget[u]) continue;
      if (problem.rate(u, r) > best_rate) {
        best_rate = problem.rate(u, r);
        best_rat = r;
      }
    }
    if (best_rat != kUnassigned) {
      selection[u] = best_rat;
      ++load[best_rat];
    }
  }
  return evaluate_selection(problem, selection);
}

}  // namespace rcr::qos
