#include "rcr/qos/robust.hpp"

#include <utility>

namespace rcr::qos {

namespace {

template <typename SolutionT>
QosRobustResult<SolutionT> from_outcome(robust::ChainOutcome<SolutionT> o) {
  QosRobustResult<SolutionT> r;
  r.solution = std::move(o.value);
  r.method = std::move(o.step);
  r.soundness = o.soundness;
  r.status = std::move(o.status);
  r.attempts = o.attempts;
  return r;
}

}  // namespace

RraRobustResult solve_rra_robust(const RraProblem& problem,
                                 const RraRobustOptions& options) {
  problem.validate();

  robust::Budget exact_budget;
  exact_budget.deadline = options.deadline;
  RraPsoOptions pso_opts = options.pso;
  if (pso_opts.budget.deadline.is_unlimited())
    pso_opts.budget.deadline = options.deadline;

  robust::FallbackChain<RraSolution> chain("rra");
  chain.add("exact", robust::Soundness::kExact, [&]() {
    robust::Result<RraSolution> r =
        solve_exact_budgeted(problem, options.max_nodes, exact_budget);
    if (r.status.ok() && !r.value.feasible)
      r.status = robust::make_status(
          robust::StatusCode::kInfeasible,
          "no assignment meets every QoS floor within the power budget");
    return r;
  });
  chain.add("pso", robust::Soundness::kHeuristic, [&]() {
    robust::Result<RraSolution> r;
    r.value = solve_pso(problem, pso_opts);
    if (options.deadline.expired()) {
      r.status = robust::make_status(robust::StatusCode::kDeadlineExpired,
                                     "deadline fired during PSO search");
    } else if (!r.value.feasible) {
      r.status = robust::make_status(
          robust::StatusCode::kNonConverged,
          "PSO best assignment violates a QoS floor");
    }
    return r;
  });
  chain.add("greedy", robust::Soundness::kHeuristic, [&]() {
    robust::Result<RraSolution> r;
    r.value = solve_greedy(problem);
    if (!r.value.feasible)
      r.status = robust::make_status(
          robust::StatusCode::kNonConverged,
          "greedy + repair still violates a QoS floor");
    return r;
  });
  return from_outcome(chain.run(options.deadline));
}

MultiRatRobustResult solve_multirat_robust(const MultiRatProblem& problem,
                                           std::size_t max_nodes,
                                           const robust::Deadline& deadline) {
  problem.validate();
  robust::FallbackChain<MultiRatSolution> chain("multirat");
  chain.add("exact", robust::Soundness::kExact, [&]() {
    robust::Result<MultiRatSolution> r;
    r.value = solve_multirat_exact(problem, max_nodes);
    if (deadline.expired())
      r.status = robust::make_status(robust::StatusCode::kDeadlineExpired,
                                     "deadline fired during exact search");
    else if (!r.value.feasible)
      r.status = robust::make_status(robust::StatusCode::kNonConverged,
                                     "exact search returned no feasible "
                                     "selection within the node budget");
    return r;
  });
  chain.add("greedy", robust::Soundness::kHeuristic, [&]() {
    robust::Result<MultiRatSolution> r;
    r.value = solve_multirat_greedy(problem);
    if (!r.value.feasible)
      r.status = robust::make_status(robust::StatusCode::kNonConverged,
                                     "greedy selection infeasible");
    return r;
  });
  return from_outcome(chain.run(deadline));
}

SlicingRobustResult solve_slicing_robust(const SlicingProblem& problem,
                                         const robust::Deadline& deadline) {
  robust::FallbackChain<SlicingSolution> chain("slicing");
  chain.add("exact-dp", robust::Soundness::kExact, [&]() {
    robust::Result<SlicingSolution> r;
    r.value = solve_slicing_exact(problem);
    if (deadline.expired())
      r.status = robust::make_status(robust::StatusCode::kDeadlineExpired,
                                     "deadline fired during knapsack DP");
    return r;
  });
  chain.add("greedy", robust::Soundness::kHeuristic, [&]() {
    robust::Result<SlicingSolution> r;
    r.value = solve_slicing_greedy(problem);
    return r;
  });
  return from_outcome(chain.run(deadline));
}

}  // namespace rcr::qos
