#include "rcr/qos/rra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "rcr/pso/swarm.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::qos {

void RraProblem::validate() const {
  if (gain.empty()) throw std::invalid_argument("RraProblem: empty gain matrix");
  if (min_rate.size() != gain.rows())
    throw std::invalid_argument("RraProblem: min_rate size != users");
  if (total_power <= 0.0)
    throw std::invalid_argument("RraProblem: non-positive power budget");
  for (double g : gain.data())
    if (g < 0.0) throw std::invalid_argument("RraProblem: negative gain");
}

Vec waterfill(const Vec& gains, double total_power) {
  // p_i = max(0, mu - 1/g_i) with mu chosen so sum p_i = total_power.
  Vec p(gains.size(), 0.0);
  double inv_min = std::numeric_limits<double>::infinity();
  bool any = false;
  for (double g : gains) {
    if (g > 0.0) {
      any = true;
      inv_min = std::min(inv_min, 1.0 / g);
    }
  }
  if (!any || total_power <= 0.0) return p;

  auto used = [&](double mu) {
    double acc = 0.0;
    for (double g : gains)
      if (g > 0.0) acc += std::max(0.0, mu - 1.0 / g);
    return acc;
  };
  double lo = inv_min;
  double hi = inv_min + total_power + 1.0;
  while (used(hi) < total_power) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (used(mid) < total_power) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  for (std::size_t i = 0; i < gains.size(); ++i)
    if (gains[i] > 0.0) p[i] = std::max(0.0, hi - 1.0 / gains[i]);
  return p;
}

namespace {

// Minimal-power water level for a user to reach `target_rate` on the RBs
// with the given gains; returns the per-RB powers.  Infinite cost when the
// user has no usable RB.
std::optional<Vec> min_power_for_rate(const Vec& gains, double target_rate) {
  bool any = false;
  for (double g : gains)
    if (g > 0.0) any = true;
  if (!any) return std::nullopt;
  if (target_rate <= 0.0) return Vec(gains.size(), 0.0);

  auto rate_at = [&](double mu) {
    double acc = 0.0;
    for (double g : gains)
      if (g > 0.0) {
        const double p = std::max(0.0, mu - 1.0 / g);
        acc += std::log2(1.0 + p * g);
      }
    return acc;
  };
  double lo = 0.0;
  double hi = 1.0;
  while (rate_at(hi) < target_rate && hi < 1e12) hi *= 2.0;
  if (rate_at(hi) < target_rate) return std::nullopt;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (rate_at(mid) < target_rate) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  Vec p(gains.size(), 0.0);
  for (std::size_t i = 0; i < gains.size(); ++i)
    if (gains[i] > 0.0) p[i] = std::max(0.0, hi - 1.0 / gains[i]);
  return p;
}

}  // namespace

std::optional<Vec> qos_power_allocation(const RraProblem& problem,
                                        const Assignment& assignment) {
  const std::size_t n_rb = problem.num_rbs();
  Vec power(n_rb, 0.0);
  double spent = 0.0;

  // Phase 1: minimum power per QoS-constrained user on its own RBs.
  for (std::size_t u = 0; u < problem.num_users(); ++u) {
    if (problem.min_rate[u] <= 0.0) continue;
    Vec gains(n_rb, 0.0);
    bool has_rb = false;
    for (std::size_t rb = 0; rb < n_rb; ++rb)
      if (assignment[rb] == u) {
        gains[rb] = problem.gain(u, rb);
        has_rb = true;
      }
    if (!has_rb) return std::nullopt;
    const auto p_min = min_power_for_rate(gains, problem.min_rate[u]);
    if (!p_min) return std::nullopt;
    for (std::size_t rb = 0; rb < n_rb; ++rb) {
      power[rb] += (*p_min)[rb];
      spent += (*p_min)[rb];
    }
  }
  if (spent > problem.total_power * (1.0 + 1e-9)) return std::nullopt;

  // Phase 2: water-fill the residual budget over all RBs, starting from the
  // phase-1 powers: q_rb = max(0, mu - (1/g + p0)).
  const double residual = problem.total_power - spent;
  if (residual > 0.0) {
    Vec offset_inv(n_rb, std::numeric_limits<double>::infinity());
    for (std::size_t rb = 0; rb < n_rb; ++rb) {
      const double g = problem.gain(assignment[rb], rb);
      if (g > 0.0) offset_inv[rb] = 1.0 / g + power[rb];
    }
    auto used = [&](double mu) {
      double acc = 0.0;
      for (double o : offset_inv)
        if (std::isfinite(o)) acc += std::max(0.0, mu - o);
      return acc;
    };
    double lo = 0.0;
    double hi = residual + 1.0;
    for (double o : offset_inv)
      if (std::isfinite(o)) hi = std::max(hi, o + residual);
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (used(mid) < residual) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    for (std::size_t rb = 0; rb < n_rb; ++rb)
      if (std::isfinite(offset_inv[rb]))
        power[rb] += std::max(0.0, hi - offset_inv[rb]);
  }
  return power;
}

RraSolution evaluate_assignment(const RraProblem& problem,
                                const Assignment& assignment) {
  RraSolution sol;
  sol.assignment = assignment;
  auto power = qos_power_allocation(problem, assignment);
  if (!power) {
    // QoS-infeasible assignment: fall back to plain water-filling so the
    // solution still reports an achieved rate.
    Vec gains(problem.num_rbs());
    for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb)
      gains[rb] = problem.gain(assignment[rb], rb);
    sol.power = waterfill(gains, problem.total_power);
  } else {
    sol.power = *power;
  }

  sol.user_rate.assign(problem.num_users(), 0.0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
    const std::size_t u = assignment[rb];
    sol.user_rate[u] +=
        std::log2(1.0 + sol.power[rb] * problem.gain(u, rb));
  }
  sol.sum_rate = 0.0;
  for (double r : sol.user_rate) sol.sum_rate += r;
  sol.feasible = power.has_value();
  for (std::size_t u = 0; u < problem.num_users(); ++u)
    if (sol.user_rate[u] < problem.min_rate[u] - 1e-9) sol.feasible = false;
  return sol;
}

Assignment best_gain_assignment(const RraProblem& problem) {
  problem.validate();
  Assignment assignment(problem.num_rbs(), 0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
    std::size_t best = 0;
    for (std::size_t u = 1; u < problem.num_users(); ++u)
      if (problem.gain(u, rb) > problem.gain(best, rb)) best = u;
    assignment[rb] = best;
  }
  return assignment;
}

Vec assigned_gains(const RraProblem& problem, const Assignment& assignment) {
  if (assignment.size() != problem.num_rbs())
    throw std::invalid_argument("assigned_gains: assignment length mismatch");
  Vec gains(problem.num_rbs(), 0.0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
    if (assignment[rb] >= problem.num_users())
      throw std::invalid_argument("assigned_gains: user index out of range");
    gains[rb] = problem.gain(assignment[rb], rb);
  }
  return gains;
}

AllocationResiduals allocation_residuals(const RraProblem& problem,
                                         const Assignment& assignment,
                                         const Vec& power) {
  AllocationResiduals residuals;
  if (assignment.size() != problem.num_rbs() ||
      power.size() != problem.num_rbs()) {
    residuals.assignment_valid = false;
    return residuals;
  }
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
    if (assignment[rb] >= problem.num_users()) {
      residuals.assignment_valid = false;
      return residuals;
    }
  }
  double total = 0.0;
  for (double p : power) {
    if (!std::isfinite(p)) {
      residuals.budget_excess = std::numeric_limits<double>::infinity();
      residuals.negative_power = std::numeric_limits<double>::infinity();
      return residuals;
    }
    total += p;
    if (-p > residuals.negative_power) residuals.negative_power = -p;
  }
  if (total > problem.total_power)
    residuals.budget_excess = total - problem.total_power;
  return residuals;
}

Vec per_user_rates(const RraProblem& problem, const Assignment& assignment,
                   const Vec& power) {
  if (power.size() != problem.num_rbs())
    throw std::invalid_argument("per_user_rates: power length mismatch");
  const Vec gains = assigned_gains(problem, assignment);  // validates
  Vec rates(problem.num_users(), 0.0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb)
    rates[assignment[rb]] += std::log2(1.0 + power[rb] * gains[rb]);
  return rates;
}

double relaxation_upper_bound(const RraProblem& problem) {
  Vec best_gain(problem.num_rbs(), 0.0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb)
    for (std::size_t u = 0; u < problem.num_users(); ++u)
      best_gain[rb] = std::max(best_gain[rb], problem.gain(u, rb));
  const Vec p = waterfill(best_gain, problem.total_power);
  double rate = 0.0;
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb)
    rate += std::log2(1.0 + p[rb] * best_gain[rb]);
  return rate;
}

namespace {

struct ExactSearch {
  const RraProblem& problem;
  std::size_t max_nodes;
  Vec best_gain_per_rb;          // for the optimistic bound
  RraSolution best;              // best feasible (or best overall)
  bool have_feasible = false;
  std::size_t nodes = 0;
  Assignment current;
  const robust::Budget* budget = nullptr;  // optional wall-clock budget
  bool faults_on = false;
  bool expired = false;

  double optimistic_bound() const {
    // Each RB could get the whole budget on the best remaining gain: a valid
    // (loose) upper bound on the total achievable rate of any completion.
    double ub = 0.0;
    for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
      const double g = rb < current.size()
                           ? problem.gain(current[rb], rb)
                           : best_gain_per_rb[rb];
      ub += std::log2(1.0 + problem.total_power * g);
    }
    return ub;
  }

  void dfs() {
    if (nodes >= max_nodes || expired) return;
    if (current.size() == problem.num_rbs()) {
      ++nodes;
      // Deadline check every 64 evaluated leaves: cheap enough to leave on,
      // frequent enough that a stalled evaluation can't overshoot far.
      if (budget != nullptr && (nodes & 63u) == 0 &&
          budget->deadline.expired()) {
        expired = true;
        return;
      }
      if (faults_on) robust::faults::maybe_stall("qos.exact.stall");
      RraSolution sol = evaluate_assignment(problem, current);
      const bool better =
          (sol.feasible && !have_feasible) ||
          (sol.feasible == have_feasible && sol.sum_rate > best.sum_rate) ||
          best.assignment.empty();
      if (better && (sol.feasible || !have_feasible)) {
        best = sol;
        have_feasible = have_feasible || sol.feasible;
      }
      return;
    }
    if (have_feasible && optimistic_bound() <= best.sum_rate) return;  // prune
    for (std::size_t u = 0; u < problem.num_users(); ++u) {
      current.push_back(u);
      dfs();
      current.pop_back();
      if (nodes >= max_nodes || expired) return;
    }
  }
};

}  // namespace

RraSolution solve_exact(const RraProblem& problem, std::size_t max_nodes) {
  return solve_exact_budgeted(problem, max_nodes).value;
}

robust::Result<RraSolution> solve_exact_budgeted(const RraProblem& problem,
                                                 std::size_t max_nodes,
                                                 const robust::Budget& budget) {
  problem.validate();
  ExactSearch search{problem, max_nodes, Vec(problem.num_rbs(), 0.0),
                     RraSolution{}, false, 0, {}};
  search.budget = budget.deadline.is_unlimited() ? nullptr : &budget;
  search.faults_on = robust::faults::enabled();
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb)
    for (std::size_t u = 0; u < problem.num_users(); ++u)
      search.best_gain_per_rb[rb] =
          std::max(search.best_gain_per_rb[rb], problem.gain(u, rb));
  search.dfs();
  search.best.nodes_explored = search.nodes;

  robust::Result<RraSolution> out;
  out.value = std::move(search.best);
  if (search.expired) {
    out.status = robust::make_status(
        robust::StatusCode::kDeadlineExpired,
        "exact search deadline fired after " + std::to_string(search.nodes) +
            " nodes; best-found assignment returned");
  } else if (search.nodes >= max_nodes) {
    out.status = robust::make_status(
        robust::StatusCode::kNonConverged,
        "exact search node budget exhausted (" + std::to_string(max_nodes) +
            "); best-found assignment returned");
  }
  return out;
}

RraSolution solve_greedy(const RraProblem& problem) {
  problem.validate();
  Assignment assignment(problem.num_rbs(), 0);
  for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
    std::size_t best_u = 0;
    for (std::size_t u = 1; u < problem.num_users(); ++u)
      if (problem.gain(u, rb) > problem.gain(best_u, rb)) best_u = u;
    assignment[rb] = best_u;
  }
  RraSolution sol = evaluate_assignment(problem, assignment);

  // Repair pass: hand RBs to QoS-starved users (best relative gain first).
  for (int round = 0; round < 8 && !sol.feasible; ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < problem.num_users(); ++u) {
      if (sol.user_rate[u] >= problem.min_rate[u] - 1e-9) continue;
      double best_ratio = -1.0;
      std::size_t best_rb = 0;
      for (std::size_t rb = 0; rb < problem.num_rbs(); ++rb) {
        if (assignment[rb] == u) continue;
        const double owner_gain = problem.gain(assignment[rb], rb);
        const double ratio =
            problem.gain(u, rb) / std::max(owner_gain, 1e-30);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_rb = rb;
        }
      }
      if (best_ratio >= 0.0) {
        assignment[best_rb] = u;
        changed = true;
      }
    }
    if (!changed) break;
    sol = evaluate_assignment(problem, assignment);
  }
  return sol;
}

std::optional<double> minimum_power_for_qos(const RraProblem& problem,
                                            const Assignment& assignment) {
  const std::size_t n_rb = problem.num_rbs();
  double total = 0.0;
  for (std::size_t u = 0; u < problem.num_users(); ++u) {
    if (problem.min_rate[u] <= 0.0) continue;
    Vec gains(n_rb, 0.0);
    bool has_rb = false;
    for (std::size_t rb = 0; rb < n_rb; ++rb)
      if (assignment[rb] == u) {
        gains[rb] = problem.gain(u, rb);
        has_rb = true;
      }
    if (!has_rb) return std::nullopt;
    const auto p_min = min_power_for_rate(gains, problem.min_rate[u]);
    if (!p_min) return std::nullopt;
    for (double p : *p_min) total += p;
  }
  return total;
}

namespace {

struct MinPowerSearch {
  const RraProblem& problem;
  std::size_t max_nodes;
  MinPowerSolution best;
  std::size_t nodes = 0;
  Assignment current;

  void dfs() {
    if (nodes >= max_nodes) return;
    if (current.size() == problem.num_rbs()) {
      ++nodes;
      const auto power = minimum_power_for_qos(problem, current);
      if (power && (!best.feasible || *power < best.power)) {
        best.feasible = true;
        best.power = *power;
        best.assignment = current;
      }
      return;
    }
    for (std::size_t u = 0; u < problem.num_users(); ++u) {
      current.push_back(u);
      dfs();
      current.pop_back();
      if (nodes >= max_nodes) return;
    }
  }
};

}  // namespace

MinPowerSolution solve_min_power_exact(const RraProblem& problem,
                                       std::size_t max_nodes) {
  problem.validate();
  MinPowerSearch search{problem, max_nodes, MinPowerSolution{}, 0, {}};
  search.dfs();
  search.best.nodes_explored = search.nodes;
  return search.best;
}

MinPowerSolution solve_min_power_greedy(const RraProblem& problem) {
  problem.validate();
  const std::size_t n_rb = problem.num_rbs();
  const std::size_t users = problem.num_users();

  // Round-robin over users; each pick takes the user's strongest free RB.
  Assignment assignment(n_rb, 0);
  std::vector<bool> taken(n_rb, false);
  std::size_t assigned = 0;
  while (assigned < n_rb) {
    for (std::size_t u = 0; u < users && assigned < n_rb; ++u) {
      double best_gain = -1.0;
      std::size_t best_rb = 0;
      for (std::size_t rb = 0; rb < n_rb; ++rb)
        if (!taken[rb] && problem.gain(u, rb) > best_gain) {
          best_gain = problem.gain(u, rb);
          best_rb = rb;
        }
      if (best_gain >= 0.0) {
        assignment[best_rb] = u;
        taken[best_rb] = true;
        ++assigned;
      }
    }
  }

  MinPowerSolution sol;
  sol.assignment = assignment;
  const auto power = minimum_power_for_qos(problem, assignment);
  sol.feasible = power.has_value();
  sol.power = power.value_or(0.0);
  return sol;
}

RraSolution solve_pso(const RraProblem& problem, const RraPsoOptions& options) {
  problem.validate();
  const std::size_t n_rb = problem.num_rbs();
  const auto users = static_cast<double>(problem.num_users());

  pso::Objective objective;
  objective.name = "rra";
  objective.lower = Vec(n_rb, 0.0);
  objective.upper = Vec(n_rb, users - 1.0);
  objective.optimum = Vec(n_rb, 0.0);
  objective.optimum_value = -1e30;  // unknown; unused by the solver
  // Scale the QoS penalty by the achievable rate so no feasible solution is
  // ever dominated by an infeasible one with a slightly higher raw rate.
  const double penalty_scale =
      options.qos_penalty * (1.0 + relaxation_upper_bound(problem));
  objective.value = [&problem, penalty_scale](const Vec& x) {
    Assignment a(x.size());
    for (std::size_t rb = 0; rb < x.size(); ++rb)
      a[rb] = static_cast<std::size_t>(
          std::clamp(std::llround(x[rb]), 0ll,
                     static_cast<long long>(problem.num_users() - 1)));
    const RraSolution sol = evaluate_assignment(problem, a);
    double penalty = 0.0;
    for (std::size_t u = 0; u < problem.num_users(); ++u)
      penalty += std::max(0.0, problem.min_rate[u] - sol.user_rate[u]);
    return -sol.sum_rate + penalty_scale * penalty;
  };

  pso::PsoConfig config;
  config.swarm_size = options.swarm_size;
  config.max_iterations = options.max_iterations;
  config.rounding = pso::Rounding::kInteger;
  config.seed = options.seed;
  config.disperse_on_stagnation = true;
  config.budget = options.budget;

  std::unique_ptr<pso::InertiaSchedule> schedule =
      options.adaptive_inertia ? pso::adaptive_qp_inertia()
                               : pso::constant_inertia(0.7);
  const pso::PsoResult r = pso::minimize(objective, config, schedule.get());

  Assignment a(n_rb);
  for (std::size_t rb = 0; rb < n_rb; ++rb)
    a[rb] = static_cast<std::size_t>(
        std::clamp(std::llround(r.best_position[rb]), 0ll,
                   static_cast<long long>(problem.num_users() - 1)));
  RraSolution sol = evaluate_assignment(problem, a);
  sol.nodes_explored = r.evaluations;
  return sol;
}

}  // namespace rcr::qos
