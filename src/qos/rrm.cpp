#include "rcr/qos/rrm.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "rcr/robust/fault_injection.hpp"

namespace rcr::qos {

std::string to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kMaxRate:
      return "max-rate";
    case SchedulerPolicy::kRoundRobin:
      return "round-robin";
    case SchedulerPolicy::kProportionalFair:
      return "proportional-fair";
    case SchedulerPolicy::kQosProportionalFair:
      return "qos-pf";
  }
  return "?";
}

double jain_index(const Vec& x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

RrmReport run_scheduler(const RrmConfig& config, SchedulerPolicy policy) {
  const std::size_t users = config.num_users;
  const std::size_t rbs = config.num_rbs;
  if (users == 0 || rbs == 0 || config.num_slots == 0)
    throw std::invalid_argument("run_scheduler: empty scenario");
  if (!config.gbr.empty() && config.gbr.size() != users)
    throw std::invalid_argument("run_scheduler: gbr size mismatch");
  if (config.power_per_rb <= 0.0)
    throw std::invalid_argument("run_scheduler: non-positive power");

  // Draw user geometry once; only the fast fading changes slot to slot.
  ChannelConfig base = config.channel;
  base.num_users = users;
  base.num_rbs = rbs;
  base.seed = config.seed;
  const Vec distances = make_channel(base).user_distance_m;

  Vec avg(users, 1e-6);  // EWMA throughput (avoid division by zero)
  Vec total(users, 0.0);
  std::vector<std::size_t> served(users, 0);
  std::size_t rr_cursor = 0;
  RrmReport report;
  const bool faults_on = robust::faults::enabled();

  std::size_t slots_done = 0;
  for (std::size_t slot = 0; slot < config.num_slots; ++slot) {
    // Early-stop on the wall-clock budget: scheduling is per-slot work, so
    // the statistics over the completed slots are still well-defined.
    if (config.budget.expired_at(slot) ||
        (faults_on && robust::faults::should_inject("rrm.deadline"))) {
      report.status = robust::make_status(
          robust::StatusCode::kDeadlineExpired,
          "deadline fired after " + std::to_string(slot) + " of " +
              std::to_string(config.num_slots) + " slots");
      break;
    }
    const ChannelRealization ch =
        make_channel_faded(base, distances, config.seed + 1000 + slot);

    Vec slot_rate(users, 0.0);
    for (std::size_t rb = 0; rb < rbs; ++rb) {
      std::size_t pick = 0;
      switch (policy) {
        case SchedulerPolicy::kMaxRate: {
          for (std::size_t u = 1; u < users; ++u)
            if (ch.gain(u, rb) > ch.gain(pick, rb)) pick = u;
          break;
        }
        case SchedulerPolicy::kRoundRobin: {
          pick = rr_cursor;
          rr_cursor = (rr_cursor + 1) % users;
          break;
        }
        case SchedulerPolicy::kProportionalFair:
        case SchedulerPolicy::kQosProportionalFair: {
          double best = -1.0;
          for (std::size_t u = 0; u < users; ++u) {
            const double inst = spectral_efficiency(
                config.power_per_rb * ch.gain(u, rb));
            double metric = inst / avg[u];
            if (policy == SchedulerPolicy::kQosProportionalFair &&
                !config.gbr.empty() && avg[u] < config.gbr[u]) {
              metric *= config.qos_boost;
            }
            if (metric > best) {
              best = metric;
              pick = u;
            }
          }
          break;
        }
      }
      slot_rate[pick] +=
          spectral_efficiency(config.power_per_rb * ch.gain(pick, rb));
    }

    for (std::size_t u = 0; u < users; ++u) {
      if (slot_rate[u] > 0.0) ++served[u];
      total[u] += slot_rate[u];
      avg[u] = (1.0 - config.pf_smoothing) * avg[u] +
               config.pf_smoothing * slot_rate[u];
    }
    ++slots_done;
  }

  report.slots_completed = slots_done;
  report.mean_rate.resize(users);
  for (std::size_t u = 0; u < users; ++u) {
    report.mean_rate[u] =
        slots_done == 0 ? 0.0 : total[u] / static_cast<double>(slots_done);
    report.cell_throughput += report.mean_rate[u];
  }
  report.jain_fairness = jain_index(report.mean_rate);
  if (!config.gbr.empty()) {
    for (std::size_t u = 0; u < users; ++u)
      if (report.mean_rate[u] < config.gbr[u]) ++report.gbr_violations;
  }
  report.slots_served = std::move(served);
  return report;
}

}  // namespace rcr::qos
