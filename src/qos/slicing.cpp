#include "rcr/qos/slicing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rcr::qos {

std::string to_string(ServiceClass c) {
  switch (c) {
    case ServiceClass::kEmbb:
      return "eMBB";
    case ServiceClass::kUrllc:
      return "URLLC";
    case ServiceClass::kMmtc:
      return "mMTC";
  }
  return "?";
}

SlicingProblem random_slicing(std::size_t requests, std::size_t rb_budget,
                              std::uint64_t seed) {
  num::Rng rng(seed);
  SlicingProblem p;
  p.rb_budget = rb_budget;
  for (std::size_t i = 0; i < requests; ++i) {
    SliceRequest r;
    const int k = rng.uniform_int(0, 2);
    if (k == 0) {
      r.service = ServiceClass::kEmbb;
      r.rb_demand = static_cast<std::size_t>(rng.uniform_int(6, 16));
      r.utility = rng.uniform(4.0, 10.0);
    } else if (k == 1) {
      r.service = ServiceClass::kUrllc;
      r.rb_demand = static_cast<std::size_t>(rng.uniform_int(2, 5));
      r.utility = rng.uniform(5.0, 9.0);  // reliability premium
    } else {
      r.service = ServiceClass::kMmtc;
      r.rb_demand = 1;
      r.utility = rng.uniform(0.3, 1.2);
    }
    p.requests.push_back(r);
  }
  return p;
}

SlicingSolution solve_slicing_exact(const SlicingProblem& problem) {
  const std::size_t n = problem.requests.size();
  const std::size_t budget = problem.rb_budget;

  // Classic 0/1 knapsack table with choice reconstruction.
  std::vector<std::vector<double>> value(n + 1,
                                         std::vector<double>(budget + 1, 0.0));
  for (std::size_t i = 1; i <= n; ++i) {
    const SliceRequest& r = problem.requests[i - 1];
    for (std::size_t b = 0; b <= budget; ++b) {
      value[i][b] = value[i - 1][b];
      if (r.rb_demand <= b) {
        const double take = value[i - 1][b - r.rb_demand] + r.utility;
        if (take > value[i][b]) value[i][b] = take;
      }
    }
  }

  // Standard reconstruction: item i was taken exactly when the table value
  // changed between rows i and i+1 at the current budget.
  SlicingSolution sol;
  sol.admitted.assign(n, false);
  std::size_t b = budget;
  for (std::size_t i = n; i-- > 0;) {
    if (value[i + 1][b] != value[i][b]) {
      sol.admitted[i] = true;
      b -= problem.requests[i].rb_demand;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sol.admitted[i]) {
      sol.total_utility += problem.requests[i].utility;
      sol.rbs_used += problem.requests[i].rb_demand;
      ++sol.admitted_count;
    }
  }
  return sol;
}

SlicingSolution solve_slicing_greedy(const SlicingProblem& problem) {
  std::vector<std::size_t> order(problem.requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto density = [&](std::size_t i) {
      return problem.requests[i].utility /
             static_cast<double>(problem.requests[i].rb_demand);
    };
    return density(a) > density(b);
  });

  SlicingSolution sol;
  sol.admitted.assign(problem.requests.size(), false);
  std::size_t remaining = problem.rb_budget;
  for (std::size_t i : order) {
    const SliceRequest& r = problem.requests[i];
    if (r.rb_demand <= remaining) {
      sol.admitted[i] = true;
      remaining -= r.rb_demand;
      sol.total_utility += r.utility;
      sol.rbs_used += r.rb_demand;
      ++sol.admitted_count;
    }
  }
  return sol;
}

}  // namespace rcr::qos
