#include "rcr/rcr/adaptive.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::core {

Vec solve_inertia_qp_closed_form(const InertiaQpInstance& instance) {
  if (instance.velocity_norm.size() != instance.dist_to_gbest.size())
    throw std::invalid_argument("InertiaQpInstance: size mismatch");
  Vec w(instance.velocity_norm.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = pso::AdaptiveQpInertia::solve_scalar_qp(
        instance.velocity_norm[i], instance.dist_to_gbest[i], instance.w_ref,
        instance.lambda, instance.w_min, instance.w_max);
  return w;
}

Vec solve_inertia_qp_barrier(const InertiaQpInstance& instance) {
  const std::size_t n = instance.velocity_norm.size();
  if (n != instance.dist_to_gbest.size())
    throw std::invalid_argument("InertiaQpInstance: size mismatch");

  // The batch problem is separable, and the objective expands to
  //   sum_i (v_i^2 + lambda) w_i^2 - 2 (v_i d_i + lambda w_ref) w_i + const,
  // i.e. a diagonal convex QP with box constraints -> barrier solver.
  opt::Qp qp;
  qp.p = opt::Matrix(n, n);
  qp.q.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = instance.velocity_norm[i];
    const double d = instance.dist_to_gbest[i];
    qp.p(i, i) = 2.0 * (v * v + instance.lambda);
    qp.q[i] = -2.0 * (v * d + instance.lambda * instance.w_ref);
  }
  // Box: w <= w_max and -w <= -w_min.
  qp.g = opt::Matrix(2 * n, n);
  qp.h.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    qp.g(i, i) = 1.0;
    qp.h[i] = instance.w_max;
    qp.g(n + i, i) = -1.0;
    qp.h[n + i] = -instance.w_min;
  }

  // The reference weight is strictly interior, so it is a valid start.
  const Vec start(n, 0.5 * (instance.w_min + instance.w_max));
  const opt::QcqpResult r = opt::solve_qp(qp, start);
  if (!r.converged)
    throw std::runtime_error("solve_inertia_qp_barrier: " + r.message);
  return r.x;
}

double inertia_qp_consistency(const InertiaQpInstance& instance) {
  const Vec a = solve_inertia_qp_closed_form(instance);
  const Vec b = solve_inertia_qp_barrier(instance);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace rcr::core
