// Phase 3 of the RCR stack: adaptive inertial weighting as a convex
// optimization problem (the paper's "M-GNU-O accelerant", Secs. II-A-2 and
// III).  The per-particle weight QP
//
//   min_w  (w v - d)^2 + lambda (w - w_ref)^2   s.t.  w_min <= w <= w_max
//
// is solved two ways: the closed-form clamped ridge estimate used inside the
// PSO loop (pso::AdaptiveQpInertia) and the general-purpose barrier QP solver
// (opt::solve_qp).  Keeping both wired together lets the tests and the E12
// bench certify that the fast path solves the *same* convex program the
// paper frames -- the "succession of convex optimization problems" claim.
#pragma once

#include "rcr/opt/qcqp.hpp"
#include "rcr/pso/inertia.hpp"

namespace rcr::core {

/// Inertia-QP instance for a batch of particles.
struct InertiaQpInstance {
  Vec velocity_norm;   ///< v_i per particle.
  Vec dist_to_gbest;   ///< d_i per particle.
  double w_ref = 0.7;
  double lambda = 0.5;
  double w_min = 0.3;
  double w_max = 1.4;
};

/// Closed-form per-particle solution (what the PSO loop uses).
Vec solve_inertia_qp_closed_form(const InertiaQpInstance& instance);

/// The same QP solved by the general barrier method (reference/cross-check);
/// returns the per-particle weights.
Vec solve_inertia_qp_barrier(const InertiaQpInstance& instance);

/// Max |closed_form - barrier| over the batch (the M-GNU-O consistency
/// check the tests assert on).
double inertia_qp_consistency(const InertiaQpInstance& instance);

}  // namespace rcr::core
