// The RCR architectural stack (paper Fig. 1): three mutually enabling
// phases orchestrated end to end.
//
//   Phase 3  adaptive inertial weighting (convex QP per iteration)
//      |
//   Phase 2  discrete PSO tunes the MSY3I hyperparameters
//      |
//   Phase 1  the tuned MSY3I is trained (with convex-relaxation adversarial
//            training for its dense verification head), certified layer-wise,
//            and applied to 5G QoS convex optimization problems.
//
// RcrStack::run() executes the full pipeline on seeded synthetic workloads
// and returns the consolidated report the E12 bench prints.
#pragma once

#include <cstdint>

#include "rcr/nn/msy3i.hpp"
#include "rcr/qos/robust.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/rcr/adaptive.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"
#include "rcr/verify/certified.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr::core {

/// Stack configuration (sizes kept laptop-scale; all phases seeded).
struct RcrStackConfig {
  // Data.
  std::size_t image_size = 16;
  std::size_t train_per_class = 20;
  std::size_t test_per_class = 10;
  double noise_stddev = 0.05;

  // Phase 2 (discrete PSO over MSY3I hyperparameters).
  std::size_t pso_swarm = 6;
  std::size_t pso_iterations = 8;
  std::size_t tuning_epochs = 3;   ///< Short proxy training per evaluation.
  double param_weight = 0.02;      ///< Objective: -accuracy + w * params/1e4.

  // Phase 1 (final training + certification + QoS).
  std::size_t final_epochs = 12;
  double certify_epsilon = 0.08;
  std::size_t certify_epochs = 40;
  std::size_t qos_users = 3;
  std::size_t qos_rbs = 6;

  std::uint64_t seed = 11;

  /// Wall-clock deadline for the whole pipeline; unlimited by default.
  /// Checked between phases (each phase is one unit of degradation): on
  /// expiry the remaining phases are skipped and the report carries
  /// kDeadlineExpired plus whatever phases did complete.
  robust::Deadline deadline;
};

/// Phase-2 outcome.
struct TuningResult {
  nn::Msy3iConfig best_config;
  double best_objective = 0.0;
  double best_accuracy = 0.0;
  std::size_t evaluations = 0;
};

/// Consolidated report.
struct RcrStackReport {
  double inertia_qp_consistency = 0.0;  ///< Phase-3 cross-check residual.
  TuningResult tuning;                  ///< Phase 2.
  nn::TrainReport final_training;       ///< Phase 1a: tuned MSY3I.
  nn::TrainReport untuned_training;     ///< Default config for comparison.
  verify::CertifiedTrainReport certified;  ///< Phase 1b: robust dense head.
  verify::TightnessReport tightness;    ///< Layer-wise IBP-vs-CROWN widths.
  verify::AlphaTightenResult alpha;     ///< Layer-wise slope optimization on
                                        ///< the certified net's margin spec.
  qos::RraSolution qos_pso;             ///< Phase 1c: QoS via RCR PSO.
  qos::RraSolution qos_exact;           ///< Oracle for the gap.
  double qos_relaxation_bound = 0.0;
  /// Phase 1c through the fault-tolerant chain (exact -> PSO -> greedy);
  /// records which solver answered and with what soundness.
  qos::RraRobustResult qos_robust;
  std::size_t phases_completed = 0;     ///< Of the 5 pipeline phases.
  /// kOk when every phase ran; kDeadlineExpired when the pipeline stopped
  /// early.  The trail absorbs the QoS chain's degradation events.
  robust::Status status;
};

/// The full pipeline.
class RcrStack {
 public:
  explicit RcrStack(const RcrStackConfig& config) : config_(config) {}

  /// Execute Phase 3 -> 2 -> 1 and return the consolidated report.
  RcrStackReport run();

  /// Phase 2 in isolation (used by tests).
  TuningResult tune_hyperparameters();

 private:
  RcrStackConfig config_;
};

}  // namespace rcr::core
