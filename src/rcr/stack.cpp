#include "rcr/rcr/stack.hpp"

#include <cmath>
#include <map>
#include <string>

#include "rcr/obs/obs.hpp"
#include "rcr/pso/discrete.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/signal/spectrogram.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr::core {

namespace {

std::vector<nn::ImageSample> to_image_samples(
    const std::vector<sig::ClassSample>& samples) {
  std::vector<nn::ImageSample> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    nn::ImageSample img;
    img.pixels = s.image.pixels;
    img.height = s.image.height;
    img.width = s.image.width;
    img.label = s.label;
    out.push_back(std::move(img));
  }
  return out;
}

/// The Phase-2 search space: the MSY3I knobs the paper says the PSO reduces
/// and tunes.
std::vector<pso::CategoricalAttribute> msy3i_search_space() {
  return {
      {"stem_filters", {4.0, 8.0}},
      {"fire_squeeze", {2.0, 4.0}},
      {"fire_expand", {4.0, 8.0}},
      {"num_fire_blocks", {1.0, 2.0}},
      {"learning_rate", {1e-3, 3e-3}},
  };
}

nn::Msy3iConfig config_from_assignment(
    const std::vector<pso::CategoricalAttribute>& space,
    const pso::DiscreteAssignment& a, std::size_t image_size,
    std::uint64_t seed, double* learning_rate) {
  nn::Msy3iConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = sig::modulation_classes().size();
  cfg.stem_filters = static_cast<std::size_t>(space[0].values[a[0]]);
  cfg.fire_squeeze = static_cast<std::size_t>(space[1].values[a[1]]);
  cfg.fire_expand = static_cast<std::size_t>(space[2].values[a[2]]);
  cfg.num_fire_blocks = static_cast<std::size_t>(space[3].values[a[3]]);
  cfg.use_special_fire = true;
  cfg.seed = seed;
  *learning_rate = space[4].values[a[4]];
  return cfg;
}

}  // namespace

TuningResult RcrStack::tune_hyperparameters() {
  num::Rng data_rng(config_.seed);
  const auto train = to_image_samples(sig::make_classification_dataset(
      config_.train_per_class, config_.image_size, config_.noise_stddev,
      data_rng));
  const auto val = to_image_samples(sig::make_classification_dataset(
      config_.test_per_class, config_.image_size, config_.noise_stddev,
      data_rng));

  const auto space = msy3i_search_space();

  // Memoize evaluations: the swarm revisits assignments often.
  std::map<pso::DiscreteAssignment, std::pair<double, double>> cache;
  auto objective = [&](const pso::DiscreteAssignment& a) {
    if (auto it = cache.find(a); it != cache.end()) return it->second.first;
    double lr = 1e-3;
    const nn::Msy3iConfig cfg = config_from_assignment(
        space, a, config_.image_size, config_.seed + 100, &lr);
    nn::Sequential net = nn::build_msy3i_classifier(cfg);
    nn::TrainConfig tc;
    tc.epochs = config_.tuning_epochs;
    tc.learning_rate = lr;
    tc.seed = config_.seed + 7;
    const nn::TrainReport report = nn::train_classifier(net, train, val, tc);
    // Phase-2 objective: accuracy traded against parameter count -- the
    // "reduce the computational cost" goal of the squeezed network.
    const double obj =
        -report.test_accuracy +
        config_.param_weight * static_cast<double>(report.param_count) / 1e4;
    cache[a] = {obj, report.test_accuracy};
    return obj;
  };

  pso::DiscretePsoConfig pso_config;
  pso_config.swarm_size = config_.pso_swarm;
  pso_config.max_iterations = config_.pso_iterations;
  pso_config.seed = config_.seed + 3;

  // Phase 3 feeds Phase 2: the adaptive-QP inertia schedule.
  auto inertia = pso::adaptive_qp_inertia();
  const pso::DiscretePsoResult r =
      pso::minimize_discrete(space, objective, pso_config, inertia.get());

  TuningResult out;
  double lr = 1e-3;
  out.best_config = config_from_assignment(space, r.best_assignment,
                                           config_.image_size,
                                           config_.seed + 100, &lr);
  out.best_objective = r.best_value;
  out.best_accuracy = cache.at(r.best_assignment).second;
  out.evaluations = r.evaluations;
  return out;
}

RcrStackReport RcrStack::run() {
  obs::Span span("stack.run");
  obs::counter_add("rcr.stack.runs");
  RcrStackReport report;

  // Inter-phase degradation boundary: each phase is skipped (not aborted
  // mid-flight) once the pipeline deadline fires, so every field filled in
  // so far stays valid.
  const bool faults_on = robust::faults::enabled();
  auto out_of_time = [&](const char* phase) {
    if (!config_.deadline.expired() &&
        !(faults_on && robust::faults::should_inject("stack.deadline")))
      return false;
    report.status = robust::make_status(
        robust::StatusCode::kDeadlineExpired,
        std::string("pipeline deadline fired before ") + phase + " (" +
            std::to_string(report.phases_completed) + " of 5 phases done)");
    return true;
  };

  // ---- Phase 3: certify the adaptive-inertia convex program (closed form
  // against the barrier QP solver).
  {
    obs::Span phase_span("stack.phase3.inertia_qp");
    num::Rng rng(config_.seed + 31);
    InertiaQpInstance instance;
    instance.velocity_norm = rng.uniform_vec(6, 0.0, 3.0);
    instance.dist_to_gbest = rng.uniform_vec(6, 0.0, 5.0);
    report.inertia_qp_consistency = inertia_qp_consistency(instance);
  }
  ++report.phases_completed;
  obs::counter_add("rcr.stack.phases");

  // ---- Phase 2: PSO-tuned MSY3I.
  if (out_of_time("phase 2 (PSO tuning)")) return report;
  {
    obs::Span phase_span("stack.phase2.pso_tuning");
    report.tuning = tune_hyperparameters();
  }
  ++report.phases_completed;
  obs::counter_add("rcr.stack.phases");

  // ---- Phase 1a: full training of the tuned configuration vs the default.
  if (out_of_time("phase 1a (final training)")) return report;
  {
  obs::Span phase_span("stack.phase1a.training");
  num::Rng data_rng(config_.seed + 50);
  const auto train = to_image_samples(sig::make_classification_dataset(
      config_.train_per_class, config_.image_size, config_.noise_stddev,
      data_rng));
  const auto test = to_image_samples(sig::make_classification_dataset(
      config_.test_per_class, config_.image_size, config_.noise_stddev,
      data_rng));

  nn::TrainConfig tc;
  tc.epochs = config_.final_epochs;
  tc.learning_rate = 3e-3;
  tc.seed = config_.seed + 8;
  {
    nn::Sequential tuned = nn::build_msy3i_classifier(report.tuning.best_config);
    report.final_training = nn::train_classifier(tuned, train, test, tc);
  }
  {
    nn::Msy3iConfig default_cfg;
    default_cfg.image_size = config_.image_size;
    default_cfg.classes = sig::modulation_classes().size();
    default_cfg.seed = config_.seed + 100;
    nn::Sequential untuned = nn::build_msy3i_classifier(default_cfg);
    report.untuned_training = nn::train_classifier(untuned, train, test, tc);
  }
  }
  ++report.phases_completed;
  obs::counter_add("rcr.stack.phases");

  // ---- Phase 1b: convex-relaxation adversarial training of the dense head
  // plus the layer-wise tightness report.
  if (out_of_time("phase 1b (certified training)")) return report;
  {
    obs::Span phase_span("stack.phase1b.certified");
    num::Rng rng(config_.seed + 71);
    const auto blobs_train =
        verify::make_blob_dataset(3, 40, 1.0, 0.15, rng);
    const auto blobs_test = verify::make_blob_dataset(3, 20, 1.0, 0.15, rng);
    verify::CertifiedTrainer trainer({2, 16, 16, 3}, config_.seed + 72);
    verify::CertifiedTrainConfig cc;
    cc.epochs = config_.certify_epochs;
    cc.epsilon = config_.certify_epsilon;
    report.certified = trainer.train(blobs_train, blobs_test, cc);

    const verify::Box domain =
        verify::Box::around(Vec{0.0, 0.0}, config_.certify_epsilon);
    report.tightness = verify::tightness_report(trainer.network(), domain);

    // The abstract's layer-wise tightening: optimize the lower-relaxation
    // slopes for the class-0-vs-1 margin around a test point.
    verify::Spec margin;
    margin.c = {1.0, -1.0, 0.0};
    margin.d = 0.0;
    const verify::Box ball =
        verify::Box::around(blobs_test.front().x, config_.certify_epsilon);
    report.alpha =
        verify::tighten_lower_bound_alpha(trainer.network(), ball, margin);
  }
  ++report.phases_completed;
  obs::counter_add("rcr.stack.phases");

  // ---- Phase 1c: solve a QoS RRA instance through the RCR PSO machinery
  // and gauge it against the exact optimum and the convex relaxation bound.
  if (out_of_time("phase 1c (QoS allocation)")) return report;
  {
    obs::Span phase_span("stack.phase1c.qos");
    qos::ChannelConfig ch;
    ch.num_users = config_.qos_users;
    ch.num_rbs = config_.qos_rbs;
    ch.seed = config_.seed + 90;
    const qos::ChannelRealization channel = qos::make_channel(ch);

    qos::RraProblem problem;
    problem.gain = channel.gain;
    problem.total_power = 1.0;
    problem.min_rate = Vec(ch.num_users, 0.5);

    qos::RraPsoOptions pso_opts;
    pso_opts.seed = config_.seed + 91;
    report.qos_pso = qos::solve_pso(problem, pso_opts);
    report.qos_exact = qos::solve_exact(problem);
    report.qos_relaxation_bound = qos::relaxation_upper_bound(problem);

    // Production path: the same request through the fault-tolerant chain,
    // tagged with the solver that answered and its soundness level.
    qos::RraRobustOptions robust_opts;
    robust_opts.deadline = config_.deadline;
    robust_opts.pso.seed = config_.seed + 91;
    report.qos_robust = qos::solve_rra_robust(problem, robust_opts);
    report.status.absorb_trail("qos: ", report.qos_robust.status);
  }
  ++report.phases_completed;
  obs::counter_add("rcr.stack.phases");

  span.attr("phases_completed",
            static_cast<double>(report.phases_completed));
  return report;
}

}  // namespace rcr::core
