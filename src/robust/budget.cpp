#include "rcr/robust/budget.hpp"

#include <limits>

namespace rcr::robust {

Deadline Deadline::after_seconds(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  Deadline d;
  d.armed_ = true;
  d.when_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::at(Clock::time_point when) {
  Deadline d;
  d.armed_ = true;
  d.when_ = when;
  return d;
}

double Deadline::remaining_seconds() const {
  if (!armed_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

}  // namespace rcr::robust
