#include "rcr/robust/fault_injection.hpp"

#include "rcr/obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

namespace rcr::robust::faults {

namespace {

// The site registry.  Every injection point in the codebase names one of
// these; should_inject refuses unknown names so the registry, the DESIGN.md
// table, and the chaos suite cannot drift apart.
const std::vector<std::string>& site_registry() {
  static const std::vector<std::string> kSites = {
      "numerics.lu.singular",   // lu_decompose_into reports a vanished pivot
      "admm.factor.singular",   // P + rho I factorization fails
      "admm.iterate.nan",       // ADMM x-iterate picks up a NaN
      "admm.deadline",          // forced deadline expiry in the ADMM loop
      "sdp.kkt.singular",       // SDP KKT system degenerate
      "sdp.iterate.nan",        // SDP splitting iterate picks up a NaN
      "sdp.deadline",           // forced deadline expiry in the SDP loop
      "qcqp.newton.nan",        // barrier Newton step non-finite
      "qcqp.deadline",          // forced deadline expiry in the barrier loop
      "lbfgs.gradient.nan",     // L-BFGS/BFGS/GD gradient non-finite
      "lbfgs.deadline",         // forced deadline expiry in smooth minimizers
      "tr.step.nan",            // trust-region step non-finite
      "tr.deadline",            // forced deadline expiry in the TR driver
      "pso.objective.nan",      // particle objective evaluates to NaN
      "pso.deadline",           // forced deadline expiry between iterations
      "verify.crown.nan",       // CROWN bound comes back non-finite
      "qos.exact.stall",        // slow path in the exact RRA/multi-RAT search
      "rrm.deadline",           // forced deadline expiry between RRM slots
      "stack.deadline",         // forced deadline expiry between stack phases
      // serve.* sites model per-cell RAT outages in the allocation service.
      // All three are *keyed* by the deterministic cell stamp (tick * cells
      // + cell) so injection is independent of the pool thread schedule.
      "serve.admm.outage",      // fail the serve.cell chain's ADMM head
      "serve.waterfill.outage", // fail the water-filling fallback step
      "serve.cache.drop",       // force a solution-cache miss for the cell
      // Overload-control sites (also stamp-keyed).  They only have an
      // effect when the owning feature (admission / breakers / watchdog)
      // is enabled in the ServiceConfig.
      "serve.admit.shed",       // shed an admitted cell in the tick plan
      "serve.breaker.trip",     // fail the ADMM step to exercise breakers
      "serve.solve.corrupt",    // poison solve output to trip the watchdog
      // Learned-head site (stamp-keyed; effective only when the learned
      // warm-start head is armed): corrupts the predictor's output so the
      // warm-start contract's rejection path is exercised end to end.
      "learn.head.corrupt",     // poison the learned warm-start prediction
  };
  return kSites;
}

struct State {
  std::mutex mu;
  FaultConfig config;
  std::map<std::string, std::uint64_t> hits;        // counter-keyed streams
  std::map<std::string, std::uint64_t> injections;  // fired per site
  std::atomic<std::uint64_t> total{0};
};

State& state() {
  static State s;
  return s;
}

std::atomic<bool> g_enabled{false};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool site_registered(const char* site) {
  for (const std::string& s : site_registry())
    if (s == site) return true;
  return false;
}

// "a.b.c" matches pattern "a.b.c" exactly or "a.*" / "*" as a prefix glob.
bool pattern_matches(const std::string& pattern, const char* site) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*')
    return std::string(site).rfind(pattern.substr(0, pattern.size() - 1), 0) ==
           0;
  return pattern == site;
}

bool site_selected(const FaultConfig& config, const char* site) {
  std::size_t start = 0;
  const std::string& sites = config.sites;
  while (start <= sites.size()) {
    const std::size_t comma = sites.find(',', start);
    const std::size_t end = comma == std::string::npos ? sites.size() : comma;
    if (pattern_matches(sites.substr(start, end - start), site)) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

// Pure decision: (seed, site, key) -> [0, 1) draw compared against rate.
bool decide(const FaultConfig& config, const char* site, std::uint64_t key) {
  const std::uint64_t z = splitmix64(config.seed ^ fnv1a(site) ^
                                     splitmix64(key + 0x5851f42d4c957f2dull));
  const double draw =
      static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return draw < config.rate;
}

bool should_inject_keyed(const char* site, std::uint64_t key) {
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.config.enabled || !site_selected(s.config, site)) return false;
  if (!site_registered(site)) return false;
  auto& fired = s.injections[site];
  if (fired >= s.config.max_per_site) return false;
  if (!decide(s.config, site, key)) return false;
  ++fired;
  s.total.fetch_add(1, std::memory_order_relaxed);
  // Every injection that actually fires is observable: exactly one labelled
  // counter increment plus one annotated trace event (chaos suite contract).
  obs::counter_add("rcr.faults.injected", "site", site);
  obs::instant("fault.injected", "site", site);
  return true;
}

}  // namespace

void configure(const FaultConfig& config) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = config;
  s.hits.clear();
  s.injections.clear();
  s.total.store(0, std::memory_order_relaxed);
  g_enabled.store(config.enabled, std::memory_order_relaxed);
}

bool configure_spec(const std::string& spec) {
  FaultConfig config;
  config.enabled = true;
  bool have_seed = false;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string field = spec.substr(start, end - start);
    const std::size_t eq = field.find('=');
    if (!field.empty()) {
      if (eq == std::string::npos) {
        // Bare value: treat as the seed ("RCR_FAULTS=42").
        char* endp = nullptr;
        config.seed = std::strtoull(field.c_str(), &endp, 0);
        if (endp == field.c_str() || *endp != '\0') return false;
        have_seed = true;
      } else {
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        char* endp = nullptr;
        if (key == "seed") {
          config.seed = std::strtoull(value.c_str(), &endp, 0);
          if (endp == value.c_str() || *endp != '\0') return false;
          have_seed = true;
        } else if (key == "rate") {
          config.rate = std::strtod(value.c_str(), &endp);
          if (endp == value.c_str() || *endp != '\0') return false;
          if (config.rate < 0.0 || config.rate > 1.0) return false;
        } else if (key == "sites") {
          if (value.empty()) return false;
          config.sites = value;
        } else if (key == "max") {
          config.max_per_site = std::strtoull(value.c_str(), &endp, 0);
          if (endp == value.c_str() || *endp != '\0') return false;
        } else {
          return false;
        }
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (!have_seed) return false;
  configure(config);
  return true;
}

bool configure_from_env() {
  const char* env = std::getenv("RCR_FAULTS");
  if (env == nullptr || env[0] == '\0') return false;
  return configure_spec(env);
}

namespace {
// Arms the injector before main() when RCR_FAULTS is set, so any binary can
// be driven from the environment without code changes.  Lives in this TU so
// it runs after the injector's own globals are initialized; the TU is always
// linked because every guarded solver references should_inject().
[[maybe_unused]] const bool g_env_armed = configure_from_env();
}  // namespace

void disable() {
  FaultConfig off;
  off.enabled = false;
  configure(off);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

FaultConfig config() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.config;
}

std::string replay_spec() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.config.enabled) return "";
  std::string spec = "seed=" + std::to_string(s.config.seed);
  if (s.config.rate != 1.0) spec += ",rate=" + std::to_string(s.config.rate);
  if (s.config.sites != "*") spec += ",sites=" + s.config.sites;
  if (s.config.max_per_site != ~0ull)
    spec += ",max=" + std::to_string(s.config.max_per_site);
  return spec;
}

const std::vector<std::string>& registered_sites() { return site_registry(); }

bool should_inject(const char* site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  std::uint64_t key = 0;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    key = s.hits[site]++;
  }
  return should_inject_keyed(site, key);
}

bool should_inject(const char* site, std::uint64_t key) {
  return should_inject_keyed(site, key);
}

double corrupt(const char* site, double value) {
  return should_inject(site) ? std::numeric_limits<double>::quiet_NaN()
                             : value;
}

double corrupt(const char* site, std::uint64_t key, double value) {
  return should_inject(site, key)
             ? std::numeric_limits<double>::quiet_NaN()
             : value;
}

void maybe_stall(const char* site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (should_inject(site))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

std::uint64_t injection_count(const char* site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.injections.find(site);
  return it == s.injections.end() ? 0 : it->second;
}

std::uint64_t total_injections() {
  return state().total.load(std::memory_order_relaxed);
}

void reset_counters() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.hits.clear();
  s.injections.clear();
  s.total.store(0, std::memory_order_relaxed);
}

ScopedFaults::ScopedFaults(const FaultConfig& cfg) {
  previous_ = config();
  had_previous_ = previous_.enabled;
  configure(cfg);
}

ScopedFaults::ScopedFaults(const std::string& spec) {
  previous_ = config();
  had_previous_ = previous_.enabled;
  if (!configure_spec(spec)) disable();
}

ScopedFaults::~ScopedFaults() {
  if (had_previous_) {
    configure(previous_);
  } else {
    disable();
  }
}

}  // namespace rcr::robust::faults
