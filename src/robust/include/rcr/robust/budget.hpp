// Wall-clock deadlines and iteration budgets for solver loops.
//
// A 5G RRA/RRM decision must be returned within its scheduling interval: a
// solver that is still iterating when the deadline fires must stop and
// return its best degraded answer, never block the request.  Deadline wraps
// a monotonic-clock expiry that solver loops poll; the default-constructed
// Deadline is unlimited and polls without reading the clock, so guarded
// loops cost nothing (and stay bit-identical) when no deadline is set.
#pragma once

#include <chrono>
#include <cstddef>

namespace rcr::robust {

/// Monotonic wall-clock deadline.  Copyable; cheap to poll.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires, never reads the clock.
  Deadline() = default;

  /// Expires `seconds` from now (clamped to >= 0).
  static Deadline after_seconds(double seconds);

  /// Expires at an absolute monotonic time point.
  static Deadline at(Clock::time_point when);

  /// Explicitly unlimited (same as default construction; reads clearer at
  /// call sites that thread a "no deadline" through options).
  static Deadline unlimited() { return Deadline(); }

  bool is_unlimited() const { return !armed_; }

  /// True once the deadline has passed.  Unlimited deadlines return false
  /// without touching the clock.
  bool expired() const {
    return armed_ && Clock::now() >= when_;
  }

  /// Seconds until expiry (negative once expired; +inf when unlimited).
  double remaining_seconds() const;

 private:
  bool armed_ = false;
  Clock::time_point when_{};
};

/// Shared budget knobs threaded through solver options.  `max_iterations`
/// lives in each solver's own options (they predate this layer); Budget adds
/// the wall-clock dimension plus a poll stride so tight loops can amortize
/// the clock read.
struct Budget {
  Deadline deadline;
  /// Poll the deadline every `check_stride` iterations (>= 1).  Unlimited
  /// deadlines short-circuit before the stride matters.
  std::size_t check_stride = 1;

  /// True when iteration `it` should poll and the deadline has fired.
  bool expired_at(std::size_t it) const {
    if (deadline.is_unlimited()) return false;
    if (check_stride > 1 && (it % check_stride) != 0) return false;
    return deadline.expired();
  }
};

}  // namespace rcr::robust
