// Declarative fallback chains: degrade to a looser-but-sound solver instead
// of failing the request.
//
// The paper's Sec. IV-C relaxation ladder (QCQP -> RMP -> TMP -> SDP) and
// the verify/ hierarchy (CROWN -> IBP) share one shape: an ordered list of
// solvers, tight first, each of which may fail at runtime; the first fully
// successful step answers, and if none succeeds the first *usable* degraded
// answer does.  The executor records, per step, why its predecessor failed,
// and tags the final answer with the soundness level of the step that
// produced it.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/budget.hpp"
#include "rcr/robust/status.hpp"

namespace rcr::robust {

/// Outcome of running a chain.
template <typename T>
struct ChainOutcome {
  T value{};
  Status status;           ///< Aggregated; trail names every fallback taken.
  std::string step;        ///< Name of the step that produced `value`.
  Soundness soundness = Soundness::kHeuristic;  ///< Of the winning step.
  std::size_t attempts = 0;  ///< Steps actually executed.
};

/// Ordered list of solver attempts, tightest first.
template <typename T>
class FallbackChain {
 public:
  using StepFn = std::function<Result<T>()>;
  /// Pre-run gate: nullptr/absent = always run; otherwise return nullptr to
  /// run the step or a static-ish reason string ("breaker open") to skip it.
  using GateFn = std::function<const char*()>;

  /// `name` labels this chain in metrics/traces
  /// (rcr.fallback.degraded{chain=name}); it must have static storage
  /// duration -- every in-tree chain passes a string literal.
  explicit FallbackChain(const char* name = "unnamed") : name_(name) {}

  const char* name() const { return name_; }

  /// Append a step.  Steps run in insertion order.
  FallbackChain& add(std::string name, Soundness soundness, StepFn run) {
    steps_.push_back({std::move(name), soundness, nullptr, std::move(run)});
    return *this;
  }

  /// Append a gated step: `gate` is consulted before each run, and a
  /// non-null reason skips the step without executing it (no attempt, no
  /// degradation counter -- a skip is a policy decision, not a failure).
  /// Circuit breakers plug in here.
  FallbackChain& add_gated(std::string name, Soundness soundness, GateFn gate,
                           StepFn run) {
    steps_.push_back({std::move(name), soundness, std::move(gate),
                      std::move(run)});
    return *this;
  }

  std::size_t size() const { return steps_.size(); }

  /// Execute: first step whose Result is fully ok wins.  A usable-but-
  /// degraded result is banked and returned (code kDegraded) only when no
  /// later step fully succeeds.  When the deadline fires between steps the
  /// remaining steps are skipped.  When nothing usable was produced the
  /// outcome is kFallbackExhausted and `value` is default-constructed.
  ChainOutcome<T> run(const Deadline& deadline = Deadline()) const {
    obs::Span span("fallback.run");
    span.attr_str("chain", name_);
    ChainOutcome<T> out = run_impl(deadline);
    span.attr("attempts", static_cast<double>(out.attempts));
    span.attr("degraded",
              out.status.code == StatusCode::kOk ? 0.0 : 1.0);
    if (!out.step.empty()) span.attr_str("step", out.step.c_str());
    // Depth taken by this solve: 1 = the tight head answered, deeper values
    // mean degradation (Prometheus: rcr_fallback_depth{chain=...}).  The
    // degradation *counters* above tick per failed step; this gauge makes
    // the depth of the most recent solve visible directly.
    obs::gauge_set("rcr.fallback.depth", "chain", name_,
                   static_cast<double>(out.attempts));
    return out;
  }

 private:
  ChainOutcome<T> run_impl(const Deadline& deadline) const {
    ChainOutcome<T> out;
    bool have_banked = false;
    ChainOutcome<T> banked;

    for (std::size_t i = 0; i < steps_.size(); ++i) {
      const Step& step = steps_[i];
      if (deadline.expired()) {
        out.status.note("deadline expired before step '" + step.name + "'");
        break;
      }
      if (step.gate) {
        if (const char* reason = step.gate()) {
          // Skipped, not failed: no attempt, no degradation counter.  The
          // trail still records the decision so graders can audit it.
          out.status.note("step '" + step.name + "' skipped (" +
                          std::string(reason) + ")");
          obs::counter_add("rcr.fallback.skipped", "chain", name_);
          continue;
        }
      }
      ++out.attempts;
      Result<T> r = step.run();
      if (r.status.ok()) {
        out.value = std::move(r.value);
        out.step = step.name;
        out.soundness = step.soundness;
        // A first-step clean win is kOk; anything later is a degradation.
        if (i > 0 || !out.status.trail.empty())
          out.status.code = StatusCode::kDegraded;
        return out;
      }
      out.status.note("step '" + step.name + "' failed (" +
                      r.status.to_string() + ")");
      // One degradation step == one counter increment (chaos contract).
      obs::counter_add("rcr.fallback.degraded", "chain", name_);
      obs::instant("fallback.degraded", "chain", name_);
      if (r.status.usable() && !have_banked) {
        banked.value = std::move(r.value);
        banked.step = step.name;
        banked.soundness = step.soundness;
        banked.status = r.status;
        have_banked = true;
      }
    }

    if (have_banked) {
      ChainOutcome<T> degraded = std::move(banked);
      degraded.attempts = out.attempts;
      Status merged = make_status(
          StatusCode::kDegraded,
          "no step fully converged; returning usable result from '" +
              degraded.step + "' (" + to_string(degraded.status.code) + ")");
      merged.trail = out.status.trail;
      degraded.status = std::move(merged);
      return degraded;
    }

    out.status.code = StatusCode::kFallbackExhausted;
    out.status.detail = "every fallback step failed";
    return out;
  }

  struct Step {
    std::string name;
    Soundness soundness;
    GateFn gate;  ///< Optional; non-null reason skips the step.
    StepFn run;
  };
  const char* name_;
  std::vector<Step> steps_;
};

}  // namespace rcr::robust
