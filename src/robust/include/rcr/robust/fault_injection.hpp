// Deterministic fault injection for the chaos suites.
//
// A seeded injector flips failures on at *named sites* inside numerics/opt/
// pso/verify: NaN iterates, singular factorizations, forced deadline expiry,
// and slow-path stalls.  Decisions are pure functions of
// (seed, site, hit index), so a failing chaos run replays exactly from the
// printed RCR_FAULTS spec -- mirroring the RCR_TESTKIT_SEED replay contract.
//
//   RCR_FAULTS="seed=42"                    every site, every hit
//   RCR_FAULTS="seed=42,rate=0.25"          ~25% of hits, seed-deterministic
//   RCR_FAULTS="seed=42,sites=admm.*"       only ADMM sites
//   RCR_FAULTS="seed=42,max=3"              at most 3 injections per site
//
// The injector is entirely runtime-gated: when no spec is installed every
// decision point is a single relaxed atomic load (bench_robust_overhead
// proves the guarded hot paths stay within 2% of the unguarded baselines),
// and production code paths compute bit-identical results.  Tests and
// benches install specs programmatically or via configure_from_env().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcr::robust::faults {

/// Injection policy.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0;     ///< Decision stream seed.
  double rate = 1.0;          ///< Per-hit injection probability in [0, 1].
  std::string sites = "*";    ///< Comma list of site names; trailing '*'
                              ///< wildcards a prefix ("admm.*").
  std::uint64_t max_per_site = ~0ull;  ///< Cap on injections per site.
};

/// Install a policy (replaces any previous one) and reset hit counters.
void configure(const FaultConfig& config);

/// Parse and install a spec string ("seed=N[,rate=R][,sites=S][,max=M]").
/// Returns false (and leaves injection disabled) on a malformed spec.
bool configure_spec(const std::string& spec);

/// Install from the RCR_FAULTS environment variable when set.
/// Returns true when a spec was installed.
bool configure_from_env();

/// Disable injection and reset counters.
void disable();

/// True when a policy is installed (single relaxed atomic load).
bool enabled();

/// The active policy (meaningful when enabled()).
FaultConfig config();

/// Canonical spec string reproducing the active policy -- print this next
/// to chaos-test failures so the run is replayable via RCR_FAULTS.
std::string replay_spec();

/// Every site name the codebase can inject at (the registry the chaos suite
/// iterates).  Site names are stable identifiers: "<module>.<point>.<kind>".
const std::vector<std::string>& registered_sites();

/// Decide whether to inject at `site` for its next hit (internal per-site
/// counter).  `site` must be in the registry.
bool should_inject(const char* site);

/// Keyed decision: deterministic for call sites inside parallel loops where
/// hit order depends on the thread schedule -- the caller supplies a stable
/// key (e.g. iteration * n + index) instead of the counter.
bool should_inject(const char* site, std::uint64_t key);

/// `value`, or a quiet NaN when injection fires at `site`.
double corrupt(const char* site, double value);
double corrupt(const char* site, std::uint64_t key, double value);

/// Busy-sleep a few milliseconds when injection fires (simulates a slow
/// path so deadline plumbing can be exercised deterministically).
void maybe_stall(const char* site);

/// Injections fired at `site` since the last configure/disable/reset.
std::uint64_t injection_count(const char* site);

/// Total injections fired across all sites.
std::uint64_t total_injections();

/// Reset per-site hit and injection counters (policy unchanged).
void reset_counters();

/// RAII scope for tests: installs a policy on construction, restores the
/// previous policy on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultConfig& config);
  explicit ScopedFaults(const std::string& spec);
  ~ScopedFaults();
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  FaultConfig previous_;
  bool had_previous_ = false;
};

}  // namespace rcr::robust::faults
