// NaN/Inf sentinels for solver iterates.
//
// Header-only and dependency-free (templates over any range of doubles) so
// rcr_numerics can use the guards without a library cycle.  Guards never
// change arithmetic -- they only observe -- so guarded solvers stay
// bit-identical to the unguarded baselines when nothing is wrong.
#pragma once

#include <cmath>
#include <cstddef>

namespace rcr::robust {

/// True when every element of the range is finite (no NaN, no Inf).
template <typename Range>
bool all_finite(const Range& range) {
  for (const double v : range)
    if (!std::isfinite(v)) return false;
  return true;
}

/// True when `v` is finite.  Named overload so call sites read uniformly.
inline bool all_finite(double v) { return std::isfinite(v); }

/// First non-finite index of the range, or `npos` when all finite -- for
/// detail strings that name the poisoned coordinate.
inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

template <typename Range>
std::size_t first_non_finite(const Range& range) {
  std::size_t i = 0;
  for (const double v : range) {
    if (!std::isfinite(v)) return i;
    ++i;
  }
  return npos;
}

}  // namespace rcr::robust
