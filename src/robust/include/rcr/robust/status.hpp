// Status taxonomy for the fault-tolerant solver layer.
//
// The paper's whole pitch is *robust* convex relaxation: when a tight solver
// fails numerically it must degrade to a looser-but-sound answer, never
// crash the request (Sec. IV catalogues the failure modes; Sec. IV-C's
// QCQP -> RMP -> TMP -> SDP chain is the degradation ladder).  This header
// gives every solver boundary a uniform vocabulary for that contract:
//
//  - argument-shape errors stay exceptions (std::invalid_argument) -- the
//    caller built a malformed problem and no answer exists;
//  - runtime numerical failures (singular factor, NaN iterate, exhausted
//    deadline) become a Status carried next to the partial/degraded answer.
//
// A Status records the terminal code, a human-readable detail, and a
// *degradation trail*: one line per recovery or fallback event, in order,
// so a returned answer always explains how it was obtained.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rcr::robust {

/// Terminal disposition of a solve.
enum class StatusCode {
  kOk = 0,           ///< Full-quality answer, no degradation.
  kDegraded,         ///< Valid answer via a recovery or fallback path.
  kNonConverged,     ///< Iteration budget exhausted; best iterate returned.
  kInfeasible,       ///< No feasible point exists / was found (phase I).
  kSingular,         ///< A factorization failed beyond recovery.
  kNumericalFailure, ///< NaN/Inf contaminated the iterates.
  kDeadlineExpired,  ///< The wall-clock deadline fired mid-solve.
  kFallbackExhausted ///< Every step of a fallback chain failed.
};

std::string to_string(StatusCode code);

/// How trustworthy a returned answer is -- the "soundness level" a fallback
/// chain tags each step with (Sec. IV-C: a looser relaxation is still a
/// sound bound; a heuristic is merely a feasible candidate).
enum class Soundness {
  kExact,       ///< Optimal for the original problem (to tolerance).
  kRelaxation,  ///< Sound bound from a convex relaxation of the problem.
  kHeuristic    ///< Feasible/valid answer with no optimality certificate.
};

std::string to_string(Soundness level);

/// Outcome descriptor attached to every robust solver result.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string detail;              ///< Terminal event, human readable.
  std::vector<std::string> trail;  ///< Degradation events, oldest first.

  bool ok() const { return code == StatusCode::kOk; }
  /// True when the answer is usable (possibly degraded): everything except
  /// infeasibility and a fully exhausted fallback chain.
  bool usable() const {
    return code != StatusCode::kInfeasible &&
           code != StatusCode::kFallbackExhausted;
  }
  bool degraded() const { return !trail.empty() || !ok(); }

  /// Append one degradation event to the trail.
  void note(std::string event) { trail.push_back(std::move(event)); }
  /// Merge another status's trail (prefixed) into this one.
  void absorb_trail(const std::string& prefix, const Status& other);

  /// "code: detail [trail: a; b; c]" for logs and test failure messages.
  std::string to_string() const;
};

/// Convenience factories.
Status ok_status();
Status make_status(StatusCode code, std::string detail);

/// A value paired with the status that produced it.  The value is always
/// populated when status.usable(); callers decide whether a degraded answer
/// is acceptable for their QoS class.
template <typename T>
struct Result {
  T value{};
  Status status;

  bool ok() const { return status.ok(); }
  bool usable() const { return status.usable(); }
  explicit operator bool() const { return status.usable(); }
};

}  // namespace rcr::robust
