#include "rcr/robust/status.hpp"

namespace rcr::robust {

std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kDegraded: return "degraded";
    case StatusCode::kNonConverged: return "non-converged";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kSingular: return "singular";
    case StatusCode::kNumericalFailure: return "numerical-failure";
    case StatusCode::kDeadlineExpired: return "deadline-expired";
    case StatusCode::kFallbackExhausted: return "fallback-exhausted";
  }
  return "unknown";
}

std::string to_string(Soundness level) {
  switch (level) {
    case Soundness::kExact: return "exact";
    case Soundness::kRelaxation: return "relaxation";
    case Soundness::kHeuristic: return "heuristic";
  }
  return "unknown";
}

void Status::absorb_trail(const std::string& prefix, const Status& other) {
  for (const std::string& event : other.trail)
    trail.push_back(prefix + event);
  if (!other.ok() && !other.detail.empty())
    trail.push_back(prefix + robust::to_string(other.code) + ": " +
                    other.detail);
}

std::string Status::to_string() const {
  std::string out = robust::to_string(code);
  if (!detail.empty()) out += ": " + detail;
  if (!trail.empty()) {
    out += " [trail: ";
    for (std::size_t i = 0; i < trail.size(); ++i) {
      if (i > 0) out += "; ";
      out += trail[i];
    }
    out += "]";
  }
  return out;
}

Status ok_status() { return Status{}; }

Status make_status(StatusCode code, std::string detail) {
  Status s;
  s.code = code;
  s.detail = std::move(detail);
  return s;
}

}  // namespace rcr::robust
