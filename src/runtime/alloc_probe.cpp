// Counting replacements for the global allocation functions.  This TU is
// compiled into its own static library (rcr_allocprobe); a binary gets the
// counting allocator exactly when it links that library *and* references
// rcr::rt::alloc_count(), which every user of the probe does by definition.
#include "rcr/rt/alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace rcr::rt {

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

bool alloc_probe_active() noexcept { return true; }

namespace detail {

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : align) != 0)
    return nullptr;
  return p;
}

}  // namespace detail

}  // namespace rcr::rt

namespace {
using rcr::rt::detail::counted_aligned_alloc;
using rcr::rt::detail::counted_alloc;
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
