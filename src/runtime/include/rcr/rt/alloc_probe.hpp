// Instrumented-allocator hook for allocation-regression tests and benches.
//
// Linking the rcr_allocprobe library (tests and benches do; production
// binaries do not) replaces the global operator new/delete with counting
// wrappers.  alloc_count() then reports the number of heap allocations made
// by the whole process since start -- across every thread, including pool
// workers -- so a test can assert that a warm hot loop performs zero
// steady-state allocations.
#pragma once

#include <cstdint>

namespace rcr::rt {

/// Total global operator-new invocations so far, process-wide.  Monotone;
/// read it before and after a region and subtract.  Defined in
/// rcr_allocprobe only -- referencing it is what pulls the counting
/// allocator into the binary.
std::uint64_t alloc_count() noexcept;

/// True when the counting operator new is actually installed in this binary.
bool alloc_probe_active() noexcept;

/// Convenience delta reader: captures alloc_count() at construction.
class AllocDelta {
 public:
  AllocDelta() : start_(alloc_count()) {}
  /// Allocations since construction.
  std::uint64_t delta() const { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace rcr::rt
