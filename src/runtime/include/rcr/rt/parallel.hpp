// Deterministic data-parallel loops for the RCR hot paths.
//
// Both entry points split [begin, end) into fixed chunks of `grain` indices.
// Chunk boundaries depend only on (begin, end, grain) -- never on the thread
// count -- so parallel_reduce combines per-chunk partials in ascending chunk
// order and yields bit-identical results whether the pool has 1, 2, or 64
// threads.  parallel_for makes the same guarantee provided the body writes
// disjoint state per index (the contract for every kernel in this repo).
//
// Serial fallback: when the range fits in one chunk, the pool has no
// workers, a ForceSerialGuard is active on this thread, or the caller is
// itself a pool worker (nested parallelism), chunks run inline in ascending
// order -- same decomposition, same arithmetic, same bits.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "rcr/rt/thread_pool.hpp"

namespace rcr::rt {

namespace detail {

/// Dispatch chunks [begin + c*grain, ...) of [begin, end) across the global
/// pool and the calling thread; rethrows the first body exception.
void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// True when the calling thread must run the range inline.
bool must_run_serial(std::size_t n, std::size_t grain);

}  // namespace detail

/// Scoped override forcing parallel_for/parallel_reduce on *this thread* to
/// run inline (serial reference path for benchmarks and equivalence tests).
/// Nestable.
class ForceSerialGuard {
 public:
  ForceSerialGuard();
  ~ForceSerialGuard();
  ForceSerialGuard(const ForceSerialGuard&) = delete;
  ForceSerialGuard& operator=(const ForceSerialGuard&) = delete;
};

/// True while a ForceSerialGuard is active on the calling thread.
bool force_serial_active();

/// Apply `body(chunk_begin, chunk_end)` over [begin, end) in chunks of
/// `grain` indices.  The body must write disjoint state per index.  Chunks
/// may run on any thread in any order; exceptions thrown by the body are
/// rethrown (first one wins) after all chunks finish or are abandoned.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  if (end <= begin) return;
  const std::size_t g = std::max<std::size_t>(1, grain);
  if (detail::must_run_serial(end - begin, g)) {
    for (std::size_t s = begin; s < end; s += g)
      body(s, std::min(s + g, end));
    return;
  }
  detail::run_chunked(begin, end, g, body);
}

/// Chunked reduction: `acc = combine(acc, chunk(chunk_begin, chunk_end))`
/// over fixed chunks in ascending order.  Because the chunk decomposition
/// ignores the thread count, the result is bit-identical for every pool
/// size, including the forced-serial path.
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, ChunkFn&& chunk, Combine&& combine) {
  if (end <= begin) return init;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (end - begin + g - 1) / g;
  std::vector<T> partial(chunks);
  parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      const std::size_t s = begin + c * g;
      partial[c] = chunk(s, std::min(s + g, end));
    }
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(partial[c]));
  return acc;
}

}  // namespace rcr::rt
