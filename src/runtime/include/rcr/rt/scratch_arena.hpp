// Thread-local bump-allocated scratch memory for the RCR hot paths.
//
// A ScratchArena hands out raw, aligned storage from a small chain of
// geometrically growing blocks.  Allocation is a pointer bump; deallocation
// happens wholesale when an RAII Scope unwinds (nested scopes rewind to
// their own marker) or when reset() rewinds the whole arena.  Blocks are
// retained across uses, so after a warm-up pass a kernel that allocates its
// scratch through the arena performs zero heap allocations in steady state.
//
// tls_arena() returns a per-thread instance, reachable from pool workers and
// the calling thread alike; arenas are intentionally not thread-safe -- each
// thread only ever touches its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace rcr::rt {

/// Bump allocator with RAII scope markers and high-water-mark block reuse.
class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Raw aligned storage valid until the enclosing Scope unwinds (or the
  /// arena is reset).  `alignment` must be a power of two.
  void* allocate(std::size_t bytes,
                 std::size_t alignment = alignof(std::max_align_t));

  /// Typed convenience: storage for `n` objects of T.  T must be trivially
  /// destructible -- the arena never runs destructors.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena::alloc: T must be trivially destructible");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// RAII marker: on destruction, everything allocated since construction is
  /// released (pointer rewind, no frees).  Scopes nest LIFO.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(&arena), block_(arena.active_), used_(arena.active_used()) {}
    ~Scope() { arena_->rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena* arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Open a scope at the current allocation mark.
  Scope scope() { return Scope(*this); }

  /// Rewind to empty.  When use so far spilled into multiple blocks, they
  /// are consolidated into a single block sized to the high-water mark, so
  /// the next pass of the same workload bump-allocates from one block.
  void reset();

  /// Bytes currently allocated (live) across all blocks.
  std::size_t used() const;

  /// Total bytes of backing storage currently owned.
  std::size_t capacity() const;

  /// Largest `used()` observed over the arena's lifetime.
  std::size_t high_water() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t active_used() const {
    return blocks_.empty() ? 0 : blocks_[active_].used;
  }
  void rewind(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
};

/// The calling thread's arena.  Pool workers and the main thread each get
/// their own instance; storage is released at thread exit.
ScratchArena& tls_arena();

}  // namespace rcr::rt
