// Portable vectorized kernel layer for the numerics hot loops.
//
// The repo's determinism contract (DESIGN.md Sec. 6-7, 12) splits the
// kernels into two classes:
//
//  * bit-exact kernels -- lane-independent elementwise ops, paired plane
//    rotations, FFT butterflies, and the *_seq reductions (SIMD products,
//    scalar-ordered adds).  Their vectorized forms perform the identical
//    sequence of IEEE roundings as the scalar fallback, so the active path
//    may change between builds/machines without changing a single output
//    bit.  These back the default solver paths.
//
//  * reassociating kernels (`dot_reassoc`, the fp32 kernels) -- lane-strided
//    accumulation reorders the sum, so results match the scalar fallback
//    only to a few ULPs.  These are used exclusively by opt-in paths
//    (mixed-precision refinement) whose contract is a residual tolerance,
//    never bit identity.
//
// Path selection: the best compiled path (AVX2 on x86-64, NEON on aarch64,
// scalar otherwise) is picked once per process, guarded by a runtime CPU
// feature check and the RCR_SIMD environment variable (RCR_SIMD=off|0|scalar
// forces the scalar table).  ForceScalarGuard overrides per thread for
// differential tests.  All kernels take unaligned pointers (the backing
// stores are std::vector / ScratchArena blocks with 16-byte alignment; the
// vector paths use unaligned loads, so alignment is a performance hint, not
// a contract).
//
// NaN/Inf caveat: `butterfly`'s vector path uses the naive complex-multiply
// formula, which matches libstdc++'s fast path bit-for-bit on finite data
// but skips the Annex-G infinity recovery.  All kernels are bit-exact (or
// ULP-bounded, per class) for finite inputs only.
#pragma once

#include <complex>
#include <cstddef>

namespace rcr::rt::simd {

/// Instruction-set paths this build can dispatch to.
enum class Path { kScalar, kAvx2, kNeon };

/// Vectorized kernel table.  One function pointer per kernel; the scalar
/// table is the reference implementation for every differential test.
struct Kernels {
  // ---- fp64, bit-exact class -------------------------------------------
  /// out[i] = a[i] + b[i].  `out` may alias `a` or `b` exactly.
  void (*add)(const double* a, const double* b, double* out, std::size_t n);
  /// out[i] = a[i] - b[i].  Alias policy as `add`.
  void (*sub)(const double* a, const double* b, double* out, std::size_t n);
  /// out[i] = a[i] * b[i] (Hadamard).  Alias policy as `add`.
  void (*mul)(const double* a, const double* b, double* out, std::size_t n);
  /// out[i] = a[i] * s.  `out` may alias `a` exactly.
  void (*scale)(const double* a, double s, double* out, std::size_t n);
  /// y[i] += s * x[i].  The j-lane update of the blocked matmul.
  void (*axpy)(double s, const double* x, double* y, std::size_t n);
  /// Jacobi plane rotation on a row pair:
  ///   x[i] <- c*x[i] - s*y[i];  y[i] <- s*x_old[i] + c*y[i].
  void (*rotate_pair)(double* x, double* y, double c, double s, std::size_t n);
  /// Sequential-order dot: acc = init; acc += a[i]*b[i] for ascending i.
  /// Products are vectorized, additions keep the scalar order -- bit-exact.
  double (*dot_seq)(double init, const double* a, const double* b,
                    std::size_t n);
  /// acc += |a[i]| * b[i], ascending (IBP radius accumulation).
  double (*absdot_seq)(double init, const double* a, const double* b,
                       std::size_t n);
  /// acc += w[i] * (w[i] >= 0 ? pos[i] : neg[i]), ascending (CROWN
  /// concretization).
  double (*choose_dot_seq)(double init, const double* w, const double* pos,
                           const double* neg, std::size_t n);
  /// acc += w[i] * a[i] for indices where (w[i] >= 0) == nonneg, ascending;
  /// other indices are skipped entirely (not added as zero), preserving
  /// signed-zero accumulator bits (CROWN intercept accumulation).
  double (*masked_dot_seq)(double init, const double* w, const double* a,
                           std::size_t n, bool nonneg);
  /// out[i] = w[i] * (w[i] >= 0 ? pos[i] : neg[i]) (CROWN substitution).
  /// `out` must not alias any input.
  void (*choose_mul)(const double* w, const double* pos, const double* neg,
                     double* out, std::size_t n);
  /// Radix-2 FFT butterfly over `n` complex pairs:
  ///   v = hi[k]*tw[k]; hi[k] = lo[k] - v; lo[k] = lo[k] + v.
  /// Bit-exact vs the scalar path for finite data (see header comment).
  void (*butterfly)(std::complex<double>* lo, std::complex<double>* hi,
                    const std::complex<double>* tw, std::size_t n);

  // ---- fp64, reassociating class (opt-in paths only) -------------------
  /// Lane-strided dot product; reassociates the sum (few-ULP contract).
  double (*dot_reassoc)(const double* a, const double* b, std::size_t n);

  // ---- fp32 kernels (mixed-precision refinement) -----------------------
  /// y[i] += s * x[i] in fp32 (FloatLu row elimination).  Bit-exact class.
  void (*saxpy)(float s, const float* x, float* y, std::size_t n);
  /// Lane-strided fp32 dot (FloatLu triangular solves).  Reassociating.
  float (*sdot_reassoc)(const float* a, const float* b, std::size_t n);
  /// dst[i] = (float)src[i].  Bit-exact class (one rounding per element).
  void (*to_float)(const double* src, float* dst, std::size_t n);
  /// dst[i] = (double)src[i].  Exact (widening).
  void (*to_double)(const float* src, double* dst, std::size_t n);
};

/// The resolved dispatch path for this process: best compiled path admitted
/// by the runtime CPU check and RCR_SIMD.  Constant after first call.
Path active_path();

/// Short name of `active_path()`: "scalar", "avx2", or "neon" (static
/// storage; usable as an obs label).
const char* path_name();

/// The kernel table for `active_path()`, or the scalar table while a
/// ForceScalarGuard is active on this thread.  When the obs metrics
/// registry is armed, each call bumps rcr.simd.dispatch{path=...} -- call
/// once per operation (not per inner-loop step) and reuse the reference.
const Kernels& active();

/// The scalar reference table, regardless of path or guards.
const Kernels& scalar_kernels();

/// Scoped per-thread override forcing `active()` to hand out the scalar
/// table (differential reference path for tests/benches).  Nestable.
class ForceScalarGuard {
 public:
  ForceScalarGuard();
  ~ForceScalarGuard();
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;
};

/// True while a ForceScalarGuard is active on the calling thread.
bool force_scalar_active();

}  // namespace rcr::rt::simd
