// Persistent worker-thread pool for the RCR parallel runtime.
//
// The pool owns N worker threads that drain a FIFO task queue.  It is the
// substrate under rcr::rt::parallel_for / parallel_reduce (parallel.hpp);
// user code rarely needs to touch it directly.  A process-wide pool is
// created lazily on first use, sized by the RCR_THREADS environment
// variable (total thread count including the caller) or, when unset, by
// std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcr::rt {

/// Fixed-size pool of persistent worker threads draining a shared queue.
class ThreadPool {
 public:
  /// Spawn `workers` threads (0 is valid: the pool accepts tasks only via
  /// submit(), which then throws, so callers must treat a 0-worker pool as
  /// "run everything inline").
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; tasks still queued are executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw out of the std::function call --
  /// the parallel_for layer catches and forwards exceptions; raw submit()
  /// users must catch their own.  Throws std::runtime_error when the pool
  /// has no workers or is shutting down.
  void submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool).  Used to run nested parallel regions inline instead of
  /// deadlocking on a saturated queue.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Thread count requested by the environment: RCR_THREADS when set to a
/// positive integer, otherwise hardware_concurrency() (minimum 1).  This is
/// the *total* concurrency used by parallel_for (workers + calling thread).
std::size_t default_thread_count();

/// The process-wide pool backing parallel_for.  Holds
/// default_thread_count() - 1 workers on first use.
ThreadPool& global_pool();

/// Resize the global pool to `total` threads of concurrency (total - 1
/// workers).  Intended for tests and benchmarks; must not be called while
/// parallel work is in flight.
void set_global_threads(std::size_t total);

/// Total concurrency the global pool currently provides (workers + 1).
std::size_t global_threads();

}  // namespace rcr::rt
