#include "rcr/rt/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

namespace rcr::rt {

namespace {
thread_local int tl_force_serial = 0;
}  // namespace

ForceSerialGuard::ForceSerialGuard() { ++tl_force_serial; }
ForceSerialGuard::~ForceSerialGuard() { --tl_force_serial; }

bool force_serial_active() { return tl_force_serial > 0; }

namespace detail {

bool must_run_serial(std::size_t n, std::size_t grain) {
  return n <= grain || force_serial_active() ||
         ThreadPool::on_worker_thread() || global_pool().size() == 0;
}

namespace {

// Shared state for one parallel_for call: self-scheduling chunk counter,
// completion latch, first-exception slot.
struct ForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable cv;

  void run_chunks() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        const std::size_t s = begin + c * grain;
        const std::size_t e = std::min(s + grain, end);
        try {
          (*body)(s, e);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error) error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->chunks = (end - begin + grain - 1) / grain;
  state->body = &body;

  ThreadPool& pool = global_pool();
  const std::size_t helpers = std::min(pool.size(), state->chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i)
    pool.submit([state] { state->run_chunks(); });

  state->run_chunks();

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace detail

}  // namespace rcr::rt
