#include "rcr/rt/scratch_arena.hpp"

#include "rcr/obs/obs.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcr::rt {

namespace {
constexpr std::size_t kMinBlockBytes = 1 << 12;  // 4 KiB

std::size_t align_up(std::size_t offset, std::size_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}
}  // namespace

void* ScratchArena::allocate(std::size_t bytes, std::size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0)
    throw std::invalid_argument("ScratchArena: alignment not a power of two");
  if (bytes == 0) bytes = 1;

  // Try the active block, then any already-owned successor (left over from a
  // previous deeper pass), before growing.
  while (!blocks_.empty()) {
    Block& b = blocks_[active_];
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t start = align_up(base + b.used, alignment) - base;
    if (start + bytes <= b.size) {
      b.used = start + bytes;
      high_water_ = std::max(high_water_, used());
      obs::gauge_max("rcr.arena.high_water_bytes",
                     static_cast<double>(high_water_));
      return b.data.get() + start;
    }
    if (active_ + 1 >= blocks_.size()) break;
    ++active_;
    blocks_[active_].used = 0;
  }

  // Geometric growth: at least double the last block, and always big enough
  // for this request plus worst-case alignment slack.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t need = bytes + alignment;
  Block fresh;
  fresh.size = std::max({kMinBlockBytes, 2 * last, need});
  fresh.data = std::make_unique<std::byte[]>(fresh.size);
  blocks_.push_back(std::move(fresh));
  active_ = blocks_.size() - 1;

  Block& b = blocks_[active_];
  const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::size_t start = align_up(base, alignment) - base;
  b.used = start + bytes;
  high_water_ = std::max(high_water_, used());
  obs::gauge_max("rcr.arena.high_water_bytes",
                 static_cast<double>(high_water_));
  return b.data.get() + start;
}

void ScratchArena::rewind(std::size_t block, std::size_t used) {
  if (blocks_.empty()) return;
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  blocks_[block].used = used;
  active_ = block;
}

void ScratchArena::reset() {
  if (blocks_.size() > 1) {
    // Consolidate: one block covering the high-water mark replaces the chain
    // so the next identical workload never walks block boundaries.
    Block merged;
    merged.size = std::max(kMinBlockBytes, 2 * high_water_);
    merged.data = std::make_unique<std::byte[]>(merged.size);
    blocks_.clear();
    blocks_.push_back(std::move(merged));
  }
  active_ = 0;
  for (Block& b : blocks_) b.used = 0;
}

std::size_t ScratchArena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_ && i < blocks_.size(); ++i)
    total += blocks_[i].used;
  return total;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

ScratchArena& tls_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace rcr::rt
