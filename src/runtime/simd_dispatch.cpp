// Path resolution and per-thread scalar override for the SIMD kernel layer.
//
// Resolution order (once per process, cached):
//   1. RCR_SIMD=off|0|false|scalar forces the scalar table -- the escape
//      hatch for bisection and for running the differential suites with the
//      reference path as the only path.
//   2. The best table compiled into this binary, admitted by a runtime CPU
//      feature check (AVX2 via __builtin_cpu_supports; NEON is baseline on
//      aarch64).  A binary built with -mavx2 on a non-AVX2 machine thus
//      degrades to scalar instead of faulting -- only the kernel TU itself
//      is built with the extended ISA, never the callers.
#include <cstdlib>
#include <cstring>

#include "rcr/obs/metrics.hpp"
#include "simd_internal.hpp"

namespace rcr::rt::simd {

namespace {

bool env_forces_scalar() {
  const char* v = std::getenv("RCR_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0 || std::strcmp(v, "scalar") == 0;
}

Path resolve_path() {
  if (env_forces_scalar()) return Path::kScalar;
#if RCR_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return Path::kAvx2;
#endif
#if RCR_SIMD_HAVE_NEON
  return Path::kNeon;
#endif
  return Path::kScalar;
}

const Kernels& table_for(Path p) {
  switch (p) {
#if RCR_SIMD_HAVE_AVX2
    case Path::kAvx2:
      return detail::kAvx2Table;
#endif
#if RCR_SIMD_HAVE_NEON
    case Path::kNeon:
      return detail::kNeonTable;
#endif
    default:
      return detail::kScalarTable;
  }
}

thread_local int g_force_scalar_depth = 0;

}  // namespace

Path active_path() {
  static const Path p = resolve_path();
  return p;
}

const char* path_name() {
  switch (active_path()) {
    case Path::kAvx2:
      return "avx2";
    case Path::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

const Kernels& active() {
  if (g_force_scalar_depth > 0) {
    obs::counter_add("rcr.simd.dispatch", "path", "scalar");
    return detail::kScalarTable;
  }
  obs::counter_add("rcr.simd.dispatch", "path", path_name());
  return table_for(active_path());
}

const Kernels& scalar_kernels() { return detail::kScalarTable; }

ForceScalarGuard::ForceScalarGuard() { ++g_force_scalar_depth; }
ForceScalarGuard::~ForceScalarGuard() { --g_force_scalar_depth; }

bool force_scalar_active() { return g_force_scalar_depth > 0; }

}  // namespace rcr::rt::simd
