// Internal linkage surface between the per-ISA kernel translation units and
// the dispatcher.  The scalar implementations are exported individually (not
// just as a table) so the vector TUs can fall back per-kernel: a path only
// overrides the entries it actually accelerates.
//
// Every kernel TU in src/runtime is compiled with -ffp-contract=off so a
// global -mfma build cannot contract the scalar reference loops (or vector
// tails) into FMA and silently break the bit-exactness contract between
// paths.
#pragma once

#include <complex>
#include <cstddef>

#include "rcr/rt/simd.hpp"

namespace rcr::rt::simd::detail {

void scalar_add(const double* a, const double* b, double* out, std::size_t n);
void scalar_sub(const double* a, const double* b, double* out, std::size_t n);
void scalar_mul(const double* a, const double* b, double* out, std::size_t n);
void scalar_scale(const double* a, double s, double* out, std::size_t n);
void scalar_axpy(double s, const double* x, double* y, std::size_t n);
void scalar_rotate_pair(double* x, double* y, double c, double s,
                        std::size_t n);
double scalar_dot_seq(double init, const double* a, const double* b,
                      std::size_t n);
double scalar_absdot_seq(double init, const double* a, const double* b,
                         std::size_t n);
double scalar_choose_dot_seq(double init, const double* w, const double* pos,
                             const double* neg, std::size_t n);
double scalar_masked_dot_seq(double init, const double* w, const double* a,
                             std::size_t n, bool nonneg);
void scalar_choose_mul(const double* w, const double* pos, const double* neg,
                       double* out, std::size_t n);
void scalar_butterfly(std::complex<double>* lo, std::complex<double>* hi,
                      const std::complex<double>* tw, std::size_t n);
double scalar_dot_reassoc(const double* a, const double* b, std::size_t n);
void scalar_saxpy(float s, const float* x, float* y, std::size_t n);
float scalar_sdot_reassoc(const float* a, const float* b, std::size_t n);
void scalar_to_float(const double* src, float* dst, std::size_t n);
void scalar_to_double(const float* src, double* dst, std::size_t n);

extern const Kernels kScalarTable;
#if RCR_SIMD_HAVE_AVX2
extern const Kernels kAvx2Table;
#endif
#if RCR_SIMD_HAVE_NEON
extern const Kernels kNeonTable;
#endif

}  // namespace rcr::rt::simd::detail
