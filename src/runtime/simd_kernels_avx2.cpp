// AVX2 kernels.  Compiled with -mavx2 -ffp-contract=off and only on
// x86-64; the dispatcher additionally checks __builtin_cpu_supports("avx2")
// at runtime before handing this table out.
//
// No FMA intrinsics anywhere: every multiply-add is an explicit
// _mm256_mul_pd / _mm256_add_pd pair so each kernel performs exactly the
// roundings of its scalar reference, keeping the bit-exact class honest and
// the runtime guard down to a single feature bit.
//
// The *_seq reductions vectorize only the products; the per-lane additions
// are spilled and accumulated in scalar program order (a serial dependence
// chain the compiler may not reassociate), which is what makes them
// bit-exact rather than merely close.
#include "simd_internal.hpp"

#if RCR_SIMD_HAVE_AVX2

#include <immintrin.h>

namespace rcr::rt::simd::detail {
namespace {

inline __m256d abs_pd(__m256d v) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  return _mm256_andnot_pd(sign, v);
}

void avx2_add(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void avx2_sub(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void avx2_mul(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void avx2_scale(const double* a, double s, double* out, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vs));
  for (; i < n; ++i) out[i] = a[i] * s;
}

void avx2_axpy(double s, const double* x, double* y, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_mul_pd(vs, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), p));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void avx2_rotate_pair(double* x, double* y, double c, double s,
                      std::size_t n) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xi = _mm256_loadu_pd(x + i);
    const __m256d yi = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(
        x + i, _mm256_sub_pd(_mm256_mul_pd(vc, xi), _mm256_mul_pd(vs, yi)));
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_mul_pd(vs, xi), _mm256_mul_pd(vc, yi)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

double avx2_dot_seq(double init, const double* a, const double* b,
                    std::size_t n) {
  double acc = init;
  double tmp[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        tmp, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc += tmp[0];
    acc += tmp[1];
    acc += tmp[2];
    acc += tmp[3];
  }
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double avx2_absdot_seq(double init, const double* a, const double* b,
                       std::size_t n) {
  double acc = init;
  double tmp[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(tmp, _mm256_mul_pd(abs_pd(_mm256_loadu_pd(a + i)),
                                        _mm256_loadu_pd(b + i)));
    acc += tmp[0];
    acc += tmp[1];
    acc += tmp[2];
    acc += tmp[3];
  }
  for (; i < n; ++i) {
    const double ai = a[i];
    acc += (ai < 0.0 ? -ai : ai) * b[i];
  }
  return acc;
}

double avx2_choose_dot_seq(double init, const double* w, const double* pos,
                           const double* neg, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  double acc = init;
  double tmp[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d mask = _mm256_cmp_pd(wv, zero, _CMP_GE_OQ);
    const __m256d sel = _mm256_blendv_pd(_mm256_loadu_pd(neg + i),
                                         _mm256_loadu_pd(pos + i), mask);
    _mm256_storeu_pd(tmp, _mm256_mul_pd(wv, sel));
    acc += tmp[0];
    acc += tmp[1];
    acc += tmp[2];
    acc += tmp[3];
  }
  for (; i < n; ++i) acc += w[i] * (w[i] >= 0.0 ? pos[i] : neg[i]);
  return acc;
}

double avx2_masked_dot_seq(double init, const double* w, const double* a,
                           std::size_t n, bool nonneg) {
  // Non-matching lanes are skipped, never added as zero: adding +0.0 could
  // flip a -0.0 accumulator, which the scalar reference would preserve.
  const __m256d zero = _mm256_setzero_pd();
  const int want = nonneg ? 1 : 0;
  double acc = init;
  double tmp[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const int bits =
        _mm256_movemask_pd(_mm256_cmp_pd(wv, zero, _CMP_GE_OQ));
    _mm256_storeu_pd(tmp, _mm256_mul_pd(wv, _mm256_loadu_pd(a + i)));
    if (((bits >> 0) & 1) == want) acc += tmp[0];
    if (((bits >> 1) & 1) == want) acc += tmp[1];
    if (((bits >> 2) & 1) == want) acc += tmp[2];
    if (((bits >> 3) & 1) == want) acc += tmp[3];
  }
  for (; i < n; ++i)
    if ((w[i] >= 0.0) == nonneg) acc += w[i] * a[i];
  return acc;
}

void avx2_choose_mul(const double* w, const double* pos, const double* neg,
                     double* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d mask = _mm256_cmp_pd(wv, zero, _CMP_GE_OQ);
    const __m256d sel = _mm256_blendv_pd(_mm256_loadu_pd(neg + i),
                                         _mm256_loadu_pd(pos + i), mask);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(wv, sel));
  }
  for (; i < n; ++i) out[i] = w[i] * (w[i] >= 0.0 ? pos[i] : neg[i]);
}

void avx2_butterfly(std::complex<double>* lo, std::complex<double>* hi,
                    const std::complex<double>* tw, std::size_t n) {
  // Two complex values per 256-bit vector.  v = hi*tw via the naive
  // (re*re - im*im, re*im + im*re) formula: identical products and sums to
  // libstdc++'s finite-data fast path, so bit-exact on finite inputs.
  auto* plo = reinterpret_cast<double*>(lo);
  auto* phi = reinterpret_cast<double*>(hi);
  const auto* ptw = reinterpret_cast<const double*>(tw);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d h = _mm256_loadu_pd(phi + 2 * k);
    const __m256d t = _mm256_loadu_pd(ptw + 2 * k);
    const __m256d hre = _mm256_movedup_pd(h);          // [hr0 hr0 hr1 hr1]
    const __m256d him = _mm256_permute_pd(h, 0xF);     // [hi0 hi0 hi1 hi1]
    const __m256d tsw = _mm256_permute_pd(t, 0x5);     // [ti0 tr0 ti1 tr1]
    // addsub: even lanes hr*tr - hi*ti, odd lanes hr*ti + hi*tr.
    const __m256d v = _mm256_addsub_pd(_mm256_mul_pd(hre, t),
                                       _mm256_mul_pd(him, tsw));
    const __m256d u = _mm256_loadu_pd(plo + 2 * k);
    _mm256_storeu_pd(plo + 2 * k, _mm256_add_pd(u, v));
    _mm256_storeu_pd(phi + 2 * k, _mm256_sub_pd(u, v));
  }
  for (; k < n; ++k) {
    const std::complex<double> u = lo[k];
    const std::complex<double> v = hi[k] * tw[k];
    lo[k] = u + v;
    hi[k] = u - v;
  }
}

double avx2_dot_reassoc(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void avx2_saxpy(float s, const float* x, float* y, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 p = _mm256_mul_ps(vs, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

float avx2_sdot_reassoc(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  float sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void avx2_to_float(const double* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm_storeu_ps(dst + i, _mm256_cvtpd_ps(_mm256_loadu_pd(src + i)));
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

void avx2_to_double(const float* src, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

}  // namespace

const Kernels kAvx2Table = {
    avx2_add,        avx2_sub,
    avx2_mul,        avx2_scale,
    avx2_axpy,       avx2_rotate_pair,
    avx2_dot_seq,    avx2_absdot_seq,
    avx2_choose_dot_seq, avx2_masked_dot_seq,
    avx2_choose_mul, avx2_butterfly,
    avx2_dot_reassoc,
    avx2_saxpy,      avx2_sdot_reassoc,
    avx2_to_float,   avx2_to_double,
};

}  // namespace rcr::rt::simd::detail

#endif  // RCR_SIMD_HAVE_AVX2
