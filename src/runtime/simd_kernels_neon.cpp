// NEON kernels (aarch64).  float64x2 is baseline on aarch64, so no runtime
// feature check is needed.  Only the highest-traffic kernels are overridden;
// the rest of the table falls back to the scalar reference per-kernel.
// Same rules as the AVX2 TU: explicit mul+add (no vfma), -ffp-contract=off,
// *_seq reductions spill lanes and add in scalar program order.
#include "simd_internal.hpp"

#if RCR_SIMD_HAVE_NEON

#include <arm_neon.h>

namespace rcr::rt::simd::detail {
namespace {

void neon_add(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void neon_sub(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void neon_mul(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void neon_scale(const double* a, double s, double* out, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vs));
  for (; i < n; ++i) out[i] = a[i] * s;
}

void neon_axpy(double s, const double* x, double* y, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t p = vmulq_f64(vs, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), p));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void neon_rotate_pair(double* x, double* y, double c, double s,
                      std::size_t n) {
  const float64x2_t vc = vdupq_n_f64(c);
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xi = vld1q_f64(x + i);
    const float64x2_t yi = vld1q_f64(y + i);
    vst1q_f64(x + i, vsubq_f64(vmulq_f64(vc, xi), vmulq_f64(vs, yi)));
    vst1q_f64(y + i, vaddq_f64(vmulq_f64(vs, xi), vmulq_f64(vc, yi)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

double neon_dot_seq(double init, const double* a, const double* b,
                    std::size_t n) {
  double acc = init;
  double tmp[2];
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(tmp, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc += tmp[0];
    acc += tmp[1];
  }
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void neon_saxpy(float s, const float* x, float* y, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t p = vmulq_f32(vs, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), p));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void neon_to_float(const double* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1_f32(dst + i, vcvt_f32_f64(vld1q_f64(src + i)));
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

void neon_to_double(const float* src, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vcvt_f64_f32(vld1_f32(src + i)));
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

}  // namespace

const Kernels kNeonTable = {
    neon_add,          neon_sub,
    neon_mul,          neon_scale,
    neon_axpy,         neon_rotate_pair,
    neon_dot_seq,      scalar_absdot_seq,
    scalar_choose_dot_seq, scalar_masked_dot_seq,
    scalar_choose_mul, scalar_butterfly,
    scalar_dot_reassoc,
    neon_saxpy,        scalar_sdot_reassoc,
    neon_to_float,     neon_to_double,
};

}  // namespace rcr::rt::simd::detail

#endif  // RCR_SIMD_HAVE_NEON
