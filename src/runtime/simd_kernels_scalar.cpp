// Scalar reference kernels.  These define the bit-level contract every
// vector path is tested against; the loops mirror the pre-SIMD call-site
// code exactly (same operation order, same skip conditions).  Compiled with
// -ffp-contract=off (see CMakeLists) so an -mfma build cannot change the
// reference roundings.
#include <cmath>

#include "simd_internal.hpp"

namespace rcr::rt::simd::detail {

void scalar_add(const double* a, const double* b, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void scalar_sub(const double* a, const double* b, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void scalar_mul(const double* a, const double* b, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scalar_scale(const double* a, double s, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void scalar_axpy(double s, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void scalar_rotate_pair(double* x, double* y, double c, double s,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

double scalar_dot_seq(double init, const double* a, const double* b,
                      std::size_t n) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double scalar_absdot_seq(double init, const double* a, const double* b,
                         std::size_t n) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i) acc += std::abs(a[i]) * b[i];
  return acc;
}

double scalar_choose_dot_seq(double init, const double* w, const double* pos,
                             const double* neg, std::size_t n) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i)
    acc += w[i] * (w[i] >= 0.0 ? pos[i] : neg[i]);
  return acc;
}

double scalar_masked_dot_seq(double init, const double* w, const double* a,
                             std::size_t n, bool nonneg) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i)
    if ((w[i] >= 0.0) == nonneg) acc += w[i] * a[i];
  return acc;
}

void scalar_choose_mul(const double* w, const double* pos, const double* neg,
                       double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = w[i] * (w[i] >= 0.0 ? pos[i] : neg[i]);
}

void scalar_butterfly(std::complex<double>* lo, std::complex<double>* hi,
                      const std::complex<double>* tw, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> u = lo[k];
    const std::complex<double> v = hi[k] * tw[k];
    lo[k] = u + v;
    hi[k] = u - v;
  }
}

double scalar_dot_reassoc(const double* a, const double* b, std::size_t n) {
  // Four-way unroll mirroring a 4-lane strided sum, so the scalar fallback
  // stays within the same few-ULP envelope as the vector paths.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void scalar_saxpy(float s, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

float scalar_sdot_reassoc(const float* a, const float* b, std::size_t n) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
  }
  float acc = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void scalar_to_float(const double* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

void scalar_to_double(const float* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

const Kernels kScalarTable = {
    scalar_add,        scalar_sub,
    scalar_mul,        scalar_scale,
    scalar_axpy,       scalar_rotate_pair,
    scalar_dot_seq,    scalar_absdot_seq,
    scalar_choose_dot_seq, scalar_masked_dot_seq,
    scalar_choose_mul, scalar_butterfly,
    scalar_dot_reassoc,
    scalar_saxpy,      scalar_sdot_reassoc,
    scalar_to_float,   scalar_to_double,
};

}  // namespace rcr::rt::simd::detail
