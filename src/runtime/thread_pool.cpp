#include "rcr/rt/thread_pool.hpp"

#include "rcr/obs/obs.hpp"

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

namespace rcr::rt {

namespace {
thread_local bool tl_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || workers_.empty())
      throw std::runtime_error("ThreadPool::submit: pool unavailable");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  // Recorded outside the lock: the submitter, not the pool, pays for it.
  obs::counter_add("rcr.runtime.tasks");
  obs::histogram_observe("rcr.runtime.queue_depth",
                         static_cast<double>(depth));
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

void ThreadPool::worker_loop() {
  tl_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RCR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT: intentional process lifetime

ThreadPool& locked_pool(std::size_t total) {
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(total > 0 ? total - 1 : 0);
  return *g_pool;
}
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return locked_pool(default_thread_count());
}

void set_global_threads(std::size_t total) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool.reset();
  locked_pool(total == 0 ? 1 : total);
}

std::size_t global_threads() { return global_pool().size() + 1; }

}  // namespace rcr::rt
