#include "rcr/scn/dsl.hpp"

#include <cstdlib>
#include <stdexcept>

#include "rcr/testkit/env.hpp"

namespace rcr::scn {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

FleetSpec& FleetSpec::cells(std::size_t lo, std::size_t hi) {
  if (lo == 0 || hi < lo)
    throw std::invalid_argument("FleetSpec::cells: bad range");
  cells_.clear();
  for (std::size_t v = lo; v <= hi; ++v) cells_.push_back(v);
  return *this;
}

FleetSpec& FleetSpec::cells(std::initializer_list<std::size_t> values) {
  cells_.assign(values);
  return *this;
}

FleetSpec& FleetSpec::users_per_cell(
    std::initializer_list<std::size_t> values) {
  users_.assign(values);
  return *this;
}

FleetSpec& FleetSpec::rbs(std::initializer_list<std::size_t> values) {
  rbs_.assign(values);
  return *this;
}

FleetSpec& FleetSpec::ticks(std::initializer_list<std::size_t> values) {
  ticks_.assign(values);
  return *this;
}

FleetSpec& FleetSpec::slices(std::initializer_list<SliceMix> mixes) {
  slices_.assign(mixes);
  return *this;
}

FleetSpec& FleetSpec::mobility(std::initializer_list<double> handover_rates) {
  mobility_.assign(handover_rates);
  return *this;
}

FleetSpec& FleetSpec::traffic(std::initializer_list<Traffic> patterns) {
  traffic_.assign(patterns);
  return *this;
}

FleetSpec& FleetSpec::rat_outage(
    std::initializer_list<std::string> fragments) {
  faults_.assign(fragments);
  return *this;
}

FleetSpec& FleetSpec::overload(std::initializer_list<OverloadLeg> legs) {
  overload_.assign(legs);
  return *this;
}

FleetSpec& FleetSpec::seed(std::uint64_t fleet_seed) {
  seed_ = fleet_seed;
  return *this;
}

FleetSpec& FleetSpec::honor_env(bool on) {
  honor_env_ = on;
  return *this;
}

std::uint64_t FleetSpec::fleet_seed() const {
  return honor_env_ ? env_fleet_seed().value_or(seed_) : seed_;
}

std::size_t FleetSpec::cardinality() const {
  return cells_.size() * users_.size() * rbs_.size() * ticks_.size() *
         slices_.size() * mobility_.size() * traffic_.size() *
         faults_.size() * overload_.size();
}

std::vector<ScenarioSpec> FleetSpec::enumerate() const {
  if (cells_.empty() || users_.empty() || rbs_.empty() || ticks_.empty() ||
      slices_.empty() || mobility_.empty() || traffic_.empty() ||
      faults_.empty() || overload_.empty())
    throw std::invalid_argument("FleetSpec::enumerate: empty axis");
  for (std::size_t v : cells_)
    if (v == 0) throw std::invalid_argument("FleetSpec: zero cells");
  for (std::size_t v : users_)
    if (v == 0) throw std::invalid_argument("FleetSpec: zero users");
  for (std::size_t v : rbs_)
    if (v == 0) throw std::invalid_argument("FleetSpec: zero rbs");
  for (std::size_t v : ticks_)
    if (v == 0) throw std::invalid_argument("FleetSpec: zero ticks");
  for (const SliceMix& mix : slices_)
    if (mix.count() == 0)
      throw std::invalid_argument("FleetSpec: empty slice mix");
  for (double rate : mobility_)
    if (!(rate >= 0.0 && rate <= 1.0))
      throw std::invalid_argument("FleetSpec: mobility outside [0,1]");

  const std::uint64_t fseed = fleet_seed();
  const std::optional<std::size_t> only =
      honor_env_ ? env_only_index() : std::nullopt;
  const std::optional<std::size_t> cap =
      honor_env_ ? env_fleet_cap() : std::nullopt;
  const std::size_t total = cardinality();

  // Stride sampling keeps a capped fleet spanning every axis rather than a
  // prefix of the cartesian walk (the last axes vary fastest).
  std::size_t stride = 1;
  if (cap && *cap > 0 && *cap < total)
    stride = (total + *cap - 1) / *cap;

  std::vector<ScenarioSpec> fleet;
  fleet.reserve(only ? 1 : (total / stride + 1));

  // Canonical axis order, last axis fastest.
  std::size_t index = 0;
  for (std::size_t c : cells_)
    for (std::size_t u : users_)
      for (std::size_t r : rbs_)
        for (std::size_t t : ticks_)
          for (const SliceMix& mix : slices_)
            for (double rate : mobility_)
              for (Traffic pattern : traffic_)
                for (const std::string& fragment : faults_)
                  for (OverloadLeg leg : overload_) {
                    const std::size_t i = index++;
                    if (only) {
                      if (i != *only) continue;
                    } else if (i % stride != 0) {
                      continue;
                    }
                    ScenarioSpec spec;
                    spec.index = i;
                    spec.seed = testkit::splitmix64(fseed + i);
                    spec.cells = c;
                    spec.users_per_cell = u;
                    spec.rbs = r;
                    spec.ticks = t;
                    spec.slices = mix;
                    spec.handover_rate = rate;
                    spec.traffic = pattern;
                    spec.faults = fragment;
                    spec.overload = leg;
                    fleet.push_back(std::move(spec));
                  }
  if (only && fleet.empty())
    throw std::invalid_argument(
        "RCR_SCN_ONLY index outside the fleet cardinality");
  return fleet;
}

std::vector<ScenarioSpec> shrink(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> simpler;
  const auto push = [&](ScenarioSpec candidate) {
    simpler.push_back(std::move(candidate));
  };
  // Halve-then-decrement per size axis, mirroring testkit::shrink_size.
  const auto shrink_size = [&](std::size_t ScenarioSpec::*field,
                               std::size_t floor_value) {
    const std::size_t value = spec.*field;
    if (value <= floor_value) return;
    const std::size_t half = floor_value + (value - floor_value) / 2;
    if (half != value) {
      ScenarioSpec candidate = spec;
      candidate.*field = half;
      push(candidate);
    }
    if (value - 1 != half) {
      ScenarioSpec candidate = spec;
      candidate.*field = value - 1;
      push(candidate);
    }
  };
  shrink_size(&ScenarioSpec::cells, 1);
  shrink_size(&ScenarioSpec::users_per_cell, 1);
  shrink_size(&ScenarioSpec::rbs, 1);
  shrink_size(&ScenarioSpec::ticks, 1);
  if (spec.slices.count() > 1) {
    ScenarioSpec candidate = spec;
    candidate.slices = SliceMix{true, false, false};
    push(candidate);
  }
  if (spec.handover_rate > 0.0) {
    ScenarioSpec candidate = spec;
    candidate.handover_rate = 0.0;
    push(candidate);
  }
  if (!spec.faults.empty()) {
    ScenarioSpec candidate = spec;
    candidate.faults.clear();
    push(candidate);
  }
  if (spec.traffic != Traffic::kStatic) {
    ScenarioSpec candidate = spec;
    candidate.traffic = Traffic::kStatic;
    push(candidate);
  }
  if (spec.overload != OverloadLeg::kNone) {
    ScenarioSpec candidate = spec;
    candidate.overload = OverloadLeg::kNone;
    push(candidate);
  }
  return simpler;
}

FleetSpec conformance_fleet() {
  return FleetSpec()
      .cells(2, 8)
      .users_per_cell({2, 3, 4})
      .rbs({4, 6, 8})
      .ticks({6})
      .slices({{true, false, false},
               {true, true, false},
               {true, true, true},
               {false, true, true}})
      .mobility({0.0, 0.2})
      .traffic({Traffic::kDiurnal, Traffic::kBursty})
      .rat_outage({"", "sites=serve.*,rate=0.25"})
      .seed(0x5c300001ull)
      .honor_env();
}

FleetSpec overload_fleet() {
  return FleetSpec()
      .cells({2, 4, 6})
      .users_per_cell({2, 3})
      .rbs({4, 6})
      .ticks({9})
      .slices({{true, true, false}, {true, true, true}})
      .mobility({0.0})
      .traffic({Traffic::kStatic, Traffic::kBursty})
      .rat_outage({"", "sites=serve.*,rate=0.4"})
      .overload({OverloadLeg::kBaseline, OverloadLeg::kLoadSpike,
                 OverloadLeg::kBrownout})
      .seed(0x5c300002ull)
      .honor_env();
}

std::optional<std::uint64_t> env_fleet_seed() {
  return env_u64("RCR_SCN_SEED");
}

std::optional<std::size_t> env_only_index() {
  const auto value = env_u64("RCR_SCN_ONLY");
  if (!value) return std::nullopt;
  return static_cast<std::size_t>(*value);
}

std::optional<std::size_t> env_fleet_cap() {
  const auto value = env_u64("RCR_SCN_FLEET");
  if (!value) return std::nullopt;
  return static_cast<std::size_t>(*value);
}

std::string env_report_path() {
  const char* raw = std::getenv("RCR_SCN_REPORT");
  if (raw == nullptr || raw[0] == '\0') return "scn_report.json";
  return raw;
}

}  // namespace rcr::scn
