#include "rcr/scn/grader.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "rcr/qos/channel.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::scn {

namespace {

// A fault fragment rides the RCR_FAULTS spec grammar but must stay inside
// the keyed serve.* sites: counter-keyed streams (any other module) and
// per-site caps make injection order depend on the thread schedule, which
// would break the byte-identical-report contract.
void validate_fragment(const std::string& fragment) {
  if (fragment.empty()) return;
  if (fragment.find("sites=serve.") == std::string::npos)
    throw std::invalid_argument(
        "scenario fault fragment must target sites=serve.* (got \"" +
        fragment + "\")");
  if (fragment.find("max=") != std::string::npos)
    throw std::invalid_argument(
        "scenario fault fragment must not cap injections (max= makes the "
        "fired-count schedule-dependent)");
  if (fragment.find("seed=") != std::string::npos)
    throw std::invalid_argument(
        "scenario fault fragment must not pin seed= (the grader seeds the "
        "spec per scenario)");
}

bool finite_nonnegative(const Vec& power) {
  for (double p : power) {
    if (!std::isfinite(p) || p < -1e-12) return false;
  }
  return true;
}

// Failed *or gated-off* steps both count as "the sound step did not answer
// on the record": a circuit-breaker skip is as auditable a reason for the
// chain to fall through as a failure.
std::size_t count_failed_steps(const std::vector<std::string>& trail) {
  std::size_t failed = 0;
  for (const std::string& line : trail)
    if (line.find("' failed") != std::string::npos ||
        line.find("' skipped") != std::string::npos)
      ++failed;
  return failed;
}

bool trail_contains(const std::vector<std::string>& trail,
                    const char* needle) {
  for (const std::string& line : trail)
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

/// Steps served from the overload layer's last-known-good path rather than
/// a live solve this tick.
bool is_snapshot_step(const std::string& step) {
  return step == "snapshot" || step == "shed-fill" || step == "quarantine";
}

void format_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

bool priority_inversion(const std::vector<std::size_t>& ranks,
                        const std::vector<bool>& fresh,
                        const std::vector<bool>& involuntary) {
  const std::size_t n = ranks.size();
  for (std::size_t a = 0; a < n; ++a) {
    if (!involuntary[a]) continue;
    for (std::size_t b = 0; b < n; ++b)
      if (fresh[b] && ranks[a] < ranks[b]) return true;
  }
  return false;
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass:
      return "pass";
    case Verdict::kDegraded:
      return "degraded";
    case Verdict::kFail:
      return "fail";
    case Verdict::kUnsound:
      return "unsound";
  }
  return "unknown";
}

ScenarioVerdict grade_scenario(const ScenarioSpec& spec,
                               const GraderOptions& options) {
  validate_fragment(spec.faults);
  if (options.service.tick_deadline_s > 0.0)
    throw std::invalid_argument(
        "grade_scenario: armed wall-clock deadlines make verdicts "
        "timing-dependent; grade with tick_deadline_s <= 0");

  ScenarioVerdict v;
  v.index = spec.index;
  v.seed = spec.seed;

  // Install the scenario's fault leg for the duration of the replay, seeded
  // by the case seed so the injection stream is part of the scenario.
  std::optional<robust::faults::ScopedFaults> faults;
  if (!spec.faults.empty()) {
    faults.emplace("seed=" + std::to_string(spec.seed) + "," + spec.faults);
    if (!robust::faults::enabled())
      throw std::invalid_argument("scenario fault fragment failed to parse: " +
                                  spec.faults);
  }

  ScenarioWorkload workload(spec);

  // Overload legs arm the serve overload layer on top of the caller's
  // service shape.  kBaseline keeps the layer off: it is the no-overload
  // reference the spike/brownout legs are scored against, on the same
  // cell-sliced workload.
  serve::ServiceConfig service_config = options.service;
  if (spec.overload == OverloadLeg::kLoadSpike ||
      spec.overload == OverloadLeg::kBrownout) {
    service_config.admission.enabled = true;
    service_config.admission.max_solves_per_tick =
        std::max<std::size_t>(1, spec.cells / 2);
    service_config.admission.max_stale_ticks = 4;
    service_config.admission.cell_slices.clear();
    for (std::size_t c = 0; c < spec.cells; ++c)
      service_config.admission.cell_slices.push_back(workload.cell_class(c));
    service_config.breaker.enabled = true;
    service_config.watchdog.enabled = true;
    if (spec.overload == OverloadLeg::kBrownout) {
      // Aggressive thresholds so the fault leg actually exercises the
      // state machine within a short scenario.  latency_budget_us stays 0:
      // pressure comes only from deterministic degradation signals.
      service_config.brownout.enabled = true;
      service_config.brownout.enter_brownout = 0.25;
      service_config.brownout.enter_shed = 0.9;
      service_config.brownout.enter_ticks = 1;
      service_config.brownout.exit_ticks = 2;
    }
  }
  serve::AllocationService service(service_config, spec.cells);

  const bool overload_leg = spec.overload != OverloadLeg::kNone;
  std::vector<std::size_t> ranks(spec.cells, 1);
  if (overload_leg)
    for (std::size_t c = 0; c < spec.cells; ++c)
      ranks[c] = serve::priority_rank(workload.cell_class(c));

  std::size_t sla_met = 0;
  std::size_t deadline_hits = 0;
  std::size_t sla_met_by_class[3] = {0, 0, 0};
  std::size_t sla_checks_by_class[3] = {0, 0, 0};
  std::size_t fresh_by_class[3] = {0, 0, 0};
  std::size_t ticks_by_class[3] = {0, 0, 0};
  const auto record = [&](const std::string& line) {
    if (v.detail.empty()) v.detail = line;
  };

  for (std::size_t t = 0; t < spec.ticks; ++t) {
    workload.advance(t);
    const serve::TickReport report = service.tick(
        t, [&workload](std::size_t c) -> const qos::RraProblem& {
          return workload.cell(c);
        });
    v.cache_hits += report.cache_hits;
    v.warm_accepted += report.warm_accepted;
    v.degraded += report.degraded;
    v.deadline_fills += report.deadline_fills;
    if (t + 1 == spec.ticks) {
      v.fleet_sum_rate = report.sum_rate;
      v.solution_hash = report.solution_hash;
    }

    for (std::size_t c = 0; c < spec.cells; ++c) {
      const serve::CellAllocation& alloc = service.allocation(c);
      const qos::RraProblem& problem = workload.cell(c);
      ++v.cell_ticks;
      char where[64];
      std::snprintf(where, sizeof(where), "tick %zu cell %zu: ", t, c);

      // --- Degradation soundness -------------------------------------
      bool sound = true;
      if (!alloc.status.usable()) {
        sound = false;
        record(std::string(where) + "unusable status " +
               alloc.status.to_string());
      } else if (alloc.step.empty()) {
        sound = false;
        record(std::string(where) + "allocation carries no producing step");
      } else if (!finite_nonnegative(alloc.power) ||
                 !std::isfinite(alloc.sum_rate)) {
        sound = false;
        record(std::string(where) + "non-finite or negative allocation from "
                                    "step '" + alloc.step + "'");
      } else if (alloc.assignment.size() != problem.num_rbs()) {
        sound = false;
        record(std::string(where) + "assignment length mismatch");
      } else if (alloc.step == "equal-power" &&
                 count_failed_steps(alloc.status.trail) < 2) {
        // The heuristic tail may only answer after both sound steps
        // (admm, waterfill) failed on the record.
        sound = false;
        record(std::string(where) +
               "heuristic equal-power answered without a recorded failure "
               "of both sound steps");
      } else if (alloc.step == "waterfill" &&
                 count_failed_steps(alloc.status.trail) < 1) {
        sound = false;
        record(std::string(where) +
               "waterfill answered without a recorded admm failure");
      } else if (is_snapshot_step(alloc.step) &&
                 !trail_contains(alloc.status.trail, "degraded:")) {
        // Overload snapshot service must audit itself: an explicit
        // degraded:stale/shed/quarantined trail marker.
        sound = false;
        record(std::string(where) + "snapshot-served step '" + alloc.step +
               "' carries no degraded: trail marker");
      } else if (alloc.step != "admm" && alloc.step != "cache" &&
                 alloc.status.trail.empty()) {
        sound = false;
        record(std::string(where) + "degraded step '" + alloc.step +
               "' carries an empty degradation trail");
      }
      if (!sound) ++v.unsound_degradations;

      // --- Feasibility residuals -------------------------------------
      const qos::AllocationResiduals residuals =
          qos::allocation_residuals(problem, alloc.assignment, alloc.power);
      if (!residuals.assignment_valid) {
        ++v.unsound_degradations;
        record(std::string(where) + "assignment names an unknown user");
      } else if (residuals.max_violation() > v.feasibility_residual) {
        v.feasibility_residual = residuals.max_violation();
        if (residuals.max_violation() > 1e-9)
          record(std::string(where) + "feasibility residual " +
                 std::to_string(residuals.max_violation()));
      }

      // --- Deadline hit-rate ----------------------------------------
      if (alloc.step == "cache" || alloc.step == "admm") ++deadline_hits;

      // --- Overload freshness ---------------------------------------
      if (overload_leg) {
        const std::size_t k =
            static_cast<std::size_t>(workload.cell_class(c));
        ++ticks_by_class[k];
        if (!is_snapshot_step(alloc.step)) ++fresh_by_class[k];
      }

      // --- Per-slice SLA ---------------------------------------------
      // One check per (cell, tick, slice class) present: the slice's
      // aggregate rate must meet floor x population (the service maximizes
      // cell sum rate, so slice commitments -- not per-user fairness -- are
      // the contract under grade).  mMTC's SLA is access: the cell answered
      // through the chain rather than a deadline fill.
      if (residuals.assignment_valid) {
        const Vec rates =
            qos::per_user_rates(problem, alloc.assignment, alloc.power);
        double class_rate[3] = {0.0, 0.0, 0.0};
        std::size_t class_users[3] = {0, 0, 0};
        for (std::size_t u = 0; u < rates.size(); ++u) {
          const std::size_t k =
              static_cast<std::size_t>(workload.slice_of(c, u));
          class_rate[k] += rates[u];
          ++class_users[k];
        }
        for (std::size_t k = 0; k < 3; ++k) {
          if (class_users[k] == 0) continue;
          ++v.sla_checks;
          ++sla_checks_by_class[k];
          const ServiceClass service_class = static_cast<ServiceClass>(k);
          bool met;
          if (service_class == ServiceClass::kMmtc) {
            // mMTC's SLA is access: the cell answered at all, not dropped
            // by a deadline fill or an admission shed.
            met = alloc.step != "deadline-fill" && alloc.step != "shed-fill";
          } else {
            met = class_rate[k] + 1e-12 >=
                  sla_floor(options.sla, service_class) *
                      static_cast<double>(class_users[k]);
          }
          if (met) {
            ++sla_met;
            ++sla_met_by_class[k];
          } else if (v.detail.empty()) {
            record(std::string(where) + "slice " +
                   qos::to_string(service_class) +
                   " below its aggregate SLA floor");
          }
        }
      }
    }

    // --- Priority inversion (overload legs grade it unsound) ---------
    if (overload_leg) {
      std::vector<bool> fresh(spec.cells, false);
      std::vector<bool> involuntary(spec.cells, false);
      for (std::size_t c = 0; c < spec.cells; ++c) {
        const serve::CellAllocation& alloc = service.allocation(c);
        fresh[c] = !is_snapshot_step(alloc.step);
        // Quarantines (watchdog, fault-driven) and injected sheds are not
        // admission *policy*; only voluntary defer/shed can invert.
        involuntary[c] =
            (alloc.step == "snapshot" || alloc.step == "shed-fill") &&
            !trail_contains(alloc.status.trail, "injected");
      }
      if (priority_inversion(ranks, fresh, involuntary)) {
        ++v.unsound_degradations;
        char where[64];
        std::snprintf(where, sizeof(where), "tick %zu: ", t);
        record(std::string(where) +
               "priority inversion: a higher-priority cell was served "
               "stale while a lower-priority cell was served fresh");
      }
    }
  }

  v.sla_satisfaction =
      v.sla_checks == 0
          ? 1.0
          : static_cast<double>(sla_met) / static_cast<double>(v.sla_checks);
  for (std::size_t k = 0; k < 3; ++k) {
    if (sla_checks_by_class[k] > 0)
      v.sla_by_class[k] = static_cast<double>(sla_met_by_class[k]) /
                          static_cast<double>(sla_checks_by_class[k]);
    if (ticks_by_class[k] > 0)
      v.fresh_by_class[k] = static_cast<double>(fresh_by_class[k]) /
                            static_cast<double>(ticks_by_class[k]);
  }
  v.deadline_hit_rate =
      v.cell_ticks == 0 ? 1.0
                        : static_cast<double>(deadline_hits) /
                              static_cast<double>(v.cell_ticks);

  // --- Points -------------------------------------------------------
  double points = 0.0;
  if (v.feasibility_residual <= 1e-9)
    points += kFeasibilityPoints;
  else if (v.feasibility_residual <= 1e-6)
    points += kFeasibilityPoints / 2.0;
  points += kSlaPoints * v.sla_satisfaction;
  points += kDeadlinePoints * v.deadline_hit_rate;
  if (v.unsound_degradations == 0) points += kSoundnessPoints;
  v.points = points;

  // --- Verdict ------------------------------------------------------
  if (v.unsound_degradations > 0)
    v.verdict = Verdict::kUnsound;
  else if (v.feasibility_residual > options.fail_residual ||
           v.sla_satisfaction < options.fail_sla)
    v.verdict = Verdict::kFail;
  else if (v.feasibility_residual <= 1e-9 && v.sla_satisfaction >= 1.0 &&
           v.deadline_hit_rate >= 1.0)
    v.verdict = Verdict::kPass;
  else
    v.verdict = Verdict::kDegraded;
  if (v.verdict == Verdict::kPass) v.detail.clear();
  return v;
}

FleetReport grade_fleet(const std::vector<ScenarioSpec>& fleet,
                        std::uint64_t fleet_seed,
                        const GraderOptions& options) {
  FleetReport report;
  report.fleet_seed = fleet_seed;
  report.verdicts.reserve(fleet.size());
  double total_points = 0.0;
  double total_sla = 0.0;
  double min_points = fleet.empty() ? 0.0 : 101.0;
  for (const ScenarioSpec& spec : fleet) {
    ScenarioVerdict v = grade_scenario(spec, options);
    switch (v.verdict) {
      case Verdict::kPass:
        ++report.passed;
        break;
      case Verdict::kDegraded:
        ++report.degraded;
        break;
      case Verdict::kFail:
        ++report.failed;
        break;
      case Verdict::kUnsound:
        ++report.unsound;
        break;
    }
    total_points += v.points;
    total_sla += v.sla_satisfaction;
    if (v.points < min_points) min_points = v.points;
    report.verdicts.push_back(std::move(v));
  }
  if (!fleet.empty()) {
    report.mean_points = total_points / static_cast<double>(fleet.size());
    report.mean_sla = total_sla / static_cast<double>(fleet.size());
    report.min_points = min_points;
  }
  return report;
}

std::string report_json(const FleetReport& report,
                        const std::vector<ScenarioSpec>& fleet) {
  if (fleet.size() != report.verdicts.size())
    throw std::invalid_argument("report_json: fleet/verdict size mismatch");
  std::string out;
  out.reserve(256 + 256 * report.verdicts.size());
  out += "{\n";
  out += "  \"fleet_seed\": " + std::to_string(report.fleet_seed) + ",\n";
  out += "  \"scenarios\": " + std::to_string(report.verdicts.size()) + ",\n";
  out += "  \"verdicts\": {\"pass\": " + std::to_string(report.passed) +
         ", \"degraded\": " + std::to_string(report.degraded) +
         ", \"fail\": " + std::to_string(report.failed) +
         ", \"unsound\": " + std::to_string(report.unsound) + "},\n";
  out += "  \"mean_points\": ";
  format_double(out, report.mean_points);
  out += ",\n  \"mean_sla\": ";
  format_double(out, report.mean_sla);
  out += ",\n  \"min_points\": ";
  format_double(out, report.min_points);
  out += ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const ScenarioVerdict& v = report.verdicts[i];
    char head[192];
    std::snprintf(head, sizeof(head),
                  "    {\"index\": %zu, \"seed\": %llu, \"verdict\": \"%s\", "
                  "\"points\": ",
                  v.index, static_cast<unsigned long long>(v.seed),
                  to_string(v.verdict));
    out += head;
    format_double(out, v.points);
    out += ", \"spec\": ";
    append_json_string(out, fleet[i].show());
    out += ", \"feasibility_residual\": ";
    format_double(out, v.feasibility_residual);
    out += ", \"sla\": ";
    format_double(out, v.sla_satisfaction);
    out += ", \"deadline_hit_rate\": ";
    format_double(out, v.deadline_hit_rate);
    out += ", \"sla_by_class\": [";
    for (std::size_t k = 0; k < 3; ++k) {
      if (k > 0) out += ", ";
      format_double(out, v.sla_by_class[k]);
    }
    out += "], \"fresh_by_class\": [";
    for (std::size_t k = 0; k < 3; ++k) {
      if (k > 0) out += ", ";
      format_double(out, v.fresh_by_class[k]);
    }
    out += "]";
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  ", \"unsound\": %zu, \"cell_ticks\": %zu, "
                  "\"cache_hits\": %zu, \"warm_accepted\": %zu, "
                  "\"degraded\": %zu, \"solution_hash\": \"%016llx\"",
                  v.unsound_degradations, v.cell_ticks, v.cache_hits,
                  v.warm_accepted, v.degraded,
                  static_cast<unsigned long long>(v.solution_hash));
    out += tail;
    if (!v.detail.empty()) {
      out += ", \"detail\": ";
      append_json_string(out, v.detail);
    }
    out += i + 1 == report.verdicts.size() ? "}\n" : "},\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool write_report(const FleetReport& report,
                  const std::vector<ScenarioSpec>& fleet,
                  const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << report_json(report, fleet);
  return static_cast<bool>(file);
}

}  // namespace rcr::scn
