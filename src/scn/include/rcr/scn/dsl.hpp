// The declarative fleet DSL (DESIGN.md §14): composable constraint builders
// that enumerate a seeded, shrinkable cartesian fleet of scenarios.
//
//   FleetSpec fleet = FleetSpec()
//       .cells(2, 8)                       // every value in 2..8
//       .users_per_cell({2, 3, 4})
//       .rbs({4, 6, 8})
//       .slices({{true, false, false}, {true, true, true}})
//       .mobility({0.0, 0.2})
//       .traffic({Traffic::kDiurnal, Traffic::kBursty})
//       .rat_outage({"", "sites=serve.*,rate=0.25"})
//       .seed(0x5c30'0001);
//   std::vector<ScenarioSpec> scenarios = fleet.enumerate();
//
// enumerate() walks the axes in declaration-independent canonical order
// (cells, users, rbs, ticks, slices, mobility, traffic, faults, overload —
// last axis fastest) and stamps each spec with its fleet index and a
// splitmix64-derived case seed.  Specs that opt in via honor_env() — the
// committed conformance_fleet() does — additionally honor the environment
// replay contract:
//
//   RCR_SCN_SEED=<u64>   override the fleet seed (the line a failure prints)
//   RCR_SCN_ONLY=<idx>   enumerate exactly one scenario by fleet index
//   RCR_SCN_FLEET=<n>    stride-sample the fleet down to <= n scenarios
//                        (CI smoke: spans every axis, not just a prefix)
//
// Opt-in keeps the replay contract targeted: `RCR_SCN_ONLY=<idx> ctest -L
// scn` pins one scenario of the conformance fleet without perturbing the
// small ad-hoc fleets other tests in the same processes build.
//
// Shrinking mirrors rcr::testkit: shrink(spec) returns a finite,
// deterministically ordered list of strictly simpler scenarios (fewer
// cells/users/RBs/ticks, mobility and faults dropped, traffic flattened),
// so a failing scenario can be walked down to a minimal reproducer.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "rcr/scn/scenario.hpp"

namespace rcr::scn {

class FleetSpec {
 public:
  /// Every cell count in [lo, hi] (inclusive).
  FleetSpec& cells(std::size_t lo, std::size_t hi);
  FleetSpec& cells(std::initializer_list<std::size_t> values);
  FleetSpec& users_per_cell(std::initializer_list<std::size_t> values);
  FleetSpec& rbs(std::initializer_list<std::size_t> values);
  FleetSpec& ticks(std::initializer_list<std::size_t> values);
  FleetSpec& slices(std::initializer_list<SliceMix> mixes);
  /// Handover rates in [0, 1].
  FleetSpec& mobility(std::initializer_list<double> handover_rates);
  FleetSpec& traffic(std::initializer_list<Traffic> patterns);
  /// RCR_FAULTS fragments ("" = fault-free leg).  Only keyed serve.* sites
  /// keep parallel replays deterministic; the grader enforces the prefix.
  FleetSpec& rat_outage(std::initializer_list<std::string> fragments);
  /// Overload legs (kNone default keeps existing fleets byte-identical).
  FleetSpec& overload(std::initializer_list<OverloadLeg> legs);
  FleetSpec& seed(std::uint64_t fleet_seed);
  /// Honor the RCR_SCN_SEED / RCR_SCN_ONLY / RCR_SCN_FLEET replay contract
  /// (off by default so replay lines target only the conformance fleet).
  FleetSpec& honor_env(bool on = true);

  std::uint64_t fleet_seed() const;  ///< After any RCR_SCN_SEED override.

  /// Size of the full cartesian product (before RCR_SCN_ONLY/RCR_SCN_FLEET).
  std::size_t cardinality() const;

  /// Enumerate the fleet.  Deterministic: same axes + same fleet seed =>
  /// identical specs, indices, and case seeds.  Throws std::invalid_argument
  /// when any axis is empty or holds an invalid value.
  std::vector<ScenarioSpec> enumerate() const;

 private:
  std::vector<std::size_t> cells_{2, 4};
  std::vector<std::size_t> users_{2, 3};
  std::vector<std::size_t> rbs_{4, 6};
  std::vector<std::size_t> ticks_{6};
  std::vector<SliceMix> slices_{{true, false, false}};
  std::vector<double> mobility_{0.0};
  std::vector<Traffic> traffic_{Traffic::kStatic};
  std::vector<std::string> faults_{""};
  std::vector<OverloadLeg> overload_{OverloadLeg::kNone};
  std::uint64_t seed_ = 0x5c300001ull;
  bool honor_env_ = false;
};

/// Strictly simpler scenarios, in fixed order: fewer cells, fewer users,
/// fewer RBs, fewer ticks, mobility dropped, faults dropped, traffic
/// flattened to kStatic.  Empty when the spec is minimal.  Candidates keep
/// the spec's index/seed so a shrunk reproducer replays the same streams.
std::vector<ScenarioSpec> shrink(const ScenarioSpec& spec);

/// The conformance fleet the `ctest -L scn` suite and the bench run: spans
/// cells 2..8, three populations, three bands, four slice mixes, two
/// mobility levels, diurnal+bursty traffic, and a RAT-outage leg — 2016
/// scenarios before any RCR_SCN_FLEET cap.
FleetSpec conformance_fleet();

/// The overload fleet (DESIGN.md §15): cell-sliced scenarios crossing a
/// baseline leg against 4x load-spike and brownout legs, with and without
/// a serve.* fault storm — 288 scenarios graded with admission control,
/// breakers, and the watchdog armed.  Priority inversion grades unsound.
FleetSpec overload_fleet();

// Environment replay contract (mirrors testkit/env.hpp).
std::optional<std::uint64_t> env_fleet_seed();  ///< RCR_SCN_SEED
std::optional<std::size_t> env_only_index();    ///< RCR_SCN_ONLY
std::optional<std::size_t> env_fleet_cap();     ///< RCR_SCN_FLEET
/// RCR_SCN_REPORT, or "scn_report.json" when unset.
std::string env_report_path();

}  // namespace rcr::scn
