// Verdict-graded scenario replay (DESIGN.md §14): run one scenario through
// the rcr::serve allocation service and score the outcome on a four-part,
// lc3tools-style points rubric:
//
//   feasibility  30 pts  max constraint residual over every cell-tick
//                        (power nonnegativity, budget, assignment validity)
//   SLA          30 pts  fraction of (cell, tick, slice) commitments met:
//                        a slice's aggregate rate reaches floor x population
//                        (eMBB/URLLC); mMTC's commitment is access (the cell
//                        answered through the chain, not a deadline fill)
//   deadline     20 pts  fraction of cell-ticks answered by the chain head
//                        (cache hit or converged ADMM — no degradation)
//   soundness    20 pts  all-or-nothing: every degraded answer must carry a
//                        non-empty FallbackChain trail, stay usable and
//                        finite, and reach a heuristic step only after the
//                        sound steps failed
//
// A scenario's verdict is kUnsound the moment any degradation breaks the
// soundness contract (the fleet gate: zero unsound verdicts on the seed
// solvers), kFail on a hard feasibility or SLA collapse, kPass at full
// points, and kDegraded otherwise.
//
// Grading is deterministic: the service runs without a wall-clock deadline,
// fault fragments are restricted to keyed serve.* sites, and the report
// carries no timestamps — the same fleet seed serializes to a byte-identical
// scn_report.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/scn/scenario.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::scn {

enum class Verdict { kPass, kDegraded, kFail, kUnsound };

const char* to_string(Verdict verdict);

/// Rubric weights (points per dimension; total 100).
inline constexpr double kFeasibilityPoints = 30.0;
inline constexpr double kSlaPoints = 30.0;
inline constexpr double kDeadlinePoints = 20.0;
inline constexpr double kSoundnessPoints = 20.0;

/// Scored outcome of one scenario replay.
struct ScenarioVerdict {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  Verdict verdict = Verdict::kPass;
  double points = 0.0;  ///< 0..100.

  double feasibility_residual = 0.0;  ///< Max violation over cell-ticks.
  double sla_satisfaction = 1.0;      ///< Fraction of slice commitments met.
  double deadline_hit_rate = 1.0;     ///< Head-answered cell-tick fraction.
  std::size_t unsound_degradations = 0;

  std::size_t cell_ticks = 0;
  std::size_t sla_checks = 0;   ///< (cell, tick, slice) commitments scored.
  std::size_t cache_hits = 0;
  std::size_t warm_accepted = 0;
  std::size_t degraded = 0;     ///< Cell-ticks answered below the head.
  std::size_t deadline_fills = 0;
  double fleet_sum_rate = 0.0;  ///< Final-tick fleet sum rate.
  std::uint64_t solution_hash = 0;  ///< Final tick's determinism witness.

  /// Per-class breakdowns, indexed by ServiceClass order (eMBB, URLLC,
  /// mMTC); 1.0 when the class is absent.  sla_by_class is the fraction of
  /// that class's commitments met; fresh_by_class is the fraction of its
  /// cell-ticks served fresh (not from a snapshot/shed/quarantine path) and
  /// is only meaningful on overload legs.
  double sla_by_class[3] = {1.0, 1.0, 1.0};
  double fresh_by_class[3] = {1.0, 1.0, 1.0};

  std::string detail;  ///< Empty on kPass; first failure line otherwise.
};

/// Grading knobs.  The default service configuration is the deterministic
/// production shape: warm starts + cache on, no wall-clock deadline.
struct GraderOptions {
  serve::ServiceConfig service;
  SlaPolicy sla;
  /// Feasibility residual above which the verdict is kFail outright.
  double fail_residual = 1e-6;
  /// SLA satisfaction below which the verdict is kFail outright.
  double fail_sla = 0.25;
};

/// Overload scoring: true when some cell A was involuntarily served stale
/// (deferred/shed by admission *policy*, not an injected fault) while a
/// strictly lower-priority cell B was served fresh in the same tick --
/// admission inverted the slice priority order, which grades kUnsound.
/// `ranks` are priority_rank values (lower = higher priority).
bool priority_inversion(const std::vector<std::size_t>& ranks,
                        const std::vector<bool>& fresh,
                        const std::vector<bool>& involuntary);

/// Replay `spec` through an AllocationService and score it.  Installs the
/// spec's fault fragment (seeded by spec.seed) for the duration of the
/// replay; throws std::invalid_argument when the fragment names non-serve
/// sites (counter-keyed streams would make parallel replays nondeterministic).
/// A spec with overload != kNone derives the serve overload layer
/// (admission control, breakers, watchdog, and -- on the brownout leg --
/// the brownout controller) on top of options.service.
ScenarioVerdict grade_scenario(const ScenarioSpec& spec,
                               const GraderOptions& options = {});

/// Fleet-level aggregation.
struct FleetReport {
  std::uint64_t fleet_seed = 0;
  std::vector<ScenarioVerdict> verdicts;
  std::size_t passed = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t unsound = 0;
  double mean_points = 0.0;
  double mean_sla = 0.0;
  double min_points = 0.0;
};

/// Grade every scenario in order (sequentially — fault installation is
/// process-global; the per-scenario service still fans cells out across the
/// pool) and aggregate.
FleetReport grade_fleet(const std::vector<ScenarioSpec>& fleet,
                        std::uint64_t fleet_seed,
                        const GraderOptions& options = {});

/// Machine-readable report (deterministic: no clocks, fixed formatting).
/// Schema: {"fleet_seed", "scenarios", "verdicts": {pass, degraded, fail,
/// unsound}, "mean_points", "mean_sla", "min_points", "results": [...]}.
std::string report_json(const FleetReport& report,
                        const std::vector<ScenarioSpec>& fleet);

/// Write report_json to `path`; returns false on I/O failure.
bool write_report(const FleetReport& report,
                  const std::vector<ScenarioSpec>& fleet,
                  const std::string& path);

}  // namespace rcr::scn
