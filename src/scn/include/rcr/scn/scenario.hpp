// Declarative wireless scenarios for the conformance fleet (DESIGN.md §14).
//
// A ScenarioSpec is one point in the fleet's cartesian constraint space: a
// cell count, a per-cell population, a slice mix (eMBB / URLLC / mMTC), a
// mobility (handover) rate, a traffic pattern, and an optional RAT-outage
// fault fragment routed through the RCR_FAULTS injector.  Specs are pure
// data — the DSL (dsl.hpp) enumerates them, ScenarioWorkload materializes
// the per-tick RraProblems, and the grader (grader.hpp) replays them
// through rcr::serve and scores the verdicts.
//
// Determinism: everything a scenario generates is a pure function of the
// spec (in particular spec.seed).  The replay contract mirrors
// RCR_TESTKIT_SEED: a failing scenario prints one line,
//   RCR_SCN_SEED=<fleet_seed> RCR_SCN_ONLY=<index> ctest -L scn
// which re-enumerates exactly that scenario and re-grades it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/numerics/rng.hpp"
#include "rcr/qos/channel.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/qos/slicing.hpp"

namespace rcr::scn {

using qos::RraProblem;
using qos::ServiceClass;

/// Per-tick population shape.
enum class Traffic {
  kStatic,   ///< Flat population: users_per_cell every tick.
  kDiurnal,  ///< Raised-cosine curve between half and full population.
  kBursty    ///< Half population with seeded bursts to full population.
};

const char* to_string(Traffic traffic);

/// Overload legs for the admission-control/brownout fleets.  A non-kNone
/// leg switches user tagging from round-robin to *cell-sliced* (every user
/// of cell c carries the class classes[c % classes.size()]) so admission
/// priority is observable per cell, and arms the serve overload layer in
/// the grader's derived ServiceConfig.
enum class OverloadLeg {
  kNone,       ///< Plain scenario; overload layer disabled (default).
  kBaseline,   ///< Cell-sliced tagging, overload layer still disabled --
               ///< the no-overload reference the spike leg is scored against.
  kLoadSpike,  ///< 4x population spike over the middle third of the ticks,
               ///< admission control + breakers + watchdog armed.
  kBrownout    ///< Same workload as kBaseline with the brownout state
               ///< machine armed on aggressive thresholds.
};

const char* to_string(OverloadLeg leg);

/// Which 5G service categories a scenario carries.  Users are tagged
/// round-robin over the enabled classes in eMBB, URLLC, mMTC order.
struct SliceMix {
  bool embb = true;
  bool urllc = false;
  bool mmtc = false;

  std::size_t count() const {
    return (embb ? 1u : 0u) + (urllc ? 1u : 0u) + (mmtc ? 1u : 0u);
  }
  /// Enabled classes in canonical order; never empty for a valid spec.
  std::vector<ServiceClass> active() const;
  /// Compact rendering: "E", "EU", "EUM", "UM", ...
  std::string show() const;
};

/// Per-slice SLA floors the grader scores against (bit/s/Hz).  The floors
/// are deliberately modest: the serve power QP maximizes sum rate, so the
/// floor separates "served at a useful rate" from "starved", not "optimal".
struct SlaPolicy {
  double embb_min_rate = 0.01;
  double urllc_min_rate = 0.10;
  // mMTC carries no rate floor; its SLA is access (no deadline-fill tick).
};

/// Rate floor the policy assigns to `service` (0 for mMTC).
double sla_floor(const SlaPolicy& policy, ServiceClass service);

/// One fully-specified scenario — a point of the fleet's cartesian space.
struct ScenarioSpec {
  std::size_t index = 0;     ///< Position in the enumerated fleet.
  std::uint64_t seed = 0;    ///< Case seed (splitmix64 of fleet seed+index).
  std::size_t cells = 2;
  std::size_t users_per_cell = 2;  ///< Peak population per cell.
  std::size_t rbs = 4;
  std::size_t ticks = 6;
  SliceMix slices;
  double handover_rate = 0.0;  ///< Per-user per-tick geometry redraw prob.
  Traffic traffic = Traffic::kStatic;
  /// RCR_FAULTS fragment ("sites=serve.*,rate=0.25") seeded per scenario by
  /// the grader, or empty for a fault-free run.  Restricted to keyed serve.*
  /// sites so injection decisions stay thread-schedule independent.
  std::string faults;
  OverloadLeg overload = OverloadLeg::kNone;

  /// One-line rendering for reports and failure messages.
  std::string show() const;
  /// The printed replay contract: re-run exactly this scenario.
  std::string replay_line(std::uint64_t fleet_seed) const;
};

/// Materializes a spec into per-tick RraProblems, one per cell: annulus
/// user geometry + AR(1) block fading (as serve::DiurnalWorkload), plus the
/// scenario's traffic curve, handover churn, and slice tagging.  Call
/// advance(t) with consecutive ticks starting at 0, then read cell(c) and
/// slice_of(c, u).
class ScenarioWorkload {
 public:
  explicit ScenarioWorkload(const ScenarioSpec& spec);

  void advance(std::size_t tick);

  std::size_t num_cells() const { return cells_.size(); }
  const RraProblem& cell(std::size_t c) const { return cells_[c].problem; }
  /// Service class of user `u` in cell `c` at the current tick.
  ServiceClass slice_of(std::size_t c, std::size_t u) const {
    return cells_[c].slices[u];
  }
  /// The cell's slice under cell-sliced tagging (overload != kNone); the
  /// grader feeds this into AdmissionConfig::cell_slices.
  ServiceClass cell_class(std::size_t c) const;
  /// Diurnal/bursty population target for cell c at tick t.
  std::size_t target_users(std::size_t c, std::size_t tick) const;

 private:
  struct CellState {
    num::Rng rng;
    Vec distances;
    num::Matrix fading;
    std::vector<ServiceClass> slices;
    RraProblem problem;

    explicit CellState(std::uint64_t seed) : rng(seed) {}
  };

  void add_user(CellState& cell);
  void remove_user(CellState& cell);
  void refresh_fading(CellState& cell);
  void handover(CellState& cell, std::size_t user);
  void rebuild_problem(CellState& cell, std::size_t c);

  ScenarioSpec spec_;
  SlaPolicy sla_;
  qos::ChannelConfig channel_;
  std::vector<CellState> cells_;
  std::size_t next_tick_ = 0;
};

}  // namespace rcr::scn
