#include "rcr/scn/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rcr::scn {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr std::uint64_t kGoldenStride = 0x9E3779B97F4A7C15ull;
// Fading coherence: cells refresh their fast fading every third tick,
// staggered by cell index so refreshes spread across the fleet (and quiet
// ticks leave the problem byte-identical for the serve cache).
constexpr std::size_t kCoherenceTicks = 3;
constexpr double kFadeBlend = 0.35;

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

// Deterministic per-(cell, tick) hash for the bursty traffic curve: a pure
// function of the spec so target_users stays const and replayable.
std::uint64_t mix64(std::uint64_t x) {
  x += kGoldenStride;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(Traffic traffic) {
  switch (traffic) {
    case Traffic::kStatic:
      return "static";
    case Traffic::kDiurnal:
      return "diurnal";
    case Traffic::kBursty:
      return "bursty";
  }
  return "unknown";
}

const char* to_string(OverloadLeg leg) {
  switch (leg) {
    case OverloadLeg::kNone:
      return "none";
    case OverloadLeg::kBaseline:
      return "baseline";
    case OverloadLeg::kLoadSpike:
      return "load-spike";
    case OverloadLeg::kBrownout:
      return "brownout";
  }
  return "none";
}

std::vector<ServiceClass> SliceMix::active() const {
  std::vector<ServiceClass> classes;
  if (embb) classes.push_back(ServiceClass::kEmbb);
  if (urllc) classes.push_back(ServiceClass::kUrllc);
  if (mmtc) classes.push_back(ServiceClass::kMmtc);
  return classes;
}

std::string SliceMix::show() const {
  std::string s;
  if (embb) s += 'E';
  if (urllc) s += 'U';
  if (mmtc) s += 'M';
  return s.empty() ? "-" : s;
}

double sla_floor(const SlaPolicy& policy, ServiceClass service) {
  switch (service) {
    case ServiceClass::kEmbb:
      return policy.embb_min_rate;
    case ServiceClass::kUrllc:
      return policy.urllc_min_rate;
    case ServiceClass::kMmtc:
      return 0.0;
  }
  return 0.0;
}

std::string ScenarioSpec::show() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "#%zu cells=%zu users=%zu rbs=%zu ticks=%zu slices=%s "
                "ho=%.2f traffic=%s",
                index, cells, users_per_cell, rbs, ticks,
                slices.show().c_str(), handover_rate, to_string(traffic));
  std::string line(buf);
  if (!faults.empty()) line += " faults=\"" + faults + "\"";
  if (overload != OverloadLeg::kNone)
    line += std::string(" overload=") + to_string(overload);
  return line;
}

std::string ScenarioSpec::replay_line(std::uint64_t fleet_seed) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "RCR_SCN_SEED=%llu RCR_SCN_ONLY=%zu ctest -L scn",
                static_cast<unsigned long long>(fleet_seed), index);
  return buf;
}

ScenarioWorkload::ScenarioWorkload(const ScenarioSpec& spec) : spec_(spec) {
  if (spec_.cells == 0 || spec_.users_per_cell == 0 || spec_.rbs == 0 ||
      spec_.ticks == 0)
    throw std::invalid_argument("ScenarioWorkload: empty scenario axis");
  if (spec_.slices.count() == 0)
    throw std::invalid_argument("ScenarioWorkload: empty slice mix");
  if (!(spec_.handover_rate >= 0.0 && spec_.handover_rate <= 1.0))
    throw std::invalid_argument(
        "ScenarioWorkload: handover_rate outside [0,1]");

  channel_.num_rbs = spec_.rbs;
  channel_.seed = spec_.seed;

  cells_.reserve(spec_.cells);
  for (std::size_t c = 0; c < spec_.cells; ++c) {
    cells_.emplace_back(spec_.seed + kGoldenStride * (c + 1));
    CellState& cell = cells_.back();
    const std::size_t start = target_users(c, 0);
    for (std::size_t u = 0; u < start; ++u) add_user(cell);
    rebuild_problem(cell, c);
  }
  next_tick_ = 1;
}

std::size_t ScenarioWorkload::target_users(std::size_t c,
                                           std::size_t tick) const {
  // The load-spike overload leg quadruples the population over the middle
  // third of the run -- the "4x load spike" the admission controller must
  // survive without priority inversion.
  std::size_t boost = 1;
  if (spec_.overload == OverloadLeg::kLoadSpike &&
      tick >= spec_.ticks / 3 && tick < (2 * spec_.ticks) / 3)
    boost = 4;
  const std::size_t peak = spec_.users_per_cell * boost;
  const std::size_t base = peak > 1 ? (peak + 1) / 2 : 1;
  switch (spec_.traffic) {
    case Traffic::kStatic:
      return peak;
    case Traffic::kDiurnal: {
      // Phase-shifted raised cosine between base and peak population.
      const std::size_t period = std::max<std::size_t>(spec_.ticks, 2);
      const double phase =
          2.0 * kPi *
          (static_cast<double>(tick % period) / static_cast<double>(period) +
           static_cast<double>(c) / static_cast<double>(spec_.cells));
      const double s = 0.5 * (1.0 - std::cos(phase));
      return base + static_cast<std::size_t>(
                        std::llround(static_cast<double>(peak - base) * s));
    }
    case Traffic::kBursty: {
      // Seeded quarter-probability bursts from base to peak population.
      const std::uint64_t h =
          mix64(spec_.seed ^ (kGoldenStride * (c + 1)) ^
                (0xD6E8FEB86659FD93ull * (tick + 1)));
      return (h & 3u) == 0u ? peak : base;
    }
  }
  return peak;
}

void ScenarioWorkload::add_user(CellState& cell) {
  // Area-uniform draw in the annulus [min_distance, cell_radius].
  const double rmin = channel_.min_distance_m;
  const double rmax = channel_.cell_radius_m;
  const double u = cell.rng.uniform();
  const double d = std::sqrt(rmin * rmin + u * (rmax * rmax - rmin * rmin));
  cell.distances.push_back(d);

  const std::size_t rows = cell.fading.rows();
  num::Matrix grown(rows + 1, spec_.rbs);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
      grown(i, rb) = cell.fading(i, rb);
  // Unit-mean exponential fading power (|h|^2 for Rayleigh h).
  for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
    grown(rows, rb) = cell.rng.exponential(1.0);
  cell.fading = std::move(grown);
}

void ScenarioWorkload::remove_user(CellState& cell) {
  const std::size_t n = cell.distances.size();
  if (n == 0) return;
  const std::size_t victim = static_cast<std::size_t>(
      cell.rng.uniform_int(0, static_cast<int>(n) - 1));
  cell.distances.erase(cell.distances.begin() +
                       static_cast<std::ptrdiff_t>(victim));
  num::Matrix shrunk(n - 1, spec_.rbs);
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == victim) continue;
    for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
      shrunk(out, rb) = cell.fading(i, rb);
    ++out;
  }
  cell.fading = std::move(shrunk);
}

void ScenarioWorkload::refresh_fading(CellState& cell) {
  for (std::size_t i = 0; i < cell.fading.rows(); ++i)
    for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
      cell.fading(i, rb) = (1.0 - kFadeBlend) * cell.fading(i, rb) +
                           kFadeBlend * cell.rng.exponential(1.0);
}

void ScenarioWorkload::handover(CellState& cell, std::size_t user) {
  // A handed-over user rejoins at fresh geometry with fresh fading.
  const double rmin = channel_.min_distance_m;
  const double rmax = channel_.cell_radius_m;
  const double u = cell.rng.uniform();
  cell.distances[user] =
      std::sqrt(rmin * rmin + u * (rmax * rmax - rmin * rmin));
  for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
    cell.fading(user, rb) = cell.rng.exponential(1.0);
}

ServiceClass ScenarioWorkload::cell_class(std::size_t c) const {
  const auto classes = spec_.slices.active();
  return classes[c % classes.size()];
}

void ScenarioWorkload::rebuild_problem(CellState& cell, std::size_t c) {
  const std::size_t users = cell.distances.size();
  const auto classes = spec_.slices.active();
  cell.slices.resize(users);
  // Overload legs slice by *cell* so per-cell admission priority maps onto
  // a single service class; plain scenarios mix classes round-robin within
  // each cell.
  for (std::size_t u = 0; u < users; ++u)
    cell.slices[u] = spec_.overload == OverloadLeg::kNone
                         ? classes[u % classes.size()]
                         : classes[c % classes.size()];

  const double ref = db_to_linear(channel_.reference_gain_db);
  const double noise_w = db_to_linear(channel_.noise_power_dbm - 30.0);
  cell.problem.gain.assign(users, spec_.rbs);
  for (std::size_t u = 0; u < users; ++u) {
    const double pathloss =
        ref * std::pow(cell.distances[u], -channel_.pathloss_exponent);
    for (std::size_t rb = 0; rb < spec_.rbs; ++rb)
      cell.problem.gain(u, rb) = pathloss * cell.fading(u, rb) / noise_w;
  }
  cell.problem.total_power = 1.0;
  cell.problem.min_rate.resize(users);
  for (std::size_t u = 0; u < users; ++u)
    cell.problem.min_rate[u] = sla_floor(sla_, cell.slices[u]);
}

void ScenarioWorkload::advance(std::size_t tick) {
  if (tick == 0 && next_tick_ == 1) return;  // tick 0 built in the ctor
  if (tick != next_tick_)
    throw std::invalid_argument(
        "ScenarioWorkload::advance: ticks must be consecutive");
  ++next_tick_;

  for (std::size_t c = 0; c < cells_.size(); ++c) {
    CellState& cell = cells_[c];
    bool changed = false;

    const std::size_t target = target_users(c, tick);
    while (cell.distances.size() < target) {
      add_user(cell);
      changed = true;
    }
    while (cell.distances.size() > target) {
      remove_user(cell);
      changed = true;
    }
    if (spec_.handover_rate > 0.0) {
      for (std::size_t u = 0; u < cell.distances.size(); ++u) {
        if (cell.rng.bernoulli(spec_.handover_rate)) {
          handover(cell, u);
          changed = true;
        }
      }
    }
    // Stagger coherence expiry by cell so refreshes spread across ticks.
    if ((tick + c) % kCoherenceTicks == 0) {
      refresh_fading(cell);
      changed = true;
    }
    if (changed) rebuild_problem(cell, c);
  }
}

}  // namespace rcr::scn
