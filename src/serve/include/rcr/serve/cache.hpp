// Sharded solution cache with deterministic LRU eviction.
//
// The allocation service looks up the previous tick's answer by quantized
// problem signature before solving.  The cache is sharded by key hash so
// cells solved on different pool threads contend on different mutexes, and
// recency is tracked by a *caller-supplied stamp* (the service passes
// tick * num_cells + cell) rather than wall-clock order: which entry gets
// evicted then depends only on the workload, never on thread scheduling, so
// a soak run produces bit-identical cache behavior for every RCR_THREADS
// setting (ties broken by smaller key).
//
// Counters (armed registry only): rcr.serve.cache.hits / .misses /
// .evictions / .insertions.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rcr/obs/obs.hpp"

namespace rcr::serve {

/// Aggregated cache statistics (sum over shards).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t size = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Fixed-capacity key/value cache, sharded, LRU by deterministic stamp.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` entries total, spread over `shards` shards (each shard holds
  /// capacity / shards, minimum 1).  `shards` is rounded up to a power of
  /// two so the shard index is a mask of the mixed key.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16) {
    std::size_t n = 1;
    while (n < shards) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<Shard>());
    per_shard_capacity_ = capacity / n;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  /// Look up `key`; on a hit copies the value into `out`, refreshes the
  /// entry's stamp to `stamp`, and returns true.
  bool get(std::uint64_t key, std::uint64_t stamp, V& out) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      obs::counter_add("rcr.serve.cache.misses");
      return false;
    }
    it->second.stamp = stamp;
    out = it->second.value;
    ++shard.hits;
    obs::counter_add("rcr.serve.cache.hits");
    return true;
  }

  /// Insert or overwrite `key`.  When the shard is full the entry with the
  /// smallest stamp (oldest deterministic recency; ties to smaller key) is
  /// evicted first.
  void put(std::uint64_t key, std::uint64_t stamp, V value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.stamp = stamp;
      it->second.value = std::move(value);
      return;
    }
    if (shard.map.size() >= per_shard_capacity_) {
      auto victim = shard.map.begin();
      for (auto cur = shard.map.begin(); cur != shard.map.end(); ++cur) {
        if (cur->second.stamp < victim->second.stamp ||
            (cur->second.stamp == victim->second.stamp &&
             cur->first < victim->first))
          victim = cur;
      }
      shard.map.erase(victim);
      ++shard.evictions;
      obs::counter_add("rcr.serve.cache.evictions");
    }
    shard.map.emplace(key, Entry{stamp, std::move(value)});
    ++shard.insertions;
    obs::counter_add("rcr.serve.cache.insertions");
  }

  /// Drop every entry (statistics are retained).
  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
    }
  }

  CacheStats stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.insertions += shard->insertions;
      total.size += shard->map.size();
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::uint64_t stamp = 0;
    V value{};
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    // Fibonacci mix so adjacent signatures spread across shards.
    const std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
    return *shards_[(mixed >> 32) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;
};

}  // namespace rcr::serve
