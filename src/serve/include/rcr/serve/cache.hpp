// Sharded solution cache with deterministic LRU eviction.
//
// The allocation service looks up the previous tick's answer by quantized
// problem signature before solving.  The cache is sharded by key hash so
// cells solved on different pool threads contend on different mutexes, and
// recency is tracked by a *caller-supplied stamp* (the service passes
// tick * num_cells + cell) rather than wall-clock order: which entry gets
// evicted then depends only on the workload, never on thread scheduling, so
// a soak run produces bit-identical cache behavior for every RCR_THREADS
// setting (ties broken by smaller key).
//
// Deterministic stamps alone are not enough under eviction pressure: with
// in-place mutation, whether a concurrent get()'s stamp refresh lands
// before or after a concurrent put()'s eviction scan decides the victim,
// and a put can become visible to a racing get mid-phase -- both
// schedule-dependent.  The *deferred two-phase mode* closes this:
// begin_deferred() freezes the committed map (gets read it without
// mutating, buffering their stamp refreshes; puts buffer inserts), and a
// serial flush() applies the buffered ops sorted by stamp -- exactly the
// order a serial run would have issued them.  The service brackets each
// tick's parallel fan-out with begin_deferred()/flush(), making eviction
// order and hit/miss outcomes bit-identical for every RCR_THREADS setting.
//
// Counters (armed registry only): rcr.serve.cache.hits / .misses /
// .evictions / .insertions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rcr/obs/obs.hpp"

namespace rcr::serve {

/// Aggregated cache statistics (sum over shards).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t size = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Fixed-capacity key/value cache, sharded, LRU by deterministic stamp.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` entries total, spread over `shards` shards (each shard holds
  /// capacity / shards, minimum 1).  `shards` is rounded up to a power of
  /// two so the shard index is a mask of the mixed key.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16) {
    std::size_t n = 1;
    while (n < shards) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<Shard>());
    per_shard_capacity_ = capacity / n;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  /// Look up `key`; on a hit copies the value into `out` and returns true.
  /// Immediate mode refreshes the entry's stamp to `stamp` in place; in the
  /// deferred window the committed map is read-only and the refresh is
  /// buffered until flush().
  bool get(std::uint64_t key, std::uint64_t stamp, V& out) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      obs::counter_add("rcr.serve.cache.misses");
      return false;
    }
    if (deferred_)
      shard.pending.push_back(PendingOp{stamp, key, false, V{}});
    else
      it->second.stamp = stamp;
    out = it->second.value;
    ++shard.hits;
    obs::counter_add("rcr.serve.cache.hits");
    return true;
  }

  /// Insert or overwrite `key`.  When the shard is full the entry with the
  /// smallest stamp (oldest deterministic recency; ties to smaller key) is
  /// evicted first.  In the deferred window the insert is buffered and
  /// applied -- in stamp order -- at flush().
  void put(std::uint64_t key, std::uint64_t stamp, V value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (deferred_) {
      shard.pending.push_back(PendingOp{stamp, key, true, std::move(value)});
      return;
    }
    apply_put(shard, key, stamp, std::move(value));
  }

  /// Enter the deferred window: gets read the committed map without
  /// mutating it, and every stamp refresh / insert is buffered.  Call from
  /// the driver thread before fanning readers/writers across the pool.
  void begin_deferred() { deferred_ = true; }

  /// Leave the deferred window: per shard, apply the buffered ops sorted by
  /// (stamp, key) -- the order a serial run would have issued them, so the
  /// resulting map, stamps, and eviction victims are independent of which
  /// thread buffered which op.  Call from the driver thread after the
  /// parallel phase joined.  No-op when not in a deferred window.
  void flush() {
    if (!deferred_) return;
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.mu);
      std::sort(shard.pending.begin(), shard.pending.end(),
                [](const PendingOp& a, const PendingOp& b) {
                  return a.stamp != b.stamp ? a.stamp < b.stamp
                                            : a.key < b.key;
                });
      for (PendingOp& op : shard.pending) {
        if (op.insert) {
          apply_put(shard, op.key, op.stamp, std::move(op.value));
        } else {
          auto it = shard.map.find(op.key);
          if (it != shard.map.end()) it->second.stamp = op.stamp;
        }
      }
      shard.pending.clear();
    }
    deferred_ = false;
  }

  /// Drop every entry and any buffered deferred ops (statistics are
  /// retained).
  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
      shard->pending.clear();
    }
  }

  CacheStats stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.insertions += shard->insertions;
      total.size += shard->map.size();
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::uint64_t stamp = 0;
    V value{};
  };
  struct PendingOp {
    std::uint64_t stamp = 0;
    std::uint64_t key = 0;
    bool insert = false;  ///< false: stamp refresh from a deferred get.
    V value{};
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::vector<PendingOp> pending;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  /// Insert/overwrite with LRU eviction; the shard mutex must be held.
  void apply_put(Shard& shard, std::uint64_t key, std::uint64_t stamp,
                 V value) {
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.stamp = stamp;
      it->second.value = std::move(value);
      return;
    }
    if (shard.map.size() >= per_shard_capacity_) {
      auto victim = shard.map.begin();
      for (auto cur = shard.map.begin(); cur != shard.map.end(); ++cur) {
        if (cur->second.stamp < victim->second.stamp ||
            (cur->second.stamp == victim->second.stamp &&
             cur->first < victim->first))
          victim = cur;
      }
      shard.map.erase(victim);
      ++shard.evictions;
      obs::counter_add("rcr.serve.cache.evictions");
    }
    shard.map.emplace(key, Entry{stamp, std::move(value)});
    ++shard.insertions;
    obs::counter_add("rcr.serve.cache.insertions");
  }

  Shard& shard_for(std::uint64_t key) {
    // Fibonacci mix so adjacent signatures spread across shards.
    const std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
    return *shards_[(mixed >> 32) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;
  /// Toggled only by the driver thread while no pool worker is inside the
  /// cache (parallel_for dispatch/join provides the happens-before edge).
  bool deferred_ = false;
};

}  // namespace rcr::serve
