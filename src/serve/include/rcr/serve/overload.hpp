// Overload-control primitives for the allocation service (DESIGN.md §15):
// slice-aware admission planning, the brownout hysteresis state machine, and
// per-solver circuit breakers.
//
// Everything here is deliberately *pure state + tick arithmetic*: admission
// plans are computed serially at the tick boundary from per-cell gate inputs,
// breakers advance on tick counts owned by exactly one cell's solve task, and
// the brownout controller observes only deterministic per-tick aggregates
// (degraded fraction, mean fallback depth) unless a wall-clock latency budget
// is explicitly armed.  That keeps every admit/defer/shed decision bit-exact
// across RCR_THREADS and replayable from a scenario seed.
#pragma once

#include <cstdint>
#include <vector>

#include "rcr/qos/slicing.hpp"

namespace rcr::serve {

/// Priority rank of a service class under admission pressure: URLLC (0)
/// outranks eMBB (1) outranks mMTC (2).  Lower rank admits first.
std::size_t priority_rank(qos::ServiceClass service);

/// Slice-aware admission control at the tick boundary.
struct AdmissionConfig {
  bool enabled = false;  ///< Off: every cell is admitted every tick.
  /// Per-tick compute budget in cell solves; 0 = unlimited.
  std::size_t max_solves_per_tick = 0;
  /// A deferred cell whose allocation is older than this many ticks is
  /// accounted as shed (its freshness guarantee is gone), not deferred.
  std::size_t max_stale_ticks = 8;
  /// Priority class per cell (indexed modulo its size); empty = one class.
  std::vector<qos::ServiceClass> cell_slices;
};

/// What the tick boundary decided for one cell.
enum class AdmitDecision {
  kAdmit,       ///< Run the solve chain this tick.
  kDefer,       ///< Reuse the last-known-good allocation ("degraded:stale").
  kShed,        ///< Dropped by budget/staleness/injection ("degraded:shed").
  kQuarantine,  ///< Watchdog quarantine: served from snapshot.
};

/// Per-cell inputs to the planner, assembled serially by the service.
struct CellGate {
  std::size_t rank = 1;       ///< priority_rank of the cell's slice.
  std::size_t staleness = 0;  ///< Ticks since the cell last solved fresh.
  bool quarantined = false;   ///< Watchdog quarantine window still open.
};

/// Planner knobs for one tick.
struct AdmissionInputs {
  std::uint64_t tick = 0;
  std::size_t budget = 0;          ///< Cell solves this tick; 0 = unlimited.
  std::size_t max_stale_ticks = 8;
  bool admission_enabled = false;  ///< Apply budget + serve.admit.shed site.
  bool shed_lowest = false;        ///< Brownout SHED: only the top priority
                                   ///< class present is admitted.
  bool full_shed = false;          ///< Tick deadline already expired: every
                                   ///< cell is shed outright.
};

/// The tick's admission plan.
struct AdmissionPlan {
  std::vector<AdmitDecision> decisions;  ///< One per cell.
  /// Cells shed by an injected serve.admit.shed fault (exempt from the
  /// grader's priority-inversion check -- the shed is a fault, not policy).
  std::vector<bool> injected;
  std::size_t admitted = 0;
  std::size_t deferred = 0;
  std::size_t shed = 0;
  std::size_t quarantined = 0;
};

/// Compute the admission plan for one tick.  Deterministic: ordering is
/// (rank asc, staleness desc, cell index asc) and the serve.admit.shed fault
/// site is keyed by the cell stamp (tick * cells + cell).  Called serially.
AdmissionPlan plan_admission(const std::vector<CellGate>& cells,
                             const AdmissionInputs& in);

/// Brownout hysteresis state machine: NORMAL -> BROWNOUT -> SHED.
enum class BrownoutState { kNormal = 0, kBrownout = 1, kShed = 2 };

const char* to_string(BrownoutState state);

struct BrownoutConfig {
  bool enabled = false;
  /// Wall-clock p99 tick-latency budget in microseconds; 0 disables the
  /// latency pressure term (the deterministic default -- arming it makes
  /// state transitions timing-dependent by design).
  double latency_budget_us = 0.0;
  double ewma_alpha = 0.25;     ///< EWMA weight for the latency estimate.
  double enter_brownout = 0.5;  ///< Pressure at which NORMAL -> BROWNOUT.
  double enter_shed = 0.9;      ///< Pressure at which BROWNOUT -> SHED.
  double exit_margin = 0.5;     ///< Exit when pressure < threshold * margin.
  std::size_t enter_ticks = 2;  ///< Consecutive ticks above to escalate.
  std::size_t exit_ticks = 3;   ///< Consecutive ticks below to recover.
  /// ADMM iteration-cap scale applied while in BROWNOUT (cheaper head).
  double brownout_iteration_factor = 0.25;
  /// Armed tick-deadline scale applied while in BROWNOUT.
  double brownout_deadline_factor = 0.5;
};

/// Owned by the service driver thread; observe() runs serially at the end of
/// each tick and the state is read serially at the start of the next.
class BrownoutController {
 public:
  BrownoutController() = default;
  explicit BrownoutController(const BrownoutConfig& config)
      : config_(config) {}

  BrownoutState state() const { return state_; }

  /// Feed one tick's pressure signals.  `degraded_fraction` and `mean_depth`
  /// (mean fallback-chain depth, 1.0 = every head answered) are deterministic;
  /// `tick_latency_us` contributes only when latency_budget_us > 0.
  void observe(double degraded_fraction, double mean_depth,
               double tick_latency_us);

  std::uint64_t transitions() const { return transitions_; }
  /// Ticks observed while in `state` (dwell time).
  std::uint64_t dwell(BrownoutState state) const {
    return dwell_[static_cast<std::size_t>(state)];
  }

 private:
  void transition(BrownoutState next);

  BrownoutConfig config_;
  BrownoutState state_ = BrownoutState::kNormal;
  double ewma_us_ = 0.0;
  double peak_us_ = 0.0;  ///< Decaying max: the p99 proxy.
  std::size_t above_ = 0;
  std::size_t below_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t dwell_[3] = {0, 0, 0};
};

/// Per-solver circuit breaker: closed / open / half-open with deterministic
/// tick-count backoff.  One instance per (cell, solver stage), owned by the
/// task that solves the cell, so no cross-thread state is shared.
struct BreakerConfig {
  bool enabled = false;
  std::size_t failure_threshold = 3;  ///< Consecutive failures to open.
  std::size_t open_ticks = 8;         ///< Initial open window (ticks).
  std::size_t max_open_ticks = 64;    ///< Backoff doubling cap.
};

struct CircuitBreaker {
  std::size_t failures = 0;        ///< Consecutive failures while closed.
  std::uint64_t open_until = 0;    ///< Blocked while tick < open_until.
  std::size_t backoff = 0;         ///< Current open window (0 = never tripped).
  std::uint64_t trips = 0;         ///< Times the breaker opened/re-opened.
  bool awaiting_probe = false;     ///< Open: next allowed tick is a probe.

  /// Step gate: true while the open window is still running.
  bool blocked(std::uint64_t tick) const { return tick < open_until; }
  /// True when the open window elapsed and the next run is the probe.
  bool probing(std::uint64_t tick) const {
    return awaiting_probe && tick >= open_until;
  }
  /// The stage ran clean: close (half-open probe success recovers fully).
  void record_success(const BreakerConfig& config, std::uint64_t tick);
  /// The stage failed: trip after failure_threshold consecutive failures;
  /// a failed half-open probe re-opens with doubled backoff.
  void record_failure(const BreakerConfig& config, std::uint64_t tick);
};

/// Watchdog: a cell whose solve output is non-finite is quarantined and
/// served from its last-known-good snapshot for quarantine_ticks ticks.
struct WatchdogConfig {
  bool enabled = false;
  std::size_t quarantine_ticks = 4;
};

}  // namespace rcr::serve
