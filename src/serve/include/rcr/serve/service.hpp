// Tick-driven QoS allocation service over rcr::qos (DESIGN.md §13).
//
// Every tick the service re-solves radio resource allocation for a fleet of
// cells under a per-tick deadline.  Three mechanisms keep the tick cheap:
//
//  1. Warm starting -- each cell carries the ADMM splitting state of its
//     previous solve; on a slowly-drifting channel the warm solve converges
//     in a fraction of the cold iteration count.
//  2. Solution caching -- a sharded LRU keyed by quantized problem
//     signature returns the previous allocation outright when the problem
//     did not change materially (block-fading coherence intervals).
//  3. Batched parallel solves -- cells fan out across the global ThreadPool
//     via rt::parallel_for with per-cell scratch arenas; the chunk
//     decomposition and per-cell state make results bit-exact for every
//     RCR_THREADS setting.
//
// Degradation: each cell solves through a FallbackChain "serve.cell"
// (warm-started ADMM power QP -> water-filling -> equal power); when the
// tick deadline expires before a cell's chain starts, the cell is filled
// with the equal-power allocation inline so every cell always has an
// answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rcr/learn/predictor.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/robust/status.hpp"
#include "rcr/serve/cache.hpp"
#include "rcr/serve/overload.hpp"
#include "rcr/serve/signature.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::serve {

/// Learned warm-start head (DESIGN.md §16).  When armed, each admitted
/// solve asks the rcr::learn predictor for a feasible starting point and
/// seeds ADMM with it when its projected-gradient residual beats the
/// carried state's by `select_margin`.  The head only ever changes the
/// *starting point* of the sound solver -- a bad prediction is rejected by
/// the warm-start contract and the solve proceeds exactly as before.
struct LearnedHeadConfig {
  bool enabled = false;        ///< Master switch; off is bit-identical to seed.
  /// Weights artifact (artifact.hpp format).  Loaded at service
  /// construction; a load failure leaves the head unarmed with the Status
  /// recorded (never throws).  Empty: arm via arm_learned_head().
  std::string artifact_path;
  /// The learned start is used when its residual < margin * incumbent
  /// residual; < 1 demands strict improvement (hysteresis against churn).
  double select_margin = 0.9;
};

/// Service knobs.
struct ServiceConfig {
  bool warm_start = true;     ///< Reuse each cell's previous ADMM state.
  bool cache_enabled = true;  ///< Consult the solution cache before solving.
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 16;
  SignatureConfig signature;
  /// Per-tick wall-clock deadline in seconds; <= 0 runs unlimited (the
  /// deterministic default -- an armed deadline makes degradation
  /// timing-dependent by design).
  double tick_deadline_s = 0.0;
  /// ADMM knobs for the per-cell power QP.
  double admm_rho = 1.0;
  double admm_tolerance = 1e-8;
  std::size_t admm_max_iterations = 4000;
  /// Scale of the soft power-budget penalty added to the QP Hessian
  /// (multiplied by the largest curvature entry).
  double budget_penalty = 1.0;
  /// parallel_for grain: cells per chunk.
  std::size_t cells_per_chunk = 1;
  /// Overload-control layer (DESIGN.md §15); every piece defaults off, so a
  /// default-configured service behaves exactly as before this layer existed.
  AdmissionConfig admission;
  BrownoutConfig brownout;
  BreakerConfig breaker;
  WatchdogConfig watchdog;
  /// Learned warm-start head; defaults off (DESIGN.md §16).
  LearnedHeadConfig learned;
};

/// One cell's allocation for the current tick.
struct CellAllocation {
  qos::Assignment assignment;  ///< RB -> user.
  Vec power;                   ///< Per-RB transmit power (sums to budget).
  double sum_rate = 0.0;       ///< Achieved sum spectral efficiency.
  std::size_t iterations = 0;  ///< ADMM iterations spent (0 on hit/fallback).
  opt::WarmUse warm_use = opt::WarmUse::kCold;
  bool learned_start = false;  ///< ADMM was seeded by the learned head.
  bool cache_hit = false;
  std::string step;            ///< Producing step: "cache", "admm",
                               ///< "waterfill", "equal-power",
                               ///< "deadline-fill", or one of the
                               ///< snapshot-served overload steps
                               ///< "snapshot", "shed-fill", "quarantine".
  robust::Status status;
};

/// Per-tick accounting.
struct TickReport {
  std::size_t tick = 0;
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t solves = 0;           ///< Cells that ran the fallback chain.
  std::size_t warm_accepted = 0;    ///< Solves that reused warm state.
  std::size_t learned_starts = 0;   ///< Solves seeded by the learned head.
  std::size_t degraded = 0;         ///< Cells answered below the ADMM head.
  std::size_t deadline_fills = 0;   ///< Cells filled after deadline expiry.
  std::size_t total_iterations = 0; ///< ADMM iterations across solves.
  double sum_rate = 0.0;            ///< Fleet sum rate this tick.
  double tick_seconds = 0.0;
  // Overload-control accounting (all zero when the layer is off).
  std::size_t admitted = 0;     ///< Cells admitted to the solve chain.
  std::size_t deferred = 0;     ///< Cells served stale from snapshot.
  std::size_t shed = 0;         ///< Cells shed (budget/staleness/injection).
  std::size_t quarantined = 0;  ///< Cells in a watchdog quarantine window.
  int brownout_state = 0;       ///< BrownoutState at the start of the tick.
  /// FNV-1a over every cell's (assignment, power) in ascending cell order:
  /// the cross-thread determinism witness.
  std::uint64_t solution_hash = 0;
};

/// The tick loop.  Construct once per fleet; call tick() with consecutive
/// tick indices.  Not itself thread-safe (one driver thread); the internal
/// per-cell solves fan out across the pool.
class AllocationService {
 public:
  /// Reads cell c's current problem; must be valid for the tick() call.
  using ProblemFn = std::function<const RraProblem&(std::size_t)>;

  AllocationService(const ServiceConfig& config, std::size_t num_cells);

  /// Solve every cell for `tick_index`.  `problem_of` is called once per
  /// cell (from pool threads; it must be safe to call concurrently for
  /// distinct cells -- a const workload qualifies).
  TickReport tick(std::size_t tick_index, const ProblemFn& problem_of);

  /// Convenience: tick against a DiurnalWorkload (advance() it first).
  TickReport tick(std::size_t tick_index, const DiurnalWorkload& workload);

  std::size_t num_cells() const { return warm_.size(); }

  /// Cell c's allocation from the most recent tick().
  const CellAllocation& allocation(std::size_t c) const { return current_[c]; }

  CacheStats cache_stats() const { return cache_.stats(); }

  /// Drop all warm states (every next solve runs cold).
  void reset_warm_states();

  /// Drop all cached solutions (statistics retained).
  void clear_cache() { cache_.clear(); }

  /// The brownout state machine (advances once per tick when enabled).
  const BrownoutController& brownout() const { return brownout_; }

  /// Arm the learned head with an in-memory predictor (training/tests
  /// path; the config path loads an artifact at construction).  Returns
  /// false -- and the head stays unarmed -- on a shape-invalid predictor.
  bool arm_learned_head(const learn::WarmStartPredictor& predictor);

  /// Drop the learned head (solves revert to carried-state warm starts).
  void disarm_learned_head() { learned_armed_ = false; }

  bool learned_head_armed() const { return learned_armed_; }

  /// Outcome of the constructor-time artifact load: kOk when it loaded (or
  /// was never requested); the load failure otherwise.
  const robust::Status& learned_load_status() const {
    return learned_status_;
  }

 private:
  /// Per-cell overload state: the last-known-good snapshot the cell serves
  /// from while deferred/shed/quarantined, plus its breakers.  Mutated only
  /// by the cell's own pool task or the serial tick boundary.
  struct CellRuntime {
    qos::Assignment snapshot_assignment;
    Vec snapshot_power;
    bool has_snapshot = false;
    std::uint64_t last_fresh_tick = 0;  ///< Tick of the last fresh answer.
    std::uint64_t quarantine_until = 0;
    CircuitBreaker admm_breaker;
    CircuitBreaker waterfill_breaker;
    std::uint64_t watchdog_trips = 0;
  };

  CellAllocation solve_cell(const RraProblem& problem, std::size_t cell,
                            std::uint64_t tick, std::uint64_t stamp,
                            const robust::Deadline& deadline);
  /// Serve a non-admitted cell from its snapshot (or an equal-power
  /// rebuild when the snapshot no longer matches the problem shape).
  CellAllocation serve_from_snapshot(const RraProblem& problem,
                                     std::size_t cell, std::uint64_t tick,
                                     AdmitDecision reason, bool injected);
  AdmissionPlan build_plan(std::uint64_t tick, bool full_shed,
                           BrownoutState state) const;

  ServiceConfig config_;
  ShardedLruCache<CellAllocation> cache_;
  learn::WarmStartPredictor predictor_;
  bool learned_armed_ = false;
  robust::Status learned_status_;
  std::vector<opt::AdmmWarmState> warm_;
  std::vector<CellAllocation> current_;
  std::vector<CellRuntime> runtime_;
  BrownoutController brownout_;
};

}  // namespace rcr::serve
