// Quantized problem signatures for the allocation-service solution cache.
//
// Two RRA problems that differ only below channel-estimation accuracy should
// share one cache entry: the signature hashes the problem *shape* (sizes,
// power budget, QoS floors), the active-set fingerprint (which user owns
// each RB under the best-gain seed assignment), and the channel gains
// quantized onto a logarithmic grid.  Gains are quantized in the log2
// domain because they span orders of magnitude -- a fixed linear quantum
// would either collapse weak users or never bucket strong ones.
//
// The signature is a pure function of the problem and the config: no clock,
// no global state, so it is bit-identical across threads and runs.
#pragma once

#include <cstdint>

#include "rcr/qos/rra.hpp"

namespace rcr::serve {

using qos::RraProblem;

/// Quantization knobs.  The defaults bucket gains to ~0.05 in log2 (about
/// 0.15 dB), well inside typical CQI reporting accuracy.
struct SignatureConfig {
  /// Quantum of the log2(gain) grid.  Smaller = more cache misses but less
  /// allocation error on a hit.  Must be > 0.
  double gain_log2_quantum = 0.05;
  /// Quantum for the power budget and QoS floors (linear domain).
  double scalar_quantum = 1e-6;
};

/// FNV-1a over raw bytes (seeded so signatures chain).
std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes,
                          std::uint64_t seed = 1469598103934665603ull);

/// Quantize one gain onto the log2 grid: llround(log2(g) / quantum), with
/// non-positive gains mapped to a sentinel bucket.
std::int64_t quantize_gain(double gain, double log2_quantum);

/// Signature of an RRA problem under the given quantization.  Hashes, in
/// order: dimensions, quantized budget and QoS floors, the best-gain
/// active-set fingerprint, and every quantized gain in row-major order.
std::uint64_t problem_signature(const RraProblem& problem,
                                const SignatureConfig& config = {});

}  // namespace rcr::serve
