// Diurnal multi-cell workload generator for the allocation-service soak
// bench and tests.
//
// Each cell carries a population of users that tracks a sinusoidal diurnal
// curve (phase-shifted per cell so the fleet never peaks at once) and a
// block-fading channel: gains hold still for `coherence_ticks`, then refresh
// by an AR(1) blend toward a fresh fading draw.  Holding the channel still
// between refreshes is what gives the solution cache its hits; the AR(1)
// blend (rather than an independent redraw) is what keeps consecutive
// problems close enough that warm-started solves converge in a few
// iterations.
//
// Determinism: every cell owns its own seeded Rng stream, and advance() is
// called from one thread, so the generated problem sequence depends only on
// (config, tick) -- never on thread count or scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "rcr/learn/qp.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/qos/channel.hpp"
#include "rcr/qos/rra.hpp"

namespace rcr::serve {

using num::Matrix;
using qos::RraProblem;

/// Workload shape.
struct WorkloadConfig {
  std::size_t num_cells = 8;
  std::size_t num_rbs = 12;
  std::size_t min_users = 2;    ///< Trough of the diurnal curve.
  std::size_t peak_users = 6;   ///< Crest of the diurnal curve.
  std::size_t period_ticks = 128;  ///< Diurnal period.
  /// Channel coherence: fading refreshes every this many ticks (>= 1);
  /// between refreshes a cell's problem is bit-identical tick to tick.
  std::size_t coherence_ticks = 4;
  /// AR(1) innovation weight of a fading refresh: 0 freezes the channel,
  /// 1 redraws it independently.  Small values keep consecutive problems
  /// close (the warm-start regime).
  double fade_blend = 0.3;
  double total_power = 4.0;    ///< Per-cell budget (watts).
  double min_rate = 0.05;      ///< Per-user QoS floor (bit/s/Hz).
  qos::ChannelConfig channel;  ///< Geometry/path-loss template per cell.
  std::uint64_t seed = 42;
};

/// Tick-stepped generator.  Call advance(t) with consecutive t starting at
/// 0, then read cell(c) / changed(c).
class DiurnalWorkload {
 public:
  explicit DiurnalWorkload(const WorkloadConfig& config);

  /// Step every cell to tick `t` (arrivals/departures toward the diurnal
  /// target, fading refresh on coherence expiry).  Must be called with
  /// consecutive ticks; throws std::invalid_argument otherwise.
  void advance(std::size_t tick);

  std::size_t num_cells() const { return cells_.size(); }

  /// Cell c's problem at the current tick.
  const RraProblem& cell(std::size_t c) const { return cells_[c].problem; }

  /// True when cell c's problem changed at the last advance() (arrival,
  /// departure, or fading refresh).  Always true at tick 0.
  bool changed(std::size_t c) const { return cells_[c].changed; }

  /// Diurnal target user count for cell c at tick t.
  std::size_t target_users(std::size_t c, std::size_t tick) const;

 private:
  struct CellState {
    num::Rng rng;
    Vec distances;        ///< Per-user geometry (slow state).
    Matrix fading;        ///< Per-user x RB fading power (fast state).
    RraProblem problem;   ///< Assembled gains + budget + floors.
    bool changed = true;

    explicit CellState(std::uint64_t seed) : rng(seed) {}
  };

  void rebuild_problem(CellState& cell) const;
  void add_user(CellState& cell);
  void remove_user(CellState& cell);
  void refresh_fading(CellState& cell);

  WorkloadConfig config_;
  std::vector<CellState> cells_;
  std::size_t next_tick_ = 0;
};

/// Sample the per-cell power QPs a serve run would solve over the first
/// `ticks` ticks of a DiurnalWorkload(config): best-gain assignment +
/// Taylor coefficients, built exactly the way solve_cell builds them.
/// This is the training/eval dataset for the learned warm-start head --
/// generated here so the trainer sees the serving distribution without
/// depending on the service itself.
std::vector<learn::PowerQpData> sample_power_qps(const WorkloadConfig& config,
                                                 std::size_t ticks,
                                                 double budget_penalty = 1.0);

}  // namespace rcr::serve
