#include "rcr/serve/overload.hpp"

#include <algorithm>
#include <numeric>

#include "rcr/obs/metrics.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::serve {

std::size_t priority_rank(qos::ServiceClass service) {
  switch (service) {
    case qos::ServiceClass::kUrllc:
      return 0;
    case qos::ServiceClass::kEmbb:
      return 1;
    case qos::ServiceClass::kMmtc:
      return 2;
  }
  return 1;
}

AdmissionPlan plan_admission(const std::vector<CellGate>& cells,
                             const AdmissionInputs& in) {
  const std::size_t n = cells.size();
  AdmissionPlan plan;
  plan.decisions.assign(n, AdmitDecision::kAdmit);
  plan.injected.assign(n, false);

  if (in.full_shed) {
    // Deadline gone before the tick even started: nothing solves, every
    // cell answers from its snapshot.
    std::fill(plan.decisions.begin(), plan.decisions.end(),
              AdmitDecision::kShed);
    plan.shed = n;
    return plan;
  }

  for (std::size_t c = 0; c < n; ++c) {
    if (cells[c].quarantined) {
      plan.decisions[c] = AdmitDecision::kQuarantine;
      ++plan.quarantined;
    }
  }

  if (!in.admission_enabled && !in.shed_lowest) {
    plan.admitted = n - plan.quarantined;
    return plan;
  }

  // Deterministic admit order: highest priority first, then the most stale
  // (their last-known-good answer ages worst), then cell index as the final
  // total-order tiebreak.
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t c = 0; c < n; ++c)
    if (!cells[c].quarantined) order.push_back(c);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (cells[a].rank != cells[b].rank)
                       return cells[a].rank < cells[b].rank;
                     if (cells[a].staleness != cells[b].staleness)
                       return cells[a].staleness > cells[b].staleness;
                     return a < b;
                   });

  const std::size_t top_rank = order.empty() ? 0 : cells[order[0]].rank;
  std::size_t taken = 0;
  for (std::size_t c : order) {
    const bool over_budget = in.budget > 0 && taken >= in.budget;
    const bool below_top = in.shed_lowest && cells[c].rank != top_rank;
    if (!over_budget && !below_top) {
      // The admission path itself is a fault target: a firing
      // serve.admit.shed drops an otherwise-admitted cell.  Keyed by the
      // cell stamp so parallel replays stay deterministic.
      if (in.admission_enabled &&
          robust::faults::should_inject("serve.admit.shed",
                                        in.tick * n + c)) {
        plan.decisions[c] = AdmitDecision::kShed;
        plan.injected[c] = true;
        ++plan.shed;
        continue;
      }
      plan.decisions[c] = AdmitDecision::kAdmit;
      ++plan.admitted;
      ++taken;
      continue;
    }
    if (cells[c].staleness >= in.max_stale_ticks) {
      plan.decisions[c] = AdmitDecision::kShed;
      ++plan.shed;
    } else {
      plan.decisions[c] = AdmitDecision::kDefer;
      ++plan.deferred;
    }
  }
  return plan;
}

const char* to_string(BrownoutState state) {
  switch (state) {
    case BrownoutState::kNormal:
      return "normal";
    case BrownoutState::kBrownout:
      return "brownout";
    case BrownoutState::kShed:
      return "shed";
  }
  return "normal";
}

void BrownoutController::transition(BrownoutState next) {
  if (next == state_) return;
  state_ = next;
  above_ = 0;
  below_ = 0;
  ++transitions_;
  obs::counter_add("rcr.brownout.transitions");
  obs::gauge_set("rcr.brownout.state", "state", to_string(state_),
                 static_cast<double>(static_cast<int>(state_)));
}

void BrownoutController::observe(double degraded_fraction, double mean_depth,
                                 double tick_latency_us) {
  if (!config_.enabled) return;
  ++dwell_[static_cast<std::size_t>(state_)];

  double pressure = degraded_fraction;
  // mean_depth == 1 means every chain head answered; each extra fallback
  // step across the fleet is load the cheap heads should be absorbing.
  pressure = std::max(pressure, (mean_depth - 1.0) * 0.5);
  if (config_.latency_budget_us > 0.0) {
    ewma_us_ = ewma_us_ == 0.0
                   ? tick_latency_us
                   : config_.ewma_alpha * tick_latency_us +
                         (1.0 - config_.ewma_alpha) * ewma_us_;
    // Decaying max approximates the p99 without a reservoir.
    peak_us_ = std::max(tick_latency_us, 0.8 * peak_us_);
    pressure =
        std::max(pressure, std::max(ewma_us_, peak_us_) /
                               config_.latency_budget_us);
  }

  switch (state_) {
    case BrownoutState::kNormal:
      if (pressure >= config_.enter_brownout) {
        below_ = 0;
        if (++above_ >= config_.enter_ticks)
          transition(BrownoutState::kBrownout);
      } else {
        above_ = 0;
      }
      break;
    case BrownoutState::kBrownout:
      if (pressure >= config_.enter_shed) {
        below_ = 0;
        if (++above_ >= config_.enter_ticks) transition(BrownoutState::kShed);
      } else if (pressure < config_.enter_brownout * config_.exit_margin) {
        above_ = 0;
        if (++below_ >= config_.exit_ticks) transition(BrownoutState::kNormal);
      } else {
        above_ = 0;
        below_ = 0;
      }
      break;
    case BrownoutState::kShed:
      if (pressure < config_.enter_shed * config_.exit_margin) {
        if (++below_ >= config_.exit_ticks)
          transition(BrownoutState::kBrownout);
      } else {
        below_ = 0;
      }
      break;
  }
}

void CircuitBreaker::record_success(const BreakerConfig& config,
                                    std::uint64_t tick) {
  (void)config;
  (void)tick;
  failures = 0;
  if (awaiting_probe) {
    // Half-open probe succeeded: fully close and forget the backoff.
    awaiting_probe = false;
    backoff = 0;
    obs::counter_add("rcr.breaker.closed");
  }
}

void CircuitBreaker::record_failure(const BreakerConfig& config,
                                    std::uint64_t tick) {
  if (awaiting_probe) {
    // Failed half-open probe: re-open with doubled (capped) backoff.
    backoff = std::min(backoff == 0 ? config.open_ticks : backoff * 2,
                       config.max_open_ticks);
    open_until = tick + 1 + backoff;
    ++trips;
    obs::counter_add("rcr.breaker.opened");
    return;
  }
  if (++failures >= config.failure_threshold) {
    failures = 0;
    backoff = backoff == 0 ? config.open_ticks
                           : std::min(backoff, config.max_open_ticks);
    open_until = tick + 1 + backoff;
    awaiting_probe = true;
    ++trips;
    obs::counter_add("rcr.breaker.opened");
  }
}

}  // namespace rcr::serve
