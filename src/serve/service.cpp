#include "rcr/serve/service.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fallback.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/scratch_arena.hpp"

namespace rcr::serve {

namespace {

constexpr double kInvLn2 = 1.4426950408889634074;  // 1 / ln 2

/// Scale `power` so it sums to exactly `budget` (no-op on a zero vector).
void rescale_to_budget(Vec& power, double budget) {
  double total = 0.0;
  for (double& p : power) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total <= 0.0) return;
  const double scale = budget / total;
  for (double& p : power) p *= scale;
}

/// Sum spectral efficiency of an allocation over its per-RB gains.
double sum_rate_of(const Vec& gains, const Vec& power) {
  double rate = 0.0;
  for (std::size_t rb = 0; rb < gains.size(); ++rb)
    rate += std::log2(1.0 + power[rb] * gains[rb]);
  return rate;
}

}  // namespace

AllocationService::AllocationService(const ServiceConfig& config,
                                     std::size_t num_cells)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      warm_(num_cells),
      current_(num_cells) {
  if (num_cells == 0)
    throw std::invalid_argument("AllocationService: zero cells");
}

void AllocationService::reset_warm_states() {
  for (auto& w : warm_) w.clear();
}

CellAllocation AllocationService::solve_cell(const RraProblem& problem,
                                             std::size_t cell,
                                             std::uint64_t stamp,
                                             const robust::Deadline& deadline) {
  // Injection decisions are keyed by the deterministic cell stamp: cells
  // solve on pool threads in schedule-dependent order, and a counter-keyed
  // stream would make which cell degrades depend on that schedule.
  namespace faults = robust::faults;
  CellAllocation alloc;
  const std::uint64_t sig = problem_signature(problem, config_.signature);
  if (config_.cache_enabled && !faults::should_inject("serve.cache.drop", stamp) &&
      cache_.get(sig, stamp, alloc)) {
    alloc.cache_hit = true;
    alloc.iterations = 0;
    alloc.step = "cache";
    return alloc;
  }

  auto arena_scope = rt::tls_arena().scope();
  const std::size_t n = problem.num_rbs();
  const double budget = problem.total_power;
  const qos::Assignment assignment = qos::best_gain_assignment(problem);
  const Vec gains = qos::assigned_gains(problem, assignment);

  // Power model: second-order Taylor expansion of -sum log2(1 + g p) around
  // the equal split p0 = budget / n, in the step variable d = p - p0:
  //   P = diag(g^2 / (ln2 (1 + g p0)^2)) + 2 lambda 1 1^T
  //   q = -g / (ln2 (1 + g p0))
  // with a soft penalty lambda (1^T d)^2 holding the total at the budget and
  // the box d in [-p0, budget - p0] keeping p nonnegative and bounded.
  const double p0 = budget / static_cast<double>(n);
  double* curv = rt::tls_arena().alloc<double>(n);
  double* slope = rt::tls_arena().alloc<double>(n);
  double max_curv = 0.0;
  for (std::size_t rb = 0; rb < n; ++rb) {
    const double g = gains[rb];
    const double denom = 1.0 + g * p0;
    curv[rb] = g * g * kInvLn2 / (denom * denom);
    slope[rb] = -g * kInvLn2 / denom;
    if (curv[rb] > max_curv) max_curv = curv[rb];
  }
  const double lambda =
      config_.budget_penalty * (max_curv > 0.0 ? max_curv : 1.0);

  Matrix p_mat(n, n, 2.0 * lambda);
  Vec q(n), lo(n, -p0), hi(n, budget - p0);
  for (std::size_t rb = 0; rb < n; ++rb) {
    p_mat(rb, rb) += curv[rb];
    q[rb] = slope[rb];
  }

  opt::AdmmWarmState* warm =
      config_.warm_start ? &warm_[cell] : nullptr;

  robust::FallbackChain<CellAllocation> chain("serve.cell");
  chain
      .add("admm", robust::Soundness::kRelaxation,
           [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             if (faults::should_inject("serve.admm.outage", stamp)) {
               out.status = robust::make_status(
                   robust::StatusCode::kNumericalFailure,
                   "injected serve.admm.outage");
               return out;
             }
             auto factor =
                 opt::try_prefactor_box_qp(p_mat, config_.admm_rho);
             if (!factor.status.ok()) {
               out.status = factor.status;
               return out;
             }
             opt::AdmmOptions aopts;
             aopts.rho = config_.admm_rho;
             aopts.tolerance = config_.admm_tolerance;
             aopts.max_iterations = config_.admm_max_iterations;
             aopts.budget.deadline = deadline;
             aopts.budget.check_stride = 16;
             opt::AdmmResult r = opt::admm_box_qp(p_mat, factor.value, q, lo,
                                                  hi, aopts, warm);
             if (!r.status.usable()) {
               out.status = r.status;
               return out;
             }
             out.value.assignment = assignment;
             out.value.power.resize(n);
             for (std::size_t rb = 0; rb < n; ++rb)
               out.value.power[rb] = p0 + r.x[rb];
             rescale_to_budget(out.value.power, budget);
             out.value.iterations = r.iterations;
             out.value.warm_use = r.warm_use;
             out.status = r.status;
             return out;
           })
      .add("waterfill", robust::Soundness::kRelaxation,
           [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             if (faults::should_inject("serve.waterfill.outage", stamp)) {
               out.status = robust::make_status(
                   robust::StatusCode::kNumericalFailure,
                   "injected serve.waterfill.outage");
               return out;
             }
             out.value.assignment = assignment;
             out.value.power = qos::waterfill(gains, budget);
             return out;
           })
      .add("equal-power", robust::Soundness::kHeuristic,
           [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             out.value.assignment = assignment;
             out.value.power.assign(n, p0);
             return out;
           });

  robust::ChainOutcome<CellAllocation> outcome = chain.run(deadline);
  if (outcome.status.code == robust::StatusCode::kFallbackExhausted) {
    // Deadline fired before any step could run: every cell still gets an
    // answer -- the zero-information equal split.
    alloc.assignment = assignment;
    alloc.power.assign(n, p0);
    alloc.step = "deadline-fill";
    alloc.status = outcome.status;
    alloc.status.note("deadline expired before any step; equal-power fill");
    obs::counter_add("rcr.serve.deadline_fills");
  } else {
    alloc = std::move(outcome.value);
    alloc.step = outcome.step;
    alloc.status = outcome.status;
  }
  alloc.sum_rate = sum_rate_of(gains, alloc.power);

  if (config_.cache_enabled) cache_.put(sig, stamp, alloc);
  return alloc;
}

TickReport AllocationService::tick(std::size_t tick_index,
                                   const ProblemFn& problem_of) {
  obs::Span span("serve.tick");
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t cells = warm_.size();
  const robust::Deadline deadline =
      config_.tick_deadline_s > 0.0
          ? robust::Deadline::after_seconds(config_.tick_deadline_s)
          : robust::Deadline::unlimited();

  // Two-phase cache protocol: the parallel fan-out reads the committed map
  // and buffers its stamp refreshes / inserts; the serial flush applies
  // them in stamp order.  Eviction victims and hit/miss outcomes are then
  // bit-identical for every RCR_THREADS setting even under eviction
  // pressure (in-place mutation would let a racing get's refresh land
  // before or after a racing put's eviction scan).
  if (config_.cache_enabled) cache_.begin_deferred();
  rt::parallel_for(
      0, cells, std::max<std::size_t>(1, config_.cells_per_chunk),
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const std::uint64_t stamp =
              static_cast<std::uint64_t>(tick_index) * cells + c;
          current_[c] = solve_cell(problem_of(c), c, stamp, deadline);
        }
      });
  if (config_.cache_enabled) cache_.flush();

  TickReport report;
  report.tick = tick_index;
  report.cells = cells;
  report.solution_hash = 1469598103934665603ull;  // FNV offset basis
  // Serial pass in ascending cell order: the report (and in particular the
  // solution hash) is independent of which threads solved which cells.
  for (std::size_t c = 0; c < cells; ++c) {
    const CellAllocation& a = current_[c];
    if (a.cache_hit) {
      ++report.cache_hits;
    } else {
      ++report.solves;
      report.total_iterations += a.iterations;
      if (a.warm_use == opt::WarmUse::kAccepted) ++report.warm_accepted;
      if (a.step != "admm" && a.step != "cache") ++report.degraded;
      if (a.step == "deadline-fill") ++report.deadline_fills;
    }
    report.sum_rate += a.sum_rate;
    report.solution_hash = fnv1a_bytes(
        a.assignment.data(), a.assignment.size() * sizeof(std::size_t),
        report.solution_hash);
    report.solution_hash =
        fnv1a_bytes(a.power.data(), a.power.size() * sizeof(double),
                    report.solution_hash);
  }
  report.tick_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();

  obs::counter_add("rcr.serve.ticks");
  obs::counter_add("rcr.serve.solves", report.solves);
  obs::counter_add("rcr.serve.iterations", report.total_iterations);
  obs::gauge_set("rcr.serve.fleet_cells", static_cast<double>(cells));
  obs::gauge_set("rcr.serve.last_sum_rate", report.sum_rate);
  obs::histogram_observe("rcr.serve.tick_us",
                         report.tick_seconds * 1e6);
  span.attr("cells", static_cast<double>(cells));
  span.attr("cache_hits", static_cast<double>(report.cache_hits));
  span.attr("iterations", static_cast<double>(report.total_iterations));
  return report;
}

TickReport AllocationService::tick(std::size_t tick_index,
                                   const DiurnalWorkload& workload) {
  if (workload.num_cells() != num_cells())
    throw std::invalid_argument(
        "AllocationService::tick: workload fleet size mismatch");
  return tick(tick_index,
              [&workload](std::size_t c) -> const RraProblem& {
                return workload.cell(c);
              });
}

}  // namespace rcr::serve
