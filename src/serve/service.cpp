#include "rcr/serve/service.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rcr/learn/artifact.hpp"
#include "rcr/learn/qp.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/robust/fallback.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/scratch_arena.hpp"

namespace rcr::serve {

namespace {

/// Scale `power` so it sums to exactly `budget` (no-op on a zero vector).
void rescale_to_budget(Vec& power, double budget) {
  double total = 0.0;
  for (double& p : power) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total <= 0.0) return;
  const double scale = budget / total;
  for (double& p : power) p *= scale;
}

/// Sum spectral efficiency of an allocation over its per-RB gains.
double sum_rate_of(const Vec& gains, const Vec& power) {
  double rate = 0.0;
  for (std::size_t rb = 0; rb < gains.size(); ++rb)
    rate += std::log2(1.0 + power[rb] * gains[rb]);
  return rate;
}

}  // namespace

AllocationService::AllocationService(const ServiceConfig& config,
                                     std::size_t num_cells)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      warm_(num_cells),
      current_(num_cells),
      runtime_(num_cells),
      brownout_(config.brownout) {
  if (num_cells == 0)
    throw std::invalid_argument("AllocationService: zero cells");
  if (config_.learned.enabled && !config_.learned.artifact_path.empty()) {
    robust::Result<learn::WarmStartPredictor> loaded =
        learn::load_predictor(config_.learned.artifact_path);
    if (loaded.status.ok()) {
      predictor_ = std::move(loaded.value);
      learned_armed_ = true;
      obs::counter_add("rcr.learn.armed");
    } else {
      // A bad model file must never take serving down: record the failure
      // and run with carried-state warm starts only.
      learned_status_ = loaded.status;
      obs::counter_add("rcr.learn.load_failed");
    }
  }
}

bool AllocationService::arm_learned_head(
    const learn::WarmStartPredictor& predictor) {
  if (!config_.learned.enabled || !predictor.shape_ok()) return false;
  predictor_ = predictor;
  learned_armed_ = true;
  learned_status_ = robust::Status{};
  obs::counter_add("rcr.learn.armed");
  return true;
}

void AllocationService::reset_warm_states() {
  for (auto& w : warm_) w.clear();
}

CellAllocation AllocationService::solve_cell(const RraProblem& problem,
                                             std::size_t cell,
                                             std::uint64_t tick,
                                             std::uint64_t stamp,
                                             const robust::Deadline& deadline) {
  // Injection decisions are keyed by the deterministic cell stamp: cells
  // solve on pool threads in schedule-dependent order, and a counter-keyed
  // stream would make which cell degrades depend on that schedule.
  namespace faults = robust::faults;
  CellAllocation alloc;
  const std::uint64_t sig = problem_signature(problem, config_.signature);
  if (config_.cache_enabled && !faults::should_inject("serve.cache.drop", stamp) &&
      cache_.get(sig, stamp, alloc)) {
    alloc.cache_hit = true;
    alloc.iterations = 0;
    alloc.step = "cache";
    return alloc;
  }

  auto arena_scope = rt::tls_arena().scope();
  const std::size_t n = problem.num_rbs();
  const double budget = problem.total_power;
  const qos::Assignment assignment = qos::best_gain_assignment(problem);
  const Vec gains = qos::assigned_gains(problem, assignment);

  // Power model: second-order Taylor expansion of -sum log2(1 + g p) around
  // the equal split p0 = budget / n, in the step variable d = p - p0:
  //   P = diag(g^2 / (ln2 (1 + g p0)^2)) + 2 lambda 1 1^T
  //   q = -g / (ln2 (1 + g p0))
  // with a soft penalty lambda (1^T d)^2 holding the total at the budget and
  // the box d in [-p0, budget - p0] keeping p nonnegative and bounded.
  const double p0 = budget / static_cast<double>(n);
  double* curv = rt::tls_arena().alloc<double>(n);
  double* slope = rt::tls_arena().alloc<double>(n);
  const double max_curv =
      learn::power_qp_coeffs(gains.data(), n, p0, curv, slope);
  const double lambda =
      config_.budget_penalty * (max_curv > 0.0 ? max_curv : 1.0);

  Matrix p_mat(n, n, 2.0 * lambda);
  Vec q(n), lo(n, -p0), hi(n, budget - p0);
  for (std::size_t rb = 0; rb < n; ++rb) {
    p_mat(rb, rb) += curv[rb];
    q[rb] = slope[rb];
  }

  opt::AdmmWarmState* warm =
      config_.warm_start ? &warm_[cell] : nullptr;

  // Learned warm-start head (DESIGN.md §16): predict a feasible starting
  // point and seed ADMM with it when it deterministically beats the carried
  // state's projected-gradient residual.  Everything here is a pure
  // function of (problem, weights, carried state), so selection -- and
  // therefore the served answer -- is bit-exact across RCR_THREADS.
  opt::AdmmWarmState learned_state;
  bool learned_injected = false;
  bool learned_rejected = false;
  if (learned_armed_ && warm != nullptr) {
    obs::Span lspan("learn.predict");
    learn::PowerQp qp;
    qp.curv = curv;
    qp.slope = slope;
    qp.lo = lo.data();
    qp.hi = hi.data();
    qp.n = n;
    qp.lambda = lambda;
    qp.p0 = p0;
    qp.budget = budget;
    qp.max_curv = max_curv;
    double* lz = rt::tls_arena().alloc<double>(n);
    double* lu = rt::tls_arena().alloc<double>(n);
    double* lscratch = rt::tls_arena().alloc<double>(2 * n);
    learn::predict_warm_start(qp, predictor_, config_.admm_rho, lz, lu,
                              lscratch);
    obs::counter_add("rcr.learn.predicts");
    if (faults::should_inject("learn.head.corrupt", stamp)) {
      // Model the whole prediction going bad, not one coordinate: poison
      // both vectors so any consumer that skipped validation would be
      // loudly wrong.
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (std::size_t i = 0; i < n; ++i) {
        lz[i] = nan;
        lu[i] = nan;
      }
    }
    bool finite = true;
    for (std::size_t i = 0; i < n && finite; ++i)
      finite = std::isfinite(lz[i]) && std::isfinite(lu[i]);
    if (!finite) {
      // Same disposition the opt layer gives a corrupt carried state: the
      // prediction is discarded and the solve proceeds as if the head had
      // never run.
      obs::counter_add("rcr.warm.rejected", "solver", "learn");
      learned_rejected = true;
    } else {
      const double learned_resid = learn::pg_residual(qp, lz);
      double incumbent_resid;
      if (opt::detail::warm_vec_ok(warm->z, n)) {
        incumbent_resid = learn::pg_residual(qp, warm->z.data());
      } else {
        // Cold start initializes z = clamp(0) = 0 (the box straddles 0).
        double* zero = rt::tls_arena().alloc<double>(n);
        for (std::size_t i = 0; i < n; ++i) zero[i] = 0.0;
        incumbent_resid = learn::pg_residual(qp, zero);
      }
      if (learned_resid < config_.learned.select_margin * incumbent_resid) {
        learned_state.z.assign(lz, lz + n);
        learned_state.u.assign(lu, lu + n);
        learned_injected = true;
        obs::counter_add("rcr.learn.selected");
      } else {
        obs::counter_add("rcr.learn.bypassed");
      }
    }
  }

  // Brownout cheapens the head: a BROWNOUT tick caps ADMM iterations, a
  // SHED tick gates the head off entirely.  The state only mutates at the
  // serial tick boundary, so this read is stable across the fan-out.
  const BrownoutState bstate = brownout_.state();
  std::size_t max_iterations = config_.admm_max_iterations;
  if (config_.brownout.enabled && bstate == BrownoutState::kBrownout)
    max_iterations = std::max<std::size_t>(
        8, static_cast<std::size_t>(
               static_cast<double>(max_iterations) *
               config_.brownout.brownout_iteration_factor));

  CellRuntime& rtc = runtime_[cell];
  robust::FallbackChain<CellAllocation> chain("serve.cell");
  chain
      .add_gated(
          "admm", robust::Soundness::kRelaxation,
          [&]() -> const char* {
            if (config_.brownout.enabled && bstate == BrownoutState::kShed)
              return "brownout shed";
            if (config_.breaker.enabled && rtc.admm_breaker.blocked(tick))
              return "breaker open";
            return nullptr;
          },
          [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             if (faults::should_inject("serve.admm.outage", stamp)) {
               out.status = robust::make_status(
                   robust::StatusCode::kNumericalFailure,
                   "injected serve.admm.outage");
               return out;
             }
             if (config_.breaker.enabled &&
                 faults::should_inject("serve.breaker.trip", stamp)) {
               out.status = robust::make_status(
                   robust::StatusCode::kNumericalFailure,
                   "injected serve.breaker.trip");
               return out;
             }
             auto factor =
                 opt::try_prefactor_box_qp(p_mat, config_.admm_rho);
             if (!factor.status.ok()) {
               out.status = factor.status;
               return out;
             }
             opt::AdmmOptions aopts;
             aopts.rho = config_.admm_rho;
             aopts.tolerance = config_.admm_tolerance;
             aopts.max_iterations = max_iterations;
             aopts.budget.deadline = deadline;
             aopts.budget.check_stride = 16;
             opt::AdmmWarmState* start =
                 learned_injected ? &learned_state : warm;
             opt::AdmmResult r = opt::admm_box_qp(p_mat, factor.value, q, lo,
                                                  hi, aopts, start);
             if (!r.status.usable()) {
               out.status = r.status;
               return out;
             }
             if (learned_injected && warm != nullptr) {
               // The evolved learned state becomes the cell's carried state
               // (the solver's writeback landed in learned_state, cleared
               // on numerical failure per the warm contract).
               *warm = std::move(learned_state);
               out.value.learned_start = true;
             }
             out.value.assignment = assignment;
             out.value.power.resize(n);
             for (std::size_t rb = 0; rb < n; ++rb)
               out.value.power[rb] = p0 + r.x[rb];
             rescale_to_budget(out.value.power, budget);
             out.value.iterations = r.iterations;
             out.value.warm_use = r.warm_use;
             out.status = r.status;
             return out;
           })
      .add_gated(
          "waterfill", robust::Soundness::kRelaxation,
          [&]() -> const char* {
            if (config_.breaker.enabled &&
                rtc.waterfill_breaker.blocked(tick))
              return "breaker open";
            return nullptr;
          },
          [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             if (faults::should_inject("serve.waterfill.outage", stamp)) {
               out.status = robust::make_status(
                   robust::StatusCode::kNumericalFailure,
                   "injected serve.waterfill.outage");
               return out;
             }
             out.value.assignment = assignment;
             out.value.power = qos::waterfill(gains, budget);
             return out;
           })
      .add("equal-power", robust::Soundness::kHeuristic,
           [&]() -> robust::Result<CellAllocation> {
             robust::Result<CellAllocation> out;
             out.value.assignment = assignment;
             out.value.power.assign(n, p0);
             return out;
           });

  robust::ChainOutcome<CellAllocation> outcome = chain.run(deadline);

  if (config_.breaker.enabled) {
    // Advance the breakers from what actually happened.  This runtime state
    // belongs to this cell's pool task alone, so no synchronization is
    // needed and the evolution is schedule-independent.
    const auto stage_failed = [&](const char* stage) {
      const std::string needle =
          std::string("step '") + stage + "' failed";
      for (const std::string& line : outcome.status.trail)
        if (line.find(needle) != std::string::npos) return true;
      return false;
    };
    const auto advance = [&](CircuitBreaker& breaker, const char* stage) {
      if (outcome.step == stage)
        breaker.record_success(config_.breaker, tick);
      else if (stage_failed(stage))
        breaker.record_failure(config_.breaker, tick);
      // Skipped (gated) stages record nothing: the open window just ages.
    };
    advance(rtc.admm_breaker, "admm");
    advance(rtc.waterfill_breaker, "waterfill");
  }
  if (outcome.status.code == robust::StatusCode::kFallbackExhausted) {
    // Deadline fired before any step could run: every cell still gets an
    // answer -- the zero-information equal split.
    alloc.assignment = assignment;
    alloc.power.assign(n, p0);
    alloc.step = "deadline-fill";
    alloc.status = outcome.status;
    alloc.status.note("deadline expired before any step; equal-power fill");
    obs::counter_add("rcr.serve.deadline_fills");
  } else {
    alloc = std::move(outcome.value);
    alloc.step = outcome.step;
    alloc.status = outcome.status;
  }
  if (learned_rejected)
    alloc.status.note(
        "learned warm start rejected (non-finite); carried state kept");
  if (config_.watchdog.enabled &&
      faults::should_inject("serve.solve.corrupt", stamp)) {
    // Poison the solve output so the watchdog has something real to catch.
    alloc.power[0] = std::numeric_limits<double>::quiet_NaN();
    alloc.status.note("injected serve.solve.corrupt");
  }
  alloc.sum_rate = sum_rate_of(gains, alloc.power);

  // Never cache a corrupted answer: a NaN anywhere in the power vector
  // surfaces as a NaN sum rate, and the watchdog (not the cache) owns it.
  if (config_.cache_enabled && std::isfinite(alloc.sum_rate))
    cache_.put(sig, stamp, alloc);
  return alloc;
}

CellAllocation AllocationService::serve_from_snapshot(
    const RraProblem& problem, std::size_t cell, std::uint64_t tick,
    AdmitDecision reason, bool injected) {
  const CellRuntime& rtc = runtime_[cell];
  const std::size_t n = problem.num_rbs();
  const double budget = problem.total_power;

  CellAllocation alloc;
  // A stale snapshot may predate a population change; only replay it when
  // its shape still matches the current problem.
  bool snapshot_ok =
      rtc.has_snapshot && rtc.snapshot_assignment.size() == n;
  if (snapshot_ok)
    for (std::size_t user : rtc.snapshot_assignment)
      if (user >= problem.num_users()) {
        snapshot_ok = false;
        break;
      }
  if (snapshot_ok) {
    alloc.assignment = rtc.snapshot_assignment;
    alloc.power = rtc.snapshot_power;
  } else {
    alloc.assignment = qos::best_gain_assignment(problem);
    alloc.power.assign(n, budget / static_cast<double>(n));
  }
  rescale_to_budget(alloc.power, budget);
  alloc.sum_rate =
      sum_rate_of(qos::assigned_gains(problem, alloc.assignment), alloc.power);

  const std::uint64_t age =
      tick >= rtc.last_fresh_tick ? tick - rtc.last_fresh_tick : 0;
  alloc.status.code = robust::StatusCode::kDegraded;
  switch (reason) {
    case AdmitDecision::kDefer:
      alloc.step = "snapshot";
      alloc.status.detail = "deferred by admission control";
      alloc.status.note("degraded:stale (age " + std::to_string(age) +
                        " ticks)");
      break;
    case AdmitDecision::kShed:
      alloc.step = "shed-fill";
      alloc.status.detail = "shed by admission control";
      alloc.status.note(injected
                            ? "degraded:shed (injected serve.admit.shed)"
                            : "degraded:shed (age " + std::to_string(age) +
                                  " ticks)");
      break;
    case AdmitDecision::kQuarantine:
      alloc.step = "quarantine";
      alloc.status.detail = "watchdog quarantine";
      alloc.status.note("degraded:quarantined (until tick " +
                        std::to_string(rtc.quarantine_until) + ")");
      break;
    case AdmitDecision::kAdmit:
      break;
  }
  return alloc;
}

AdmissionPlan AllocationService::build_plan(std::uint64_t tick,
                                            bool full_shed,
                                            BrownoutState state) const {
  const std::size_t cells = runtime_.size();
  std::vector<CellGate> gates(cells);
  const auto& slices = config_.admission.cell_slices;
  for (std::size_t c = 0; c < cells; ++c) {
    gates[c].rank =
        slices.empty() ? 1 : priority_rank(slices[c % slices.size()]);
    gates[c].staleness = tick >= runtime_[c].last_fresh_tick
                             ? tick - runtime_[c].last_fresh_tick
                             : 0;
    gates[c].quarantined =
        config_.watchdog.enabled && tick < runtime_[c].quarantine_until;
  }

  AdmissionInputs in;
  in.tick = tick;
  in.budget = config_.admission.max_solves_per_tick;
  if (config_.brownout.enabled && state == BrownoutState::kBrownout &&
      in.budget > 0)
    in.budget = std::max<std::size_t>(1, in.budget / 2);
  in.max_stale_ticks = config_.admission.max_stale_ticks;
  in.admission_enabled = config_.admission.enabled;
  in.shed_lowest = config_.brownout.enabled && state == BrownoutState::kShed;
  in.full_shed = full_shed;
  return plan_admission(gates, in);
}

TickReport AllocationService::tick(std::size_t tick_index,
                                   const ProblemFn& problem_of) {
  obs::Span span("serve.tick");
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t cells = warm_.size();
  const std::uint64_t tick = static_cast<std::uint64_t>(tick_index);
  const BrownoutState bstate = brownout_.state();

  double deadline_s = config_.tick_deadline_s;
  if (config_.brownout.enabled && bstate != BrownoutState::kNormal &&
      deadline_s > 0.0)
    deadline_s *= config_.brownout.brownout_deadline_factor;
  const robust::Deadline deadline =
      deadline_s > 0.0 ? robust::Deadline::after_seconds(deadline_s)
                       : robust::Deadline::unlimited();

  // A deadline that is already gone at the tick boundary means no solver
  // can possibly finish: shed the whole tick up front and serve every cell
  // from its snapshot instead of racing the clock cell by cell.
  const bool full_shed = !deadline.is_unlimited() && deadline.expired();
  AdmissionPlan plan = build_plan(tick, full_shed, bstate);

  // Two-phase cache protocol: the parallel fan-out reads the committed map
  // and buffers its stamp refreshes / inserts; the serial flush applies
  // them in stamp order.  Eviction victims and hit/miss outcomes are then
  // bit-identical for every RCR_THREADS setting even under eviction
  // pressure (in-place mutation would let a racing get's refresh land
  // before or after a racing put's eviction scan).
  if (config_.cache_enabled) cache_.begin_deferred();
  rt::parallel_for(
      0, cells, std::max<std::size_t>(1, config_.cells_per_chunk),
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          const std::uint64_t stamp = tick * cells + c;
          if (plan.decisions[c] == AdmitDecision::kAdmit)
            current_[c] = solve_cell(problem_of(c), c, tick, stamp, deadline);
          else
            current_[c] = serve_from_snapshot(problem_of(c), c, tick,
                                              plan.decisions[c],
                                              plan.injected[c]);
        }
      });
  if (config_.cache_enabled) cache_.flush();

  TickReport report;
  report.tick = tick_index;
  report.cells = cells;
  report.brownout_state = static_cast<int>(bstate);
  report.solution_hash = 1469598103934665603ull;  // FNV offset basis
  // Serial pass in ascending cell order: the report (and in particular the
  // solution hash) is independent of which threads solved which cells.
  // All CellRuntime bookkeeping (watchdog quarantine, snapshots, freshness)
  // also lands here, in cell order, for the same reason.
  std::size_t chain_cells = 0;
  std::size_t chain_steps = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    if (config_.watchdog.enabled &&
        plan.decisions[c] == AdmitDecision::kAdmit) {
      bool finite = std::isfinite(current_[c].sum_rate);
      for (double p : current_[c].power)
        if (!std::isfinite(p)) finite = false;
      if (!finite) {
        // Unsound solve output: quarantine the cell and fall back to its
        // last-known-good snapshot right now.
        runtime_[c].quarantine_until =
            tick + 1 + config_.watchdog.quarantine_ticks;
        ++runtime_[c].watchdog_trips;
        obs::counter_add("rcr.watchdog.trips");
        plan.decisions[c] = AdmitDecision::kQuarantine;
        --plan.admitted;
        ++plan.quarantined;
        current_[c] = serve_from_snapshot(problem_of(c), c, tick,
                                          AdmitDecision::kQuarantine, false);
      }
    }
    const CellAllocation& a = current_[c];
    if (plan.decisions[c] == AdmitDecision::kAdmit) {
      if (a.cache_hit) {
        ++report.cache_hits;
      } else {
        ++report.solves;
        report.total_iterations += a.iterations;
        if (a.warm_use == opt::WarmUse::kAccepted) ++report.warm_accepted;
        if (a.learned_start) ++report.learned_starts;
        if (a.step != "admm" && a.step != "cache") ++report.degraded;
        if (a.step == "deadline-fill") ++report.deadline_fills;
      }
      // Fallback-depth proxy for the brownout controller: one clean head
      // answer is depth 1, every failed or gated step adds one.
      if (!a.cache_hit) {
        ++chain_cells;
        std::size_t depth = 1;
        for (const std::string& line : a.status.trail)
          if (line.find("' failed") != std::string::npos ||
              line.find("' skipped") != std::string::npos)
            ++depth;
        chain_steps += depth;
      }
      // Freshness bookkeeping: any chain or cache answer refreshes the
      // staleness clock; only finite non-fill answers refresh the
      // last-known-good snapshot.
      runtime_[c].last_fresh_tick = tick;
      if (a.step != "deadline-fill") {
        runtime_[c].snapshot_assignment = a.assignment;
        runtime_[c].snapshot_power = a.power;
        runtime_[c].has_snapshot = true;
      }
    } else {
      ++report.degraded;
    }
    report.sum_rate += a.sum_rate;
    report.solution_hash = fnv1a_bytes(
        a.assignment.data(), a.assignment.size() * sizeof(std::size_t),
        report.solution_hash);
    report.solution_hash =
        fnv1a_bytes(a.power.data(), a.power.size() * sizeof(double),
                    report.solution_hash);
  }
  report.admitted = plan.admitted;
  report.deferred = plan.deferred;
  report.shed = plan.shed;
  report.quarantined = plan.quarantined;
  report.tick_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();

  obs::counter_add("rcr.serve.ticks");
  obs::counter_add("rcr.serve.solves", report.solves);
  obs::counter_add("rcr.serve.iterations", report.total_iterations);
  if (report.admitted > 0)
    obs::counter_add("rcr.admit.admitted", report.admitted);
  if (report.deferred > 0)
    obs::counter_add("rcr.admit.deferred", report.deferred);
  if (report.shed > 0) obs::counter_add("rcr.admit.shed", report.shed);
  if (report.quarantined > 0)
    obs::counter_add("rcr.serve.quarantined", report.quarantined);
  obs::gauge_set("rcr.serve.fleet_cells", static_cast<double>(cells));
  obs::gauge_set("rcr.serve.last_sum_rate", report.sum_rate);
  obs::histogram_observe("rcr.serve.tick_us",
                         report.tick_seconds * 1e6);
  span.attr("cells", static_cast<double>(cells));
  span.attr("cache_hits", static_cast<double>(report.cache_hits));
  span.attr("iterations", static_cast<double>(report.total_iterations));

  if (config_.brownout.enabled) {
    const double degraded_fraction =
        cells > 0 ? static_cast<double>(report.degraded) /
                        static_cast<double>(cells)
                  : 0.0;
    const double mean_depth =
        chain_cells > 0 ? static_cast<double>(chain_steps) /
                              static_cast<double>(chain_cells)
                        : 1.0;
    brownout_.observe(degraded_fraction, mean_depth,
                      report.tick_seconds * 1e6);
    obs::gauge_set("rcr.brownout.state",
                   static_cast<double>(static_cast<int>(brownout_.state())));
  }
  return report;
}

TickReport AllocationService::tick(std::size_t tick_index,
                                   const DiurnalWorkload& workload) {
  if (workload.num_cells() != num_cells())
    throw std::invalid_argument(
        "AllocationService::tick: workload fleet size mismatch");
  return tick(tick_index,
              [&workload](std::size_t c) -> const RraProblem& {
                return workload.cell(c);
              });
}

}  // namespace rcr::serve
