#include "rcr/serve/signature.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rcr::serve {

std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes,
                          std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed) {
  return fnv1a_bytes(&value, sizeof(value), seed);
}

std::uint64_t hash_i64(std::int64_t value, std::uint64_t seed) {
  return fnv1a_bytes(&value, sizeof(value), seed);
}

std::int64_t quantize_scalar(double value, double quantum) {
  return static_cast<std::int64_t>(std::llround(value / quantum));
}

}  // namespace

std::int64_t quantize_gain(double gain, double log2_quantum) {
  // Sentinel bucket for dead subcarriers: far below any real quantized
  // log2(g), so a gain crossing zero always changes the signature.
  if (!(gain > 0.0)) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(
      std::llround(std::log2(gain) / log2_quantum));
}

std::uint64_t problem_signature(const RraProblem& problem,
                                const SignatureConfig& config) {
  if (!(config.gain_log2_quantum > 0.0) || !(config.scalar_quantum > 0.0))
    throw std::invalid_argument("problem_signature: quanta must be > 0");
  const std::size_t users = problem.num_users();
  const std::size_t rbs = problem.num_rbs();

  std::uint64_t h = hash_u64(users, 1469598103934665603ull);
  h = hash_u64(rbs, h);
  h = hash_i64(quantize_scalar(problem.total_power, config.scalar_quantum), h);
  for (double r : problem.min_rate)
    h = hash_i64(quantize_scalar(r, config.scalar_quantum), h);

  // Active-set fingerprint: which user wins each RB.  Quantization can leave
  // the gain grid unchanged while the argmax flips on a near-tie; folding
  // the argmax in keeps such problems on separate entries.
  const qos::Assignment seed_assignment = qos::best_gain_assignment(problem);
  for (std::size_t rb = 0; rb < rbs; ++rb)
    h = hash_u64(seed_assignment[rb], h);

  for (std::size_t u = 0; u < users; ++u)
    for (std::size_t rb = 0; rb < rbs; ++rb)
      h = hash_i64(quantize_gain(problem.gain(u, rb),
                                 config.gain_log2_quantum),
                   h);
  return h;
}

}  // namespace rcr::serve
