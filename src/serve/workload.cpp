#include "rcr/serve/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace

DiurnalWorkload::DiurnalWorkload(const WorkloadConfig& config)
    : config_(config) {
  if (config_.num_cells == 0 || config_.num_rbs == 0)
    throw std::invalid_argument("DiurnalWorkload: empty fleet or band");
  if (config_.min_users == 0 || config_.peak_users < config_.min_users)
    throw std::invalid_argument("DiurnalWorkload: bad user-count range");
  if (config_.period_ticks == 0 || config_.coherence_ticks == 0)
    throw std::invalid_argument("DiurnalWorkload: zero period or coherence");
  if (!(config_.fade_blend >= 0.0 && config_.fade_blend <= 1.0))
    throw std::invalid_argument("DiurnalWorkload: fade_blend outside [0,1]");

  cells_.reserve(config_.num_cells);
  for (std::size_t c = 0; c < config_.num_cells; ++c) {
    // Distinct but deterministic per-cell stream: the golden-ratio stride
    // decorrelates neighbouring cells under mt19937_64 seeding.
    cells_.emplace_back(config_.seed + 0x9E3779B97F4A7C15ull * (c + 1));
    CellState& cell = cells_.back();
    const std::size_t start = target_users(c, 0);
    for (std::size_t u = 0; u < start; ++u) add_user(cell);
    rebuild_problem(cell);
  }
  next_tick_ = 1;
}

std::size_t DiurnalWorkload::target_users(std::size_t c,
                                          std::size_t tick) const {
  // Phase-shifted raised cosine between min_users and peak_users.
  const double phase =
      2.0 * kPi *
      (static_cast<double>(tick % config_.period_ticks) /
           static_cast<double>(config_.period_ticks) +
       static_cast<double>(c) / static_cast<double>(config_.num_cells));
  const double s = 0.5 * (1.0 - std::cos(phase));
  const double span =
      static_cast<double>(config_.peak_users - config_.min_users);
  return config_.min_users +
         static_cast<std::size_t>(std::llround(span * s));
}

void DiurnalWorkload::add_user(CellState& cell) {
  // Area-uniform draw in the annulus [min_distance, cell_radius].
  const double rmin = config_.channel.min_distance_m;
  const double rmax = config_.channel.cell_radius_m;
  const double u = cell.rng.uniform();
  const double d = std::sqrt(rmin * rmin + u * (rmax * rmax - rmin * rmin));
  cell.distances.push_back(d);

  const std::size_t rows = cell.fading.rows();
  Matrix grown(rows + 1, config_.num_rbs);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t rb = 0; rb < config_.num_rbs; ++rb)
      grown(i, rb) = cell.fading(i, rb);
  // Unit-mean exponential fading power (|h|^2 for Rayleigh h).
  for (std::size_t rb = 0; rb < config_.num_rbs; ++rb)
    grown(rows, rb) = cell.rng.exponential(1.0);
  cell.fading = std::move(grown);
}

void DiurnalWorkload::remove_user(CellState& cell) {
  const std::size_t n = cell.distances.size();
  if (n == 0) return;
  const std::size_t victim = static_cast<std::size_t>(
      cell.rng.uniform_int(0, static_cast<int>(n) - 1));
  cell.distances.erase(cell.distances.begin() +
                       static_cast<std::ptrdiff_t>(victim));
  Matrix shrunk(n - 1, config_.num_rbs);
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == victim) continue;
    for (std::size_t rb = 0; rb < config_.num_rbs; ++rb)
      shrunk(out, rb) = cell.fading(i, rb);
    ++out;
  }
  cell.fading = std::move(shrunk);
}

void DiurnalWorkload::refresh_fading(CellState& cell) {
  const double blend = config_.fade_blend;
  for (std::size_t i = 0; i < cell.fading.rows(); ++i)
    for (std::size_t rb = 0; rb < config_.num_rbs; ++rb)
      cell.fading(i, rb) = (1.0 - blend) * cell.fading(i, rb) +
                           blend * cell.rng.exponential(1.0);
}

void DiurnalWorkload::rebuild_problem(CellState& cell) const {
  const std::size_t users = cell.distances.size();
  const double ref = db_to_linear(config_.channel.reference_gain_db);
  const double noise_w =
      db_to_linear(config_.channel.noise_power_dbm - 30.0);
  cell.problem.gain.assign(users, config_.num_rbs);
  for (std::size_t u = 0; u < users; ++u) {
    const double pathloss =
        ref * std::pow(cell.distances[u], -config_.channel.pathloss_exponent);
    for (std::size_t rb = 0; rb < config_.num_rbs; ++rb)
      cell.problem.gain(u, rb) = pathloss * cell.fading(u, rb) / noise_w;
  }
  cell.problem.total_power = config_.total_power;
  cell.problem.min_rate.assign(users, config_.min_rate);
}

void DiurnalWorkload::advance(std::size_t tick) {
  if (tick == 0 && next_tick_ == 1) return;  // tick 0 built in the ctor
  if (tick != next_tick_)
    throw std::invalid_argument(
        "DiurnalWorkload::advance: ticks must be consecutive");
  ++next_tick_;

  for (std::size_t c = 0; c < cells_.size(); ++c) {
    CellState& cell = cells_[c];
    cell.changed = false;

    const std::size_t target = target_users(c, tick);
    while (cell.distances.size() < target) {
      add_user(cell);
      cell.changed = true;
    }
    while (cell.distances.size() > target) {
      remove_user(cell);
      cell.changed = true;
    }
    // Stagger coherence expiry by cell so refreshes spread across ticks.
    if ((tick + c) % config_.coherence_ticks == 0) {
      refresh_fading(cell);
      cell.changed = true;
    }
    if (cell.changed) rebuild_problem(cell);
  }
}

std::vector<learn::PowerQpData> sample_power_qps(const WorkloadConfig& config,
                                                 std::size_t ticks,
                                                 double budget_penalty) {
  DiurnalWorkload workload(config);
  std::vector<learn::PowerQpData> dataset;
  dataset.reserve(ticks * config.num_cells);
  for (std::size_t t = 0; t < ticks; ++t) {
    workload.advance(t);
    for (std::size_t c = 0; c < workload.num_cells(); ++c) {
      const RraProblem& problem = workload.cell(c);
      const qos::Assignment assignment = qos::best_gain_assignment(problem);
      const Vec gains = qos::assigned_gains(problem, assignment);
      dataset.push_back(
          learn::make_power_qp(gains, problem.total_power, budget_penalty));
    }
  }
  return dataset;
}

}  // namespace rcr::serve
