#include "rcr/signal/fft.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace rcr::sig {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// In-place iterative radix-2 Cooley-Tukey; requires power-of-two size.
void fft_radix2(CVec& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z transform: arbitrary-N DFT via a power-of-two
// convolution.  Handles the non-power-of-two frame sizes STFT produces.
CVec fft_bluestein(const CVec& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  CVec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Reduce k^2 mod 2n before the trig call to keep the argument small.
    const auto k2 = static_cast<double>((static_cast<unsigned long long>(k) * k) %
                                        (2ull * n));
    const double ang = sign * std::numbers::pi * k2 / static_cast<double>(n);
    chirp[k] = {std::cos(ang), std::sin(ang)};
  }

  const std::size_t m = next_power_of_two(2 * n - 1);
  CVec a(m, {0.0, 0.0});
  CVec b(m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);
  for (auto& v : a) v /= static_cast<double>(m);

  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

CVec transform(const CVec& x, bool inverse) {
  if (x.empty()) return {};
  CVec y = x;
  if (is_power_of_two(y.size())) {
    fft_radix2(y, inverse);
  } else {
    y = fft_bluestein(y, inverse);
  }
  if (inverse) {
    for (auto& v : y) v /= static_cast<double>(y.size());
  }
  return y;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CVec fft(const CVec& x) { return transform(x, false); }

CVec ifft(const CVec& x) { return transform(x, true); }

CVec rfft(const Vec& x) {
  const CVec full = fft(to_complex(x));
  const std::size_t bins = x.size() / 2 + 1;
  return CVec(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(bins));
}

Vec irfft(const CVec& spectrum, std::size_t n) {
  if (n == 0) throw std::invalid_argument("irfft: zero output length");
  if (spectrum.size() != n / 2 + 1)
    throw std::invalid_argument(
        "irfft: spectrum length must equal n/2 + 1 for output length n");
  // Rebuild the full Hermitian spectrum, then a plain inverse DFT.
  CVec full(n);
  for (std::size_t k = 0; k < spectrum.size(); ++k) full[k] = spectrum[k];
  for (std::size_t k = spectrum.size(); k < n; ++k)
    full[k] = std::conj(spectrum[n - k]);
  return real_part(ifft(full));
}

CVec dft_reference(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n, {0.0, 0.0});
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t l = 0; l < n; ++l) {
      const double ang = -kTwoPi * static_cast<double>(m) *
                         static_cast<double>(l) / static_cast<double>(n);
      out[m] += x[l] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
  }
  return out;
}

CVec to_complex(const Vec& x) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], 0.0};
  return out;
}

Vec real_part(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i].real();
  return out;
}

Vec magnitude(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

double max_abs_diff(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace rcr::sig
