#include "rcr/signal/fft.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace rcr::sig {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Per-size twiddle tables for the radix-2 transform.  STFT re-runs the same
// transform size hundreds of times per spectrogram; recomputing the stage
// twiddles with trig calls on every transform dominated small-FFT cost.
// The tables are generated with the *same* w *= wlen recurrence the inline
// loop used, so cached transforms are bit-identical to the uncached ones.
// Inverse twiddles are exact conjugates of the forward ones (conjugation
// commutes with IEEE complex multiplication), so one generation serves both
// directions.
struct Radix2Tables {
  // forward[s][k] = wlen^k for stage length len = 2^(s+1), k < len/2.
  std::vector<CVec> forward;
  std::vector<CVec> inverse;
};

std::shared_ptr<const Radix2Tables> radix2_tables(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const Radix2Tables>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  auto tables = std::make_shared<Radix2Tables>();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    CVec fwd(len / 2);
    CVec inv(len / 2);
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      fwd[k] = w;
      inv[k] = std::conj(w);
      w *= wlen;
    }
    tables->forward.push_back(std::move(fwd));
    tables->inverse.push_back(std::move(inv));
  }
  cache.emplace(n, tables);
  return tables;
}

// In-place iterative radix-2 Cooley-Tukey; requires power-of-two size.
void fft_radix2(CVec& a, bool inverse) {
  const std::size_t n = a.size();
  const std::shared_ptr<const Radix2Tables> tables = radix2_tables(n);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const CVec& tw =
        inverse ? tables->inverse[stage] : tables->forward[stage];
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * tw[k];
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

// Cached Bluestein state for one (size, direction): the chirp sequence and
// the FFT of the chirp kernel `b`, which is input-independent and was
// previously recomputed (two trig loops plus a full FFT) on every call.
struct BluesteinTables {
  std::size_t m = 0;  ///< Power-of-two convolution length.
  CVec chirp;         ///< chirp[k], length n.
  CVec fft_b;         ///< FFT of the padded conj-chirp kernel, length m.
};

std::shared_ptr<const BluesteinTables> bluestein_tables(std::size_t n,
                                                        bool inverse) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, bool>,
                  std::shared_ptr<const BluesteinTables>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find({n, inverse});
  if (it != cache.end()) return it->second;

  auto tables = std::make_shared<BluesteinTables>();
  const double sign = inverse ? 1.0 : -1.0;
  tables->chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Reduce k^2 mod 2n before the trig call to keep the argument small.
    const auto k2 = static_cast<double>(
        (static_cast<unsigned long long>(k) * k) % (2ull * n));
    const double ang = sign * std::numbers::pi * k2 / static_cast<double>(n);
    tables->chirp[k] = {std::cos(ang), std::sin(ang)};
  }
  tables->m = next_power_of_two(2 * n - 1);
  CVec b(tables->m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(tables->chirp[k]);
    if (k != 0) b[tables->m - k] = std::conj(tables->chirp[k]);
  }
  fft_radix2(b, false);
  tables->fft_b = std::move(b);
  cache.emplace(std::make_pair(n, inverse), tables);
  return tables;
}

// Bluestein chirp-z transform: arbitrary-N DFT via a power-of-two
// convolution.  Handles the non-power-of-two frame sizes STFT produces.
CVec fft_bluestein(const CVec& x, bool inverse) {
  const std::size_t n = x.size();
  const std::shared_ptr<const BluesteinTables> t = bluestein_tables(n, inverse);
  const CVec& chirp = t->chirp;
  const std::size_t m = t->m;

  CVec a(m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  fft_radix2(a, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= t->fft_b[k];
  fft_radix2(a, true);
  for (auto& v : a) v /= static_cast<double>(m);

  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

CVec transform(const CVec& x, bool inverse) {
  if (x.empty()) return {};
  CVec y = x;
  if (is_power_of_two(y.size())) {
    fft_radix2(y, inverse);
  } else {
    y = fft_bluestein(y, inverse);
  }
  if (inverse) {
    for (auto& v : y) v /= static_cast<double>(y.size());
  }
  return y;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CVec fft(const CVec& x) { return transform(x, false); }

CVec ifft(const CVec& x) { return transform(x, true); }

CVec rfft(const Vec& x) {
  const CVec full = fft(to_complex(x));
  const std::size_t bins = x.size() / 2 + 1;
  return CVec(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(bins));
}

Vec irfft(const CVec& spectrum, std::size_t n) {
  if (n == 0) throw std::invalid_argument("irfft: zero output length");
  if (spectrum.size() != n / 2 + 1)
    throw std::invalid_argument(
        "irfft: spectrum length must equal n/2 + 1 for output length n");
  // Rebuild the full Hermitian spectrum, then a plain inverse DFT.
  CVec full(n);
  for (std::size_t k = 0; k < spectrum.size(); ++k) full[k] = spectrum[k];
  for (std::size_t k = spectrum.size(); k < n; ++k)
    full[k] = std::conj(spectrum[n - k]);
  return real_part(ifft(full));
}

CVec dft_reference(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n, {0.0, 0.0});
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t l = 0; l < n; ++l) {
      const double ang = -kTwoPi * static_cast<double>(m) *
                         static_cast<double>(l) / static_cast<double>(n);
      out[m] += x[l] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
  }
  return out;
}

CVec to_complex(const Vec& x) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], 0.0};
  return out;
}

Vec real_part(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i].real();
  return out;
}

Vec magnitude(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

double max_abs_diff(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace rcr::sig
