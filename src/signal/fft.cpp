#include "rcr/signal/fft.hpp"

#include "rcr/obs/obs.hpp"
#include "rcr/rt/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

namespace rcr::sig {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Bounded, reader-friendly per-size table cache.
//
// Hot lookups take a shared lock and bump an approximate-LRU stamp with a
// relaxed atomic store, so concurrent STFT workers re-reading the same size
// never serialize.  On a miss the caller generates the table *outside* any
// lock (generation of a new size used to happen while holding a global
// mutex, stalling every worker on first touch), then inserts under the
// exclusive lock with a re-check: if another thread won the race, its table
// is reused and ours is discarded.  The cache holds at most
// fft_table_cache_capacity() entries; the least-recently-stamped size is
// evicted first.  Entries are shared_ptrs, so an evicted table stays alive
// for any transform still using it.
template <typename Key, typename Value>
class TableCache {
 public:
  std::shared_ptr<const Value> find(const Key& key) {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    it->second.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed),
                               std::memory_order_relaxed);
    return it->second.value;
  }

  std::shared_ptr<const Value> insert(const Key& key,
                                      std::shared_ptr<const Value> value,
                                      std::size_t capacity) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.last_used.store(
          clock_.fetch_add(1, std::memory_order_relaxed),
          std::memory_order_relaxed);
      return it->second.value;  // lost the generation race; reuse theirs
    }
    while (map_.size() >= capacity && !map_.empty()) {
      auto victim = map_.begin();
      for (auto e = map_.begin(); e != map_.end(); ++e)
        if (e->second.last_used.load(std::memory_order_relaxed) <
            victim->second.last_used.load(std::memory_order_relaxed))
          victim = e;
      map_.erase(victim);
    }
    map_.try_emplace(key, std::move(value),
                     clock_.fetch_add(1, std::memory_order_relaxed));
    return map_.find(key)->second.value;
  }

  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return map_.size();
  }

 private:
  struct Entry {
    Entry(std::shared_ptr<const Value> v, std::uint64_t stamp)
        : value(std::move(v)), last_used(stamp) {}
    std::shared_ptr<const Value> value;
    std::atomic<std::uint64_t> last_used;
  };

  mutable std::shared_mutex mutex_;
  std::map<Key, Entry> map_;
  std::atomic<std::uint64_t> clock_{0};
};

// Per-size twiddle tables for the radix-2 transform.  STFT re-runs the same
// transform size hundreds of times per spectrogram; recomputing the stage
// twiddles with trig calls on every transform dominated small-FFT cost.
// The tables are generated with the *same* w *= wlen recurrence the inline
// loop used, so cached transforms are bit-identical to the uncached ones.
// Inverse twiddles are exact conjugates of the forward ones (conjugation
// commutes with IEEE complex multiplication), so one generation serves both
// directions.
struct Radix2Tables {
  // forward[s][k] = wlen^k for stage length len = 2^(s+1), k < len/2.
  std::vector<CVec> forward;
  std::vector<CVec> inverse;
};

std::shared_ptr<const Radix2Tables> radix2_tables(std::size_t n) {
  static TableCache<std::size_t, Radix2Tables> cache;
  if (auto hit = cache.find(n)) {
    obs::counter_add("rcr.fft.cache.hits");
    return hit;
  }
  obs::counter_add("rcr.fft.cache.misses");

  // Generate outside any lock; concurrent first-touchers may duplicate the
  // work, but nobody blocks behind the trig loops.
  auto tables = std::make_shared<Radix2Tables>();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    CVec fwd(len / 2);
    CVec inv(len / 2);
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      fwd[k] = w;
      inv[k] = std::conj(w);
      w *= wlen;
    }
    tables->forward.push_back(std::move(fwd));
    tables->inverse.push_back(std::move(inv));
  }
  return cache.insert(n, std::move(tables), fft_table_cache_capacity());
}

// In-place iterative radix-2 Cooley-Tukey; requires power-of-two size.
// The butterfly rides the SIMD kernel layer: the lo/hi halves of each block
// are contiguous, so one kernel call covers a whole stage block.  The
// vector path multiplies with the same naive complex formula libstdc++ uses
// on finite data, so the transform is bit-identical across paths (signal
// data is finite by the waveform contract; the scalar path keeps full
// std::complex semantics regardless).
void fft_radix2(CVec& a, bool inverse) {
  const std::size_t n = a.size();
  const std::shared_ptr<const Radix2Tables> tables = radix2_tables(n);
  const auto& K = rt::simd::active();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const CVec& tw =
        inverse ? tables->inverse[stage] : tables->forward[stage];
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len)
      K.butterfly(a.data() + i, a.data() + i + half, tw.data(), half);
  }
}

// Cached Bluestein state for one (size, direction): the chirp sequence and
// the FFT of the chirp kernel `b`, which is input-independent and was
// previously recomputed (two trig loops plus a full FFT) on every call.
struct BluesteinTables {
  std::size_t m = 0;  ///< Power-of-two convolution length.
  CVec chirp;         ///< chirp[k], length n.
  CVec fft_b;         ///< FFT of the padded conj-chirp kernel, length m.
};

std::shared_ptr<const BluesteinTables> bluestein_tables(std::size_t n,
                                                        bool inverse) {
  static TableCache<std::pair<std::size_t, bool>, BluesteinTables> cache;
  if (auto hit = cache.find({n, inverse})) {
    obs::counter_add("rcr.fft.cache.hits");
    return hit;
  }
  obs::counter_add("rcr.fft.cache.misses");

  auto tables = std::make_shared<BluesteinTables>();
  const double sign = inverse ? 1.0 : -1.0;
  tables->chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Reduce k^2 mod 2n before the trig call to keep the argument small.
    const auto k2 = static_cast<double>(
        (static_cast<unsigned long long>(k) * k) % (2ull * n));
    const double ang = sign * std::numbers::pi * k2 / static_cast<double>(n);
    tables->chirp[k] = {std::cos(ang), std::sin(ang)};
  }
  tables->m = next_power_of_two(2 * n - 1);
  CVec b(tables->m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(tables->chirp[k]);
    if (k != 0) b[tables->m - k] = std::conj(tables->chirp[k]);
  }
  fft_radix2(b, false);
  tables->fft_b = std::move(b);
  return cache.insert(std::make_pair(n, inverse), std::move(tables),
                      fft_table_cache_capacity());
}

// Bluestein chirp-z transform: arbitrary-N DFT via a power-of-two
// convolution.  Handles the non-power-of-two frame sizes STFT produces.
// Operates on x in place, staging the convolution in ws.conv, which is
// reused across calls (assign never shrinks capacity, so repeated
// transforms of one size are allocation-free).
void fft_bluestein_inplace(CVec& x, bool inverse, FftWorkspace& ws) {
  const std::size_t n = x.size();
  const std::shared_ptr<const BluesteinTables> t = bluestein_tables(n, inverse);
  const CVec& chirp = t->chirp;
  const std::size_t m = t->m;

  CVec& a = ws.conv;
  a.assign(m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  fft_radix2(a, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= t->fft_b[k];
  fft_radix2(a, true);
  for (auto& v : a) v /= static_cast<double>(m);

  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
}

void transform_inplace(CVec& y, bool inverse, FftWorkspace& ws) {
  if (y.empty()) return;
  if (is_power_of_two(y.size())) {
    fft_radix2(y, inverse);
  } else {
    fft_bluestein_inplace(y, inverse, ws);
  }
  if (inverse) {
    for (auto& v : y) v /= static_cast<double>(y.size());
  }
}

// Workspace backing the copying fft()/ifft() entry points, so even the
// allocating API reuses its Bluestein buffers within a thread.
FftWorkspace& tls_fft_workspace() {
  thread_local FftWorkspace ws;
  return ws;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CVec fft(const CVec& x) {
  CVec y = x;
  transform_inplace(y, false, tls_fft_workspace());
  return y;
}

CVec ifft(const CVec& x) {
  CVec y = x;
  transform_inplace(y, true, tls_fft_workspace());
  return y;
}

void fft_inplace(CVec& x, FftWorkspace& ws) { transform_inplace(x, false, ws); }

void ifft_inplace(CVec& x, FftWorkspace& ws) { transform_inplace(x, true, ws); }

std::size_t fft_table_cache_capacity() {
  static const std::size_t cap = [] {
    if (const char* env = std::getenv("RCR_FFT_CACHE")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 1000000)
        return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(64);
  }();
  return cap;
}

CVec rfft(const Vec& x) {
  const CVec full = fft(to_complex(x));
  const std::size_t bins = x.size() / 2 + 1;
  return CVec(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(bins));
}

Vec irfft(const CVec& spectrum, std::size_t n) {
  if (n == 0) throw std::invalid_argument("irfft: zero output length");
  if (spectrum.size() != n / 2 + 1)
    throw std::invalid_argument(
        "irfft: spectrum length must equal n/2 + 1 for output length n");
  // Rebuild the full Hermitian spectrum, then a plain inverse DFT.
  CVec full(n);
  for (std::size_t k = 0; k < spectrum.size(); ++k) full[k] = spectrum[k];
  for (std::size_t k = spectrum.size(); k < n; ++k)
    full[k] = std::conj(spectrum[n - k]);
  return real_part(ifft(full));
}

CVec dft_reference(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n, {0.0, 0.0});
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t l = 0; l < n; ++l) {
      const double ang = -kTwoPi * static_cast<double>(m) *
                         static_cast<double>(l) / static_cast<double>(n);
      out[m] += x[l] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
  }
  return out;
}

CVec to_complex(const Vec& x) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], 0.0};
  return out;
}

Vec real_part(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i].real();
  return out;
}

Vec magnitude(const CVec& x) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

double max_abs_diff(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace rcr::sig
