#include "rcr/signal/gabor.hpp"

#include <cmath>
#include <numbers>

namespace rcr::sig {

namespace {
// Wrap an angle difference into (-pi, pi].
double wrap_angle(double a) {
  constexpr double kPi = std::numbers::pi;
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}
}  // namespace

TfGrid gabor_transform(const Vec& signal, std::size_t window_length,
                       std::size_t hop, std::size_t fft_size) {
  StftConfig config;
  config.window = make_window(WindowKind::kGaussian, window_length);
  config.hop = hop;
  config.fft_size = fft_size;
  config.convention = StftConvention::kTimeInvariant;
  config.padding = FramePadding::kCircular;
  return stft(signal, config);
}

PhaseDerivative gabphasederiv(const TfGrid& grid, PhaseDerivKind kind,
                              std::size_t hop, double magnitude_floor_rel) {
  PhaseDerivative out;
  out.bins = grid.bins();
  out.frames = grid.frames();
  out.values.assign(out.bins, Vec(out.frames, 0.0));
  out.reliable.assign(out.bins, std::vector<bool>(out.frames, false));

  const double floor = magnitude_floor_rel * grid.max_magnitude();

  for (std::size_t m = 0; m < out.bins; ++m) {
    for (std::size_t n = 0; n < out.frames; ++n) {
      std::complex<double> prev;
      std::complex<double> next;
      double step = 1.0;
      if (kind == PhaseDerivKind::kTime) {
        const std::size_t np = (n + out.frames - 1) % out.frames;
        const std::size_t nn = (n + 1) % out.frames;
        prev = grid(m, np);
        next = grid(m, nn);
        step = 2.0 * static_cast<double>(hop);  // distance in samples
      } else {
        const std::size_t mp = (m + out.bins - 1) % out.bins;
        const std::size_t mn = (m + 1) % out.bins;
        prev = grid(mp, n);
        next = grid(mn, n);
        step = 2.0;  // two bins apart
      }
      // Centered difference of the (wrapped) phase.  Near the magnitude
      // floor the phase is dominated by round-off and the estimate is
      // essentially random -- exactly the caveat the paper quotes.
      const double dphi = wrap_angle(std::arg(next) - std::arg(prev));
      out.values[m][n] = dphi / step;
      out.reliable[m][n] = std::abs(grid(m, n)) > floor &&
                           std::abs(prev) > floor && std::abs(next) > floor;
    }
  }
  return out;
}

PhaseDerivError phase_deriv_error_vs_constant(const PhaseDerivative& deriv,
                                              double true_value) {
  PhaseDerivError err;
  double acc_rel = 0.0;
  double acc_unrel = 0.0;
  for (std::size_t m = 0; m < deriv.bins; ++m) {
    for (std::size_t n = 0; n < deriv.frames; ++n) {
      // A real tone carries conjugate components at +/- the tone frequency,
      // so match against either sign of the target.
      const double e = std::min(std::abs(deriv.values[m][n] - true_value),
                                std::abs(deriv.values[m][n] + true_value));
      if (deriv.reliable[m][n]) {
        acc_rel += e * e;
        ++err.n_reliable;
      } else {
        acc_unrel += e * e;
        ++err.n_unreliable;
      }
    }
  }
  if (err.n_reliable > 0)
    err.rms_reliable = std::sqrt(acc_rel / static_cast<double>(err.n_reliable));
  if (err.n_unreliable > 0)
    err.rms_unreliable =
        std::sqrt(acc_unrel / static_cast<double>(err.n_unreliable));
  return err;
}

}  // namespace rcr::sig
