#include "rcr/signal/griffin_lim.hpp"

#include <cmath>
#include <stdexcept>

#include "rcr/numerics/rng.hpp"

namespace rcr::sig {

TfGrid magnitude_grid(const TfGrid& grid) {
  TfGrid out(grid.bins(), grid.frames());
  for (std::size_t i = 0; i < grid.data().size(); ++i)
    out.data()[i] = {std::abs(grid.data()[i]), 0.0};
  return out;
}

namespace {

double convergence(const TfGrid& candidate, const TfGrid& target) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < target.data().size(); ++i) {
    const double t = target.data()[i].real();
    const double c = std::abs(candidate.data()[i]);
    num += (c - t) * (c - t);
    den += t * t;
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

}  // namespace

double spectral_convergence(const Vec& signal, const TfGrid& target_magnitude,
                            const StftConfig& config) {
  return convergence(stft(signal, config), target_magnitude);
}

GriffinLimResult griffin_lim(const TfGrid& target_magnitude,
                             const StftConfig& config, std::size_t n,
                             const GriffinLimOptions& options) {
  config.validate();
  if (config.padding != FramePadding::kCircular)
    throw std::invalid_argument("griffin_lim: requires circular padding");
  if (target_magnitude.bins() != config.fft_size ||
      target_magnitude.frames() != config.frame_count(n))
    throw std::invalid_argument("griffin_lim: magnitude grid shape mismatch");

  num::Rng rng(options.seed);
  // Initialize with random phases on the target magnitudes.
  TfGrid s(target_magnitude.bins(), target_magnitude.frames());
  for (std::size_t i = 0; i < s.data().size(); ++i) {
    const double mag = target_magnitude.data()[i].real();
    const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    s.data()[i] = std::polar(mag, phase);
  }

  GriffinLimResult result;
  result.signal = Vec(n, 0.0);
  result.spectral_convergence = 1.0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Project onto the set of consistent spectrograms...
    result.signal = istft(s, config, n);
    const TfGrid consistent = stft(result.signal, config);
    result.spectral_convergence = convergence(consistent, target_magnitude);
    result.iterations = it + 1;
    if (result.spectral_convergence <= options.tolerance) break;
    // ...then back onto the set with the target magnitudes.
    for (std::size_t i = 0; i < s.data().size(); ++i) {
      const double mag = target_magnitude.data()[i].real();
      const std::complex<double> c = consistent.data()[i];
      const double abs_c = std::abs(c);
      s.data()[i] = abs_c > 1e-300 ? mag * c / abs_c
                                   : std::complex<double>(mag, 0.0);
    }
  }
  return result;
}

}  // namespace rcr::sig
