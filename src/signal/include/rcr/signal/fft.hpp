// FFT family: the six functions Sec. IV of the paper audits across ML
// libraries (FFT, IFFT, RFFT, IRFFT, STFT, ISTFT).  This header provides the
// reference (correct) transforms; deliberately defective library simulations
// live in variants.hpp.
//
// Conventions (matching NumPy/SciPy):
//   fft:   X[m] = sum_l x[l] e^{-2*pi*i*m*l/N}        (no scaling)
//   ifft:  x[l] = (1/N) sum_m X[m] e^{+2*pi*i*m*l/N}
//   rfft:  first N/2+1 bins of fft of a real signal
//   irfft: inverse of rfft given the output length N
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::sig {

/// Complex sample buffer.
using CVec = std::vector<std::complex<double>>;

/// Forward DFT of arbitrary length (radix-2 when N is a power of two,
/// Bluestein chirp-z otherwise).  O(N log N).
CVec fft(const CVec& x);

/// Inverse DFT with 1/N normalization.
CVec ifft(const CVec& x);

/// Reusable scratch for the in-place transforms.  Holds the Bluestein
/// convolution buffer; after the first transform of a given size, repeated
/// in-place transforms through the same workspace perform zero heap
/// allocations.  A workspace is not thread-safe -- use one per thread
/// (pool workers typically hold one in thread_local storage).
struct FftWorkspace {
  CVec conv;  ///< Power-of-two Bluestein convolution buffer.
};

/// In-place forward DFT of `x` (any length), using `ws` for scratch.
/// Bit-identical to fft(x); allocation-free once `ws` and the twiddle-table
/// caches are warm.
void fft_inplace(CVec& x, FftWorkspace& ws);

/// In-place inverse DFT with 1/N normalization.  Bit-identical to ifft(x).
void ifft_inplace(CVec& x, FftWorkspace& ws);

/// Capacity of each per-size FFT table cache (radix-2 twiddles, Bluestein
/// chirps): the RCR_FFT_CACHE environment variable when set to a positive
/// integer, otherwise 64.  Least-recently-used sizes are evicted beyond the
/// cap, bounding cache memory during sweeps over many transform sizes.
std::size_t fft_table_cache_capacity();

/// Forward DFT of a real signal; returns bins 0..N/2 (length N/2+1).
CVec rfft(const Vec& x);

/// Inverse of rfft; `n` is the output length (must satisfy
/// spectrum.size() == n/2 + 1, otherwise throws std::invalid_argument).
Vec irfft(const CVec& spectrum, std::size_t n);

/// Direct O(N^2) DFT; oracle for testing the fast paths.
CVec dft_reference(const CVec& x);

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// Convert a real vector to complex.
CVec to_complex(const Vec& x);

/// Real parts of a complex vector.
Vec real_part(const CVec& x);

/// |x_i| for every sample.
Vec magnitude(const CVec& x);

/// Max_i |a_i - b_i| between complex vectors (inf when sizes differ).
double max_abs_diff(const CVec& a, const CVec& b);

}  // namespace rcr::sig
