// Gabor transform (Gaussian-window STFT) and phase derivatives.
//
// Sec. IV-B of the paper quotes the LTFAT `gabphasederiv` documentation: the
// computed phase derivative "is inaccurate when the absolute value of the
// Gabor coefficients is low", because the phase of complex numbers near
// machine precision is essentially random.  This module reproduces that
// behaviour and exposes the magnitude-based reliability mask used to measure
// it (experiment E4).
#pragma once

#include "rcr/signal/stft.hpp"

namespace rcr::sig {

/// Gabor transform: STFT with a Gaussian window of length `window_length`
/// under the time-invariant convention.
TfGrid gabor_transform(const Vec& signal, std::size_t window_length,
                       std::size_t hop, std::size_t fft_size);

/// Which phase derivative to compute.
enum class PhaseDerivKind {
  kTime,       ///< d(phase)/dt -- local instantaneous frequency direction.
  kFrequency,  ///< d(phase)/df -- local group delay direction.
};

/// Phase derivative of a time-frequency grid via centered, phase-unwrapped
/// finite differences (distances measured in samples, matching the LTFAT
/// convention quoted in the paper).  Entries are meaningful only where the
/// reliability mask is true.
struct PhaseDerivative {
  std::vector<Vec> values;       ///< [bin][frame] derivative estimates.
  std::vector<std::vector<bool>> reliable;  ///< Magnitude above the floor.
  std::size_t bins = 0;
  std::size_t frames = 0;
};

/// Compute the phase derivative.  `magnitude_floor_rel` is the reliability
/// threshold relative to the grid's max coefficient magnitude.
PhaseDerivative gabphasederiv(const TfGrid& grid, PhaseDerivKind kind,
                              std::size_t hop,
                              double magnitude_floor_rel = 1e-8);

/// RMS error of a phase-derivative estimate against ground truth, split into
/// reliable and unreliable regions (E4's measurement).
struct PhaseDerivError {
  double rms_reliable = 0.0;
  double rms_unreliable = 0.0;
  std::size_t n_reliable = 0;
  std::size_t n_unreliable = 0;
};

/// Compare a time-direction phase derivative of a pure tone against its known
/// constant instantaneous frequency (radians/sample).
PhaseDerivError phase_deriv_error_vs_constant(const PhaseDerivative& deriv,
                                              double true_value);

}  // namespace rcr::sig
