// Griffin-Lim phase reconstruction from magnitude spectrograms.
//
// The paper's time-frequency reference [26] (Marafioti et al., "Adversarial
// Generation of Time-Frequency Features") generates magnitude spectrograms
// and needs a phase-aware inversion; Griffin-Lim is the standard baseline.
// It also exercises exactly the phase conventions Sec. IV-B audits: an
// implementation using a skewed STFT convention silently fails to converge.
#pragma once

#include <cstdint>

#include "rcr/signal/stft.hpp"

namespace rcr::sig {

/// Result of Griffin-Lim inversion.
struct GriffinLimResult {
  Vec signal;                   ///< Reconstructed time-domain signal.
  double spectral_convergence;  ///< || |STFT(x)| - target ||_F / ||target||_F.
  std::size_t iterations;       ///< Iterations actually run.
};

/// Options.
struct GriffinLimOptions {
  std::size_t max_iterations = 60;
  double tolerance = 1e-4;   ///< Stop when spectral convergence falls below.
  std::uint64_t seed = 1;    ///< Random initial phases.
};

/// Reconstruct a length-n signal whose STFT magnitude matches
/// `target_magnitude` (bins x frames, as produced by stft() under `config`).
/// The config must use circular padding.  Throws std::invalid_argument on
/// shape mismatch.
GriffinLimResult griffin_lim(const TfGrid& target_magnitude,
                             const StftConfig& config, std::size_t n,
                             const GriffinLimOptions& options = {});

/// Magnitude-only copy of a grid (phases dropped).
TfGrid magnitude_grid(const TfGrid& grid);

/// Spectral convergence of a signal against a target magnitude grid.
double spectral_convergence(const Vec& signal, const TfGrid& target_magnitude,
                            const StftConfig& config);

}  // namespace rcr::sig
