// Numerical-issue detector: reproduces Fig. 3 of the paper -- a matrix of
// issue classes found in FFT/IFFT/RFFT/IRFFT/STFT/ISTFT across library
// implementations -- by differential testing each simulated library against
// the reference transforms.
#pragma once

#include <string>
#include <vector>

#include "rcr/numerics/rng.hpp"
#include "rcr/signal/variants.hpp"

namespace rcr::sig {

/// The six functions audited in Sec. IV / Fig. 3.
enum class FftFunction { kFft, kIfft, kRfft, kIrfft, kStft, kIstft };

std::string to_string(FftFunction f);

/// All six functions in display order.
const std::vector<FftFunction>& all_fft_functions();

/// Issue classification produced by differential testing.
enum class IssueKind {
  kOk,             ///< Matches reference within tolerance.
  kShapeMismatch,  ///< Output dimensions differ from reference.
  kScaleError,     ///< Proportional to reference with non-unit constant.
  kPhaseError,     ///< Magnitudes match, phases differ.
  kWrongValues,    ///< Values differ beyond tolerance (not scale/phase-only).
  kNonFinite,      ///< Output contains inf/NaN.
  kRaisedError,    ///< The call threw.
};

std::string to_string(IssueKind k);

/// One cell of the issue matrix.
struct IssueReport {
  IssueKind kind = IssueKind::kOk;
  double max_rel_error = 0.0;   ///< Against reference (0 when shapes differ).
  std::string detail;           ///< Human-readable note.
};

/// Full differential-testing result: rows = libraries, cols = functions.
struct IssueMatrix {
  std::vector<std::string> library_names;
  std::vector<FftFunction> functions;
  std::vector<std::vector<IssueReport>> cells;  ///< [library][function]

  /// Count of non-OK cells for a library row.
  std::size_t issue_count(std::size_t library_index) const;

  /// Render as an aligned text table (the Fig. 3 reproduction).
  std::string to_table() const;
};

/// Parameters for the differential test battery.
struct DetectorConfig {
  std::size_t signal_length = 256;  ///< Test-signal length (power of two).
  std::size_t window_length = 48;  // != fft_size so signature defects show
  std::size_t hop = 16;
  std::size_t fft_size = 64;
  double tolerance = 1e-9;          ///< Relative mismatch threshold.
  std::uint64_t seed = 7;
};

/// Run the battery for every library in the roster over every function.
IssueMatrix detect_issues(const std::vector<SimulatedLibrary>& roster,
                          const DetectorConfig& config);

/// Classify a complex output against the reference output.
IssueReport classify_outputs(const CVec& reference, const CVec& candidate,
                             double tolerance);

/// Classify a real output against the reference output.
IssueReport classify_outputs(const Vec& reference, const Vec& candidate,
                             double tolerance);

}  // namespace rcr::sig
