// Spectrogram images and labelled datasets for the MSY3I network.
//
// The paper trains its squeezed-YOLO DCGAN on 5G signal workloads (STFT-based
// "signal detection and classification", Sec. IV-A).  These helpers turn
// rcr::signal waveforms into fixed-size log-magnitude images with
// classification labels (modulation scheme) and detection labels (burst
// bounding box in the time-frequency plane).
#pragma once

#include <cstddef>
#include <vector>

#include "rcr/numerics/rng.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/waveform.hpp"

namespace rcr::sig {

/// A dense height x width single-channel image, values normalized to [0, 1].
struct Image {
  std::size_t height = 0;
  std::size_t width = 0;
  Vec pixels;  ///< Row-major, height*width entries.

  double& at(std::size_t r, std::size_t c) { return pixels[r * width + c]; }
  double at(std::size_t r, std::size_t c) const { return pixels[r * width + c]; }
};

/// Log-magnitude spectrogram of a signal resampled (area-averaged) to a fixed
/// height x width image; dynamic range clipped to `dynamic_range_db` below the
/// peak and mapped to [0, 1].
Image spectrogram_image(const Vec& signal, const StftConfig& config,
                        std::size_t height, std::size_t width,
                        double dynamic_range_db = 60.0);

/// Classification sample: spectrogram image + modulation label.
struct ClassSample {
  Image image;
  std::size_t label = 0;  ///< Index into modulation_classes().
};

/// The label set for the classification dataset.
const std::vector<Modulation>& modulation_classes();

/// Generate a balanced, seeded modulation-classification dataset of
/// spectrogram images (`per_class` samples per modulation) at the given SNR.
std::vector<ClassSample> make_classification_dataset(std::size_t per_class,
                                                     std::size_t image_size,
                                                     double noise_stddev,
                                                     num::Rng& rng);

/// Detection sample: image + normalized box [x_center, y_center, w, h] of the
/// burst in time(x)-frequency(y) coordinates, all in [0, 1].
struct DetectSample {
  Image image;
  double x_center = 0.0;
  double y_center = 0.0;
  double box_w = 0.0;
  double box_h = 0.0;
};

/// Generate a burst-detection dataset: OFDM bursts embedded in noise at
/// random time offsets; the label is the burst's time-frequency box.
std::vector<DetectSample> make_detection_dataset(std::size_t count,
                                                 std::size_t image_size,
                                                 double noise_stddev,
                                                 num::Rng& rng);

/// Intersection-over-union of two center-format normalized boxes.
double box_iou(double ax, double ay, double aw, double ah, double bx, double by,
               double bw, double bh);

}  // namespace rcr::sig
