// Short-time Fourier transform under the two conventions the paper contrasts
// (Sec. IV-B, Eqs. 5-6), plus the phase-factor conversion between them and a
// least-squares inverse.
//
// Eq. 6, "simplified time-invariant" (STI):
//   STFT[m,n] = sum_{l=0}^{Lg-1} s[l + n*a] g[l] e^{-2*pi*i*m*l/M}
// where the stored window g has its peak at g[floor(Lg/2)] rather than g[0].
//
// Eq. 5, "time-invariant" (TI): the window is referenced to its center,
//   STFT[m,n] = sum_{l=-floor(Lg/2)}^{floor(Lg/2)-1} s[l + n*a] g_c[l] e^{-2*pi*i*m*l/M}.
//
// Substituting l' = l + floor(Lg/2) shows the two are related by a delay of
// floor(Lg/2) samples and a per-bin phase factor e^{+2*pi*i*m*floor(Lg/2)/M}
// -- the "phase skew dependency on the stored window" that Sec. IV-B warns
// corrupts downstream phase analysis when ignored.
#pragma once

#include <cstddef>

#include "rcr/signal/fft.hpp"
#include "rcr/signal/window.hpp"

namespace rcr::sig {

/// Complex time-frequency grid: `bins` frequency rows x `frames` time columns.
class TfGrid {
 public:
  TfGrid() = default;
  TfGrid(std::size_t bins, std::size_t frames)
      : bins_(bins), frames_(frames), data_(bins * frames, {0.0, 0.0}) {}

  std::size_t bins() const { return bins_; }
  std::size_t frames() const { return frames_; }

  std::complex<double>& operator()(std::size_t m, std::size_t n) {
    return data_[m * frames_ + n];
  }
  std::complex<double> operator()(std::size_t m, std::size_t n) const {
    return data_[m * frames_ + n];
  }

  const CVec& data() const { return data_; }
  CVec& data() { return data_; }

  /// Reshape to bins x frames with all entries zero, reusing the existing
  /// heap block whenever its capacity suffices (the TfGrid analogue of
  /// Matrix::assign; lets stft_into run allocation-free once warm).
  void assign(std::size_t bins, std::size_t frames) {
    bins_ = bins;
    frames_ = frames;
    data_.assign(bins * frames, {0.0, 0.0});
  }

  /// Max_ij |a_ij - b_ij|; +inf on shape mismatch.
  static double max_abs_diff(const TfGrid& a, const TfGrid& b);

  /// Largest coefficient magnitude (0 for empty grid).
  double max_magnitude() const;

 private:
  std::size_t bins_ = 0;
  std::size_t frames_ = 0;
  CVec data_;
};

/// Which of the paper's two STFT phase conventions to use.
enum class StftConvention {
  kSimplifiedTimeInvariant,  ///< Eq. 6 -- window referenced to its first sample.
  kTimeInvariant,            ///< Eq. 5 -- window referenced to its center.
};

/// How frames that extend past the end of the signal are handled.
enum class FramePadding {
  kCircular,   ///< s is treated circularly (reference behaviour).
  kTruncate,   ///< only frames fully inside the signal: n <= (L - Lg)/a.
               ///< Valid only with the STI convention: TI frames are
               ///< centered, so frame 0 always reaches floor(Lg/2) samples
               ///< before the signal start (validate() rejects the combo).
};

/// STFT parameters.  `fft_size` M may exceed the window length (zero-padded
/// frames); it must not be smaller.
struct StftConfig {
  Vec window;                ///< Stored analysis window g, length Lg.
  std::size_t hop = 0;       ///< Time shift a between frames.
  std::size_t fft_size = 0;  ///< M; number of frequency bins is M.
  StftConvention convention = StftConvention::kSimplifiedTimeInvariant;
  FramePadding padding = FramePadding::kCircular;

  /// Validates the invariants; throws std::invalid_argument when violated.
  void validate() const;

  /// Number of frames produced for a signal of length `n`.
  std::size_t frame_count(std::size_t n) const;
};

/// Forward STFT of a real signal under the configured convention.
/// Throws std::invalid_argument when the config is invalid or the signal is
/// shorter than the window (for kTruncate padding).
TfGrid stft(const Vec& signal, const StftConfig& config);

/// Forward STFT written into `out` (reshaped, storage reused).  Frame
/// buffers and FFT scratch live in per-thread storage, so repeated calls at
/// a fixed configuration perform zero steady-state heap allocations.
/// Bit-identical to stft().
void stft_into(const Vec& signal, const StftConfig& config, TfGrid& out);

/// Least-squares inverse STFT (overlap-add with window-square normalization)
/// for circular padding; reconstructs a signal of length `n`.
/// Throws std::invalid_argument on shape mismatch or when the window/hop pair
/// leaves some sample uncovered.
Vec istft(const TfGrid& grid, const StftConfig& config, std::size_t n);

/// The a-priori phase-factor matrix P with
/// P[m,n] = e^{+2*pi*i*m*floor(Lg/2)/M}; point-wise multiplying an STI STFT by
/// P converts it to the TI convention (Sec. IV-B's "conversion between
/// conventions").
TfGrid phase_factor_matrix(std::size_t bins, std::size_t frames,
                           std::size_t window_length, std::size_t fft_size);

/// Point-wise product a .* b.  Throws std::invalid_argument on shape mismatch.
TfGrid pointwise_multiply(const TfGrid& a, const TfGrid& b);

/// Convert an STFT computed under the STI convention (Eq. 6) to the TI
/// convention (Eq. 5) by applying the phase-factor matrix.
TfGrid convert_sti_to_ti(const TfGrid& sti, std::size_t window_length,
                         std::size_t fft_size);

/// Worst-case phase discrepancy (radians, in [0, pi]) between two grids over
/// coefficients whose magnitude exceeds `magnitude_floor` in both.
double max_phase_discrepancy(const TfGrid& a, const TfGrid& b,
                             double magnitude_floor);

}  // namespace rcr::sig
