// Simulated ML-library implementations of the FFT family, each reproducing a
// defect class from the paper's Fig. 3 survey of numerical issues in Caffe/
// Caffe2/Julia/PyTorch/SciPy/TensorFlow.
//
// The paper's experiments measure *discrepancies between implementations*
// (signature changes across PyTorch versions, phase-skew conventions in
// TensorFlow, non-circular framing, unstable compositions); injecting the
// same defect classes into from-scratch implementations reproduces the same
// discrepancy structure without the original closed binaries (see DESIGN.md
// substitution table).
#pragma once

#include <string>
#include <vector>

#include "rcr/signal/stft.hpp"

namespace rcr::sig {

/// Defect classes injected by the simulated libraries.
enum class Defect {
  kNone,              ///< Reference behaviour.
  kLegacySignature,   ///< Pre-v0.4.1 torch.stft argument semantics
                      ///< (window-length and fft-size interpretations swapped).
  kPhaseSkew,         ///< STI convention reported as TI (stored-window phase
                      ///< skew of Sec. IV-B, uncorrected).
  kNonCircular,       ///< Frames only for n <= (L - Lg)/a; tail dropped.
  kMissingScale,      ///< Inverse transforms missing the 1/N normalization.
  kConjugateFlip,     ///< Forward transform computed with e^{+i...} kernel
                      ///< (sign-of-exponent inconsistency across libraries).
  kUnstableCompose,   ///< Log-magnitude computed as log(naive softmax-style
                      ///< normalized power): underflows to -inf.
};

std::string to_string(Defect defect);

/// A simulated library: a named bundle of FFT-family entry points whose
/// behaviour deviates from the reference according to its defect.
class SimulatedLibrary {
 public:
  SimulatedLibrary(std::string name, Defect defect)
      : name_(std::move(name)), defect_(defect) {}

  const std::string& name() const { return name_; }
  Defect defect() const { return defect_; }

  CVec fft(const CVec& x) const;
  CVec ifft(const CVec& x) const;
  CVec rfft(const Vec& x) const;
  Vec irfft(const CVec& spectrum, std::size_t n) const;

  /// STFT with a librosa-consistent signature:
  /// (signal, fft_size, hop, window).  A library with the
  /// kLegacySignature defect interprets fft_size as the window length and
  /// zero-pads to window.size() (the pre-v0.4.1 semantics) -- callers using
  /// the modern signature silently get wrong shapes/values.
  TfGrid stft(const Vec& signal, std::size_t fft_size, std::size_t hop,
              const Vec& window) const;

  /// Inverse STFT paired with this library's forward conventions.
  Vec istft(const TfGrid& grid, std::size_t fft_size, std::size_t hop,
            const Vec& window, std::size_t n) const;

  /// Log-power spectrogram column for one frame (exercises the
  /// kUnstableCompose defect: log of an underflowed normalized power).
  Vec log_power(const Vec& frame) const;

 private:
  StftConfig make_config(std::size_t fft_size, std::size_t hop,
                         const Vec& window) const;

  std::string name_;
  Defect defect_;
};

/// The simulated library roster used by the Fig. 3 reproduction: one
/// reference implementation plus one library per defect class, named after
/// the toolkit whose issue class it mimics.
std::vector<SimulatedLibrary> standard_library_roster();

}  // namespace rcr::sig
