// Synthetic waveform generators.
//
// The paper's experiments run on 5G/B5G signal-processing workloads (OFDM,
// STFT-based detection/classification) but cite no dataset; these generators
// provide the deterministic, seeded substitutes (see DESIGN.md table of
// substitutions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rcr/numerics/rng.hpp"
#include "rcr/signal/fft.hpp"

namespace rcr::sig {

/// Pure tone: amplitude * sin(2*pi*freq*t + phase), t = k/sample_rate.
Vec tone(std::size_t n, double freq, double sample_rate, double amplitude = 1.0,
         double phase = 0.0);

/// Linear chirp sweeping f0 -> f1 over the buffer.
Vec chirp(std::size_t n, double f0, double f1, double sample_rate,
          double amplitude = 1.0);

/// Additive white Gaussian noise of the given standard deviation.
Vec awgn(std::size_t n, double stddev, num::Rng& rng);

/// x + noise (sizes must match; throws std::invalid_argument otherwise).
Vec add_noise(const Vec& x, double stddev, num::Rng& rng);

/// Circular shift: out[k] = x[(k - shift) mod n].
Vec circular_shift(const Vec& x, std::ptrdiff_t shift);

/// Subcarrier modulation schemes for the OFDM generator.
enum class Modulation { kBpsk, kQpsk, kQam16 };

std::string to_string(Modulation m);

/// Parameters of a synthetic OFDM burst.
struct OfdmParams {
  std::size_t fft_size = 64;        ///< Subcarriers per symbol.
  std::size_t cyclic_prefix = 16;   ///< CP samples per symbol.
  std::size_t num_symbols = 8;      ///< OFDM symbols in the burst.
  std::size_t active_subcarriers = 48;  ///< Centered occupied band.
  Modulation modulation = Modulation::kQpsk;

  std::size_t samples_per_symbol() const { return fft_size + cyclic_prefix; }
  std::size_t total_samples() const {
    return samples_per_symbol() * num_symbols;
  }
};

/// Time-domain OFDM burst (real passband-like signal: real part of the
/// complex baseband, unit average power before noise).
Vec ofdm_burst(const OfdmParams& params, num::Rng& rng);

/// A burst embedded at `offset` inside a longer noisy capture; used by the
/// detection example and the MSY3I detector dataset.
struct BurstCapture {
  Vec samples;            ///< Full capture.
  std::size_t offset;     ///< Burst start sample.
  std::size_t length;     ///< Burst length in samples.
};

/// Place an OFDM burst of the given modulation at a random offset inside a
/// capture of `capture_len` samples with AWGN at `noise_stddev`.
BurstCapture embedded_burst(std::size_t capture_len, const OfdmParams& params,
                            double noise_stddev, num::Rng& rng);

}  // namespace rcr::sig
