// Analysis windows for the STFT/Gabor machinery.
//
// Windows are generated "periodic" (DFT-even) so that hop sizes dividing the
// length satisfy the constant-overlap-add (COLA) property used by ISTFT.
#pragma once

#include <cstddef>
#include <string>

#include "rcr/numerics/vector_ops.hpp"

namespace rcr::sig {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kGaussian,  ///< sigma = length/8; the Gabor-transform window.
};

/// Human-readable name.
std::string to_string(WindowKind kind);

/// Generate a window of the given length.  Throws std::invalid_argument when
/// length == 0.
Vec make_window(WindowKind kind, std::size_t length);

/// Sum_n w[k - n*hop] over all integer n, evaluated at k in [0, hop)
/// (periodic extension).  A window/hop pair satisfies COLA when this is
/// constant over k.
Vec overlap_add_profile(const Vec& window, std::size_t hop);

/// True when the window satisfies COLA for the given hop within `tol`
/// relative ripple.
bool satisfies_cola(const Vec& window, std::size_t hop, double tol = 1e-8);

/// Peak index of the window (ties broken toward the center).
std::size_t window_peak_index(const Vec& window);

}  // namespace rcr::sig
