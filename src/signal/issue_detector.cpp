#include "rcr/signal/issue_detector.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "rcr/numerics/float_probe.hpp"
#include "rcr/signal/waveform.hpp"

namespace rcr::sig {

std::string to_string(FftFunction f) {
  switch (f) {
    case FftFunction::kFft:
      return "FFT";
    case FftFunction::kIfft:
      return "IFFT";
    case FftFunction::kRfft:
      return "RFFT";
    case FftFunction::kIrfft:
      return "IRFFT";
    case FftFunction::kStft:
      return "STFT";
    case FftFunction::kIstft:
      return "ISTFT";
  }
  return "?";
}

const std::vector<FftFunction>& all_fft_functions() {
  static const std::vector<FftFunction> kAll = {
      FftFunction::kFft,  FftFunction::kIfft,  FftFunction::kRfft,
      FftFunction::kIrfft, FftFunction::kStft, FftFunction::kIstft};
  return kAll;
}

std::string to_string(IssueKind k) {
  switch (k) {
    case IssueKind::kOk:
      return "ok";
    case IssueKind::kShapeMismatch:
      return "shape";
    case IssueKind::kScaleError:
      return "scale";
    case IssueKind::kPhaseError:
      return "phase";
    case IssueKind::kWrongValues:
      return "wrong";
    case IssueKind::kNonFinite:
      return "nonfinite";
    case IssueKind::kRaisedError:
      return "error";
  }
  return "?";
}

namespace {

bool has_non_finite(const CVec& x) {
  for (const auto& v : x)
    if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) return true;
  return false;
}

double grid_scale(const CVec& x) {
  double m = 0.0;
  for (const auto& v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace

IssueReport classify_outputs(const CVec& reference, const CVec& candidate,
                             double tolerance) {
  IssueReport report;
  if (reference.size() != candidate.size()) {
    report.kind = IssueKind::kShapeMismatch;
    report.detail = "size " + std::to_string(candidate.size()) + " vs " +
                    std::to_string(reference.size());
    return report;
  }
  if (has_non_finite(candidate)) {
    report.kind = IssueKind::kNonFinite;
    report.detail = "inf/NaN in output";
    return report;
  }

  const double scale = grid_scale(reference);
  if (scale == 0.0) return report;
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_err = std::max(max_err, std::abs(reference[i] - candidate[i]) / scale);
  report.max_rel_error = max_err;
  if (max_err <= tolerance) return report;

  // Scale-only error: candidate == c * reference for a single constant c.
  {
    std::complex<double> c{0.0, 0.0};
    double wsum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const double w = std::norm(reference[i]);
      if (w > 1e-20 * scale * scale) {
        c += candidate[i] * std::conj(reference[i]);
        wsum += w;
      }
    }
    if (wsum > 0.0) {
      c /= wsum;
      double resid = 0.0;
      for (std::size_t i = 0; i < reference.size(); ++i)
        resid = std::max(resid,
                         std::abs(candidate[i] - c * reference[i]) / scale);
      if (resid <= tolerance * 10.0 && std::abs(std::abs(c) - 1.0) > tolerance &&
          std::abs(std::arg(c)) < 1e-9) {
        report.kind = IssueKind::kScaleError;
        std::ostringstream os;
        os << "scale factor " << std::setprecision(4) << std::abs(c);
        report.detail = os.str();
        return report;
      }
    }
  }

  // Phase-only error: |candidate| == |reference| but values differ.
  {
    double mag_err = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
      mag_err = std::max(
          mag_err, std::abs(std::abs(reference[i]) - std::abs(candidate[i])) /
                       scale);
    if (mag_err <= tolerance * 100.0) {
      report.kind = IssueKind::kPhaseError;
      report.detail = "magnitudes agree, phases differ";
      return report;
    }
  }

  report.kind = IssueKind::kWrongValues;
  std::ostringstream os;
  os << "max rel err " << std::scientific << std::setprecision(2) << max_err;
  report.detail = os.str();
  return report;
}

IssueReport classify_outputs(const Vec& reference, const Vec& candidate,
                             double tolerance) {
  CVec cref(reference.size());
  CVec ccan(candidate.size());
  for (std::size_t i = 0; i < reference.size(); ++i) cref[i] = {reference[i], 0.0};
  for (std::size_t i = 0; i < candidate.size(); ++i) ccan[i] = {candidate[i], 0.0};
  return classify_outputs(cref, ccan, tolerance);
}

std::size_t IssueMatrix::issue_count(std::size_t library_index) const {
  std::size_t n = 0;
  for (const auto& cell : cells.at(library_index))
    if (cell.kind != IssueKind::kOk) ++n;
  return n;
}

std::string IssueMatrix::to_table() const {
  std::ostringstream os;
  os << std::left << std::setw(20) << "library";
  for (FftFunction f : functions) os << std::setw(11) << to_string(f);
  os << "\n";
  for (std::size_t r = 0; r < library_names.size(); ++r) {
    os << std::left << std::setw(20) << library_names[r];
    for (std::size_t c = 0; c < functions.size(); ++c)
      os << std::setw(11) << to_string(cells[r][c].kind);
    os << "\n";
  }
  return os.str();
}

IssueMatrix detect_issues(const std::vector<SimulatedLibrary>& roster,
                          const DetectorConfig& config) {
  num::Rng rng(config.seed);
  // Broadband test signal: chirp + tone + noise, so every bin carries energy.
  Vec signal = chirp(config.signal_length, 2.0, 60.0, 256.0);
  {
    const Vec t = tone(config.signal_length, 17.0, 256.0, 0.5);
    for (std::size_t i = 0; i < signal.size(); ++i)
      signal[i] += t[i] + rng.normal(0.0, 0.05);
  }
  const CVec csignal = to_complex(signal);
  const Vec window = make_window(WindowKind::kHann, config.window_length);

  const SimulatedLibrary reference("reference", Defect::kNone);
  const CVec ref_fft = reference.fft(csignal);
  const CVec ref_ifft = reference.ifft(ref_fft);
  const CVec ref_rfft = reference.rfft(signal);
  const Vec ref_irfft = reference.irfft(ref_rfft, signal.size());
  const TfGrid ref_stft =
      reference.stft(signal, config.fft_size, config.hop, window);
  const Vec ref_istft = reference.istft(ref_stft, config.fft_size, config.hop,
                                        window, signal.size());

  IssueMatrix matrix;
  matrix.functions = all_fft_functions();
  for (const SimulatedLibrary& lib : roster) {
    matrix.library_names.push_back(lib.name());
    std::vector<IssueReport> row;
    for (FftFunction f : matrix.functions) {
      IssueReport report;
      try {
        switch (f) {
          case FftFunction::kFft:
            report = classify_outputs(ref_fft, lib.fft(csignal),
                                      config.tolerance);
            break;
          case FftFunction::kIfft:
            report = classify_outputs(ref_ifft, lib.ifft(ref_fft),
                                      config.tolerance);
            break;
          case FftFunction::kRfft:
            report = classify_outputs(ref_rfft, lib.rfft(signal),
                                      config.tolerance);
            break;
          case FftFunction::kIrfft:
            report = classify_outputs(
                ref_irfft, lib.irfft(ref_rfft, signal.size()),
                config.tolerance);
            break;
          case FftFunction::kStft: {
            const TfGrid g =
                lib.stft(signal, config.fft_size, config.hop, window);
            report = classify_outputs(ref_stft.data(), g.data(),
                                      config.tolerance);
            if (g.bins() != ref_stft.bins() ||
                g.frames() != ref_stft.frames()) {
              report.kind = IssueKind::kShapeMismatch;
              report.detail = std::to_string(g.bins()) + "x" +
                              std::to_string(g.frames()) + " vs " +
                              std::to_string(ref_stft.bins()) + "x" +
                              std::to_string(ref_stft.frames());
            }
            break;
          }
          case FftFunction::kIstft: {
            const TfGrid own =
                lib.stft(signal, config.fft_size, config.hop, window);
            const Vec rec = lib.istft(own, config.fft_size, config.hop, window,
                                      signal.size());
            // Round-trip test: the library's own ISTFT(STFT(x)) should
            // return x.
            report = classify_outputs(signal, rec, config.tolerance * 100.0);
            break;
          }
        }
      } catch (const std::exception& e) {
        report.kind = IssueKind::kRaisedError;
        report.detail = e.what();
      }
      row.push_back(std::move(report));
    }
    matrix.cells.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace rcr::sig
