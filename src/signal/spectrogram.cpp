#include "rcr/signal/spectrogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rcr::sig {

Image spectrogram_image(const Vec& signal, const StftConfig& config,
                        std::size_t height, std::size_t width,
                        double dynamic_range_db) {
  if (height == 0 || width == 0)
    throw std::invalid_argument("spectrogram_image: zero output size");
  const TfGrid grid = stft(signal, config);
  // Keep only the non-redundant lower half of the spectrum of a real signal.
  const std::size_t bins = grid.bins() / 2 + 1;
  const std::size_t frames = grid.frames();

  // Log magnitude in dB, tracking the peak for normalization.
  std::vector<Vec> db(bins, Vec(frames, 0.0));
  double peak = -1e30;
  for (std::size_t m = 0; m < bins; ++m) {
    for (std::size_t n = 0; n < frames; ++n) {
      const double mag = std::abs(grid(m, n));
      db[m][n] = 20.0 * std::log10(std::max(mag, 1e-30));
      peak = std::max(peak, db[m][n]);
    }
  }

  // Area-average resample onto the fixed image grid.  Row 0 = highest
  // frequency (image convention), column 0 = first frame.
  Image img;
  img.height = height;
  img.width = width;
  img.pixels.assign(height * width, 0.0);
  for (std::size_t r = 0; r < height; ++r) {
    const std::size_t m_lo = (height - 1 - r) * bins / height;
    const std::size_t m_hi = std::max(m_lo + 1, (height - r) * bins / height);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t n_lo = c * frames / width;
      const std::size_t n_hi = std::max(n_lo + 1, (c + 1) * frames / width);
      double acc = 0.0;
      std::size_t count = 0;
      for (std::size_t m = m_lo; m < m_hi && m < bins; ++m)
        for (std::size_t n = n_lo; n < n_hi && n < frames; ++n) {
          acc += db[m][n];
          ++count;
        }
      const double val = count > 0 ? acc / static_cast<double>(count) : peak - dynamic_range_db;
      // Map [peak - range, peak] -> [0, 1].
      img.at(r, c) = std::clamp(
          (val - (peak - dynamic_range_db)) / dynamic_range_db, 0.0, 1.0);
    }
  }
  return img;
}

const std::vector<Modulation>& modulation_classes() {
  static const std::vector<Modulation> kClasses = {
      Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16};
  return kClasses;
}

namespace {

StftConfig dataset_stft_config() {
  StftConfig config;
  config.window = make_window(WindowKind::kHann, 64);
  config.hop = 16;
  config.fft_size = 64;
  config.convention = StftConvention::kSimplifiedTimeInvariant;
  config.padding = FramePadding::kCircular;
  return config;
}

}  // namespace

std::vector<ClassSample> make_classification_dataset(std::size_t per_class,
                                                     std::size_t image_size,
                                                     double noise_stddev,
                                                     num::Rng& rng) {
  std::vector<ClassSample> out;
  const StftConfig config = dataset_stft_config();
  const auto& classes = modulation_classes();
  for (std::size_t label = 0; label < classes.size(); ++label) {
    for (std::size_t i = 0; i < per_class; ++i) {
      OfdmParams params;
      params.modulation = classes[label];
      // Distinguishing cue: occupied bandwidth scales with the modulation
      // order (narrow BPSK control channel, wider QAM data channel), the way
      // 5G service classes occupy different slice widths.
      params.active_subcarriers = 16 + 16 * label;
      params.num_symbols = 8;
      const Vec burst = ofdm_burst(params, rng);
      const Vec noisy = add_noise(burst, noise_stddev, rng);
      ClassSample sample;
      sample.image = spectrogram_image(noisy, config, image_size, image_size);
      sample.label = label;
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::vector<DetectSample> make_detection_dataset(std::size_t count,
                                                 std::size_t image_size,
                                                 double noise_stddev,
                                                 num::Rng& rng) {
  std::vector<DetectSample> out;
  const StftConfig config = dataset_stft_config();
  const std::size_t capture_len = 2048;
  for (std::size_t i = 0; i < count; ++i) {
    OfdmParams params;
    params.modulation = Modulation::kQpsk;
    params.num_symbols = static_cast<std::size_t>(rng.uniform_int(3, 8));
    params.active_subcarriers =
        static_cast<std::size_t>(rng.uniform_int(16, 48));
    const BurstCapture cap =
        embedded_burst(capture_len, params, noise_stddev, rng);

    DetectSample sample;
    sample.image =
        spectrogram_image(cap.samples, config, image_size, image_size);
    // Time extent (x axis) from the sample offsets.
    const double x0 = static_cast<double>(cap.offset) /
                      static_cast<double>(capture_len);
    const double xw = static_cast<double>(cap.length) /
                      static_cast<double>(capture_len);
    sample.x_center = x0 + 0.5 * xw;
    sample.box_w = xw;
    // Frequency extent (y axis): occupied band is centered in the lower half
    // spectrum; image row 0 is the highest frequency.
    const double band = static_cast<double>(params.active_subcarriers) /
                        static_cast<double>(params.fft_size);
    sample.y_center = 0.5;
    sample.box_h = band;
    out.push_back(std::move(sample));
  }
  return out;
}

double box_iou(double ax, double ay, double aw, double ah, double bx, double by,
               double bw, double bh) {
  const double ax0 = ax - aw / 2.0;
  const double ax1 = ax + aw / 2.0;
  const double ay0 = ay - ah / 2.0;
  const double ay1 = ay + ah / 2.0;
  const double bx0 = bx - bw / 2.0;
  const double bx1 = bx + bw / 2.0;
  const double by0 = by - bh / 2.0;
  const double by1 = by + bh / 2.0;
  const double ix = std::max(0.0, std::min(ax1, bx1) - std::max(ax0, bx0));
  const double iy = std::max(0.0, std::min(ay1, by1) - std::max(ay0, by0));
  const double inter = ix * iy;
  const double uni = aw * ah + bw * bh - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace rcr::sig
