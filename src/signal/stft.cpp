#include "rcr/signal/stft.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "rcr/rt/parallel.hpp"

namespace rcr::sig {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::size_t wrap(std::ptrdiff_t idx, std::size_t n) {
  const auto len = static_cast<std::ptrdiff_t>(n);
  std::ptrdiff_t r = idx % len;
  if (r < 0) r += len;
  return static_cast<std::size_t>(r);
}
}  // namespace

double TfGrid::max_abs_diff(const TfGrid& a, const TfGrid& b) {
  if (a.bins() != b.bins() || a.frames() != b.frames())
    return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

double TfGrid::max_magnitude() const {
  double m = 0.0;
  for (const auto& v : data_) m = std::max(m, std::abs(v));
  return m;
}

void StftConfig::validate() const {
  if (window.empty()) throw std::invalid_argument("StftConfig: empty window");
  if (hop == 0) throw std::invalid_argument("StftConfig: zero hop");
  if (fft_size < window.size())
    throw std::invalid_argument("StftConfig: fft_size smaller than window");
  if (convention == StftConvention::kTimeInvariant &&
      padding == FramePadding::kTruncate)
    throw std::invalid_argument(
        "StftConfig: time-invariant convention requires circular padding "
        "(centered frames extend floor(Lg/2) samples before the signal)");
}

std::size_t StftConfig::frame_count(std::size_t n) const {
  if (padding == FramePadding::kCircular) {
    return (n + hop - 1) / hop;  // frame origins 0, a, 2a, ... < n
  }
  if (n < window.size()) return 0;
  return (n - window.size()) / hop + 1;
}

TfGrid stft(const Vec& signal, const StftConfig& config) {
  TfGrid out;
  stft_into(signal, config, out);
  return out;
}

void stft_into(const Vec& signal, const StftConfig& config, TfGrid& out) {
  config.validate();
  if (signal.empty()) throw std::invalid_argument("stft: empty signal");
  const std::size_t lg = config.window.size();
  const std::size_t m = config.fft_size;
  const std::size_t frames = config.frame_count(signal.size());
  if (frames == 0)
    throw std::invalid_argument("stft: signal shorter than window");

  // Eq. 5 (TI) equals Eq. 6 (STI) applied to frames advanced by
  // floor(Lg/2) samples, times a per-bin phase factor (see header).
  const std::ptrdiff_t offset =
      config.convention == StftConvention::kTimeInvariant
          ? -static_cast<std::ptrdiff_t>(lg / 2)
          : 0;

  // Frames are independent: each task windows, transforms, and writes its
  // own columns of the grid.  The frame buffer and Bluestein scratch are
  // thread_local, so a worker thread reuses one high-water-sized pair across
  // every frame it processes and across successive stft calls; the FFT
  // twiddle caches are shared behind a reader-friendly lock.
  out.assign(m, frames);
  rt::parallel_for(0, frames, 1, [&](std::size_t n0, std::size_t n1) {
    thread_local CVec frame;
    thread_local FftWorkspace ws;
    for (std::size_t n = n0; n < n1; ++n) {
      const auto start = static_cast<std::ptrdiff_t>(n * config.hop) + offset;
      frame.assign(m, {0.0, 0.0});
      for (std::size_t l = 0; l < lg; ++l) {
        const std::size_t src =
            config.padding == FramePadding::kCircular
                ? wrap(start + static_cast<std::ptrdiff_t>(l), signal.size())
                : static_cast<std::size_t>(start) + l;
        frame[l] = {signal[src] * config.window[l], 0.0};
      }
      fft_inplace(frame, ws);
      for (std::size_t bin = 0; bin < m; ++bin) out(bin, n) = frame[bin];
    }
  });

  if (config.convention == StftConvention::kTimeInvariant) {
    // Apply the per-bin phase factor in place: same complex product the
    // pointwise_multiply(out, phase_factor_matrix(...)) path computed, minus
    // the two grid allocations.
    const double shift = static_cast<double>(lg / 2);
    for (std::size_t bin = 0; bin < m; ++bin) {
      const double ang = kTwoPi * static_cast<double>(bin) * shift /
                         static_cast<double>(m);
      const std::complex<double> factor(std::cos(ang), std::sin(ang));
      for (std::size_t n = 0; n < frames; ++n) out(bin, n) *= factor;
    }
  }
}

Vec istft(const TfGrid& grid, const StftConfig& config, std::size_t n) {
  config.validate();
  if (grid.bins() != config.fft_size)
    throw std::invalid_argument("istft: bin count != fft_size");
  if (config.padding != FramePadding::kCircular)
    throw std::invalid_argument("istft: only circular padding is invertible");
  if (grid.frames() != config.frame_count(n))
    throw std::invalid_argument("istft: frame count mismatch for length n");

  const std::size_t lg = config.window.size();
  const std::size_t m = config.fft_size;

  // Undo the TI phase factor so both conventions share one overlap-add path.
  TfGrid work = grid;
  std::ptrdiff_t offset = 0;
  if (config.convention == StftConvention::kTimeInvariant) {
    const TfGrid p = phase_factor_matrix(m, grid.frames(), lg, m);
    for (std::size_t i = 0; i < work.data().size(); ++i)
      work.data()[i] = grid.data()[i] * std::conj(p.data()[i]);
    offset = -static_cast<std::ptrdiff_t>(lg / 2);
  }

  Vec numer(n, 0.0);
  Vec denom(n, 0.0);
  CVec column(m);
  FftWorkspace ws;
  for (std::size_t fr = 0; fr < work.frames(); ++fr) {
    for (std::size_t bin = 0; bin < m; ++bin) column[bin] = work(bin, fr);
    ifft_inplace(column, ws);  // column now holds the time-domain frame
    const auto start = static_cast<std::ptrdiff_t>(fr * config.hop) + offset;
    for (std::size_t l = 0; l < lg; ++l) {
      const std::size_t dst = wrap(start + static_cast<std::ptrdiff_t>(l), n);
      numer[dst] += config.window[l] * column[l].real();
      denom[dst] += config.window[l] * config.window[l];
    }
  }

  Vec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (denom[i] <= 1e-12)
      throw std::invalid_argument(
          "istft: window/hop pair leaves samples uncovered");
    out[i] = numer[i] / denom[i];
  }
  return out;
}

TfGrid phase_factor_matrix(std::size_t bins, std::size_t frames,
                           std::size_t window_length, std::size_t fft_size) {
  TfGrid p(bins, frames);
  const double shift = static_cast<double>(window_length / 2);
  for (std::size_t m = 0; m < bins; ++m) {
    const double ang =
        kTwoPi * static_cast<double>(m) * shift / static_cast<double>(fft_size);
    const std::complex<double> factor(std::cos(ang), std::sin(ang));
    for (std::size_t n = 0; n < frames; ++n) p(m, n) = factor;
  }
  return p;
}

TfGrid pointwise_multiply(const TfGrid& a, const TfGrid& b) {
  if (a.bins() != b.bins() || a.frames() != b.frames())
    throw std::invalid_argument("pointwise_multiply: shape mismatch");
  TfGrid out(a.bins(), a.frames());
  for (std::size_t i = 0; i < a.data().size(); ++i)
    out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

TfGrid convert_sti_to_ti(const TfGrid& sti, std::size_t window_length,
                         std::size_t fft_size) {
  const TfGrid p =
      phase_factor_matrix(sti.bins(), sti.frames(), window_length, fft_size);
  return pointwise_multiply(sti, p);
}

double max_phase_discrepancy(const TfGrid& a, const TfGrid& b,
                             double magnitude_floor) {
  if (a.bins() != b.bins() || a.frames() != b.frames())
    return std::numbers::pi;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const auto& x = a.data()[i];
    const auto& y = b.data()[i];
    if (std::abs(x) <= magnitude_floor || std::abs(y) <= magnitude_floor)
      continue;
    worst = std::max(worst, std::abs(std::arg(x * std::conj(y))));
  }
  return worst;
}

}  // namespace rcr::sig
