#include "rcr/signal/variants.hpp"

#include <cmath>
#include <stdexcept>

namespace rcr::sig {

std::string to_string(Defect defect) {
  switch (defect) {
    case Defect::kNone:
      return "none";
    case Defect::kLegacySignature:
      return "legacy-signature";
    case Defect::kPhaseSkew:
      return "phase-skew";
    case Defect::kNonCircular:
      return "non-circular";
    case Defect::kMissingScale:
      return "missing-scale";
    case Defect::kConjugateFlip:
      return "conjugate-flip";
    case Defect::kUnstableCompose:
      return "unstable-compose";
  }
  return "unknown";
}

namespace {
CVec conjugate(const CVec& x) {
  CVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::conj(x[i]);
  return out;
}
}  // namespace

CVec SimulatedLibrary::fft(const CVec& x) const {
  if (defect_ == Defect::kConjugateFlip) {
    // e^{+i...} kernel == conjugate of the DFT of the conjugated input.
    return conjugate(::rcr::sig::fft(conjugate(x)));
  }
  return ::rcr::sig::fft(x);
}

CVec SimulatedLibrary::ifft(const CVec& x) const {
  CVec out = defect_ == Defect::kConjugateFlip
                 ? conjugate(::rcr::sig::ifft(conjugate(x)))
                 : ::rcr::sig::ifft(x);
  if (defect_ == Defect::kMissingScale) {
    for (auto& v : out) v *= static_cast<double>(out.size());
  }
  return out;
}

CVec SimulatedLibrary::rfft(const Vec& x) const {
  if (defect_ == Defect::kConjugateFlip) {
    const CVec full = fft(to_complex(x));
    return CVec(full.begin(),
                full.begin() + static_cast<std::ptrdiff_t>(x.size() / 2 + 1));
  }
  return ::rcr::sig::rfft(x);
}

Vec SimulatedLibrary::irfft(const CVec& spectrum, std::size_t n) const {
  Vec out = ::rcr::sig::irfft(spectrum, n);
  if (defect_ == Defect::kMissingScale) {
    for (auto& v : out) v *= static_cast<double>(n);
  }
  return out;
}

StftConfig SimulatedLibrary::make_config(std::size_t fft_size, std::size_t hop,
                                         const Vec& window) const {
  StftConfig config;
  config.hop = hop;
  config.convention = StftConvention::kSimplifiedTimeInvariant;
  config.padding = FramePadding::kCircular;

  switch (defect_) {
    case Defect::kLegacySignature: {
      // Pre-v0.4.1 semantics: the transform size follows the *frame* (the
      // window length), silently ignoring the requested fft_size -- callers
      // using the Librosa-consistent signature get a grid with the wrong
      // number of frequency bins.
      config.window = window;
      config.fft_size = window.size();
      break;
    }
    case Defect::kNonCircular:
      config.window = window;
      config.fft_size = fft_size;
      config.padding = FramePadding::kTruncate;
      break;
    default:
      config.window = window;
      config.fft_size = fft_size;
      break;
  }
  return config;
}

TfGrid SimulatedLibrary::stft(const Vec& signal, std::size_t fft_size,
                              std::size_t hop, const Vec& window) const {
  const StftConfig config = make_config(fft_size, hop, window);
  TfGrid grid = ::rcr::sig::stft(signal, config);
  if (defect_ == Defect::kPhaseSkew) {
    // The library bakes the stored-window phase factors into its output
    // (Sec. IV-B's "phase skew dependency on the stored window"): callers
    // expecting the plain STI convention see every coefficient rotated by
    // e^{2*pi*i*m*floor(Lg/2)/M} -- magnitudes intact, phases corrupted.
    return convert_sti_to_ti(grid, config.window.size(), config.fft_size);
  }
  if (defect_ == Defect::kConjugateFlip) {
    for (auto& v : grid.data()) v = std::conj(v);
  }
  return grid;
}

Vec SimulatedLibrary::istft(const TfGrid& grid, std::size_t fft_size,
                            std::size_t hop, const Vec& window,
                            std::size_t n) const {
  const StftConfig config = make_config(fft_size, hop, window);
  if (config.padding != FramePadding::kCircular) {
    // Truncating libraries cannot reconstruct the tail; report via exception
    // like their real counterparts do via shape errors.
    throw std::invalid_argument("SimulatedLibrary::istft: non-invertible framing");
  }
  Vec out = ::rcr::sig::istft(grid, config, n);
  if (defect_ == Defect::kMissingScale) {
    for (auto& v : out) v *= static_cast<double>(config.fft_size);
  }
  return out;
}

Vec SimulatedLibrary::log_power(const Vec& frame) const {
  // Normalized per-bin power of the frame's spectrum, then log.
  const CVec spec = ::rcr::sig::rfft(frame);
  Vec power(spec.size());
  double total = 0.0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    power[i] = std::norm(spec[i]);
    total += power[i];
  }
  Vec out(power.size());
  if (defect_ == Defect::kUnstableCompose) {
    // Separate normalize-then-log: tiny bins underflow to 0 -> log -> -inf,
    // the exact softmax/log pathology Sec. V calls out.
    for (std::size_t i = 0; i < power.size(); ++i)
      out[i] = std::log(power[i] / total);
  } else {
    // Fused form: log(p_i) - log(total), stable for tiny p_i.
    const double log_total = std::log(total);
    for (std::size_t i = 0; i < power.size(); ++i)
      out[i] = (power[i] > 0.0 ? std::log(power[i]) : -745.0) - log_total;
  }
  return out;
}

std::vector<SimulatedLibrary> standard_library_roster() {
  return {
      SimulatedLibrary("reference", Defect::kNone),
      SimulatedLibrary("torch-0.3-sim", Defect::kLegacySignature),
      SimulatedLibrary("tensorflow-sim", Defect::kPhaseSkew),
      SimulatedLibrary("caffe2-sim", Defect::kNonCircular),
      SimulatedLibrary("julia-sim", Defect::kMissingScale),
      SimulatedLibrary("scipy-legacy-sim", Defect::kConjugateFlip),
      SimulatedLibrary("caffe-sim", Defect::kUnstableCompose),
  };
}

}  // namespace rcr::sig
