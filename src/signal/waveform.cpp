#include "rcr/signal/waveform.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rcr::sig {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

Vec tone(std::size_t n, double freq, double sample_rate, double amplitude,
         double phase) {
  Vec out(n);
  for (std::size_t k = 0; k < n; ++k)
    out[k] = amplitude * std::sin(kTwoPi * freq * static_cast<double>(k) /
                                      sample_rate +
                                  phase);
  return out;
}

Vec chirp(std::size_t n, double f0, double f1, double sample_rate,
          double amplitude) {
  Vec out(n);
  const double duration = static_cast<double>(n) / sample_rate;
  const double rate = (f1 - f0) / duration;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) / sample_rate;
    out[k] = amplitude * std::sin(kTwoPi * (f0 * t + 0.5 * rate * t * t));
  }
  return out;
}

Vec awgn(std::size_t n, double stddev, num::Rng& rng) {
  return rng.normal_vec(n, 0.0, stddev);
}

Vec add_noise(const Vec& x, double stddev, num::Rng& rng) {
  Vec out = x;
  for (double& v : out) v += rng.normal(0.0, stddev);
  return out;
}

Vec circular_shift(const Vec& x, std::ptrdiff_t shift) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  if (n == 0) return {};
  Vec out(x.size());
  for (std::ptrdiff_t k = 0; k < n; ++k) {
    std::ptrdiff_t src = (k - shift) % n;
    if (src < 0) src += n;
    out[static_cast<std::size_t>(k)] = x[static_cast<std::size_t>(src)];
  }
  return out;
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:
      return "BPSK";
    case Modulation::kQpsk:
      return "QPSK";
    case Modulation::kQam16:
      return "QAM16";
  }
  return "unknown";
}

namespace {

std::complex<double> draw_symbol(Modulation mod, num::Rng& rng) {
  switch (mod) {
    case Modulation::kBpsk:
      return {rng.bernoulli(0.5) ? 1.0 : -1.0, 0.0};
    case Modulation::kQpsk: {
      const double re = rng.bernoulli(0.5) ? 1.0 : -1.0;
      const double im = rng.bernoulli(0.5) ? 1.0 : -1.0;
      return std::complex<double>(re, im) / std::sqrt(2.0);
    }
    case Modulation::kQam16: {
      // Gray-mapped 16-QAM levels {-3,-1,1,3}/sqrt(10).
      const double levels[4] = {-3.0, -1.0, 1.0, 3.0};
      const double re = levels[rng.uniform_int(0, 3)];
      const double im = levels[rng.uniform_int(0, 3)];
      return std::complex<double>(re, im) / std::sqrt(10.0);
    }
  }
  return {0.0, 0.0};
}

}  // namespace

Vec ofdm_burst(const OfdmParams& params, num::Rng& rng) {
  if (params.active_subcarriers > params.fft_size)
    throw std::invalid_argument("ofdm_burst: active subcarriers > fft size");
  if (params.fft_size == 0)
    throw std::invalid_argument("ofdm_burst: zero fft size");

  Vec out;
  out.reserve(params.total_samples());
  const std::size_t guard = (params.fft_size - params.active_subcarriers) / 2;

  for (std::size_t sym = 0; sym < params.num_symbols; ++sym) {
    CVec freq(params.fft_size, {0.0, 0.0});
    for (std::size_t sc = 0; sc < params.active_subcarriers; ++sc)
      freq[guard + sc] = draw_symbol(params.modulation, rng);
    CVec time = ifft(freq);
    // Normalize to unit average power over the occupied band.
    double power = 0.0;
    for (const auto& v : time) power += std::norm(v);
    power /= static_cast<double>(time.size());
    const double scale = power > 0.0 ? 1.0 / std::sqrt(power) : 1.0;

    // Cyclic prefix, then the symbol body (real part as the transmitted
    // waveform).
    for (std::size_t k = params.fft_size - params.cyclic_prefix;
         k < params.fft_size; ++k)
      out.push_back(time[k].real() * scale);
    for (std::size_t k = 0; k < params.fft_size; ++k)
      out.push_back(time[k].real() * scale);
  }
  return out;
}

BurstCapture embedded_burst(std::size_t capture_len, const OfdmParams& params,
                            double noise_stddev, num::Rng& rng) {
  const Vec burst = ofdm_burst(params, rng);
  if (burst.size() > capture_len)
    throw std::invalid_argument("embedded_burst: burst longer than capture");

  BurstCapture cap;
  cap.samples = awgn(capture_len, noise_stddev, rng);
  cap.length = burst.size();
  cap.offset = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(capture_len - burst.size())));
  for (std::size_t k = 0; k < burst.size(); ++k)
    cap.samples[cap.offset + k] += burst[k];
  return cap;
}

}  // namespace rcr::sig
