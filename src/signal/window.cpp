#include "rcr/signal/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rcr::sig {

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular:
      return "rectangular";
    case WindowKind::kHann:
      return "hann";
    case WindowKind::kHamming:
      return "hamming";
    case WindowKind::kBlackman:
      return "blackman";
    case WindowKind::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

Vec make_window(WindowKind kind, std::size_t length) {
  if (length == 0) throw std::invalid_argument("make_window: zero length");
  Vec w(length, 1.0);
  const double n = static_cast<double>(length);  // periodic form
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t k = 0; k < length; ++k) {
    const double t = static_cast<double>(k);
    switch (kind) {
      case WindowKind::kRectangular:
        w[k] = 1.0;
        break;
      case WindowKind::kHann:
        w[k] = 0.5 - 0.5 * std::cos(kTwoPi * t / n);
        break;
      case WindowKind::kHamming:
        w[k] = 0.54 - 0.46 * std::cos(kTwoPi * t / n);
        break;
      case WindowKind::kBlackman:
        w[k] = 0.42 - 0.5 * std::cos(kTwoPi * t / n) +
               0.08 * std::cos(2.0 * kTwoPi * t / n);
        break;
      case WindowKind::kGaussian: {
        const double sigma = n / 8.0;
        const double c = (t - n / 2.0) / sigma;
        w[k] = std::exp(-0.5 * c * c);
        break;
      }
    }
  }
  return w;
}

Vec overlap_add_profile(const Vec& window, std::size_t hop) {
  if (hop == 0) throw std::invalid_argument("overlap_add_profile: zero hop");
  Vec profile(hop, 0.0);
  for (std::size_t k = 0; k < window.size(); ++k)
    profile[k % hop] += window[k];
  return profile;
}

bool satisfies_cola(const Vec& window, std::size_t hop, double tol) {
  const Vec p = overlap_add_profile(window, hop);
  double lo = p[0];
  double hi = p[0];
  for (double v : p) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= 0.0) return false;
  return (hi - lo) / hi <= tol;
}

std::size_t window_peak_index(const Vec& window) {
  std::size_t best = 0;
  const std::size_t center = window.size() / 2;
  for (std::size_t k = 1; k < window.size(); ++k) {
    if (window[k] > window[best] ||
        (window[k] == window[best] &&
         std::llabs(static_cast<long long>(k) - static_cast<long long>(center)) <
             std::llabs(static_cast<long long>(best) -
                        static_cast<long long>(center)))) {
      best = k;
    }
  }
  return best;
}

}  // namespace rcr::sig
