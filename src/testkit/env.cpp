#include "rcr/testkit/env.hpp"

#include <cstdio>
#include <cstdlib>

namespace rcr::testkit {

std::optional<std::uint64_t> env_replay_seed() {
  const char* env = std::getenv("RCR_TESTKIT_SEED");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || (end != nullptr && *end != '\0')) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::string env_artifact_dir() {
  const char* env = std::getenv("RCR_TESTKIT_ARTIFACT_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

bool env_regen_golden() {
  const char* env = std::getenv("RCR_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

bool env_golden_strict() {
  const char* env = std::getenv("RCR_GOLDEN_STRICT");
  return env == nullptr || env[0] != '0';
}

double env_fuzz_budget_seconds(double fallback) {
  const char* env = std::getenv("RCR_FUZZ_BUDGET_S");
  if (env == nullptr || env[0] == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end == env || v <= 0.0) ? fallback : v;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string write_artifact(const std::string& file, const std::string& text) {
  const std::string dir = env_artifact_dir();
  if (dir.empty()) return "";
  // Flatten path separators so an entry name cannot escape the dir.
  std::string safe = file;
  for (char& c : safe)
    if (c == '/' || c == '\\') c = '_';
  const std::string path = dir + "/" + safe;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return path;
}

}  // namespace rcr::testkit
