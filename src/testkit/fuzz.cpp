#include "rcr/testkit/fuzz.hpp"

#include <cmath>
#include <sstream>

#include "rcr/signal/fft.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/testkit/env.hpp"
#include "rcr/testkit/ulp.hpp"

namespace rcr::testkit {

// ---------------------------------------------------------------------------
// ByteReader.

std::uint8_t ByteReader::u8() {
  if (pos_ >= size_) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  std::uint16_t v = u8();
  v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(u8()) << 8));
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(u8()) << (8 * b);
  return v;
}

std::size_t ByteReader::size_in(std::size_t lo, std::size_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::size_t>(u16()) % (hi - lo + 1);
}

double ByteReader::sample(double amplitude) {
  // Map raw bits to a finite value in [-amplitude, amplitude]; every byte
  // pattern decodes to a usable sample so the fuzzer never wastes inputs.
  const std::uint64_t bits = u64();
  const double unit =
      static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
  return amplitude * (2.0 * unit - 1.0);
}

// ---------------------------------------------------------------------------
// FFT workload.

namespace {

std::string prefix(const char* harness, const std::string& diag) {
  if (diag.empty()) return "";
  return std::string(harness) + ": " + diag;
}

}  // namespace

std::string fuzz_fft_one(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const std::size_t n = r.size_in(1, 128);
  sig::CVec x(n);
  for (auto& v : x) v = {r.sample(), r.sample()};

  // fft then ifft recovers the input (scaled tolerance: Bluestein lengths
  // accumulate more rounding than radix-2).
  const sig::CVec spectrum = sig::fft(x);
  if (spectrum.size() != n) return "fft: output size != input size";
  const sig::CVec roundtrip = sig::ifft(spectrum);
  std::string diag = expect_close(x, roundtrip, 1e-9 * static_cast<double>(n),
                                  1e-9, "fft/ifft roundtrip");
  if (!diag.empty()) return prefix("fft", diag);

  // Against the O(N^2) oracle for small N.
  if (n <= 64) {
    const sig::CVec reference = sig::dft_reference(x);
    diag = expect_close(spectrum, reference, 1e-8 * static_cast<double>(n),
                        1e-8, "fft vs dft_reference");
    if (!diag.empty()) return prefix("fft", diag);
  }

  // In-place variant is bit-identical to the allocating one.
  sig::CVec inplace = x;
  sig::FftWorkspace ws;
  sig::fft_inplace(inplace, ws);
  diag = expect_bits(spectrum, inplace, "fft vs fft_inplace");
  if (!diag.empty()) return prefix("fft", diag);
  sig::ifft_inplace(inplace, ws);
  diag = expect_bits(roundtrip, inplace, "ifft vs ifft_inplace");
  if (!diag.empty()) return prefix("fft", diag);

  // rfft agrees with fft of the real part, and irfft inverts it.
  Vec real(n);
  for (std::size_t i = 0; i < n; ++i) real[i] = x[i].real();
  const sig::CVec half = sig::rfft(real);
  if (half.size() != n / 2 + 1) return "rfft: wrong output size";
  const sig::CVec full = sig::fft(sig::to_complex(real));
  for (std::size_t m = 0; m < half.size(); ++m) {
    const std::uint64_t dr = ulp_distance(half[m].real(), full[m].real());
    const std::uint64_t di = ulp_distance(half[m].imag(), full[m].imag());
    if (std::abs(half[m] - full[m]) > 1e-9 * (1.0 + std::abs(full[m]))) {
      std::ostringstream os;
      os << "fft: rfft bin " << m << " disagrees with fft (" << dr << "/"
         << di << " ulps)";
      return os.str();
    }
  }
  const Vec back = sig::irfft(half, n);
  diag = expect_close(back, real, 1e-9 * static_cast<double>(n), 1e-9,
                      "rfft/irfft roundtrip");
  return prefix("fft", diag);
}

// ---------------------------------------------------------------------------
// STFT workload.

std::string fuzz_stft_one(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);

  const sig::WindowKind kinds[] = {
      sig::WindowKind::kRectangular, sig::WindowKind::kHann,
      sig::WindowKind::kHamming, sig::WindowKind::kBlackman,
      sig::WindowKind::kGaussian};
  const auto kind = kinds[r.u8() % 5];
  const std::size_t lg = r.size_in(2, 32);

  sig::StftConfig config;
  config.window = sig::make_window(kind, lg);
  config.hop = r.size_in(1, lg);
  // Mix in non-power-of-two and zero-padded bin counts.
  config.fft_size = lg + r.size_in(0, lg);
  config.convention = (r.u8() & 1) != 0
                          ? sig::StftConvention::kTimeInvariant
                          : sig::StftConvention::kSimplifiedTimeInvariant;
  config.padding = (r.u8() & 1) != 0 ? sig::FramePadding::kTruncate
                                     : sig::FramePadding::kCircular;

  const std::size_t n = r.size_in(lg, 192);
  Vec signal(n);
  for (auto& v : signal) v = r.sample();

  try {
    config.validate();
  } catch (const std::exception&) {
    return "";  // decoded an invalid config; skip, do not fail
  }

  const sig::TfGrid grid = sig::stft(signal, config);
  if (grid.bins() != config.fft_size)
    return "stft: bins != fft_size";
  if (grid.frames() != config.frame_count(n)) {
    std::ostringstream os;
    os << "stft: frames " << grid.frames() << " != frame_count(" << n
       << ") = " << config.frame_count(n);
    return os.str();
  }

  // Allocating vs in-place must be bit-identical -- run _into twice so the
  // warm-storage path is also exercised.
  sig::TfGrid into;
  sig::stft_into(signal, config, into);
  std::string diag = expect_bits(grid, into, "stft vs stft_into");
  if (!diag.empty()) return prefix("stft", diag);
  sig::stft_into(signal, config, into);
  diag = expect_bits(grid, into, "stft vs warm stft_into");
  if (!diag.empty()) return prefix("stft", diag);

  // Least-squares inverse reconstructs COLA circular configs.
  if (config.padding == sig::FramePadding::kCircular &&
      n % config.hop == 0 && lg % config.hop == 0 &&
      sig::satisfies_cola(config.window, config.hop)) {
    const Vec rebuilt = sig::istft(grid, config, n);
    diag = expect_close(rebuilt, signal, 1e-8 * static_cast<double>(lg),
                        1e-8, "istft roundtrip");
    if (!diag.empty()) return prefix("stft", diag);
  }
  return "";
}

std::string fuzz_fft_stft_one(const std::uint8_t* data, std::size_t size) {
  const std::string fft_diag = fuzz_fft_one(data, size);
  if (!fft_diag.empty()) return fft_diag;
  return fuzz_stft_one(data, size);
}

// ---------------------------------------------------------------------------
// Corpus and mutation.

namespace {

std::vector<std::uint8_t> corpus_entry(std::uint64_t seed,
                                       std::size_t length) {
  // Deterministic pseudo-random bytes; the decoder gives them structure.
  std::vector<std::uint8_t> out(length);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < length; ++i) {
    state = splitmix64(state);
    out[i] = static_cast<std::uint8_t>(state & 0xff);
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> builtin_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  // Empty and tiny buffers: ByteReader zero-fills, exercising length-1 FFTs
  // and minimal windows.
  corpus.push_back({});
  corpus.push_back({0x01});
  corpus.push_back({0xff, 0xff});
  // Length field pinned to powers of two, then to Bluestein (prime) sizes.
  for (std::uint16_t len : {std::uint16_t{3}, std::uint16_t{7},
                            std::uint16_t{15}, std::uint16_t{31},
                            std::uint16_t{63}, std::uint16_t{126},
                            std::uint16_t{127}}) {
    std::vector<std::uint8_t> e = corpus_entry(len, 160);
    e[0] = static_cast<std::uint8_t>(len & 0xff);
    e[1] = static_cast<std::uint8_t>(len >> 8);
    corpus.push_back(std::move(e));
  }
  // Bulk random-looking buffers of varied sizes.
  for (std::uint64_t s = 1; s <= 8; ++s)
    corpus.push_back(corpus_entry(0x9000 + s, 32 * static_cast<std::size_t>(s)));
  return corpus;
}

void mutate(std::vector<std::uint8_t>& input, std::uint64_t seed, int rounds) {
  std::uint64_t state = seed;
  const auto next = [&state]() {
    state = splitmix64(state);
    return state;
  };
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t op = next() % 4;
    switch (op) {
      case 0: {  // overwrite a byte
        if (input.empty()) {
          input.push_back(static_cast<std::uint8_t>(next() & 0xff));
          break;
        }
        input[next() % input.size()] =
            static_cast<std::uint8_t>(next() & 0xff);
        break;
      }
      case 1: {  // flip one bit
        if (input.empty()) break;
        input[next() % input.size()] ^=
            static_cast<std::uint8_t>(1u << (next() % 8));
        break;
      }
      case 2: {  // grow
        if (input.size() < 512)
          input.push_back(static_cast<std::uint8_t>(next() & 0xff));
        break;
      }
      default: {  // shrink
        if (!input.empty()) input.pop_back();
        break;
      }
    }
  }
}

}  // namespace rcr::testkit
